#!/usr/bin/env bash
# The full local verification gate. Offline-safe: the workspace has zero
# external dependencies, so nothing here touches a registry or network.
#
# Usage: scripts/verify.sh [--quick]
#   --quick   skip the release build (debug build + tests + lints only)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[ "${1:-}" = "--quick" ] && quick=1

run() {
    echo "==> $*"
    "$@"
}

if [ "$quick" = 0 ]; then
    run cargo build --release --workspace
fi
run cargo test --workspace -q
run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings

# Observability smoke: a traced experiment must export loadable
# Perfetto JSON and a well-formed metrics CSV.
trace_dir=target/trace-smoke
rm -rf "$trace_dir"
run cargo run --release -p ncap-cli -- trace \
    --app memcached --policy ncap.cons --load 30000 \
    --warmup-ms 5 --measure-ms 15 --out "$trace_dir"
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$trace_dir/trace.json" >/dev/null ||
        { echo "verify: trace.json is not valid JSON" >&2; exit 1; }
else
    grep -q '"traceEvents"' "$trace_dir/trace.json" ||
        { echo "verify: trace.json missing traceEvents" >&2; exit 1; }
fi
head -1 "$trace_dir/trace.csv" | grep -q '^time_ns,.*cluster\.bw_rx' ||
    { echo "verify: trace.csv missing expected columns" >&2; exit 1; }
echo "==> trace smoke ok ($trace_dir)"

# Attribution smoke: `ncap report` must render the per-stage table,
# the tail verdict, and the waterfall for a short sparse-load run (the
# configuration EXPERIMENTS.md "tail_breakdown" documents). The output
# is kept on disk so CI can publish it as an artifact.
report_out=target/report-smoke
rm -rf "$report_out" && mkdir -p "$report_out"
run cargo run --release -p ncap-cli -- report \
    --app memcached --policy ond.idle --load 3000 --poisson --queues 4 \
    --warmup-ms 5 --measure-ms 15 | tee "$report_out/report.txt"
for want in 'tail verdict' 'waterfall' 'wake'; do
    grep -q "$want" "$report_out/report.txt" ||
        { echo "verify: report output missing '$want'" >&2; exit 1; }
done
echo "==> report smoke ok ($report_out)"

# Fault-scenario smoke: a short lossy run with tracing enabled must
# complete, recover every request, and report its fault counters.
fault_out=$(NCAP_TRACE=1 run cargo run --release -p ncap-cli -- run \
    --app memcached --policy ncap.cons --load 30000 \
    --warmup-ms 5 --measure-ms 15 --loss 0.01 --fault-seed 7)
echo "$fault_out"
echo "$fault_out" | grep -q 'faults' ||
    { echo "verify: lossy run reported no fault counters" >&2; exit 1; }
echo "$fault_out" | grep -q '0 requests lost' ||
    { echo "verify: lossy run lost requests" >&2; exit 1; }
echo "==> fault smoke ok"

# Overload smoke: a run at 2x capacity with admission control armed must
# shed some requests, stay within the queue bound, and pass the invariant
# watchdog with zero violations.
overload_out=$(run cargo run --release -p ncap-cli -- run \
    --app memcached --policy perf --load 240000 \
    --warmup-ms 5 --measure-ms 20 \
    --queue-cap 512 --shed-policy drop-tail)
echo "$overload_out"
echo "$overload_out" | grep -q 'overload [1-9][0-9]* requests rejected' ||
    { echo "verify: overloaded run rejected nothing" >&2; exit 1; }
echo "$overload_out" | grep -q 'watchdog [1-9][0-9]* checks, 0 violations' ||
    { echo "verify: watchdog missing or reported violations" >&2; exit 1; }
echo "==> overload smoke ok"

# Fleet smoke: a small coordinated fleet must serve through the LB,
# park surplus backends, and pass the watchdog's ledger audit.
fleet_out=$(run cargo run --release -p ncap-cli -- run \
    --app memcached --policy ond.idle --load 72000 --poisson \
    --warmup-ms 10 --measure-ms 20 \
    --servers 4 --dispatch pack --coordinator)
echo "$fleet_out"
echo "$fleet_out" | grep -q 'fleet *4 backends (pack)' ||
    { echo "verify: fleet run reported no fleet summary" >&2; exit 1; }
echo "$fleet_out" | grep -q '[1-9][0-9]* parks' ||
    { echo "verify: coordinated fleet parked nothing" >&2; exit 1; }
echo "$fleet_out" | grep -q 'watchdog [1-9][0-9]* checks, 0 violations' ||
    { echo "verify: fleet watchdog missing or reported violations" >&2; exit 1; }
echo "==> fleet smoke ok"

# Bypass smoke: the poll-mode datapath must serve a short run end to
# end — busy-poll cores picking frames out of the userspace ring with
# zero interrupts, the poll cores' spend attributed separately — and
# keep the conservation ledgers clean.
bypass_out=$(run cargo run --release -p ncap-cli -- run \
    --app memcached --policy ond.idle --load 30000 --poisson \
    --warmup-ms 5 --measure-ms 15 --datapath bypass --poll-cores 1)
echo "$bypass_out"
echo "$bypass_out" | grep -q 'bypass datapath' ||
    { echo "verify: bypass run did not report its datapath" >&2; exit 1; }
echo "$bypass_out" | grep -Eq 'polling +[0-9.]+ J burned' ||
    { echo "verify: bypass run attributed no poll-core energy" >&2; exit 1; }
echo "$bypass_out" | grep -q '0 NCAP interrupts, 0 drops' ||
    { echo "verify: bypass run took interrupts or dropped frames" >&2; exit 1; }
echo "$bypass_out" | grep -q 'watchdog [1-9][0-9]* checks, 0 violations' ||
    { echo "verify: bypass watchdog missing or reported violations" >&2; exit 1; }
echo "==> bypass smoke ok"

# Failover smoke: crash one backend mid-run (with a later restart) and
# demand end-to-end recovery inside a seconds-scale run — the prober
# ejects it, orphaned requests fail over via retransmission, nothing is
# silently lost, and the watchdog's extended ledger audit stays clean.
# Output is kept on disk so CI can publish it as an artifact.
failover_dir=target/failover-smoke
rm -rf "$failover_dir" && mkdir -p "$failover_dir"
run cargo run --release -p ncap-cli -- run \
    --app memcached --policy ond.idle --load 60000 --poisson \
    --warmup-ms 5 --measure-ms 25 \
    --servers 4 --dispatch jsq --fail-backend 1@10:15 \
    | tee "$failover_dir/run.txt"
grep -q 'fleet *4 backends (jsq)' "$failover_dir/run.txt" ||
    { echo "verify: failover run reported no fleet summary" >&2; exit 1; }
grep -Eq 'health .*[1-9][0-9]* ejection' "$failover_dir/run.txt" ||
    { echo "verify: crashed backend was never ejected" >&2; exit 1; }
grep -q '0 requests lost' "$failover_dir/run.txt" ||
    { echo "verify: failover run lost requests" >&2; exit 1; }
grep -q 'watchdog [1-9][0-9]* checks, 0 violations' "$failover_dir/run.txt" ||
    { echo "verify: failover watchdog missing or reported violations" >&2; exit 1; }
echo "==> failover smoke ok ($failover_dir)"

# Chaos smoke: a short seeded campaign composing correlated failure
# domains, crash/slow/hang events, and flash crowds must pass the
# silence oracle (no violations, balanced ledgers, quiescence at the
# horizon) in a few seconds. The nightly workflow runs the full
# 200-seed campaign; this keeps the harness itself from rotting.
chaos_dir=target/chaos-smoke
rm -rf "$chaos_dir" && mkdir -p "$chaos_dir"
run cargo run --release -p ncap-cli -- chaos --seeds 8 \
    | tee "$chaos_dir/campaign.txt"
grep -q ' 0 failed' "$chaos_dir/campaign.txt" ||
    { echo "verify: chaos smoke campaign failed" >&2; exit 1; }
echo "==> chaos smoke ok ($chaos_dir)"

# Throughput-record smoke: the tracked sim-throughput benchmark must
# run end to end and emit a well-formed JSON record (full-mode numbers
# are recorded separately with scripts/bench_record.sh and committed as
# BENCH_6.json).
run scripts/bench_record.sh --smoke

# Hermeticity: no external crates may creep back into any manifest.
if grep -rn '^\(rand\|bytes\|proptest\|criterion\|serde\|crossbeam\|parking_lot\)' \
    Cargo.toml crates/*/Cargo.toml; then
    echo "verify: external dependency found in a manifest" >&2
    exit 1
fi

echo "verify: all gates passed"
