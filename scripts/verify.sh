#!/usr/bin/env bash
# The full local verification gate. Offline-safe: the workspace has zero
# external dependencies, so nothing here touches a registry or network.
#
# Usage: scripts/verify.sh [--quick]
#   --quick   skip the release build (debug build + tests + lints only)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[ "${1:-}" = "--quick" ] && quick=1

run() {
    echo "==> $*"
    "$@"
}

if [ "$quick" = 0 ]; then
    run cargo build --release --workspace
fi
run cargo test --workspace -q
run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings

# Hermeticity: no external crates may creep back into any manifest.
if grep -rn '^\(rand\|bytes\|proptest\|criterion\|serde\|crossbeam\|parking_lot\)' \
    Cargo.toml crates/*/Cargo.toml; then
    echo "verify: external dependency found in a manifest" >&2
    exit 1
fi

echo "verify: all gates passed"
