#!/usr/bin/env bash
# Compile-and-tiny-run smoke coverage for every bench target.
#
# Each target in crates/bench/benches/ is built and executed once with
# NCAP_BENCH_SMOKE=1, which shrinks every simulated window to a tiny
# sanity run (see ncap_bench::smoke_mode). A target passes when it exits
# zero; the numbers it prints are meaningless under smoke mode.
#
# Usage: scripts/bench_smoke.sh [--quiet]
set -euo pipefail
cd "$(dirname "$0")/.."

# Run every target with event tracing enabled so the smoke pass also
# exercises the simtrace instrumentation in every subsystem (tracing is
# observer-effect-free; see tests/observability.rs).
export NCAP_TRACE=1

quiet=0
[ "${1:-}" = "--quiet" ] && quiet=1

# Enumerate targets from the filesystem so a new bench file cannot be
# silently skipped (Cargo.toml [[bench]] entries are checked by the build
# itself: a file without an entry fails `cargo bench`).
targets=$(ls crates/bench/benches/*.rs | xargs -n1 basename | sed 's/\.rs$//' | sort)

echo "Building all bench targets..."
cargo bench -p ncap-bench --no-run --benches

fail=0
for t in $targets; do
    printf '%-28s' "$t"
    start=$(date +%s)
    if [ "$quiet" = 1 ]; then
        out=$(NCAP_BENCH_SMOKE=1 cargo bench -p ncap-bench --bench "$t" 2>&1) ||
            { echo "FAIL"; echo "$out" | tail -20; fail=1; continue; }
    else
        NCAP_BENCH_SMOKE=1 cargo bench -p ncap-bench --bench "$t" ||
            { echo "$t FAIL"; fail=1; continue; }
    fi
    echo "ok ($(($(date +%s) - start))s)"
done

if [ "$fail" != 0 ]; then
    echo "bench smoke: FAILURES" >&2
    exit 1
fi
echo "bench smoke: all $(echo "$targets" | wc -w) targets ran"
