#!/usr/bin/env bash
# Records the tracked sim-throughput benchmark (ISSUE 6) as a JSON
# artifact, so the events/second trajectory is pinned in-repo and
# regressions show up as a diff.
#
# Usage: scripts/bench_record.sh [--smoke|--fast]
#   --smoke   seconds-scale run, writes target/BENCH_6.smoke.json
#             (the verify/CI gate — checks plumbing, not performance)
#   --fast    reduced run, writes target/BENCH_6.fast.json
#   (default) full run, writes BENCH_6.json at the repo root; commit it
#             when the numbers move for a real reason.
set -euo pipefail
cd "$(dirname "$0")/.."

# cargo bench runs the harness from the package directory, so the
# output path must be absolute.
root=$PWD
mode=full
out=$root/BENCH_6.json
case "${1:-}" in
--smoke)
    mode=smoke
    out=$root/target/BENCH_6.smoke.json
    ;;
--fast)
    mode=fast
    out=$root/target/BENCH_6.fast.json
    ;;
"") ;;
*)
    echo "usage: scripts/bench_record.sh [--smoke|--fast]" >&2
    exit 2
    ;;
esac

env_flags=()
[ "$mode" = smoke ] && env_flags+=(NCAP_BENCH_SMOKE=1)
[ "$mode" = fast ] && env_flags+=(NCAP_BENCH_FAST=1)

echo "==> recording sim-throughput ($mode) -> $out"
env "${env_flags[@]}" NCAP_BENCH_JSON="$out" \
    cargo bench -p ncap-bench --bench sim_throughput

# The record must be well-formed and carry the queue-level comparison.
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$out" >/dev/null ||
        { echo "bench_record: $out is not valid JSON" >&2; exit 1; }
fi
grep -q '"queue_hold_64_backend_point"' "$out" ||
    { echo "bench_record: $out missing the queue hold record" >&2; exit 1; }
echo "==> bench record ok ($out)"
