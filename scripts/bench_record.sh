#!/usr/bin/env bash
# Records the tracked benchmarks as JSON artifacts, so the
# events/second trajectory is pinned in-repo and regressions show up
# as a diff:
#   sim_throughput -> BENCH_6 (queue + end-to-end fleet throughput)
#   attribution    -> BENCH_7 (latency-attribution overhead budget)
#   failover       -> BENCH_8 (health-prober overhead budget)
#   datapath       -> BENCH_10 (bypass-vs-kernel throughput + hook budget)
# Each record is stamped with the git SHA and UTC date it was taken
# at, so a committed number is traceable to the tree that produced it.
#
# Usage: scripts/bench_record.sh [--smoke|--fast]
#   --smoke   seconds-scale run, writes target/BENCH_N.smoke.json
#             (the verify/CI gate — checks plumbing, not performance)
#   --fast    reduced run, writes target/BENCH_N.fast.json
#   (default) full run, writes BENCH_N.json at the repo root; commit it
#             when the numbers move for a real reason.
set -euo pipefail
cd "$(dirname "$0")/.."

# cargo bench runs the harness from the package directory, so the
# output path must be absolute.
root=$PWD
mode=full
case "${1:-}" in
--smoke) mode=smoke ;;
--fast) mode=fast ;;
"") ;;
*)
    echo "usage: scripts/bench_record.sh [--smoke|--fast]" >&2
    exit 2
    ;;
esac

env_flags=()
[ "$mode" = smoke ] && env_flags+=(NCAP_BENCH_SMOKE=1)
[ "$mode" = fast ] && env_flags+=(NCAP_BENCH_FAST=1)

out_path() { # out_path <BENCH_N>
    if [ "$mode" = full ]; then
        echo "$root/$1.json"
    else
        echo "$root/target/$1.$mode.json"
    fi
}

# Stamps provenance (git SHA, dirty flag, UTC date) into a recorded
# JSON file. The benches themselves stay date-free — simulation code
# never reads the host clock — so the stamp lives here, at the edge.
stamp() { # stamp <file>
    local sha dirty date
    sha=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
    dirty=false
    git diff --quiet HEAD 2>/dev/null || dirty=true
    date=$(date -u +%Y-%m-%dT%H:%M:%SZ)
    python3 - "$1" "$sha" "$dirty" "$date" <<'EOF'
import json, sys
path, sha, dirty, date = sys.argv[1:5]
with open(path) as f:
    record = json.load(f)
record["recorded"] = {"git_sha": sha, "git_dirty": dirty == "true", "date_utc": date}
with open(path, "w") as f:
    json.dump(record, f, indent=2)
    f.write("\n")
EOF
}

record() { # record <bench> <BENCH_N> <required-key>
    local bench=$1 name=$2 key=$3 out
    out=$(out_path "$name")
    echo "==> recording $bench ($mode) -> $out"
    env "${env_flags[@]}" NCAP_BENCH_JSON="$out" \
        cargo bench -p ncap-bench --bench "$bench"
    # The record must be well-formed and carry its headline number.
    if command -v python3 >/dev/null 2>&1; then
        python3 -m json.tool "$out" >/dev/null ||
            { echo "bench_record: $out is not valid JSON" >&2; exit 1; }
        stamp "$out"
    fi
    grep -q "\"$key\"" "$out" ||
        { echo "bench_record: $out missing the $key record" >&2; exit 1; }
    echo "==> bench record ok ($out)"
}

record sim_throughput BENCH_6 queue_hold_64_backend_point
record attribution BENCH_7 breakdown_overhead_pct
record failover BENCH_8 prober_overhead_pct
record datapath BENCH_10 dispatch_hook_overhead_pct
