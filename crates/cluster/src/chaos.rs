//! Deterministic chaos campaigns: seeded scenario generation, the
//! end-of-run oracle, and an automatic shrinker.
//!
//! A chaos *scenario* is a complete description of one adversarial run:
//! a fleet topology, an offered load (possibly with a flash-crowd step),
//! per-backend failure events (crash/slow/hang with restarts), and
//! correlated failure-domain windows (rack-level partitions and
//! brownouts). [`ChaosScenario::generate`] draws all of it from a single
//! seed — same seed, same scenario, same simulation, byte-identical
//! verdict — and every generated scenario passes the same typed
//! validation as hand-written configs.
//!
//! The *oracle* ([`judge`]) asserts what must survive any composition of
//! the generated faults: the watchdog's invariants stay silent (the
//! scenario runs with [`WatchdogConfig::expecting_quiescence`], so
//! end-of-run leaks are violations too), the end-to-end ledger balances
//! (`issued == completed + rejected`, nothing lost, nothing in flight
//! after the drain window), and the LB ledger closes without orphans.
//!
//! When a seed fails, [`shrink`] greedily minimizes the scenario — drop
//! fault events, shrink domain memberships, strip the flash crowd and
//! coordinator — re-running the simulation after each candidate edit and
//! keeping it only if the failure persists. The result serializes to a
//! replayable scenario file ([`ChaosScenario::to_file_string`] /
//! [`ChaosScenario::from_file_str`]) consumed by `ncap chaos --scenario`.

use crate::config::{AppKind, ExperimentConfig};
use crate::policy::Policy;
use crate::runner::{run_experiment, run_experiments_on, ExperimentResult};
use crate::watchdog::WatchdogConfig;
use desim::{ConfigError, SimDuration, SimTime, SplitMix64};
use fleetsim::{
    CoordinatorConfig, DispatchPolicy, DomainFaultSpec, DomainSchedule, FailureMode,
    FailureSchedule, FailureSpec, FleetConfig,
};
use netsim::{DomainImpairment, RetxConfig};
use oskernel::Datapath;

/// Policies the generator draws from. Chaos exercises the recovery
/// machinery, not the power model, so one representative from each
/// family (static, ondemand+idle, NCAP) is enough.
const POLICY_POOL: [Policy; 3] = [Policy::Perf, Policy::OndIdle, Policy::NcapCons];

/// One complete chaos scenario. Plain data: convertible to an
/// [`ExperimentConfig`] (forward) and a scenario file (round-trip).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosScenario {
    /// The seed this scenario was generated from (also the simulation's
    /// master seed, so scenario and run randomness are pinned together).
    pub seed: u64,
    /// Power-management policy under test.
    pub policy: Policy,
    /// Backend count. Backend 0 is never targeted by generated faults so
    /// the fleet always retains one healthy server — without that floor,
    /// total-blackout scenarios fail quiescence vacuously.
    pub backends: usize,
    /// LB dispatch policy.
    pub dispatch: DispatchPolicy,
    /// Whether the fleet power coordinator (park/unpark) runs.
    pub coordinator: bool,
    /// Offered load, requests/second across all clients.
    pub load_rps: f64,
    /// Smooth Poisson arrivals instead of periodic bursts.
    pub poisson: bool,
    /// Warmup before the measured window.
    pub warmup: SimDuration,
    /// Measured window.
    pub measure: SimDuration,
    /// Tail drain: clients stop this long before the horizon so the
    /// quiescence oracle judges a settled system.
    pub drain: SimDuration,
    /// Per-backend failure events.
    pub crashes: Vec<FailureSpec>,
    /// Correlated failure-domain windows.
    pub domains: Vec<DomainFaultSpec>,
    /// Flash crowd: from this offset, clients switch to the new load.
    pub flash_crowd: Option<(SimDuration, f64)>,
    /// Replays the deliberately planted LB ledger bug
    /// ([`FleetConfig::ledger_skew_for_test`]). Never drawn by the
    /// generator; carried in scenario files so a shrunken repro of the
    /// planted bug replays exactly.
    pub ledger_skew: bool,
    /// Backend network datapath. The generator pairs it with the policy
    /// so every drawn scenario is valid: NCAP policies get kernel or
    /// offload, non-NCAP policies get kernel or bypass.
    pub datapath: Datapath,
    /// Busy-poll cores per backend ([`Datapath::Bypass`] only).
    pub poll_cores: u8,
}

impl ChaosScenario {
    /// Draws a complete scenario from `seed`. Deterministic and always
    /// valid: [`validate`](Self::validate) holds for every seed.
    #[must_use]
    pub fn generate(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0xC4A0_5CA0_5EED_0001);
        let backends = 2 + rng.next_below(4) as usize; // 2..=5
        let policy = POLICY_POOL[rng.next_below(POLICY_POOL.len() as u64) as usize];
        let dispatch = DispatchPolicy::ALL[rng.next_below(3) as usize];
        let coordinator = rng.next_below(4) == 0;
        let load_rps = rng.next_f64_in(6_000.0, 16_000.0);
        let poisson = rng.next_below(2) == 0;

        // Fault windows live in [4 ms, 30 ms]; load stops at 37 ms and
        // the drain runs to the 62 ms horizon, leaving every injected
        // fault ≥ 7 ms of faulted load plus ≥ 25 ms of recovery room.
        let warmup = SimDuration::from_ms(2);
        let measure = SimDuration::from_ms(60);
        let drain = SimDuration::from_ms(25);
        let window = |rng: &mut SplitMix64| {
            SimTime::ZERO + SimDuration::from_us(4_000 + rng.next_below(22_000))
        };

        // Crash/slow/hang events hit distinct backends drawn from
        // 1..backends (backend 0 stays clean, see field doc).
        let mut crash_pool: Vec<usize> = (1..backends).collect();
        let crash_count = (rng.next_below(3) as usize).min(crash_pool.len());
        let mut crashes = Vec::new();
        for _ in 0..crash_count {
            let pick = rng.next_below(crash_pool.len() as u64) as usize;
            let backend = crash_pool.swap_remove(pick);
            let mode = match rng.next_below(4) {
                0 | 1 => FailureMode::Stop,
                2 => FailureMode::Slow,
                _ => FailureMode::Hang,
            };
            crashes.push(FailureSpec {
                backend,
                at: window(&mut rng),
                mode,
                restart_after: Some(SimDuration::from_ms(2 + rng.next_below(5))),
            });
        }

        // Domain windows take disjoint member sets (also from
        // 1..backends), so two windows never share a backend and the
        // schedule's overlap validation holds by construction.
        let mut domain_pool: Vec<usize> = (1..backends).collect();
        let domain_count = (rng.next_below(3) as usize).min(domain_pool.len());
        let mut domains = Vec::new();
        for _ in 0..domain_count {
            if domain_pool.is_empty() {
                break;
            }
            let width = (1 + rng.next_below(2) as usize).min(domain_pool.len());
            let mut members = Vec::new();
            for _ in 0..width {
                let pick = rng.next_below(domain_pool.len() as u64) as usize;
                members.push(domain_pool.swap_remove(pick));
            }
            members.sort_unstable();
            let impairment = if rng.next_below(2) == 0 {
                DomainImpairment::Partition
            } else {
                DomainImpairment::Brownout {
                    loss: rng.next_f64_in(0.05, 0.45),
                    jitter: SimDuration::from_us(rng.next_below(200)),
                }
            };
            domains.push(DomainFaultSpec {
                backends: members,
                at: window(&mut rng),
                duration: SimDuration::from_ms(2 + rng.next_below(4)),
                impairment,
            });
        }

        let flash_crowd = (rng.next_below(2) == 0).then(|| {
            let at = SimDuration::from_us(15_000 + rng.next_below(10_000));
            (at, load_rps * 1.4)
        });

        // Datapath draw rides at the end so it never perturbs the fault
        // schedule a pre-datapath seed produced. Half the campaign keeps
        // the kernel stack; the rest takes whichever rival stack the
        // drawn policy permits (bypass forbids NCAP, offload demands
        // NCAP hardware).
        let datapath = if rng.next_below(2) == 0 {
            Datapath::Kernel
        } else if policy.uses_ncap_hardware() {
            Datapath::Offload
        } else {
            Datapath::Bypass
        };
        let poll_cores = 1 + rng.next_below(2) as u8; // 1..=2 of 4 cores

        ChaosScenario {
            seed,
            policy,
            backends,
            dispatch,
            coordinator,
            load_rps,
            poisson,
            warmup,
            measure,
            drain,
            crashes,
            domains,
            flash_crowd,
            ledger_skew: false,
            datapath,
            poll_cores,
        }
    }

    /// Number of discrete fault events (crashes + domain windows) — the
    /// quantity the shrinker minimizes.
    #[must_use]
    pub fn fault_events(&self) -> usize {
        self.crashes.len() + self.domains.len()
    }

    /// Builds the runnable experiment. The watchdog collects (a chaos
    /// failure is a verdict, not a panic) and demands quiescence; the
    /// retransmission layer is armed with a fast, patient profile so
    /// recovery — not timer exhaustion — decides the outcome.
    #[must_use]
    pub fn to_config(&self) -> ExperimentConfig {
        let mut fleet =
            FleetConfig::new(self.backends, self.dispatch).with_faults(FailureSchedule {
                specs: self.crashes.clone(),
                slow_factor: 4.0,
            });
        fleet.domains = DomainSchedule {
            domains: self.domains.clone(),
            seed: self.seed ^ 0xD0_3A17,
        };
        if self.coordinator {
            fleet = fleet.with_coordinator(CoordinatorConfig::new(12_000.0).with_min_active(1));
        }
        if self.ledger_skew {
            fleet = fleet.with_ledger_skew_for_test();
        }
        let mut cfg = ExperimentConfig::new(AppKind::Memcached, self.policy, self.load_rps)
            .with_durations(self.warmup, self.measure)
            .with_drain(self.drain)
            .with_watchdog(
                WatchdogConfig::default()
                    .collecting()
                    .expecting_quiescence(),
            )
            .with_datapath(self.datapath)
            .with_poll_cores(self.poll_cores)
            .with_fleet(fleet);
        cfg.seed = self.seed ^ 0x4E43_4150;
        cfg.burst_size = 8;
        cfg.poisson = self.poisson;
        cfg.faults.retx = RetxConfig {
            enabled: true,
            rto_initial: SimDuration::from_us(800),
            rto_max: SimDuration::from_ms(6),
            max_retries: 32,
        };
        if let Some((at, rps)) = self.flash_crowd {
            cfg = cfg.with_load_step(at, rps);
        }
        cfg
    }

    /// Validates the scenario by validating the experiment it builds.
    ///
    /// # Errors
    ///
    /// Returns the embedded config's [`ConfigError`] naming the first
    /// offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.to_config().validate()
    }

    /// Serializes to the plain `key=value` scenario-file format.
    #[must_use]
    pub fn to_file_string(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        s.push_str("# ncap chaos scenario (replay: ncap chaos --scenario <this file>)\n");
        let _ = writeln!(s, "seed={}", self.seed);
        let _ = writeln!(s, "policy={}", self.policy.name());
        let _ = writeln!(s, "backends={}", self.backends);
        let _ = writeln!(s, "dispatch={}", self.dispatch.name());
        let _ = writeln!(s, "datapath={}", self.datapath.name());
        let _ = writeln!(s, "poll_cores={}", self.poll_cores);
        let _ = writeln!(s, "coordinator={}", u8::from(self.coordinator));
        let _ = writeln!(s, "load_rps={}", self.load_rps);
        let _ = writeln!(s, "poisson={}", u8::from(self.poisson));
        let _ = writeln!(s, "warmup_ns={}", self.warmup.as_nanos());
        let _ = writeln!(s, "measure_ns={}", self.measure.as_nanos());
        let _ = writeln!(s, "drain_ns={}", self.drain.as_nanos());
        if let Some((at, rps)) = self.flash_crowd {
            let _ = writeln!(s, "flash={},{}", at.as_nanos(), rps);
        }
        for c in &self.crashes {
            let restart = c
                .restart_after
                .map_or_else(|| "never".to_string(), |d| d.as_nanos().to_string());
            let _ = writeln!(
                s,
                "crash={},{},{},{restart}",
                c.backend,
                c.mode.name(),
                c.at.as_nanos()
            );
        }
        for d in &self.domains {
            let members = d
                .backends
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("+");
            match d.impairment {
                DomainImpairment::Partition => {
                    let _ = writeln!(
                        s,
                        "domain={},{},partition,{members}",
                        d.at.as_nanos(),
                        d.duration.as_nanos()
                    );
                }
                DomainImpairment::Brownout { loss, jitter } => {
                    let _ = writeln!(
                        s,
                        "domain={},{},brownout,{loss},{},{members}",
                        d.at.as_nanos(),
                        d.duration.as_nanos(),
                        jitter.as_nanos()
                    );
                }
            }
        }
        if self.ledger_skew {
            s.push_str("ledger_skew=1\n");
        }
        s
    }

    /// Parses the scenario-file format written by
    /// [`to_file_string`](Self::to_file_string).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending line/field; the
    /// parsed scenario is also re-validated end to end.
    pub fn from_file_str(text: &str) -> Result<Self, ConfigError> {
        let mut sc = ChaosScenario {
            seed: 0,
            policy: Policy::Perf,
            backends: 0,
            dispatch: DispatchPolicy::RoundRobin,
            coordinator: false,
            load_rps: 0.0,
            poisson: false,
            warmup: SimDuration::ZERO,
            measure: SimDuration::ZERO,
            drain: SimDuration::ZERO,
            crashes: Vec::new(),
            domains: Vec::new(),
            flash_crowd: None,
            ledger_skew: false,
            datapath: Datapath::Kernel,
            poll_cores: 1,
        };
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                ConfigError::new(
                    "scenario",
                    format!("line {}: expected key=value, got {line:?}", lineno + 1),
                )
            })?;
            let bad = |field: &'static str, what: &str| {
                ConfigError::new(field, format!("line {}: {what}: {value:?}", lineno + 1))
            };
            match key {
                "seed" => {
                    sc.seed = value
                        .parse()
                        .map_err(|_| bad("scenario.seed", "not a u64"))?
                }
                "policy" => {
                    sc.policy = Policy::ALL
                        .into_iter()
                        .find(|p| p.name() == value)
                        .ok_or_else(|| bad("scenario.policy", "unknown policy"))?;
                }
                "backends" => {
                    sc.backends = value
                        .parse()
                        .map_err(|_| bad("scenario.backends", "not a count"))?;
                }
                "dispatch" => {
                    sc.dispatch = DispatchPolicy::parse(value)
                        .ok_or_else(|| bad("scenario.dispatch", "unknown dispatch policy"))?;
                }
                "coordinator" => sc.coordinator = value == "1",
                "datapath" => {
                    sc.datapath = Datapath::parse(value)
                        .map_err(|_| bad("scenario.datapath", "unknown datapath"))?;
                }
                "poll_cores" => {
                    sc.poll_cores = value
                        .parse()
                        .map_err(|_| bad("scenario.poll_cores", "not a count"))?;
                }
                "poisson" => sc.poisson = value == "1",
                "ledger_skew" => sc.ledger_skew = value == "1",
                "load_rps" => {
                    sc.load_rps = value
                        .parse()
                        .map_err(|_| bad("scenario.load_rps", "not a number"))?;
                }
                "warmup_ns" => {
                    sc.warmup = SimDuration::from_nanos(
                        value
                            .parse()
                            .map_err(|_| bad("scenario.warmup_ns", "not nanos"))?,
                    );
                }
                "measure_ns" => {
                    sc.measure = SimDuration::from_nanos(
                        value
                            .parse()
                            .map_err(|_| bad("scenario.measure_ns", "not nanos"))?,
                    );
                }
                "drain_ns" => {
                    sc.drain = SimDuration::from_nanos(
                        value
                            .parse()
                            .map_err(|_| bad("scenario.drain_ns", "not nanos"))?,
                    );
                }
                "flash" => {
                    let bad = |what| bad("scenario.flash", what);
                    let (at, rps) = value.split_once(',').ok_or_else(|| bad("want at_ns,rps"))?;
                    sc.flash_crowd = Some((
                        SimDuration::from_nanos(at.parse().map_err(|_| bad("bad offset"))?),
                        rps.parse().map_err(|_| bad("bad load"))?,
                    ));
                }
                "crash" => {
                    let bad = |what| bad("scenario.crash", what);
                    let parts: Vec<&str> = value.split(',').collect();
                    let [backend, mode, at, restart] = parts.as_slice() else {
                        return Err(bad("want backend,mode,at_ns,restart_ns|never"));
                    };
                    sc.crashes.push(FailureSpec {
                        backend: backend.parse().map_err(|_| bad("bad backend index"))?,
                        mode: FailureMode::parse(mode).ok_or_else(|| bad("unknown mode"))?,
                        at: SimTime::from_nanos(at.parse().map_err(|_| bad("bad instant"))?),
                        restart_after: if *restart == "never" {
                            None
                        } else {
                            Some(SimDuration::from_nanos(
                                restart.parse().map_err(|_| bad("bad restart delay"))?,
                            ))
                        },
                    });
                }
                "domain" => {
                    let bad = |what| bad("scenario.domain", what);
                    let parts: Vec<&str> = value.split(',').collect();
                    let (impairment, members) = match parts.as_slice() {
                        [_, _, "partition", members] => (DomainImpairment::Partition, *members),
                        [_, _, "brownout", loss, jitter, members] => (
                            DomainImpairment::Brownout {
                                loss: loss.parse().map_err(|_| bad("bad loss"))?,
                                jitter: SimDuration::from_nanos(
                                    jitter.parse().map_err(|_| bad("bad jitter"))?,
                                ),
                            },
                            *members,
                        ),
                        _ => return Err(bad("want at_ns,dur_ns,partition|brownout,…,members")),
                    };
                    let backends = members
                        .split('+')
                        .map(|m| m.parse().map_err(|_| bad("bad member index")))
                        .collect::<Result<Vec<usize>, _>>()?;
                    sc.domains.push(DomainFaultSpec {
                        backends,
                        at: SimTime::from_nanos(parts[0].parse().map_err(|_| bad("bad instant"))?),
                        duration: SimDuration::from_nanos(
                            parts[1].parse().map_err(|_| bad("bad duration"))?,
                        ),
                        impairment,
                    });
                }
                _ => {
                    return Err(ConfigError::new(
                        "scenario",
                        format!("line {}: unknown key {key:?}", lineno + 1),
                    ));
                }
            }
        }
        sc.validate()?;
        Ok(sc)
    }
}

/// The chaos oracle: everything that must hold at the end of any
/// scenario run, regardless of which faults were composed. Returns one
/// human-readable line per broken property; empty means the seed passed.
#[must_use]
pub fn judge(result: &ExperimentResult) -> Vec<String> {
    let mut failures: Vec<String> = result
        .invariant_violations
        .iter()
        .map(ToString::to_string)
        .collect();
    let f = &result.faults;
    let resolved = f.completed_total + f.rejected_total + f.lost_requests + f.in_flight;
    if f.issued_total != resolved {
        failures.push(format!(
            "end-to-end ledger: issued {} != completed {} + rejected {} + lost {} + in_flight {}",
            f.issued_total, f.completed_total, f.rejected_total, f.lost_requests, f.in_flight
        ));
    }
    if let Some(fleet) = &result.fleet {
        let closed = fleet.requests_completed + fleet.requests_rejected + fleet.outstanding;
        if fleet.requests_opened != closed {
            failures.push(format!(
                "LB ledger: opened {} != completed {} + rejected {} + outstanding {}",
                fleet.requests_opened,
                fleet.requests_completed,
                fleet.requests_rejected,
                fleet.outstanding
            ));
        }
        if fleet.unmatched_responses > 0 {
            failures.push(format!(
                "{} response(s) matched no conntrack entry",
                fleet.unmatched_responses
            ));
        }
    }
    failures
}

/// One seed's campaign outcome.
#[derive(Debug, Clone)]
pub struct SeedVerdict {
    /// The scenario that ran.
    pub scenario: ChaosScenario,
    /// Oracle failures (empty = passed).
    pub failures: Vec<String>,
    /// Requests completed, for the summary table.
    pub completed: u64,
    /// Failovers the LB performed.
    pub failovers: u64,
}

impl SeedVerdict {
    /// Whether the seed passed the oracle.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs the scenarios for `seeds` (in parallel across `threads`) and
/// judges each. Verdicts return in seed order and are byte-identical
/// whatever `threads` is — each run is a pure function of its scenario.
#[must_use]
pub fn run_campaign(seeds: &[u64], threads: usize) -> Vec<SeedVerdict> {
    let scenarios: Vec<ChaosScenario> = seeds.iter().map(|&s| ChaosScenario::generate(s)).collect();
    run_scenarios(&scenarios, threads)
}

/// [`run_campaign`] over explicit (possibly hand-written or shrunken)
/// scenarios.
#[must_use]
pub fn run_scenarios(scenarios: &[ChaosScenario], threads: usize) -> Vec<SeedVerdict> {
    let configs: Vec<ExperimentConfig> = scenarios.iter().map(ChaosScenario::to_config).collect();
    let results = run_experiments_on(&configs, threads.max(1));
    scenarios
        .iter()
        .zip(&results)
        .map(|(scenario, result)| SeedVerdict {
            scenario: scenario.clone(),
            failures: judge(result),
            completed: result.completed,
            failovers: result.fleet.as_ref().map_or(0, |f| f.failovers),
        })
        .collect()
}

/// Upper bound on shrink re-runs; generated scenarios hold ≤ 4 fault
/// events plus a handful of knobs, so greedy passes converge far below
/// this. The cap only guards hand-written monsters.
const SHRINK_RUN_BUDGET: u32 = 96;

/// Greedily minimizes a failing scenario: repeatedly drop fault events,
/// shrink domain memberships, and strip knobs (flash crowd, coordinator,
/// Poisson arrivals), keeping each edit only if the oracle still fails.
/// Deterministic; returns the smallest still-failing scenario found and
/// the number of verification runs spent.
#[must_use]
pub fn shrink(scenario: &ChaosScenario) -> (ChaosScenario, u32) {
    let runs = std::cell::Cell::new(0u32);
    let still_fails = |cand: &ChaosScenario| {
        if runs.get() >= SHRINK_RUN_BUDGET {
            return false;
        }
        runs.set(runs.get() + 1);
        !judge(&run_experiment(&cand.to_config())).is_empty()
    };
    let mut best = scenario.clone();
    loop {
        let mut improved = false;

        // Pass 1: drop whole fault events, highest index first so
        // removals do not disturb the indices still to be tried.
        for i in (0..best.crashes.len()).rev() {
            let mut cand = best.clone();
            cand.crashes.remove(i);
            if still_fails(&cand) {
                best = cand;
                improved = true;
            }
        }
        for i in (0..best.domains.len()).rev() {
            let mut cand = best.clone();
            cand.domains.remove(i);
            if still_fails(&cand) {
                best = cand;
                improved = true;
            }
        }

        // Pass 2: shrink surviving domain memberships one backend at a
        // time (a window needs at least one member to stay valid).
        for d in 0..best.domains.len() {
            while best.domains[d].backends.len() > 1 {
                let mut cand = best.clone();
                cand.domains[d].backends.pop();
                if still_fails(&cand) {
                    best = cand;
                    improved = true;
                } else {
                    break;
                }
            }
        }

        // Pass 3: strip scenario knobs.
        if best.flash_crowd.is_some() {
            let mut cand = best.clone();
            cand.flash_crowd = None;
            if still_fails(&cand) {
                best = cand;
                improved = true;
            }
        }
        if best.coordinator {
            let mut cand = best.clone();
            cand.coordinator = false;
            if still_fails(&cand) {
                best = cand;
                improved = true;
            }
        }
        if best.poisson {
            let mut cand = best.clone();
            cand.poisson = false;
            if still_fails(&cand) {
                best = cand;
                improved = true;
            }
        }
        if best.datapath != Datapath::Kernel {
            let mut cand = best.clone();
            cand.datapath = Datapath::Kernel;
            if still_fails(&cand) {
                best = cand;
                improved = true;
            }
        }

        if !improved || runs.get() >= SHRINK_RUN_BUDGET {
            return (best, runs.get());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_generated_scenario_validates() {
        for seed in 0..200 {
            let sc = ChaosScenario::generate(seed);
            sc.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(sc.backends >= 2);
            assert!(
                sc.crashes.iter().all(|c| c.backend != 0)
                    && sc.domains.iter().all(|d| !d.backends.contains(&0)),
                "seed {seed}: backend 0 must stay clean"
            );
        }
    }

    #[test]
    fn campaign_seed_space_covers_every_datapath() {
        let mut seen = [false; 3];
        for seed in 0..200 {
            let sc = ChaosScenario::generate(seed);
            match sc.datapath {
                Datapath::Kernel => seen[0] = true,
                Datapath::Bypass => seen[1] = true,
                Datapath::Offload => seen[2] = true,
            }
            // The draw is policy-aware, so every scenario stays valid.
            if sc.datapath == Datapath::Bypass {
                assert!(!sc.policy.is_ncap(), "seed {seed}");
            }
            if sc.datapath == Datapath::Offload {
                assert!(sc.policy.uses_ncap_hardware(), "seed {seed}");
            }
        }
        assert_eq!(
            seen, [true; 3],
            "200 seeds must cover kernel/bypass/offload"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(ChaosScenario::generate(7), ChaosScenario::generate(7));
        // Different seeds land on different scenarios (spot check).
        assert_ne!(ChaosScenario::generate(1), ChaosScenario::generate(2));
    }

    #[test]
    fn scenario_file_round_trips() {
        for seed in [0, 3, 17, 42] {
            let sc = ChaosScenario::generate(seed);
            let text = sc.to_file_string();
            let back = ChaosScenario::from_file_str(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
            assert_eq!(sc, back, "seed {seed} file:\n{text}");
        }
        // The ledger-skew flag survives the trip too.
        let mut sc = ChaosScenario::generate(5);
        sc.ledger_skew = true;
        let back = ChaosScenario::from_file_str(&sc.to_file_string()).expect("parses");
        assert!(back.ledger_skew);
    }

    #[test]
    fn scenario_parse_rejects_garbage_with_typed_errors() {
        for (text, want) in [
            ("nonsense", "scenario"),
            ("policy=warp9", "scenario.policy"),
            ("crash=0,stop,oops,never", "scenario.crash"),
            ("domain=1,2,tsunami,1", "scenario.domain"),
            ("sneed=4", "scenario"),
        ] {
            let err = ChaosScenario::from_file_str(text).expect_err(text);
            assert_eq!(err.field, want, "{text}: {err}");
        }
    }
}
