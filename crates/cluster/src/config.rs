//! Experiment configuration.

use crate::policy::Policy;
use crate::trace::TraceConfig;
use crate::watchdog::WatchdogConfig;
use desim::{ConfigError, SimDuration};
use fleetsim::FleetConfig;
use netsim::FaultConfig;
use oskernel::{Datapath, OverloadConfig};

/// Which OLDI application the server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// The IO-intensive web server (paper's Apache).
    Apache,
    /// The memory-bound key-value store (paper's Memcached).
    Memcached,
}

impl AppKind {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Apache => "apache",
            AppKind::Memcached => "memcached",
        }
    }

    /// The paper's three evaluated load levels (requests/second):
    /// 24/45/66 K for Apache, 35/127/138 K for Memcached (§6).
    #[must_use]
    pub fn paper_loads(self) -> [f64; 3] {
        match self {
            AppKind::Apache => [24_000.0, 45_000.0, 66_000.0],
            AppKind::Memcached => [35_000.0, 127_000.0, 138_000.0],
        }
    }
}

impl core::fmt::Display for AppKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Non-latency-critical side traffic for the context-awareness ablation
/// (paper §4.1's motivation: update requests and off-line analytics
/// streams must not trigger performance boosts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackgroundTraffic {
    /// `true` for bulk data frames (no request token); `false` for HTTP
    /// `PUT` update requests.
    pub bulk: bool,
    /// Frames (or updates) per second.
    pub rate: f64,
    /// Frames per burst.
    pub burst_size: u32,
}

/// One experiment: app × policy × load (+ knobs).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Server application.
    pub app: AppKind,
    /// Power-management policy.
    pub policy: Policy,
    /// Total offered load across all clients, requests/second.
    pub load_rps: f64,
    /// Number of client nodes (paper: 3).
    pub clients: usize,
    /// Requests per client burst.
    pub burst_size: u32,
    /// Warmup discarded from measurements.
    pub warmup: SimDuration,
    /// Measured interval after warmup.
    pub measure: SimDuration,
    /// Drain window at the tail of the run: clients stop generating load
    /// this long before the horizon so in-flight work can settle. ZERO
    /// (the default) keeps clients generating to the end — byte-identical
    /// to builds without the knob. Chaos scenarios pair a non-zero drain
    /// with [`WatchdogConfig::expect_quiescence`].
    pub drain: SimDuration,
    /// Master seed; every derived RNG hangs off it.
    pub seed: u64,
    /// Ondemand invocation period (paper default 10 ms; Figure 2 sweeps
    /// it down to 1 ms).
    pub ondemand_period: SimDuration,
    /// Optional NCAP config override (ablations); `None` uses the
    /// policy's own.
    pub ncap_override: Option<ncap::NcapConfig>,
    /// Optional bandwidth/frequency tracing.
    pub trace: Option<TraceConfig>,
    /// Optional structured event tracing: install a `simtrace` tracer
    /// for the run and attach the collected [`simtrace::TraceData`] to
    /// the result (Perfetto/CSV export).
    pub event_trace: Option<simtrace::TracerConfig>,
    /// Optional background traffic from an extra client.
    pub background: Option<BackgroundTraffic>,
    /// Enable the paper's §7 per-core boost extension (multi-queue NICs).
    pub per_core_boost: bool,
    /// Use the ladder cpuidle governor instead of menu (paper §2.1
    /// describes both; menu is the Linux default the paper evaluates).
    pub use_ladder: bool,
    /// Optional load step: from this offset into the run, clients switch
    /// to the new total offered load (requests/second).
    pub load_step: Option<(SimDuration, f64)>,
    /// Optional TCP offload engine on the server NIC (§7 discussion).
    pub toe: Option<nicsim::ToeConfig>,
    /// RSS receive queues on the server NIC (1 = the paper's evaluated
    /// single-queue 82574; >1 activates the §7 multi-queue extension).
    pub nic_queues: usize,
    /// Stage-level request tracing on the server: every Nth request id.
    pub request_trace_every: Option<u64>,
    /// Smooth Poisson arrivals instead of periodic bursts (burstiness
    /// ablation; same offered rate).
    pub poisson: bool,
    /// Network fault injection (lossy/jittery links) and the end-to-end
    /// retransmission layer. [`FaultConfig::none`] (the default) is inert:
    /// the fabric stays lossless and results are bit-identical to builds
    /// without the fault subsystem.
    pub faults: FaultConfig,
    /// Overrides the server NIC RX-ring depth (descriptor count). `None`
    /// keeps the 82574-like default; small values force RX-overrun drops
    /// under bursts (the overflow-recovery scenario).
    pub rx_ring_override: Option<usize>,
    /// Server-side overload protection: queue capacities and the
    /// admission/shedding policy. [`OverloadConfig::off`] (the default)
    /// is inert and byte-identical to builds without the subsystem.
    pub overload: OverloadConfig,
    /// Optional end-to-end deadline clients stamp on every request
    /// (meaningful under [`oskernel::ShedPolicy::Deadline`]).
    pub deadline: Option<SimDuration>,
    /// Runtime invariant watchdog (period and violation handling). The
    /// runner always installs it; [`WatchdogConfig::default`] fails the
    /// run on any violation.
    pub watchdog: WatchdogConfig,
    /// Optional fleet topology: front `FleetConfig::backends` servers
    /// with an L4 load balancer (clients address the VIP) and, when the
    /// embedded coordinator is set, park/unpark backends with load.
    pub fleet: Option<FleetConfig>,
    /// Event-queue backend for the run. The default calendar queue and
    /// the reference `BinaryHeap` deliver identical event streams, so
    /// results are byte-identical either way; the knob exists for
    /// differential tests and benchmark baselines.
    pub queue_backend: desim::QueueBackend,
    /// Collect the full-population per-stage latency breakdown
    /// ([`ExperimentResult::breakdown`](crate::runner::ExperimentResult)).
    /// The path stamps are written regardless, so on vs off is
    /// bit-identical on simulated results; off only skips the
    /// client-side accumulation.
    pub breakdown: bool,
    /// Percentile the breakdown's tail view conditions on.
    pub breakdown_tail: f64,
    /// Enable the simulator's wall-clock self-profiler for this run
    /// ([`ExperimentResult::self_profile`](crate::runner::ExperimentResult)).
    /// Host-dependent readings, outside the determinism contract; never
    /// changes a simulated result.
    pub profile: bool,
    /// Which network datapath the servers run: the interrupt-driven
    /// kernel stack (default, observer-effect-free), DPDK-style busy-poll
    /// bypass, or the kernel stack with the NCAP engine offloaded to the
    /// NIC.
    pub datapath: Datapath,
    /// Busy-poll cores per server ([`Datapath::Bypass`] only).
    pub poll_cores: u8,
}

impl ExperimentConfig {
    /// A standard paper-setup experiment: 3 clients, 200-request bursts
    /// (§5: "e.g., 200 requests per burst"), 100 ms warmup, 400 ms
    /// measurement.
    #[must_use]
    pub fn new(app: AppKind, policy: Policy, load_rps: f64) -> Self {
        ExperimentConfig {
            app,
            policy,
            load_rps,
            clients: 3,
            burst_size: 200,
            warmup: SimDuration::from_ms(100),
            measure: SimDuration::from_ms(400),
            drain: SimDuration::ZERO,
            seed: DEFAULT_SEED,
            ondemand_period: SimDuration::from_ms(10),
            ncap_override: None,
            trace: None,
            event_trace: None,
            background: None,
            per_core_boost: false,
            use_ladder: false,
            load_step: None,
            toe: None,
            nic_queues: 1,
            request_trace_every: None,
            poisson: false,
            faults: FaultConfig::none(),
            rx_ring_override: None,
            overload: OverloadConfig::off(),
            deadline: None,
            watchdog: WatchdogConfig::default(),
            fleet: None,
            queue_backend: desim::QueueBackend::default(),
            breakdown: true,
            breakdown_tail: 99.0,
            profile: false,
            datapath: Datapath::Kernel,
            poll_cores: 1,
        }
    }

    /// Selects the network datapath (builder style).
    #[must_use]
    pub fn with_datapath(mut self, datapath: Datapath) -> Self {
        self.datapath = datapath;
        self
    }

    /// Sets the busy-poll core count for [`Datapath::Bypass`] (builder
    /// style; default 1).
    #[must_use]
    pub fn with_poll_cores(mut self, n: u8) -> Self {
        self.poll_cores = n;
        self
    }

    /// Enables or disables per-stage breakdown collection (builder
    /// style; on by default).
    #[must_use]
    pub fn with_breakdown(mut self, enabled: bool) -> Self {
        self.breakdown = enabled;
        self
    }

    /// Sets the percentile the breakdown's tail view conditions on
    /// (builder style; 99.0 by default).
    #[must_use]
    pub fn with_breakdown_tail(mut self, percentile: f64) -> Self {
        self.breakdown_tail = percentile;
        self
    }

    /// Turns on the wall-clock self-profiler for this run (builder
    /// style; off by default).
    #[must_use]
    pub fn with_profile(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Overrides warmup and measurement durations (builder style).
    #[must_use]
    pub fn with_durations(mut self, warmup: SimDuration, measure: SimDuration) -> Self {
        self.warmup = warmup;
        self.measure = measure;
        self
    }

    /// Overrides the seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the ondemand invocation period (builder style).
    #[must_use]
    pub fn with_ondemand_period(mut self, period: SimDuration) -> Self {
        self.ondemand_period = period;
        self
    }

    /// Overrides the NCAP configuration (builder style).
    #[must_use]
    pub fn with_ncap_override(mut self, cfg: ncap::NcapConfig) -> Self {
        self.ncap_override = Some(cfg);
        self
    }

    /// Enables tracing (builder style).
    #[must_use]
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Enables structured event tracing (builder style).
    #[must_use]
    pub fn with_event_trace(mut self, config: simtrace::TracerConfig) -> Self {
        self.event_trace = Some(config);
        self
    }

    /// Adds background traffic (builder style).
    #[must_use]
    pub fn with_background(mut self, bg: BackgroundTraffic) -> Self {
        self.background = Some(bg);
        self
    }

    /// Enables per-core boost (builder style, §7 extension).
    #[must_use]
    pub fn with_per_core_boost(mut self) -> Self {
        self.per_core_boost = true;
        self
    }

    /// Swaps the cpuidle governor to ladder (builder style).
    #[must_use]
    pub fn with_ladder(mut self) -> Self {
        self.use_ladder = true;
        self
    }

    /// Schedules a sudden load change at `at` into the run (builder
    /// style) — the paper's §1 motivating scenario.
    #[must_use]
    pub fn with_load_step(mut self, at: SimDuration, new_load_rps: f64) -> Self {
        self.load_step = Some((at, new_load_rps));
        self
    }

    /// Puts a TCP offload engine on the server NIC (builder style, §7).
    #[must_use]
    pub fn with_toe(mut self, toe: nicsim::ToeConfig) -> Self {
        self.toe = Some(toe);
        self
    }

    /// Gives the server NIC `queues` RSS queues (builder style, §7;
    /// [`validate`](Self::validate) rejects zero).
    #[must_use]
    pub fn with_nic_queues(mut self, queues: usize) -> Self {
        self.nic_queues = queues;
        self
    }

    /// Enables server-side request-stage tracing for every `n`th request
    /// (builder style; [`validate`](Self::validate) rejects zero).
    #[must_use]
    pub fn with_request_tracing(mut self, n: u64) -> Self {
        self.request_trace_every = Some(n);
        self
    }

    /// Injects network faults (builder style). A config with
    /// [`RetxConfig`](netsim::RetxConfig) enabled also turns on the
    /// client retransmission timers and the server's duplicate
    /// suppression.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the server NIC's RX-ring depth (builder style;
    /// [`validate`](Self::validate) rejects zero).
    #[must_use]
    pub fn with_rx_ring(mut self, descriptors: usize) -> Self {
        self.rx_ring_override = Some(descriptors);
        self
    }

    /// Switches clients to smooth Poisson arrivals (builder style).
    #[must_use]
    pub fn with_poisson(mut self) -> Self {
        self.poisson = true;
        self
    }

    /// Configures server-side overload protection (builder style).
    #[must_use]
    pub fn with_overload(mut self, overload: OverloadConfig) -> Self {
        self.overload = overload;
        self
    }

    /// Stamps every client request with an end-to-end deadline (builder
    /// style).
    #[must_use]
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Overrides the watchdog configuration (builder style).
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Sets the tail drain window (builder style): clients stop
    /// generating this long before the horizon.
    #[must_use]
    pub fn with_drain(mut self, drain: SimDuration) -> Self {
        self.drain = drain;
        self
    }

    /// Fronts the servers with an L4 load balancer (builder style): the
    /// run gets `fleet.backends` server nodes behind one VIP, and
    /// clients address the VIP instead of a server.
    #[must_use]
    pub fn with_fleet(mut self, fleet: FleetConfig) -> Self {
        self.fleet = Some(fleet);
        self
    }

    /// Selects the event-queue backend (builder style). Results do not
    /// depend on the choice — `tests/cluster_integration.rs` pins a
    /// 64-backend fleet run byte-identical across backends.
    #[must_use]
    pub fn with_queue_backend(mut self, backend: desim::QueueBackend) -> Self {
        self.queue_backend = backend;
        self
    }

    /// Per-client burst period that realizes `load_rps` across all
    /// clients. Callers should [`validate`](Self::validate) first; with a
    /// non-positive load the result is meaningless (but does not panic).
    #[must_use]
    pub fn burst_period(&self) -> SimDuration {
        let per_client = self.load_rps / (self.clients.max(1)) as f64;
        SimDuration::from_secs_f64(f64::from(self.burst_size) / per_client.max(f64::MIN_POSITIVE))
    }

    /// End of the simulated interval (warmup + measurement).
    #[must_use]
    pub fn horizon(&self) -> SimDuration {
        self.warmup + self.measure
    }

    /// Validates the experiment configuration, including the embedded
    /// [`FaultConfig`].
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.load_rps <= 0.0 || !self.load_rps.is_finite() {
            return Err(ConfigError::new(
                "load_rps",
                format!(
                    "offered load must be positive and finite, got {}",
                    self.load_rps
                ),
            ));
        }
        if self.clients == 0 {
            return Err(ConfigError::new("clients", "at least one client required"));
        }
        if self.burst_size == 0 {
            return Err(ConfigError::new(
                "burst_size",
                "bursts must carry at least one request",
            ));
        }
        if self.nic_queues == 0 {
            return Err(ConfigError::new(
                "nic_queues",
                "a NIC needs at least one queue",
            ));
        }
        if self.request_trace_every == Some(0) {
            return Err(ConfigError::new(
                "request_trace_every",
                "sampling interval must be positive",
            ));
        }
        if self.rx_ring_override == Some(0) {
            return Err(ConfigError::new(
                "rx_ring_override",
                "an RX ring needs at least one descriptor",
            ));
        }
        if self.drain >= self.horizon() {
            return Err(ConfigError::new(
                "drain",
                format!(
                    "drain window {} must leave room for load before the horizon {}",
                    self.drain,
                    self.horizon()
                ),
            ));
        }
        match self.datapath {
            Datapath::Bypass => {
                if self.policy.is_ncap() {
                    return Err(ConfigError::new(
                        "datapath",
                        format!(
                            "policy {} needs the interrupt path; bypass has none \
                             (use --datapath offload for on-NIC NCAP)",
                            self.policy
                        ),
                    ));
                }
                // The runner builds 4-core servers (Table 1); at least
                // one core must stay on the application side.
                if self.poll_cores == 0 || self.poll_cores >= 4 {
                    return Err(ConfigError::new(
                        "poll_cores",
                        format!(
                            "busy-poll cores must be in 1..4 on a 4-core server, got {}",
                            self.poll_cores
                        ),
                    ));
                }
            }
            Datapath::Offload => {
                if !self.policy.uses_ncap_hardware() {
                    return Err(ConfigError::new(
                        "datapath",
                        format!(
                            "offload runs the NCAP engine on the NIC: policy {} has no \
                             NCAP hardware to offload",
                            self.policy
                        ),
                    ));
                }
            }
            Datapath::Kernel => {}
        }
        self.faults.validate()?;
        self.overload.validate()?;
        if let Some(fleet) = &self.fleet {
            fleet.validate()?;
        }
        Ok(())
    }
}

/// The default master seed: "NCAP" in ASCII.
pub const DEFAULT_SEED: u64 = 0x4E43_4150;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_period_matches_load() {
        let cfg = ExperimentConfig::new(AppKind::Apache, Policy::Perf, 24_000.0);
        // 3 clients × 200 req / period = 24 K rps → period = 25 ms.
        assert_eq!(cfg.burst_period(), SimDuration::from_ms(25));
        // Paper §5: periods range from ~1.3 to ~20 ms depending on load;
        // with 200-request bursts our loads land in 4.3–25 ms.
        for app in [AppKind::Apache, AppKind::Memcached] {
            for load in app.paper_loads() {
                let p = ExperimentConfig::new(app, Policy::Perf, load).burst_period();
                assert!(p >= SimDuration::from_ms(1), "{app} {load}: {p}");
                assert!(p <= SimDuration::from_ms(25), "{app} {load}: {p}");
            }
        }
    }

    #[test]
    fn horizon_sums() {
        let cfg = ExperimentConfig::new(AppKind::Apache, Policy::Perf, 10_000.0)
            .with_durations(SimDuration::from_ms(10), SimDuration::from_ms(30));
        assert_eq!(cfg.horizon(), SimDuration::from_ms(40));
    }

    #[test]
    fn paper_load_levels() {
        assert_eq!(AppKind::Apache.paper_loads()[2], 66_000.0);
        assert_eq!(AppKind::Memcached.paper_loads()[2], 138_000.0);
    }

    #[test]
    fn builders_chain() {
        let cfg = ExperimentConfig::new(AppKind::Memcached, Policy::NcapAggr, 35_000.0)
            .with_seed(9)
            .with_ondemand_period(SimDuration::from_ms(1))
            .with_faults(FaultConfig::lossy(0.01, 7))
            .with_rx_ring(32);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.ondemand_period, SimDuration::from_ms(1));
        assert_eq!(cfg.faults.loss, 0.01);
        assert_eq!(cfg.rx_ring_override, Some(32));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn defaults_are_faultless_and_valid() {
        let cfg = ExperimentConfig::new(AppKind::Apache, Policy::Perf, 24_000.0);
        assert!(cfg.faults.is_off());
        assert_eq!(cfg.rx_ring_override, None);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_names_offending_fields() {
        let base = ExperimentConfig::new(AppKind::Apache, Policy::Perf, 24_000.0);
        let mut c = base.clone();
        c.load_rps = 0.0;
        assert_eq!(c.validate().unwrap_err().field, "load_rps");
        let mut c = base.clone();
        c.clients = 0;
        assert_eq!(c.validate().unwrap_err().field, "clients");
        let c = base.clone().with_nic_queues(0);
        assert_eq!(c.validate().unwrap_err().field, "nic_queues");
        let c = base.clone().with_request_tracing(0);
        assert_eq!(c.validate().unwrap_err().field, "request_trace_every");
        let c = base.clone().with_rx_ring(0);
        assert_eq!(c.validate().unwrap_err().field, "rx_ring_override");
        let mut bad_faults = FaultConfig::lossy(0.01, 1);
        bad_faults.loss = 1.5;
        let c = base.with_faults(bad_faults);
        assert_eq!(c.validate().unwrap_err().field, "loss");
    }

    #[test]
    fn fleet_config_is_validated_too() {
        let base = ExperimentConfig::new(AppKind::Memcached, Policy::Perf, 10_000.0);
        let good = base
            .clone()
            .with_fleet(FleetConfig::new(4, fleetsim::DispatchPolicy::Packing));
        assert!(good.validate().is_ok());
        let bad = base.with_fleet(FleetConfig::new(0, fleetsim::DispatchPolicy::RoundRobin));
        assert_eq!(bad.validate().unwrap_err().field, "backends");
    }
}
