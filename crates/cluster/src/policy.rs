//! The seven evaluated power-management policies.

use cpusim::{PStateId, PStateTable};
use desim::SimDuration;
use governors::{CpufreqGovernor, CpuidleGovernor, Menu, Ondemand, Performance, PollIdle};
use ncap::{EnhancedDriver, NcapConfig, SoftwareNcap};

/// A named combination of cpufreq/cpuidle governors and NCAP variant
/// (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// `perf`: performance governor, C-states disabled.
    Perf,
    /// `ond`: ondemand governor, C-states disabled.
    Ond,
    /// `perf.idle`: performance + menu.
    PerfIdle,
    /// `ond.idle`: ondemand + menu.
    OndIdle,
    /// `ncap.sw`: software NCAP atop ond.idle.
    NcapSw,
    /// `ncap.cons`: hardware NCAP, FCONS = 5, atop ond.idle.
    NcapCons,
    /// `ncap.aggr`: hardware NCAP, FCONS = 1, atop ond.idle.
    NcapAggr,
}

impl Policy {
    /// All seven policies, in the paper's presentation order.
    pub const ALL: [Policy; 7] = [
        Policy::Perf,
        Policy::Ond,
        Policy::PerfIdle,
        Policy::OndIdle,
        Policy::NcapSw,
        Policy::NcapCons,
        Policy::NcapAggr,
    ];

    /// The paper's name for the policy.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Policy::Perf => "perf",
            Policy::Ond => "ond",
            Policy::PerfIdle => "perf.idle",
            Policy::OndIdle => "ond.idle",
            Policy::NcapSw => "ncap.sw",
            Policy::NcapCons => "ncap.cons",
            Policy::NcapAggr => "ncap.aggr",
        }
    }

    /// `true` for the three NCAP variants.
    #[must_use]
    pub fn is_ncap(self) -> bool {
        matches!(self, Policy::NcapSw | Policy::NcapCons | Policy::NcapAggr)
    }

    /// `true` when the policy uses hardware NCAP in the NIC.
    #[must_use]
    pub fn uses_ncap_hardware(self) -> bool {
        matches!(self, Policy::NcapCons | Policy::NcapAggr)
    }

    /// `true` when C-states are available (menu governor active).
    #[must_use]
    pub fn uses_cstates(self) -> bool {
        !matches!(self, Policy::Perf | Policy::Ond)
    }

    /// `true` when the dynamic ondemand governor drives P-states.
    #[must_use]
    pub fn uses_ondemand(self) -> bool {
        !matches!(self, Policy::Perf | Policy::PerfIdle)
    }

    /// The NCAP configuration for this policy, if any.
    #[must_use]
    pub fn ncap_config(self) -> Option<NcapConfig> {
        match self {
            Policy::NcapSw => Some(NcapConfig::paper_defaults()),
            Policy::NcapCons => Some(NcapConfig::conservative()),
            Policy::NcapAggr => Some(NcapConfig::aggressive()),
            _ => None,
        }
    }

    /// Builds the cpufreq governor (with the given ondemand period).
    #[must_use]
    pub fn cpufreq(self, ondemand_period: SimDuration) -> Box<dyn CpufreqGovernor + Send> {
        if self.uses_ondemand() {
            Box::new(Ondemand::with_period(ondemand_period))
        } else {
            Box::new(Performance)
        }
    }

    /// Builds the cpuidle governor for `cores` cores.
    #[must_use]
    pub fn cpuidle(self, cores: usize) -> Box<dyn CpuidleGovernor + Send> {
        if self.uses_cstates() {
            Box::new(Menu::new(cores))
        } else {
            Box::new(PollIdle)
        }
    }

    /// The NCAP-enhanced driver, for hardware NCAP policies.
    #[must_use]
    pub fn ncap_driver(self, table: &PStateTable) -> Option<EnhancedDriver> {
        if self.uses_ncap_hardware() {
            Some(EnhancedDriver::new(
                self.ncap_config().expect("hardware policies have a config"),
                table,
            ))
        } else {
            None
        }
    }

    /// The software NCAP block, for `ncap.sw`.
    #[must_use]
    pub fn software_ncap(self, table: &PStateTable) -> Option<SoftwareNcap> {
        if self == Policy::NcapSw {
            Some(SoftwareNcap::new(NcapConfig::paper_defaults(), table))
        } else {
            None
        }
    }

    /// The P-state the server boots in under this policy. Performance
    /// policies start at P0; dynamic ones start at the deepest state and
    /// must earn their way up.
    #[must_use]
    pub fn initial_pstate(self, table: &PStateTable) -> PStateId {
        if self.uses_ondemand() {
            table.deepest()
        } else {
            table.fastest()
        }
    }
}

impl core::fmt::Display for Policy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = Policy::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            [
                "perf",
                "ond",
                "perf.idle",
                "ond.idle",
                "ncap.sw",
                "ncap.cons",
                "ncap.aggr"
            ]
        );
    }

    #[test]
    fn governor_composition() {
        assert_eq!(
            Policy::Perf.cpufreq(SimDuration::from_ms(10)).name(),
            "performance"
        );
        assert_eq!(
            Policy::OndIdle.cpufreq(SimDuration::from_ms(10)).name(),
            "ondemand"
        );
        assert_eq!(Policy::Perf.cpuidle(4).name(), "poll");
        assert_eq!(Policy::NcapCons.cpuidle(4).name(), "menu");
    }

    #[test]
    fn ncap_variants() {
        assert!(!Policy::OndIdle.is_ncap());
        assert!(Policy::NcapSw.is_ncap());
        assert!(!Policy::NcapSw.uses_ncap_hardware());
        assert!(Policy::NcapAggr.uses_ncap_hardware());
        assert_eq!(Policy::NcapCons.ncap_config().unwrap().fcons, 5);
        assert_eq!(Policy::NcapAggr.ncap_config().unwrap().fcons, 1);
        assert!(Policy::Perf.ncap_config().is_none());
    }

    #[test]
    fn drivers_only_for_matching_variants() {
        let t = PStateTable::i7_like();
        assert!(Policy::NcapCons.ncap_driver(&t).is_some());
        assert!(Policy::NcapSw.ncap_driver(&t).is_none());
        assert!(Policy::NcapSw.software_ncap(&t).is_some());
        assert!(Policy::NcapCons.software_ncap(&t).is_none());
        assert!(Policy::OndIdle.ncap_driver(&t).is_none());
    }

    #[test]
    fn initial_pstates() {
        let t = PStateTable::i7_like();
        assert_eq!(Policy::Perf.initial_pstate(&t), t.fastest());
        assert_eq!(Policy::PerfIdle.initial_pstate(&t), t.fastest());
        assert_eq!(Policy::OndIdle.initial_pstate(&t), t.deepest());
        assert_eq!(Policy::NcapAggr.initial_pstate(&t), t.deepest());
    }
}
