//! Runtime invariant watchdog.
//!
//! Production clusters pair load shedding with a watchdog that detects
//! the failure modes shedding bugs produce: stalled servers (work queued
//! but nothing making progress), accounting leaks (requests vanishing
//! without being completed, lost, or rejected), and unbounded queues
//! (caps configured but not enforced). [`Watchdog::check`] runs every
//! [`WatchdogConfig::period`] of simulated time, reads the cluster state
//! **without mutating it** — the checks are pure observers, so enabling
//! the watchdog never perturbs a run — and records structured
//! [`InvariantViolation`]s.
//!
//! The deliberately broken configuration (queue capacities set while
//! shedding is disabled) passes static validation — each field is
//! individually meaningful — and is caught here at runtime as a
//! [`InvariantKind::Boundedness`] violation instead of surfacing as a
//! hang or a panic.

use desim::{SimDuration, SimTime};
use fleetsim::LbLedger;
use oskernel::Kernel;

/// Which invariant failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// A server has queued work but made no progress for two consecutive
    /// check periods while every core sat idle and none was mid-wake.
    Liveness,
    /// The accounting identity
    /// `issued == completed + lost + rejected + in_flight` broke.
    Conservation,
    /// A queue exceeded its configured capacity bound.
    Boundedness,
    /// A frame was addressed to a node the switch does not know.
    Routing,
    /// The run ended with work still outstanding: in-flight requests,
    /// open conntrack entries, or requests declared lost. Only checked
    /// at end of run, and only when the scenario promises a drain window
    /// (see [`WatchdogConfig::expect_quiescence`]).
    Quiescence,
}

impl InvariantKind {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            InvariantKind::Liveness => "liveness",
            InvariantKind::Conservation => "conservation",
            InvariantKind::Boundedness => "boundedness",
            InvariantKind::Routing => "routing",
            InvariantKind::Quiescence => "quiescence",
        }
    }
}

/// One failed invariant check, with enough context to debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The invariant that failed.
    pub kind: InvariantKind,
    /// Simulated instant of the failing check.
    pub at: SimTime,
    /// Human-readable specifics (queue, observed value, bound, …).
    pub detail: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} @ {}] {}", self.kind.name(), self.at, self.detail)
    }
}

/// How the runner reacts to a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WatchdogMode {
    /// Panic at the end of the run if any violation was recorded (the
    /// default: every test runs under the watchdog and fails fast).
    #[default]
    Fail,
    /// Record violations and expose them on the result (used by tests
    /// that *expect* a violation, e.g. the broken-config scenario).
    Collect,
}

/// Watchdog configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Check period in simulated time.
    pub period: SimDuration,
    /// Violation handling.
    pub mode: WatchdogMode,
    /// Check the quiescence invariant at end of run. Off by default:
    /// normal runs legitimately end mid-flight (clients generate load
    /// right up to the horizon). Chaos scenarios schedule a drain window
    /// and turn this on — after the drain, any outstanding work is a
    /// leak, not a race with the horizon.
    pub expect_quiescence: bool,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            period: SimDuration::from_ms(1),
            mode: WatchdogMode::Fail,
            expect_quiescence: false,
        }
    }
}

impl WatchdogConfig {
    /// Collect violations instead of failing the run (builder style).
    #[must_use]
    pub fn collecting(mut self) -> Self {
        self.mode = WatchdogMode::Collect;
        self
    }

    /// Overrides the check period (builder style).
    #[must_use]
    pub fn with_period(mut self, period: SimDuration) -> Self {
        self.period = period;
        self
    }

    /// Demands end-of-run quiescence (builder style). Pair with a drain
    /// window long enough for retransmissions and failovers to settle.
    #[must_use]
    pub fn expecting_quiescence(mut self) -> Self {
        self.expect_quiescence = true;
        self
    }
}

/// Per-server progress snapshot from the previous check, for the
/// liveness invariant.
#[derive(Debug, Clone, Copy, Default)]
struct ServerSnapshot {
    /// Sum of the kernel's work counters (any increase is progress).
    work_done: u64,
    /// Run-queue depth at the previous check.
    queue_depth: usize,
    /// Whether the previous check already saw this server stalled.
    stalled_once: bool,
}

/// The invariant checker. Owned by the cluster simulation; fed pure
/// read-only views of the servers on every `Watchdog` event.
#[derive(Debug, Default)]
pub struct Watchdog {
    config: WatchdogConfig,
    snapshots: Vec<ServerSnapshot>,
    violations: Vec<InvariantViolation>,
    checks: u64,
    seen_misroutes: u64,
    seen_unmatched: u64,
    seen_dead_dispatches: u64,
}

/// Cluster-level accounting fed into the conservation check. All zeros
/// when the reliability layer is off (the identity is only tracked for
/// reliable traffic).
#[derive(Debug, Clone, Copy, Default)]
pub struct AccountingView {
    /// Whether the reliability layer is armed (identity meaningful).
    pub armed: bool,
    /// Latency-critical requests issued.
    pub issued: u64,
    /// Requests fully completed at clients.
    pub completed: u64,
    /// Requests declared lost after exhausting retransmissions.
    pub lost: u64,
    /// Requests rejected by server admission control.
    pub rejected: u64,
    /// Requests still in flight.
    pub in_flight: u64,
    /// Frames that failed switch routing (dropped, not delivered).
    pub misroutes: u64,
}

impl Watchdog {
    /// Creates the watchdog.
    #[must_use]
    pub fn new(config: WatchdogConfig) -> Self {
        Watchdog {
            config,
            ..Watchdog::default()
        }
    }

    /// The configured check period.
    #[must_use]
    pub fn period(&self) -> SimDuration {
        self.config.period
    }

    /// The configured violation handling.
    #[must_use]
    pub fn mode(&self) -> WatchdogMode {
        self.config.mode
    }

    /// Checks performed so far.
    #[must_use]
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Violations recorded so far.
    #[must_use]
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// Consumes the watchdog, returning the recorded violations.
    #[must_use]
    pub fn into_violations(self) -> Vec<InvariantViolation> {
        self.violations
    }

    fn violate(&mut self, kind: InvariantKind, at: SimTime, detail: String) {
        if simtrace::is_enabled() {
            simtrace::instant_args(
                "watchdog",
                "violation",
                at.as_nanos(),
                &[simtrace::arg("kind", kind.name())],
            );
        }
        self.violations
            .push(InvariantViolation { kind, at, detail });
    }

    /// Runs every invariant check against the current cluster state.
    /// Pure observation: neither the servers nor the accounting are
    /// mutated, so a run with the watchdog enabled is byte-identical to
    /// one without.
    pub fn check(
        &mut self,
        now: SimTime,
        servers: &[Kernel],
        accounting: &AccountingView,
        fleet: Option<&LbLedger>,
    ) {
        self.checks += 1;
        if simtrace::is_enabled() {
            simtrace::metric_add("watchdog", "checks", now.as_nanos(), 1.0);
        }
        self.snapshots
            .resize(servers.len(), ServerSnapshot::default());
        for (i, server) in servers.iter().enumerate() {
            self.check_liveness(now, i, server);
            self.check_boundedness(now, i, server);
        }
        self.check_conservation(now, accounting);
        if let Some(ledger) = fleet {
            self.check_fleet(now, ledger);
        }
        // Report each batch of new misroutes once, then track growth.
        if accounting.misroutes > self.seen_misroutes {
            self.violate(
                InvariantKind::Routing,
                now,
                format!(
                    "{} frame(s) addressed to unattached nodes were dropped",
                    accounting.misroutes
                ),
            );
            self.seen_misroutes = accounting.misroutes;
        }
    }

    /// End-of-run quiescence: after the drain window, no request may be
    /// in flight, lost, stuck in limbo, or open in conntrack — a fault
    /// that was injected and healed must leave no permanent residue.
    /// Called once from `finalize`, never from periodic checks, and only
    /// acts when [`WatchdogConfig::expect_quiescence`] is set.
    pub fn check_quiescence(
        &mut self,
        now: SimTime,
        accounting: &AccountingView,
        fleet: Option<&LbLedger>,
    ) {
        if !self.config.expect_quiescence {
            return;
        }
        if accounting.armed {
            if accounting.in_flight > 0 {
                self.violate(
                    InvariantKind::Quiescence,
                    now,
                    format!(
                        "{} request(s) still in flight after the drain window",
                        accounting.in_flight
                    ),
                );
            }
            if accounting.lost > 0 {
                self.violate(
                    InvariantKind::Quiescence,
                    now,
                    format!(
                        "{} request(s) declared lost — retransmissions did not recover \
                         from the injected faults",
                        accounting.lost
                    ),
                );
            }
        }
        if let Some(ledger) = fleet {
            if ledger.outstanding > 0 {
                self.violate(
                    InvariantKind::Quiescence,
                    now,
                    format!(
                        "LB conntrack still holds {} open request(s) at end of run",
                        ledger.outstanding
                    ),
                );
            }
            if ledger.failed_over > 0 {
                self.violate(
                    InvariantKind::Quiescence,
                    now,
                    format!(
                        "{} request(s) stranded in the failed-over limbo at end of run",
                        ledger.failed_over
                    ),
                );
            }
        }
    }

    /// Liveness: work queued while every core idles (and none is waking)
    /// with zero progress across two consecutive checks means the
    /// scheduler wedged. One stalled period alone is tolerated — a check
    /// can land between a job completing and the queue re-dispatching.
    fn check_liveness(&mut self, now: SimTime, idx: usize, server: &Kernel) {
        let stats = server.stats();
        let work_done = stats.isrs
            + stats.softirq_rx
            + stats.softirq_tx
            + stats.app_jobs
            + stats.governor_ticks;
        let depth = server.run_queue_depth();
        let prev = self.snapshots[idx];
        let progressed = work_done > prev.work_done;
        let cores_engaged = server
            .cores()
            .iter()
            .any(|c| c.has_job() || matches!(c.state_kind(), cpusim::CoreStateKind::Waking(_)));
        let stalled = depth > 0 && prev.queue_depth > 0 && !progressed && !cores_engaged;
        if stalled && prev.stalled_once {
            self.violate(
                InvariantKind::Liveness,
                now,
                format!(
                    "server {}: {} work item(s) queued with all cores idle and no \
                     progress for two consecutive {} periods",
                    server.node().0,
                    depth,
                    self.config.period,
                ),
            );
        }
        self.snapshots[idx] = ServerSnapshot {
            work_done,
            queue_depth: depth,
            stalled_once: stalled,
        };
    }

    /// Boundedness: every capped queue must respect its cap. The total
    /// run-queue bound sums the admission cap, the per-queue RX
    /// backlogs plus one in-flight ISR each, and the TX allowance
    /// (see [`OverloadConfig::queue_bound`]).
    fn check_boundedness(&mut self, now: SimTime, _idx: usize, server: &Kernel) {
        let ov = *server.overload_config();
        let nic_queues = server.nic().queue_count();
        if let Some(bound) = ov.queue_bound(nic_queues) {
            let depth = server.run_queue_depth();
            if depth > bound {
                self.violate(
                    InvariantKind::Boundedness,
                    now,
                    format!(
                        "server {}: run queue holds {depth} item(s), bound is {bound} \
                         (caps configured{}; a cap without an enforcing policy is a \
                         misconfiguration)",
                        server.node().0,
                        if ov.shedding() {
                            ""
                        } else {
                            " but shedding is OFF"
                        },
                    ),
                );
            }
        }
        if let Some(cap) = ov.rx_backlog_cap {
            for (q, &backlog) in server.rx_backlogs().iter().enumerate() {
                if backlog > cap {
                    self.violate(
                        InvariantKind::Boundedness,
                        now,
                        format!(
                            "server {}: RX queue {q} backlog {backlog} exceeds cap {cap}",
                            server.node().0
                        ),
                    );
                }
            }
        }
        if let Some(cap) = ov.tx_backlog_cap {
            let queued = server.tx_queue_depth();
            if queued > cap {
                self.violate(
                    InvariantKind::Boundedness,
                    now,
                    format!(
                        "server {}: {queued} TX frame(s) queued exceeds cap {cap}",
                        server.node().0
                    ),
                );
            }
            let backlog = server.tx_backlog_depth();
            if backlog > cap {
                self.violate(
                    InvariantKind::Boundedness,
                    now,
                    format!(
                        "server {}: NIC TX backlog {backlog} exceeds cap {cap}",
                        server.node().0
                    ),
                );
            }
        }
    }

    /// LB-hop conservation: every request the load balancer opened is
    /// completed, rejected, in the failed-over limbo, or outstanding on
    /// exactly one backend, and the per-backend outstanding counts sum
    /// to the conntrack total. A response arriving for an unknown
    /// conntrack entry is a routing violation (reported per batch, like
    /// misroutes), as is any frame of live work dispatched to a backend
    /// already marked failed or ejected.
    fn check_fleet(&mut self, now: SimTime, ledger: &LbLedger) {
        let resolved = ledger.completed + ledger.rejected + ledger.failed_over + ledger.outstanding;
        if ledger.opened != resolved {
            self.violate(
                InvariantKind::Conservation,
                now,
                format!(
                    "LB opened {} != completed {} + rejected {} + failed_over {} \
                     + outstanding {} (= {resolved})",
                    ledger.opened,
                    ledger.completed,
                    ledger.rejected,
                    ledger.failed_over,
                    ledger.outstanding,
                ),
            );
        }
        if ledger.backend_outstanding_sum != ledger.outstanding {
            self.violate(
                InvariantKind::Conservation,
                now,
                format!(
                    "backend outstanding counts sum to {}, conntrack says {}",
                    ledger.backend_outstanding_sum, ledger.outstanding,
                ),
            );
        }
        if ledger.unmatched_responses > self.seen_unmatched {
            self.violate(
                InvariantKind::Routing,
                now,
                format!(
                    "{} backend response(s) matched no conntrack entry at the LB",
                    ledger.unmatched_responses,
                ),
            );
            self.seen_unmatched = ledger.unmatched_responses;
        }
        if ledger.dead_dispatches > self.seen_dead_dispatches {
            self.violate(
                InvariantKind::Routing,
                now,
                format!(
                    "{} frame(s) of live work dispatched to failed/ejected backends",
                    ledger.dead_dispatches,
                ),
            );
            self.seen_dead_dispatches = ledger.dead_dispatches;
        }
    }

    /// Conservation: with the reliability layer armed, every issued
    /// request is completed, lost, rejected, or still in flight.
    fn check_conservation(&mut self, now: SimTime, acc: &AccountingView) {
        if !acc.armed {
            return;
        }
        let resolved = acc.completed + acc.lost + acc.rejected + acc.in_flight;
        if acc.issued != resolved {
            self.violate(
                InvariantKind::Conservation,
                now,
                format!(
                    "issued {} != completed {} + lost {} + rejected {} + in_flight {} \
                     (= {resolved})",
                    acc.issued, acc.completed, acc.lost, acc.rejected, acc.in_flight,
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_identity_checked_only_when_armed() {
        let mut w = Watchdog::new(WatchdogConfig::default().collecting());
        let mut acc = AccountingView {
            armed: false,
            issued: 10,
            completed: 3,
            ..AccountingView::default()
        };
        w.check(SimTime::from_ms(1), &[], &acc, None);
        assert!(w.violations().is_empty(), "unarmed identity is not checked");
        acc.armed = true;
        w.check(SimTime::from_ms(2), &[], &acc, None);
        assert_eq!(w.violations().len(), 1);
        assert_eq!(w.violations()[0].kind, InvariantKind::Conservation);
        assert_eq!(w.checks(), 2);
    }

    #[test]
    fn balanced_accounting_passes() {
        let mut w = Watchdog::new(WatchdogConfig::default().collecting());
        let acc = AccountingView {
            armed: true,
            issued: 10,
            completed: 5,
            lost: 2,
            rejected: 2,
            in_flight: 1,
            ..AccountingView::default()
        };
        w.check(SimTime::from_ms(1), &[], &acc, None);
        assert!(w.violations().is_empty());
    }

    #[test]
    fn misroutes_surface_as_routing_violations() {
        let mut w = Watchdog::new(WatchdogConfig::default().collecting());
        let acc = AccountingView {
            misroutes: 2,
            ..AccountingView::default()
        };
        w.check(SimTime::from_ms(1), &[], &acc, None);
        assert_eq!(w.violations().len(), 1);
        assert_eq!(w.violations()[0].kind, InvariantKind::Routing);
        // A repeat check with no new misroutes does not duplicate.
        w.check(SimTime::from_ms(2), &acc_servers(), &acc, None);
        assert_eq!(w.violations().len(), 1);
    }

    fn acc_servers() -> Vec<Kernel> {
        Vec::new()
    }

    #[test]
    fn lb_ledger_conservation_and_unmatched_checked() {
        let mut w = Watchdog::new(WatchdogConfig::default().collecting());
        let acc = AccountingView::default();
        let good = LbLedger {
            opened: 10,
            completed: 6,
            rejected: 1,
            outstanding: 3,
            backend_outstanding_sum: 3,
            ..LbLedger::default()
        };
        w.check(SimTime::from_ms(1), &[], &acc, Some(&good));
        assert!(w.violations().is_empty(), "{:?}", w.violations());

        // A leaked request (opened != resolved) and a desynced backend
        // sum are two distinct conservation violations.
        let leaky = LbLedger {
            opened: 10,
            completed: 6,
            rejected: 1,
            outstanding: 2,
            backend_outstanding_sum: 3,
            ..LbLedger::default()
        };
        w.check(SimTime::from_ms(2), &[], &acc, Some(&leaky));
        assert_eq!(w.violations().len(), 2);
        assert!(w
            .violations()
            .iter()
            .all(|v| v.kind == InvariantKind::Conservation));

        // Unmatched responses surface as a routing violation once per
        // batch, like misroutes.
        let unmatched = LbLedger {
            unmatched_responses: 4,
            ..good
        };
        w.check(SimTime::from_ms(3), &[], &acc, Some(&unmatched));
        w.check(SimTime::from_ms(4), &[], &acc, Some(&unmatched));
        let routing: Vec<_> = w
            .violations()
            .iter()
            .filter(|v| v.kind == InvariantKind::Routing)
            .collect();
        assert_eq!(routing.len(), 1);
        assert!(routing[0].detail.contains("no conntrack entry"));
    }

    #[test]
    fn extended_identity_counts_failed_over_limbo() {
        let mut w = Watchdog::new(WatchdogConfig::default().collecting());
        let acc = AccountingView::default();
        // Two requests orphaned by a crash sit in limbo: the old identity
        // would flag this as a leak; the extended one balances.
        let failing_over = LbLedger {
            opened: 10,
            completed: 5,
            rejected: 1,
            outstanding: 2,
            failed_over: 2,
            backend_outstanding_sum: 2,
            ..LbLedger::default()
        };
        w.check(SimTime::from_ms(1), &[], &acc, Some(&failing_over));
        assert!(w.violations().is_empty(), "{:?}", w.violations());
        // Dropping the limbo count breaks it.
        let leaked = LbLedger {
            failed_over: 1,
            ..failing_over
        };
        w.check(SimTime::from_ms(2), &[], &acc, Some(&leaked));
        assert_eq!(w.violations().len(), 1);
        assert_eq!(w.violations()[0].kind, InvariantKind::Conservation);
        assert!(w.violations()[0].detail.contains("failed_over"));
    }

    #[test]
    fn dead_dispatches_surface_as_routing_violations_once_per_batch() {
        let mut w = Watchdog::new(WatchdogConfig::default().collecting());
        let acc = AccountingView::default();
        let dead = LbLedger {
            opened: 2,
            outstanding: 2,
            backend_outstanding_sum: 2,
            dead_dispatches: 3,
            ..LbLedger::default()
        };
        w.check(SimTime::from_ms(1), &[], &acc, Some(&dead));
        w.check(SimTime::from_ms(2), &[], &acc, Some(&dead));
        let routing: Vec<_> = w
            .violations()
            .iter()
            .filter(|v| v.kind == InvariantKind::Routing)
            .collect();
        assert_eq!(routing.len(), 1, "batched, not repeated");
        assert!(routing[0].detail.contains("failed/ejected"));
    }

    #[test]
    fn violations_format_with_kind_and_time() {
        let v = InvariantViolation {
            kind: InvariantKind::Boundedness,
            at: SimTime::from_ms(3),
            detail: "queue over cap".into(),
        };
        let s = format!("{v}");
        assert!(s.contains("boundedness"), "{s}");
        assert!(s.contains("queue over cap"), "{s}");
    }
}
