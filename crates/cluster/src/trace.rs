//! Bandwidth/frequency/C-state tracing for the paper's figures.
//!
//! Figures 4, 8(right) and 9(right) plot, over a window of a few hundred
//! milliseconds: the server's normalized receive/transmit bandwidth, core
//! utilization, the chip frequency, and (Figure 4(b)) per-C-state
//! residency. Collection goes through the `simtrace` metrics registry —
//! [`TraceCollector`] records counters (`cluster.bw_rx`, `cluster.bw_tx`)
//! and gauges (`cluster.freq_ghz`, `cluster.busy_ns`, `cluster.c{1,3,6}_ns`)
//! and mirrors each recording to the thread-global tracer so `ncap trace`
//! exports see the same series — and [`Traces`] is reconstructed from a
//! registry snapshot at the end of the run. The reconstruction repeats the
//! sampling arithmetic on exact-in-f64 integer nanosecond values, so the
//! figure output is byte-identical to sampling directly.

use cpusim::PowerMode;
use desim::{SimDuration, SimTime};
use simstats::{RateTrace, TimeSeries};
use simtrace::{Metrics, MetricsSnapshot};

/// What to trace and at which granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Bandwidth accumulation window (also the sampling period for
    /// frequency/utilization).
    pub window: SimDuration,
}

impl TraceConfig {
    /// A 1 ms-window trace — enough resolution for the 200 ms snapshots.
    #[must_use]
    pub fn per_ms() -> Self {
        TraceConfig {
            window: SimDuration::from_ms(1),
        }
    }
}

/// Registry-backed figure-trace recorder: the hot-path half of the old
/// `Traces` object. The cluster simulation feeds it RX/TX bytes and
/// periodic core samples; [`TraceCollector::finish`] snapshots the
/// registry and rebuilds [`Traces`] for the figure pipeline.
#[derive(Debug)]
pub struct TraceCollector {
    window_ns: u64,
    metrics: Metrics,
    cores: usize,
}

impl TraceCollector {
    /// Creates a collector with the given figure window.
    #[must_use]
    pub fn new(config: TraceConfig) -> Self {
        TraceCollector {
            window_ns: config.window.as_nanos(),
            metrics: Metrics::new(config.window.as_nanos()),
            cores: 1,
        }
    }

    /// Wire bytes received by the server at `now`.
    pub fn on_rx(&mut self, now: SimTime, wire_bytes: f64) {
        self.metrics
            .add("cluster", "bw_rx", now.as_nanos(), wire_bytes);
    }

    /// Wire bytes transmitted by the server at `now`.
    pub fn on_tx(&mut self, now: SimTime, wire_bytes: f64) {
        self.metrics
            .add("cluster", "bw_tx", now.as_nanos(), wire_bytes);
    }

    /// Records one periodic sample of request-resolution counts:
    /// `served` requests completed normally, `rejected` were refused by
    /// admission control. Goodput (served) and throughput (served +
    /// rejected) become separate figure series.
    pub fn throughput_sample(&mut self, now: SimTime, served: f64, rejected: f64) {
        let t = now.as_nanos();
        self.metrics.set("cluster", "goodput", t, served);
        self.metrics
            .set("cluster", "throughput", t, served + rejected);
    }

    /// Records one periodic sample of aggregate core statistics as
    /// registry gauges (raw values; deltas are taken at reconstruction).
    pub fn sample(
        &mut self,
        now: SimTime,
        freq_ghz: f64,
        total_busy: SimDuration,
        cstate_time: [SimDuration; 3],
        cores: usize,
    ) {
        let t = now.as_nanos();
        self.cores = cores;
        self.metrics.set("cluster", "freq_ghz", t, freq_ghz);
        self.metrics
            .set("cluster", "busy_ns", t, total_busy.as_nanos() as f64);
        let names = ["c1_ns", "c3_ns", "c6_ns"];
        for (name, c) in names.iter().zip(cstate_time.iter()) {
            self.metrics.set("cluster", name, t, c.as_nanos() as f64);
        }
        // Mirror onto the global tracer so `ncap trace` CSVs carry the
        // same series (no-ops when no tracer is installed).
        if simtrace::is_enabled() {
            simtrace::metric_set("cluster", "freq_ghz", t, freq_ghz);
            simtrace::metric_set("cluster", "busy_ns", t, total_busy.as_nanos() as f64);
            for (name, c) in names.iter().zip(cstate_time.iter()) {
                simtrace::metric_set("cluster", name, t, c.as_nanos() as f64);
            }
        }
    }

    /// Snapshots the registry and reconstructs the figure series.
    #[must_use]
    pub fn finish(self, wake_markers: Vec<SimTime>) -> Traces {
        let cores = self.cores;
        let window_ns = self.window_ns;
        Traces::from_registry(&self.metrics.snapshot(), window_ns, cores, wake_markers)
    }
}

/// The collected series.
#[derive(Debug)]
pub struct Traces {
    /// Wire bytes received by the server per window.
    pub rx: RateTrace,
    /// Wire bytes transmitted by the server per window.
    pub tx: RateTrace,
    /// Core-0 frequency samples (GHz).
    pub freq: TimeSeries,
    /// All-core utilization samples (0..=1).
    pub util: TimeSeries,
    /// Per-window time share in C1/C3/C6 (0..=1 of total core-time).
    pub cstate_share: [TimeSeries; 3],
    /// NCAP proactive-interrupt instants (`INT (wake)` markers).
    pub wake_markers: Vec<SimTime>,
    /// Cumulative served-request samples (goodput: rejected requests
    /// excluded).
    pub goodput: TimeSeries,
    /// Cumulative resolved-request samples (throughput: served +
    /// rejected) — diverges from goodput under overload.
    pub throughput: TimeSeries,
    /// Server NIC RX-ring overflow drops over the whole run (stamped at
    /// cluster finalize).
    pub rx_drops: u64,
    /// Frames the switch impairment layer dropped (loss + corruption)
    /// over the whole run (stamped at cluster finalize).
    pub fault_drops: u64,
    pub(crate) last_busy: SimDuration,
    pub(crate) last_cstate: [SimDuration; 3],
    pub(crate) last_sample: SimTime,
}

impl Traces {
    /// Creates empty traces with the given window.
    #[must_use]
    pub fn new(config: TraceConfig) -> Self {
        let w = config.window.as_nanos();
        Traces {
            rx: RateTrace::new("bw_rx", w),
            tx: RateTrace::new("bw_tx", w),
            freq: TimeSeries::new("freq_ghz"),
            util: TimeSeries::new("utilization"),
            cstate_share: [
                TimeSeries::new("t_c1"),
                TimeSeries::new("t_c3"),
                TimeSeries::new("t_c6"),
            ],
            wake_markers: Vec::new(),
            goodput: TimeSeries::new("goodput"),
            throughput: TimeSeries::new("throughput"),
            rx_drops: 0,
            fault_drops: 0,
            last_busy: SimDuration::ZERO,
            last_cstate: [SimDuration::ZERO; 3],
            last_sample: SimTime::ZERO,
        }
    }

    /// Records one periodic sample from aggregate core statistics.
    pub fn sample(
        &mut self,
        now: SimTime,
        freq_ghz: f64,
        total_busy: SimDuration,
        cstate_time: [SimDuration; 3],
        cores: usize,
    ) {
        let elapsed = now.saturating_since(self.last_sample);
        if !elapsed.is_zero() {
            let denom = elapsed.as_secs_f64() * cores as f64;
            let busy_delta = total_busy.saturating_sub(self.last_busy);
            self.util
                .push(now.as_nanos(), busy_delta.as_secs_f64() / denom);
            for (i, &t) in cstate_time.iter().enumerate() {
                let d = t.saturating_sub(self.last_cstate[i]);
                self.cstate_share[i].push(now.as_nanos(), d.as_secs_f64() / denom);
            }
        }
        self.freq.push(now.as_nanos(), freq_ghz);
        self.last_sample = now;
        self.last_busy = total_busy;
        self.last_cstate = cstate_time;
    }

    /// Rebuilds the figure series from a metrics-registry snapshot.
    ///
    /// Bandwidth comes from the `cluster.bw_rx`/`bw_tx` counter bins
    /// (same windowing arithmetic as [`RateTrace::add`]); utilization and
    /// C-state shares are recomputed from the raw cumulative gauges with
    /// the exact expressions [`Traces::sample`] uses. Gauge values are
    /// integer nanosecond counts, exact in `f64`, so every derived sample
    /// is bit-identical to direct sampling.
    #[must_use]
    pub fn from_registry(
        snapshot: &MetricsSnapshot,
        window_ns: u64,
        cores: usize,
        wake_markers: Vec<SimTime>,
    ) -> Self {
        let mut out = Traces::new(TraceConfig {
            window: SimDuration::from_nanos(window_ns),
        });
        out.wake_markers = wake_markers;
        if let Some(m) = snapshot.get("cluster", "bw_rx") {
            out.rx = RateTrace::from_bins("bw_rx", window_ns, m.bins.clone());
        }
        if let Some(m) = snapshot.get("cluster", "bw_tx") {
            out.tx = RateTrace::from_bins("bw_tx", window_ns, m.bins.clone());
        }
        if let Some(m) = snapshot.get("cluster", "freq_ghz") {
            for &(t, v) in &m.points {
                out.freq.push(t, v);
            }
        }
        for (name, series) in [
            ("goodput", &mut out.goodput),
            ("throughput", &mut out.throughput),
        ] {
            if let Some(m) = snapshot.get("cluster", name) {
                for &(t, v) in &m.points {
                    series.push(t, v);
                }
            }
        }
        let empty: &[(u64, f64)] = &[];
        let gauge = |name: &str| {
            snapshot
                .get("cluster", name)
                .map_or(empty, |m| &m.points[..])
        };
        let busy = gauge("busy_ns");
        let cstates = [gauge("c1_ns"), gauge("c3_ns"), gauge("c6_ns")];
        // Replay the delta computation: previous cumulative values start
        // at zero, exactly as a fresh `Traces` starts.
        let mut prev_t = 0u64;
        let mut prev_busy = 0.0f64;
        let mut prev_cstate = [0.0f64; 3];
        for (i, &(t, b)) in busy.iter().enumerate() {
            let elapsed_ns = t.saturating_sub(prev_t);
            if elapsed_ns != 0 {
                let denom = elapsed_ns as f64 / 1_000_000_000.0 * cores as f64;
                let busy_delta = (b - prev_busy).max(0.0);
                out.util.push(t, busy_delta / 1_000_000_000.0 / denom);
                for (j, points) in cstates.iter().enumerate() {
                    let v = points.get(i).map_or(prev_cstate[j], |&(_, v)| v);
                    let d = (v - prev_cstate[j]).max(0.0);
                    out.cstate_share[j].push(t, d / 1_000_000_000.0 / denom);
                }
            }
            prev_t = t;
            prev_busy = b;
            for (slot, points) in prev_cstate.iter_mut().zip(cstates.iter()) {
                if let Some(&(_, v)) = points.get(i) {
                    *slot = v;
                }
            }
        }
        out.last_sample = SimTime::from_nanos(prev_t);
        out.last_busy = SimDuration::from_nanos(prev_busy as u64);
        out.last_cstate = prev_cstate.map(|v| SimDuration::from_nanos(v as u64));
        out
    }

    /// Per-mode C-state time series name helper.
    #[must_use]
    pub fn cstate_modes() -> [PowerMode; 3] {
        [PowerMode::SleepC1, PowerMode::SleepC3, PowerMode::SleepC6]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_computes_deltas() {
        let mut t = Traces::new(TraceConfig::per_ms());
        t.sample(
            SimTime::ZERO,
            0.8,
            SimDuration::ZERO,
            [SimDuration::ZERO; 3],
            4,
        );
        t.sample(
            SimTime::from_ms(1),
            3.1,
            SimDuration::from_ms(2), // 2 ms busy over 4 core-ms = 50 %
            [
                SimDuration::from_ms(1),
                SimDuration::ZERO,
                SimDuration::from_ms(1),
            ],
            4,
        );
        assert_eq!(t.util.len(), 1);
        let (_, u) = t.util.iter().next().unwrap();
        assert!((u - 0.5).abs() < 1e-9);
        let (_, c1) = t.cstate_share[0].iter().next().unwrap();
        assert!((c1 - 0.25).abs() < 1e-9);
        assert_eq!(t.freq.last_value(), Some(3.1));
    }

    #[test]
    fn rx_tx_traces_accumulate() {
        let mut t = Traces::new(TraceConfig::per_ms());
        t.rx.add(500_000, 1000.0);
        t.tx.add(1_500_000, 2000.0);
        assert_eq!(t.rx.finish(2_000_000), vec![1000.0, 0.0]);
        assert_eq!(t.tx.finish(2_000_000), vec![0.0, 2000.0]);
    }

    /// The registry-backed collector reproduces direct sampling exactly —
    /// every derived f64 is bit-identical.
    #[test]
    fn collector_matches_direct_sampling_bitwise() {
        let cfg = TraceConfig::per_ms();
        let mut direct = Traces::new(cfg);
        let mut collector = TraceCollector::new(cfg);
        let samples: [(u64, f64, u64, [u64; 3]); 4] = [
            (1_000_000, 0.8, 123_457, [500_001, 0, 99_999]),
            (2_000_000, 3.1, 923_457, [700_001, 123, 99_999]),
            // Repeated timestamp: elapsed == 0 path.
            (2_000_000, 3.1, 923_457, [700_001, 123, 99_999]),
            (3_500_000, 1.7, 1_100_009, [900_000, 777_777, 100_000]),
        ];
        for &(t, f, busy, cs) in &samples {
            let cstate = cs.map(SimDuration::from_nanos);
            direct.sample(
                SimTime::from_nanos(t),
                f,
                SimDuration::from_nanos(busy),
                cstate,
                4,
            );
            collector.sample(
                SimTime::from_nanos(t),
                f,
                SimDuration::from_nanos(busy),
                cstate,
                4,
            );
        }
        direct.rx.add(500_000, 1000.0);
        collector.on_rx(SimTime::from_nanos(500_000), 1000.0);
        direct.tx.add(1_500_000, 2000.0);
        collector.on_tx(SimTime::from_nanos(1_500_000), 2000.0);
        let rebuilt = collector.finish(vec![SimTime::from_us(7)]);
        assert_eq!(rebuilt.rx.finish(4_000_000), direct.rx.finish(4_000_000));
        assert_eq!(rebuilt.tx.finish(4_000_000), direct.tx.finish(4_000_000));
        let same = |a: &TimeSeries, b: &TimeSeries| {
            assert_eq!(a.len(), b.len(), "{} length", a.name());
            for ((ta, va), (tb, vb)) in a.iter().zip(b.iter()) {
                assert_eq!(ta, tb, "{} timestamps", a.name());
                assert_eq!(va.to_bits(), vb.to_bits(), "{} values at {ta}", a.name());
            }
        };
        same(&rebuilt.freq, &direct.freq);
        same(&rebuilt.util, &direct.util);
        for (r, d) in rebuilt.cstate_share.iter().zip(direct.cstate_share.iter()) {
            same(r, d);
        }
        assert_eq!(rebuilt.wake_markers, vec![SimTime::from_us(7)]);
        assert_eq!(rebuilt.last_sample, direct.last_sample);
        assert_eq!(rebuilt.last_busy, direct.last_busy);
    }

    #[test]
    fn empty_collector_finishes_empty() {
        let t = TraceCollector::new(TraceConfig::per_ms()).finish(Vec::new());
        assert!(t.freq.is_empty());
        assert!(t.util.is_empty());
        assert_eq!(t.rx.finish(1_000_000), vec![0.0]);
    }
}
