//! Bandwidth/frequency/C-state tracing for the paper's figures.
//!
//! Figures 4, 8(right) and 9(right) plot, over a window of a few hundred
//! milliseconds: the server's normalized receive/transmit bandwidth, core
//! utilization, the chip frequency, and (Figure 4(b)) per-C-state
//! residency. The [`TraceConfig`]/[`Traces`] pair collects exactly those
//! series; the harness prints them as columns.

use cpusim::PowerMode;
use desim::{SimDuration, SimTime};
use simstats::{RateTrace, TimeSeries};

/// What to trace and at which granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Bandwidth accumulation window (also the sampling period for
    /// frequency/utilization).
    pub window: SimDuration,
}

impl TraceConfig {
    /// A 1 ms-window trace — enough resolution for the 200 ms snapshots.
    #[must_use]
    pub fn per_ms() -> Self {
        TraceConfig {
            window: SimDuration::from_ms(1),
        }
    }
}

/// The collected series.
#[derive(Debug)]
pub struct Traces {
    /// Wire bytes received by the server per window.
    pub rx: RateTrace,
    /// Wire bytes transmitted by the server per window.
    pub tx: RateTrace,
    /// Core-0 frequency samples (GHz).
    pub freq: TimeSeries,
    /// All-core utilization samples (0..=1).
    pub util: TimeSeries,
    /// Per-window time share in C1/C3/C6 (0..=1 of total core-time).
    pub cstate_share: [TimeSeries; 3],
    /// NCAP proactive-interrupt instants (`INT (wake)` markers).
    pub wake_markers: Vec<SimTime>,
    pub(crate) last_busy: SimDuration,
    pub(crate) last_cstate: [SimDuration; 3],
    pub(crate) last_sample: SimTime,
}

impl Traces {
    /// Creates empty traces with the given window.
    #[must_use]
    pub fn new(config: TraceConfig) -> Self {
        let w = config.window.as_nanos();
        Traces {
            rx: RateTrace::new("bw_rx", w),
            tx: RateTrace::new("bw_tx", w),
            freq: TimeSeries::new("freq_ghz"),
            util: TimeSeries::new("utilization"),
            cstate_share: [
                TimeSeries::new("t_c1"),
                TimeSeries::new("t_c3"),
                TimeSeries::new("t_c6"),
            ],
            wake_markers: Vec::new(),
            last_busy: SimDuration::ZERO,
            last_cstate: [SimDuration::ZERO; 3],
            last_sample: SimTime::ZERO,
        }
    }

    /// Records one periodic sample from aggregate core statistics.
    pub fn sample(
        &mut self,
        now: SimTime,
        freq_ghz: f64,
        total_busy: SimDuration,
        cstate_time: [SimDuration; 3],
        cores: usize,
    ) {
        let elapsed = now.saturating_since(self.last_sample);
        if !elapsed.is_zero() {
            let denom = elapsed.as_secs_f64() * cores as f64;
            let busy_delta = total_busy.saturating_sub(self.last_busy);
            self.util
                .push(now.as_nanos(), busy_delta.as_secs_f64() / denom);
            for (i, &t) in cstate_time.iter().enumerate() {
                let d = t.saturating_sub(self.last_cstate[i]);
                self.cstate_share[i].push(now.as_nanos(), d.as_secs_f64() / denom);
            }
        }
        self.freq.push(now.as_nanos(), freq_ghz);
        self.last_sample = now;
        self.last_busy = total_busy;
        self.last_cstate = cstate_time;
    }

    /// Per-mode C-state time series name helper.
    #[must_use]
    pub fn cstate_modes() -> [PowerMode; 3] {
        [PowerMode::SleepC1, PowerMode::SleepC3, PowerMode::SleepC6]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_computes_deltas() {
        let mut t = Traces::new(TraceConfig::per_ms());
        t.sample(
            SimTime::ZERO,
            0.8,
            SimDuration::ZERO,
            [SimDuration::ZERO; 3],
            4,
        );
        t.sample(
            SimTime::from_ms(1),
            3.1,
            SimDuration::from_ms(2), // 2 ms busy over 4 core-ms = 50 %
            [
                SimDuration::from_ms(1),
                SimDuration::ZERO,
                SimDuration::from_ms(1),
            ],
            4,
        );
        assert_eq!(t.util.len(), 1);
        let (_, u) = t.util.iter().next().unwrap();
        assert!((u - 0.5).abs() < 1e-9);
        let (_, c1) = t.cstate_share[0].iter().next().unwrap();
        assert!((c1 - 0.25).abs() < 1e-9);
        assert_eq!(t.freq.last_value(), Some(3.1));
    }

    #[test]
    fn rx_tx_traces_accumulate() {
        let mut t = Traces::new(TraceConfig::per_ms());
        t.rx.add(500_000, 1000.0);
        t.tx.add(1_500_000, 2000.0);
        assert_eq!(t.rx.finish(2_000_000), vec![1000.0, 0.0]);
        assert_eq!(t.tx.finish(2_000_000), vec![0.0, 2000.0]);
    }
}
