//! Building and running experiments.

use crate::config::{AppKind, ExperimentConfig};
use crate::policy::Policy;
use crate::sim::{ClusterSim, FaultSummary};
use crate::trace::Traces;
use crate::watchdog::{InvariantViolation, Watchdog, WatchdogMode};
use cpusim::EnergyMeter;
use desim::{ConfigError, SimTime, Simulation};
use fleetsim::FleetSummary;
use ncap::{EnhancedDriver, SoftwareNcap};
use netsim::NodeId;
use nicsim::{Nic, NicConfig};
use oldi_apps::{ApacheApp, ClientConfig, MemcachedApp, OpenLoopClient, Workload};
use oskernel::{Kernel, KernelConfig, ServerApp};
use simstats::LatencySummary;

/// Everything one experiment produces.
#[derive(Debug)]
pub struct ExperimentResult {
    /// The policy that ran.
    pub policy: Policy,
    /// The application that ran.
    pub app: AppKind,
    /// Offered load (requests/second across all clients).
    pub load_rps: f64,
    /// Response-time summary over the measured window.
    pub latency: LatencySummary,
    /// Measured-window processor energy, per mode.
    pub energy: EnergyMeter,
    /// Measured-window processor energy, joules.
    pub energy_j: f64,
    /// Measured-window energy attributable to busy-poll cores, joules
    /// (summed across all servers; zero on the interrupt-driven
    /// datapaths). The flat worst-case cost of the bypass datapath.
    pub poll_energy_j: f64,
    /// Requests offered during the measured window.
    pub offered: u64,
    /// Requests completed during the measured window.
    pub completed: u64,
    /// NCAP proactive interrupts observed (whole run).
    pub wake_markers: usize,
    /// RX-ring drops at the server NIC (whole run).
    pub rx_drops: u64,
    /// Length of the measured window.
    pub measure: desim::SimDuration,
    /// Optional traces.
    pub traces: Option<Traces>,
    /// Structured event trace (when [`ExperimentConfig::with_event_trace`]
    /// was set, or the `NCAP_TRACE` environment variable enabled tracing).
    pub sim_trace: Option<simtrace::TraceData>,
    /// Sampled server-side request waterfalls (when
    /// [`ExperimentConfig::with_request_tracing`] was set).
    pub server_request_traces: Option<Vec<oskernel::RequestTrace>>,
    /// Server kernel operational counters (whole run).
    pub kernel_stats: oskernel::KernelStats,
    /// Fault-injection and recovery accounting (all zeros when the fault
    /// subsystem is off).
    pub faults: FaultSummary,
    /// Requests the server rejected with a 503 (whole run, all servers).
    pub rejected: u64,
    /// High-water mark of the server run queue (memory proxy).
    pub max_queue_depth: usize,
    /// Invariant checks the watchdog performed.
    pub watchdog_checks: u64,
    /// Invariant violations the watchdog recorded (empty on a healthy
    /// run; populated instead of panicking when the watchdog runs in
    /// [`WatchdogMode::Collect`]).
    pub invariant_violations: Vec<InvariantViolation>,
    /// Fleet summary (LB dispatch accounting, per-backend states and
    /// energy, park/unpark counts) when the run used a fleet topology
    /// ([`ExperimentConfig::with_fleet`]); `None` otherwise.
    pub fleet: Option<FleetSummary>,
    /// Total simulator events dispatched over the run. Deterministic
    /// (part of the byte-identity contract); the sim-throughput bench
    /// divides it by wall time to get events/second.
    pub events_processed: u64,
    /// Per-stage end-to-end latency attribution over the measured
    /// window, tail-conditioned at p99 of total latency. `None` when
    /// [`ExperimentConfig::breakdown`] is off. Collection is a pure
    /// observer: every other field is bit-identical with it on or off.
    pub breakdown: Option<simstats::LatencyBreakdown>,
    /// Wall-clock self-profile of the simulator run, when
    /// [`ExperimentConfig::profile`] was set. Host-dependent; outside
    /// the determinism contract.
    pub self_profile: Option<desim::Profile>,
}

impl ExperimentResult {
    /// Average processor power over the measured window, watts.
    #[must_use]
    pub fn avg_power_w(&self) -> f64 {
        self.energy_j / self.measure.as_secs_f64()
    }

    /// Fraction of offered requests completed in the window (values just
    /// below 1.0 are normal: responses in flight at the horizon).
    #[must_use]
    pub fn goodput(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.completed as f64 / self.offered as f64
        }
    }
}

fn build_app(cfg: &ExperimentConfig) -> Box<dyn ServerApp + Send> {
    match cfg.app {
        AppKind::Apache => Box::new(ApacheApp::new(cfg.seed ^ 0xA9AC)),
        AppKind::Memcached => Box::new(MemcachedApp::new(cfg.seed ^ 0x3E3C)),
    }
}

/// Builds the server kernel for an experiment configuration.
#[must_use]
pub fn build_server(cfg: &ExperimentConfig, server_id: NodeId) -> Kernel {
    let table = cpusim::PStateTable::i7_like();
    let ncap_cfg = |policy: Policy| cfg.ncap_override.clone().or_else(|| policy.ncap_config());
    let mut nic_config = if cfg.policy.uses_ncap_hardware() {
        NicConfig::i82574_like()
            .with_ncap(ncap_cfg(cfg.policy).expect("hardware NCAP policy has a config"))
    } else {
        NicConfig::i82574_like()
    };
    if let Some(toe) = cfg.toe {
        nic_config = nic_config.with_toe(toe);
    }
    if cfg.nic_queues > 1 {
        nic_config = nic_config.with_queues(cfg.nic_queues);
    }
    if let Some(descriptors) = cfg.rx_ring_override {
        nic_config.rx_ring = descriptors;
    }
    let mut kernel_cfg =
        KernelConfig::server_defaults().with_initial_pstate(cfg.policy.initial_pstate(&table));
    if cfg.per_core_boost {
        kernel_cfg = kernel_cfg.with_per_core_boost();
    }
    if let Some(n) = cfg.request_trace_every {
        kernel_cfg = kernel_cfg.with_request_tracing(n);
    }
    if cfg.faults.retx.enabled {
        // Retransmitted requests must not be served twice: turn on the
        // server's duplicate suppression and response replay.
        kernel_cfg = kernel_cfg.with_reliability();
    }
    kernel_cfg = kernel_cfg.with_datapath(cfg.datapath);
    if cfg.datapath.bypasses_kernel() {
        kernel_cfg = kernel_cfg
            .with_bypass(oskernel::BypassConfig::dpdk_like().with_poll_cores(cfg.poll_cores));
    }
    kernel_cfg = kernel_cfg.with_overload(cfg.overload);
    let cores = kernel_cfg.cores as usize;
    let cpuidle: Box<dyn governors::CpuidleGovernor + Send> =
        if cfg.use_ladder && cfg.policy.uses_cstates() {
            Box::new(governors::Ladder::new(cores))
        } else {
            cfg.policy.cpuidle(cores)
        };
    let mut kernel = Kernel::new(
        kernel_cfg,
        server_id,
        Nic::new(nic_config),
        cfg.policy.cpufreq(cfg.ondemand_period),
        cpuidle,
        build_app(cfg),
    );
    if cfg.policy.uses_ncap_hardware() {
        kernel = kernel.with_ncap_driver(EnhancedDriver::new(
            ncap_cfg(cfg.policy).expect("checked above"),
            &table,
        ));
    }
    if cfg.policy == Policy::NcapSw {
        kernel = kernel.with_software_ncap(SoftwareNcap::new(
            ncap_cfg(cfg.policy).expect("ncap.sw has a config"),
            &table,
        ));
    }
    kernel
}

/// Builds the request generators. `target` is where requests go (the
/// server, or the VIP in a fleet topology); `base` is the first client
/// node id (client ids follow the servers and the VIP, if any).
fn build_clients(
    cfg: &ExperimentConfig,
    target: NodeId,
    base: u16,
) -> (Vec<OpenLoopClient>, Vec<bool>) {
    let period = cfg.burst_period();
    let mut clients = Vec::new();
    let mut background = Vec::new();
    for i in 0..cfg.clients {
        let me = NodeId(base + i as u16);
        let seed = cfg.seed.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64);
        let mut cc = match cfg.app {
            AppKind::Apache => ClientConfig::apache(me, target, cfg.burst_size, period, seed),
            AppKind::Memcached => ClientConfig::memcached(me, target, cfg.burst_size, period, seed),
        };
        if cfg.poisson {
            cc = cc.with_poisson();
        }
        if let Some(d) = cfg.deadline {
            cc = cc.with_deadline(d);
        }
        if let Some((at, new_load)) = cfg.load_step {
            let per_client = new_load / cfg.clients as f64;
            let new_period =
                desim::SimDuration::from_secs_f64(f64::from(cfg.burst_size) / per_client);
            cc = cc.with_step(desim::SimTime::ZERO + at, new_period);
        }
        clients.push(OpenLoopClient::new(cc));
        background.push(false);
    }
    if let Some(bg) = cfg.background {
        let me = NodeId(base + cfg.clients as u16);
        let bg_period =
            desim::SimDuration::from_secs_f64(f64::from(bg.burst_size) / bg.rate.max(1.0));
        let workload = if bg.bulk {
            Workload::Bulk
        } else {
            Workload::ApachePut
        };
        let cc = ClientConfig::apache(me, target, bg.burst_size, bg_period, cfg.seed ^ 0xB6)
            .with_workload(workload);
        clients.push(OpenLoopClient::new(cc));
        background.push(true);
    }
    (clients, background)
}

/// `true` when the `NCAP_TRACE` environment variable requests event
/// tracing for every experiment (used by the bench/CI smoke harness).
fn env_trace_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("NCAP_TRACE").is_ok_and(|v| !v.is_empty() && v != "0"))
}

/// Runs one experiment to its horizon and collects the results.
///
/// Deterministic: equal configurations (including seed) produce equal
/// results.
///
/// # Errors
///
/// Returns the [`ConfigError`] from [`ExperimentConfig::validate`] when
/// the configuration is statically invalid.
///
/// # Panics
///
/// Panics when the watchdog runs in [`WatchdogMode::Fail`] (the default)
/// and recorded an invariant violation.
pub fn try_run_experiment(cfg: &ExperimentConfig) -> Result<ExperimentResult, ConfigError> {
    cfg.validate()?;
    // Machine failures are only survivable through the end-to-end
    // reliability layer: retransmissions are what re-pin a dead backend's
    // requests somewhere healthy. Arm it when a failure schedule is
    // present and the caller did not configure retransmissions — and do
    // it here, before server construction, because `build_server` keys
    // the server's duplicate suppression off the same flag.
    let mut cfg = cfg.clone();
    if cfg
        .fleet
        .as_ref()
        .is_some_and(|f| f.faults.enabled() || f.domains.enabled())
        && !cfg.faults.retx.enabled
    {
        cfg.faults.retx = netsim::RetxConfig::standard();
    }
    let cfg = &cfg;
    // Event tracing wraps the run: the tracer is thread-local and each
    // experiment runs wholly on one thread, so parallel batches trace
    // independently. Tracing never feeds back into the simulation, so
    // results are identical with it on or off.
    let event_trace = cfg
        .event_trace
        .or_else(|| env_trace_enabled().then(simtrace::TracerConfig::default));
    if let Some(tc) = event_trace {
        simtrace::install(tc);
    }
    // Node layout: servers first (0..n), then the VIP (fleet runs only),
    // then the clients. Without a fleet this reduces to the historical
    // single-server layout (server 0, clients from 1).
    let n_servers = cfg.fleet.as_ref().map_or(1, |f| f.backends);
    let (target, client_base) = if cfg.fleet.is_some() {
        (NodeId(n_servers as u16), (n_servers + 1) as u16)
    } else {
        (NodeId(0), 1)
    };
    let servers: Vec<Kernel> = (0..n_servers)
        .map(|i| build_server(cfg, NodeId(i as u16)))
        .collect();
    let (clients, background) = build_clients(cfg, target, client_base);
    let mut cluster = ClusterSim::with_servers(servers, clients, background, cfg.trace)
        .with_fault_injection(cfg.faults)
        .with_watchdog(Watchdog::new(cfg.watchdog))
        .with_breakdown(cfg.breakdown);
    if let Some(fleet) = &cfg.fleet {
        cluster = cluster.with_fleet(target, fleet);
    }
    let horizon = SimTime::ZERO + cfg.horizon();
    // The drain window (ZERO by default) stops client generation early so
    // in-flight work settles before the quiescence check at the horizon.
    let load_end = horizon - cfg.drain;
    let initial = cluster.initial_events(cfg.warmup, load_end);
    let mut sim = Simulation::with_backend(cluster, cfg.queue_backend);
    if cfg.profile {
        sim.enable_profiling();
    }
    for (t, e) in initial {
        sim.queue_mut().push(t, e);
    }
    sim.run_until(horizon);
    let self_profile = sim.profile();
    let sim_trace = simtrace::uninstall();
    let events_processed = sim.events_processed();
    let now = sim.now();
    let cluster = sim.handler_mut();
    cluster.finalize(now);
    let energy = cluster.measured_energy();
    let latency = LatencySummary::from_histogram(cluster.tracker().latencies());
    let (watchdog_checks, invariant_violations) = cluster
        .watchdog()
        .map_or((0, Vec::new()), |w| (w.checks(), w.violations().to_vec()));
    if cfg.watchdog.mode == WatchdogMode::Fail && !invariant_violations.is_empty() {
        let report: Vec<String> = invariant_violations
            .iter()
            .map(ToString::to_string)
            .collect();
        panic!(
            "watchdog recorded {} invariant violation(s):\n{}",
            report.len(),
            report.join("\n")
        );
    }
    // Per-backend energy: whole-run meters scaled by the measured-window
    // share (warmup is uniform across backends, as in `run_imbalanced`).
    let measure_frac = cfg.measure.as_secs_f64() / cfg.horizon().as_secs_f64();
    // Busy-poll core energy (bypass datapath): the price of spinning in
    // C0 at max P-state regardless of load, attributed like the fleet
    // backend meters (whole-run scaled by the measured-window share).
    // (Folded from +0.0 explicitly: the std float `Sum` identity is
    // -0.0, which would leak into the pinned Debug render.)
    let poll_energy_j: f64 = cluster.servers().iter().fold(0.0, |acc, srv| {
        let p = srv.poll_core_count();
        srv.cores()[..p]
            .iter()
            .fold(acc, |a, c| a + c.energy().total_joules())
    }) * measure_frac;
    let fleet = cluster.fleet_summary().map(|mut s| {
        for (b, srv) in s.backends.iter_mut().zip(cluster.servers()) {
            let mut m = EnergyMeter::new();
            for c in srv.cores() {
                m.merge(c.energy());
            }
            m.merge(srv.uncore_energy());
            b.energy_j = m.total_joules() * measure_frac;
        }
        s
    });
    let result = ExperimentResult {
        policy: cfg.policy,
        app: cfg.app,
        load_rps: cfg.load_rps,
        latency,
        energy_j: energy.total_joules(),
        poll_energy_j,
        energy,
        offered: cluster.offered_measured(),
        completed: cluster.tracker().completed(),
        wake_markers: cluster.server().wake_marker_times().len(),
        rx_drops: cluster.server().nic().rx_drops(),
        measure: cfg.measure,
        traces: None,
        sim_trace,
        server_request_traces: cfg
            .request_trace_every
            .map(|_| cluster.server().request_traces().to_vec()),
        kernel_stats: cluster.server().stats(),
        faults: cluster.fault_summary(),
        rejected: cluster.servers().iter().map(|s| s.stats().rejected).sum(),
        max_queue_depth: cluster
            .servers()
            .iter()
            .map(oskernel::Kernel::max_run_queue_depth)
            .max()
            .unwrap_or(0),
        watchdog_checks,
        invariant_violations,
        fleet,
        events_processed,
        breakdown: cfg
            .breakdown
            .then(|| cluster.latency_breakdown(cfg.breakdown_tail)),
        self_profile,
    };
    let traces = sim.into_handler().into_traces();
    Ok(ExperimentResult { traces, ..result })
}

/// [`try_run_experiment`] for statically valid configurations.
///
/// # Panics
///
/// Panics if `cfg` fails [`ExperimentConfig::validate`], or on an
/// invariant violation under [`WatchdogMode::Fail`].
#[must_use]
pub fn run_experiment(cfg: &ExperimentConfig) -> ExperimentResult {
    match try_run_experiment(cfg) {
        Ok(result) => result,
        Err(e) => panic!("experiment config must validate: {e}"),
    }
}

/// Runs a batch of experiments across OS threads (each simulation is
/// single-threaded and deterministic). Results come back in input order.
#[must_use]
pub fn run_experiments_parallel(configs: &[ExperimentConfig]) -> Vec<ExperimentResult> {
    let threads = std::thread::available_parallelism()
        .map_or(4, std::num::NonZero::get)
        .min(configs.len().max(1));
    run_experiments_on(configs, threads)
}

/// [`run_experiments_parallel`] with an explicit worker-thread count.
/// Results are identical whatever `threads` is — each experiment is a
/// pure function of its config, and results return in input order.
///
/// # Panics
///
/// Panics if `threads` is zero.
#[must_use]
pub fn run_experiments_on(configs: &[ExperimentConfig], threads: usize) -> Vec<ExperimentResult> {
    assert!(threads > 0, "at least one worker thread");
    let mut results: Vec<Option<ExperimentResult>> = Vec::new();
    results.resize_with(configs.len(), || None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mx = std::sync::Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let r = run_experiment(&configs[i]);
                results_mx.lock().expect("no panics hold the lock")[i] = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every index was filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;

    fn quick(app: AppKind, policy: Policy, load: f64) -> ExperimentConfig {
        ExperimentConfig::new(app, policy, load)
            .with_durations(SimDuration::from_ms(20), SimDuration::from_ms(60))
    }

    #[test]
    fn memcached_perf_completes_requests() {
        let r = run_experiment(&quick(AppKind::Memcached, Policy::Perf, 30_000.0));
        assert!(r.offered > 1_000, "offered {}", r.offered);
        assert!(r.goodput() > 0.95, "goodput {}", r.goodput());
        assert!(r.latency.p95 > 0);
        assert!(r.energy_j > 0.0);
        assert_eq!(r.rx_drops, 0);
    }

    #[test]
    fn apache_perf_completes_requests() {
        let r = run_experiment(&quick(AppKind::Apache, Policy::Perf, 24_000.0));
        assert!(r.goodput() > 0.9, "goodput {}", r.goodput());
        // Apache's disk phase pushes the mean well above a millisecond at
        // burst arrival.
        assert!(r.latency.mean > 300_000.0, "mean {}", r.latency.mean);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let cfg = quick(AppKind::Memcached, Policy::NcapCons, 35_000.0);
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        assert_eq!(a.latency.p95, b.latency.p95);
        assert_eq!(a.completed, b.completed);
        assert!((a.energy_j - b.energy_j).abs() < 1e-12);
    }

    #[test]
    fn idle_policy_saves_energy_vs_perf() {
        let perf = run_experiment(&quick(AppKind::Apache, Policy::Perf, 24_000.0));
        let idle = run_experiment(&quick(AppKind::Apache, Policy::PerfIdle, 24_000.0));
        assert!(
            idle.energy_j < perf.energy_j * 0.8,
            "perf.idle {} vs perf {}",
            idle.energy_j,
            perf.energy_j
        );
    }

    #[test]
    fn ncap_uses_proactive_interrupts() {
        let r = run_experiment(&quick(AppKind::Apache, Policy::NcapCons, 24_000.0));
        assert!(r.wake_markers > 0, "NCAP never fired");
    }

    #[test]
    fn parallel_runner_preserves_order() {
        let cfgs = vec![
            quick(AppKind::Memcached, Policy::Perf, 20_000.0),
            quick(AppKind::Memcached, Policy::PerfIdle, 20_000.0),
        ];
        let rs = run_experiments_parallel(&cfgs);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].policy, Policy::Perf);
        assert_eq!(rs[1].policy, Policy::PerfIdle);
        // And matches serial runs exactly.
        let serial = run_experiment(&cfgs[0]);
        assert_eq!(serial.latency.p95, rs[0].latency.p95);
    }
}

/// Results of a multi-server (imbalanced datacenter) run — §7's
/// discussion scenario.
#[derive(Debug)]
pub struct MultiServerResult {
    /// The policy every server ran.
    pub policy: Policy,
    /// Cluster-wide response-time summary.
    pub latency: LatencySummary,
    /// Per-server measured energy (joules), index-aligned with the loads.
    pub per_server_energy_j: Vec<f64>,
    /// Cluster-wide measured energy (joules).
    pub total_energy_j: f64,
    /// Requests offered / completed in the measured window.
    pub offered: u64,
    /// Requests completed in the measured window.
    pub completed: u64,
}

/// Runs a cluster of `per_server_loads.len()` servers, each fed by its
/// own open-loop client at the given load — the paper's §7 scenario of a
/// datacenter with load imbalance across nodes.
///
/// # Panics
///
/// Panics if `per_server_loads` is empty.
/// [`try_run_imbalanced`] reports the same condition as a typed
/// [`ConfigError`] instead.
#[must_use]
pub fn run_imbalanced(
    app: AppKind,
    policy: Policy,
    per_server_loads: &[f64],
    warmup: desim::SimDuration,
    measure: desim::SimDuration,
    seed: u64,
) -> MultiServerResult {
    match try_run_imbalanced(app, policy, per_server_loads, warmup, measure, seed) {
        Ok(result) => result,
        Err(e) => panic!("{e}"),
    }
}

/// [`run_imbalanced`] with typed validation instead of panics.
///
/// # Errors
///
/// Returns a [`ConfigError`] when `per_server_loads` is empty.
pub fn try_run_imbalanced(
    app: AppKind,
    policy: Policy,
    per_server_loads: &[f64],
    warmup: desim::SimDuration,
    measure: desim::SimDuration,
    seed: u64,
) -> Result<MultiServerResult, ConfigError> {
    if per_server_loads.is_empty() {
        return Err(ConfigError::new(
            "per_server_loads",
            "need at least one server",
        ));
    }
    let n = per_server_loads.len();
    let template = ExperimentConfig::new(app, policy, per_server_loads[0])
        .with_durations(warmup, measure)
        .with_seed(seed);
    let servers: Vec<Kernel> = (0..n)
        .map(|i| build_server(&template, NodeId(i as u16)))
        .collect();
    let mut clients = Vec::new();
    let mut background = Vec::new();
    for (i, &load) in per_server_loads.iter().enumerate() {
        let me = NodeId((n + i) as u16);
        let burst = template.burst_size;
        let period = desim::SimDuration::from_secs_f64(f64::from(burst) / load.max(1.0));
        let cc = match app {
            AppKind::Apache => {
                ClientConfig::apache(me, NodeId(i as u16), burst, period, seed + i as u64)
            }
            AppKind::Memcached => {
                ClientConfig::memcached(me, NodeId(i as u16), burst, period, seed + i as u64)
            }
        };
        clients.push(OpenLoopClient::new(cc));
        background.push(false);
    }
    let mut cluster = ClusterSim::with_servers(servers, clients, background, None)
        .with_watchdog(Watchdog::new(template.watchdog));
    let horizon = SimTime::ZERO + warmup + measure;
    let initial = cluster.initial_events(warmup, horizon);
    let mut sim = Simulation::new(cluster);
    for (t, e) in initial {
        sim.queue_mut().push(t, e);
    }
    sim.run_until(horizon);
    let now = sim.now();
    let cluster = sim.handler_mut();
    cluster.finalize(now);
    if let Some(wd) = cluster.watchdog() {
        assert!(
            wd.violations().is_empty(),
            "watchdog recorded invariant violations: {:?}",
            wd.violations()
        );
    }
    let total = cluster.measured_energy();
    // Per-server split: recompute from each kernel's meters (whole-run,
    // not warmup-adjusted — adequate for the imbalance comparison since
    // the warmup is uniform across servers).
    let horizon_secs = (warmup + measure).as_secs_f64();
    let measure_frac = measure.as_secs_f64() / horizon_secs;
    let per_server_energy_j = cluster
        .servers()
        .iter()
        .map(|s| {
            let mut m = EnergyMeter::new();
            for c in s.cores() {
                m.merge(c.energy());
            }
            m.merge(s.uncore_energy());
            m.total_joules() * measure_frac
        })
        .collect();
    Ok(MultiServerResult {
        policy,
        latency: LatencySummary::from_histogram(cluster.tracker().latencies()),
        per_server_energy_j,
        total_energy_j: total.total_joules(),
        offered: cluster.offered_measured(),
        completed: cluster.tracker().completed(),
    })
}
