//! # cluster — node assembly, policies, and the experiment runner
//!
//! This crate wires every substrate into the paper's evaluation setup
//! (§5): a four-node star — one OLDI server and three open-loop burst
//! clients on a 10 GbE switch — run under one of the seven power
//! management policies of §6:
//!
//! | policy      | cpufreq        | cpuidle | NCAP                |
//! |-------------|----------------|---------|---------------------|
//! | `perf`      | performance    | poll    | –                   |
//! | `ond`       | ondemand 10 ms | poll    | –                   |
//! | `perf.idle` | performance    | menu    | –                   |
//! | `ond.idle`  | ondemand 10 ms | menu    | –                   |
//! | `ncap.sw`   | ondemand 10 ms | menu    | software (driver)   |
//! | `ncap.cons` | ondemand 10 ms | menu    | hardware, FCONS = 5 |
//! | `ncap.aggr` | ondemand 10 ms | menu    | hardware, FCONS = 1 |
//!
//! [`run_experiment`] runs one configuration to completion and returns
//! latency percentiles, energy (total and per mode), and optional
//! bandwidth/frequency traces; [`run_experiments_parallel`] fans a batch
//! out across OS threads (each simulation is single-threaded and
//! deterministic for its seed).
//!
//! [`ExperimentConfig::with_fleet`] swaps the single server for a fleet:
//! N backend servers behind an L4 load balancer
//! ([`fleetsim::LoadBalancer`]) whose dispatch policy and optional
//! cluster-level power coordinator come from [`FleetConfig`].
//!
//! ## Example
//!
//! ```
//! use cluster::{AppKind, ExperimentConfig, Policy, run_experiment};
//! use desim::SimDuration;
//!
//! let cfg = ExperimentConfig::new(AppKind::Memcached, Policy::NcapCons, 30_000.0)
//!     .with_durations(SimDuration::from_ms(20), SimDuration::from_ms(50));
//! let result = run_experiment(&cfg);
//! assert!(result.completed > 0);
//! assert!(result.energy_j > 0.0);
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod chaos;
pub mod config;
pub mod policy;
pub mod runner;
pub mod sim;
pub mod trace;
pub mod watchdog;

pub use chaos::{ChaosScenario, SeedVerdict};
pub use config::{AppKind, BackgroundTraffic, ExperimentConfig};
pub use fleetsim::{
    BackendState, BackendSummary, CoordinatorConfig, DispatchPolicy, DomainFaultSpec,
    DomainSchedule, FailureMode, FailureSchedule, FailureSpec, FleetConfig, FleetSummary,
    HealthConfig, DEFAULT_DOMAIN_FAULT_SEED, DEFAULT_FLEET_FAULT_SEED,
};
pub use netsim::{DomainImpairment, FaultConfig, RetxConfig, DEFAULT_FAULT_SEED};
pub use oskernel::{BypassConfig, Datapath, OverloadConfig, ShedPolicy};
pub use policy::Policy;
pub use runner::{
    run_experiment, run_experiments_on, run_experiments_parallel, run_imbalanced,
    try_run_experiment, try_run_imbalanced, ExperimentResult, MultiServerResult,
};
pub use sim::{ClusterEvent, ClusterSim, FaultSummary};
pub use trace::{TraceConfig, Traces};
pub use watchdog::{InvariantKind, InvariantViolation, Watchdog, WatchdogConfig, WatchdogMode};
