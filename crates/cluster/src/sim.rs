//! The cluster simulation: one server, N clients, a switch.
//!
//! [`ClusterSim`] implements [`desim::EventHandler`]; the experiment
//! runner seeds it with initial events and drives it to the horizon.
//! Frames travel client → switch → server and back; the server node is a
//! full [`oskernel::Kernel`], clients are open-loop generators plus a
//! response tracker (per the paper's methodology, client-side processing
//! is not modelled — latency is measured at the final response frame).

use crate::trace::{TraceCollector, TraceConfig, Traces};
use crate::watchdog::{AccountingView, Watchdog};
use cpusim::{EnergyMeter, PowerMode};
use desim::{ConfigError, EventHandler, EventQueue, SimDuration, SimTime};
use fleetsim::{
    DomainSchedule, FailureMode, FailureSchedule, FleetAction, FleetConfig, FleetCoordinator,
    FleetSummary, HealthConfig, LoadBalancer,
};
use netsim::{
    Delivery, FaultConfig, NodeId, Packet, PacketMeta, Reassembly, SegmentStatus, Switch,
};
use oldi_apps::{OpenLoopClient, ResponseTracker};
use oskernel::{Effects, Kernel, NodeEvent};
use simstats::breakdown::{stage, BreakdownCollector, LatencyBreakdown, STAGE_COUNT, STAGE_NAMES};
use std::collections::HashMap;

/// Clamps a nanosecond duration into the `u32` stage fields (4.29 s cap,
/// far above any request residency the harness simulates).
fn ns32(ns: u64) -> u32 {
    u32::try_from(ns).unwrap_or(u32::MAX)
}

/// Events of the cluster world.
#[derive(Debug, Clone)]
pub enum ClusterEvent {
    /// An event for one server node's kernel.
    Server(NodeId, NodeEvent),
    /// Client `idx` emits its next burst.
    ClientBurst {
        /// Index into the client list.
        idx: usize,
    },
    /// A frame finishes traversing the network and arrives at `dst`.
    Deliver {
        /// The arriving frame.
        frame: Packet,
    },
    /// Retransmission timer for request `id` fires (armed only when the
    /// fault subsystem's reliability layer is enabled).
    RetxCheck {
        /// The request id the timer guards.
        id: u64,
        /// Timer generation: a check whose `attempt` no longer matches
        /// the request's state is stale (a retransmission already
        /// re-armed a newer timer) and is ignored.
        attempt: u32,
    },
    /// Periodic trace sample.
    Sample,
    /// End of warmup: reset measurement baselines.
    StartMeasure,
    /// Periodic invariant check (armed when a watchdog is installed).
    Watchdog,
    /// Fleet coordinator evaluation epoch (armed with a coordinator).
    FleetEpoch,
    /// A backend's park transition completes.
    FleetParkDone {
        /// Backend index.
        backend: usize,
        /// Transition generation (stale generations are ignored).
        gen: u32,
    },
    /// A backend's unpark transition completes.
    FleetUnparkDone {
        /// Backend index.
        backend: usize,
        /// Transition generation (stale generations are ignored).
        gen: u32,
    },
    /// A scheduled machine failure fires: the backend starts misbehaving
    /// per `mode`. The LB is *not* told — it detects the failure through
    /// its prober or request timeouts, like a real balancer.
    BackendFail {
        /// Backend index.
        backend: usize,
        /// How the machine misbehaves from now on.
        mode: FailureMode,
    },
    /// A failed backend restarts healthy (its reinstatement still waits
    /// for the prober's rejoin threshold).
    BackendRestart {
        /// Backend index.
        backend: usize,
    },
    /// The LB's active health-prober tick (armed when a prober is
    /// configured).
    FleetHealth,
    /// A correlated fault window opens: every member of domain `domain`
    /// (an index into the schedule) gets the window's link-level
    /// impairment installed on the fabric switch.
    DomainFail {
        /// Index into the domain schedule.
        domain: usize,
    },
    /// A correlated fault window closes: the domain's members heal.
    DomainHeal {
        /// Index into the domain schedule.
        domain: usize,
    },
}

/// The fleet layer of the cluster: the LB node plus its optional power
/// coordinator.
struct FleetState {
    lb: LoadBalancer,
    coordinator: Option<FleetCoordinator>,
    /// Per-frame forwarding latency through the LB.
    latency: SimDuration,
    /// The prober policy driving the `FleetHealth` tick (`None` disables
    /// the tick entirely — the no-faults fast path schedules nothing).
    health: Option<HealthConfig>,
    /// The machine-failure schedule (drives `BackendFail`/`BackendRestart`
    /// events and the fail-slow multiplier).
    faults: FailureSchedule,
    /// The correlated failure-domain schedule (drives
    /// `DomainFail`/`DomainHeal` events).
    domains: DomainSchedule,
    /// Ground truth: which backends are currently inside an open
    /// *partition* window. Probes to a partitioned backend fail (the
    /// prober's TCP handshake crosses the fabric); brownouts do not
    /// affect probes.
    partitioned: Vec<bool>,
    /// Ground truth: what is actually wrong with each machine right now.
    /// The LB never reads this — probes and timeouts are judged against
    /// it, so detection latency is real (interval × threshold).
    down: Vec<Option<FailureMode>>,
    /// Fault windows currently open (metrics only).
    open_windows: u32,
    /// Frames dropped at dead machines (either direction). With the
    /// reliability layer armed these all resolve via retransmission
    /// failover or an explicit loss — never silently.
    dead_frames: u64,
    /// Metric-emission cursor for the failover counter (only touched
    /// inside `simtrace::is_enabled()` blocks).
    last_failovers: u64,
}

/// Client-side retransmission state for one in-flight request.
#[derive(Debug, Clone)]
struct RetxState {
    /// The original request frame; retransmissions resend a clone, with
    /// `sent_at` untouched so latency spans every retransmission.
    frame: Packet,
    /// Retransmissions performed so far (also the live timer generation).
    attempt: u32,
}

/// Whole-run fault-injection and recovery accounting.
///
/// The identity `issued == completed + lost + rejected + in_flight`
/// holds at any instant (and at the horizon): no request vanishes
/// silently — every issued request is served, reported lost, or
/// explicitly rejected by admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSummary {
    /// Frames the switch's impairment layer dropped as random loss.
    pub injected_losses: u64,
    /// Frames dropped as corruption (failed FCS at the receiver).
    pub injected_corruptions: u64,
    /// Frames held back for reordering.
    pub injected_reorders: u64,
    /// Request frames the clients retransmitted.
    pub retransmits: u64,
    /// Requests declared lost after exhausting retransmissions.
    pub lost_requests: u64,
    /// Retransmitted duplicates the server suppressed while the original
    /// was still being served.
    pub dup_suppressed: u64,
    /// Responses the server replayed for already-answered requests.
    pub resp_replays: u64,
    /// Latency-critical requests issued over the whole run (only counted
    /// while the reliability layer is armed).
    pub issued_total: u64,
    /// Requests whose response fully reassembled at the client.
    pub completed_total: u64,
    /// Requests the server rejected with a 503 under overload.
    pub rejected_total: u64,
    /// Requests still awaiting a response at the horizon.
    pub in_flight: u64,
}

/// The simulated four-node (or N-node) cluster.
pub struct ClusterSim {
    servers: Vec<Kernel>,
    clients: Vec<OpenLoopClient>,
    /// Client indices whose traffic is background (not latency-tracked).
    background: Vec<bool>,
    tracker: ResponseTracker,
    switch: Switch,
    collector: Option<TraceCollector>,
    finished_traces: Option<Traces>,
    sample_period: SimDuration,
    load_end: SimTime,
    measure_start: SimTime,
    measuring: bool,
    energy_baseline: EnergyMeter,
    offered_measured: u64,
    faults: FaultConfig,
    retx: HashMap<u64, RetxState>,
    reassembly: HashMap<u64, Reassembly>,
    retransmits: u64,
    lost_requests: u64,
    issued_total: u64,
    completed_total: u64,
    rejected_total: u64,
    misroutes: u64,
    watchdog: Option<Watchdog>,
    fleet: Option<FleetState>,
    /// Full-population per-stage latency attribution (measurement
    /// sideband — never consulted by the simulated system).
    breakdown: BreakdownCollector,
    /// Collection gate; the sideband stamps are written regardless, so
    /// on vs off is bit-identical on simulated results.
    collect_breakdown: bool,
    /// Attribution records of final response frames seen before their
    /// request fully reassembled (reordering can complete a request on a
    /// non-final segment).
    stage_cache: HashMap<u64, netsim::StageRecord>,
}

impl std::fmt::Debug for ClusterSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSim")
            .field("servers", &self.servers)
            .field("clients", &self.clients.len())
            .field("measuring", &self.measuring)
            .finish()
    }
}

impl ClusterSim {
    /// Assembles the cluster. `background[i]` marks client `i` as
    /// non-latency-critical side traffic.
    ///
    /// # Panics
    ///
    /// Panics if `background` and `clients` lengths differ, or if no
    /// server is supplied. [`try_new`](Self::try_new) reports the same
    /// conditions as a typed [`ConfigError`] instead.
    #[must_use]
    pub fn new(
        server: Kernel,
        clients: Vec<OpenLoopClient>,
        background: Vec<bool>,
        trace: Option<TraceConfig>,
    ) -> Self {
        Self::with_servers(vec![server], clients, background, trace)
    }

    /// [`new`](Self::new) with typed validation instead of panics.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when `background` and `clients` lengths
    /// differ.
    pub fn try_new(
        server: Kernel,
        clients: Vec<OpenLoopClient>,
        background: Vec<bool>,
        trace: Option<TraceConfig>,
    ) -> Result<Self, ConfigError> {
        Self::try_with_servers(vec![server], clients, background, trace)
    }

    /// Assembles a cluster with several server nodes (§7's datacenter
    /// discussion: clients are distributed across servers and overall
    /// load is imbalanced).
    ///
    /// # Panics
    ///
    /// Panics if `background` and `clients` lengths differ, or if no
    /// server is supplied. [`try_with_servers`](Self::try_with_servers)
    /// reports the same conditions as a typed [`ConfigError`] instead.
    #[must_use]
    pub fn with_servers(
        servers: Vec<Kernel>,
        clients: Vec<OpenLoopClient>,
        background: Vec<bool>,
        trace: Option<TraceConfig>,
    ) -> Self {
        match Self::try_with_servers(servers, clients, background, trace) {
            Ok(sim) => sim,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`with_servers`](Self::with_servers) with typed validation: the
    /// structural constraints are reported as a [`ConfigError`] naming
    /// the offending argument instead of panicking in library code.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when `background` and `clients` lengths
    /// differ, or when `servers` is empty.
    pub fn try_with_servers(
        servers: Vec<Kernel>,
        clients: Vec<OpenLoopClient>,
        background: Vec<bool>,
        trace: Option<TraceConfig>,
    ) -> Result<Self, ConfigError> {
        if clients.len() != background.len() {
            return Err(ConfigError::new(
                "background",
                format!(
                    "flag per client required: {} clients, {} flags",
                    clients.len(),
                    background.len()
                ),
            ));
        }
        if servers.is_empty() {
            return Err(ConfigError::new("servers", "at least one server required"));
        }
        let mut switch = Switch::new(SimDuration::from_nanos(500));
        for srv in &servers {
            switch.attach(srv.node(), netsim::Link::ten_gbe(), netsim::Link::ten_gbe());
        }
        for c in &clients {
            switch.attach(
                c.config().me,
                netsim::Link::ten_gbe(),
                netsim::Link::ten_gbe(),
            );
        }
        let sample_period = trace.map_or(SimDuration::from_ms(1), |t| t.window);
        Ok(ClusterSim {
            servers,
            clients,
            background,
            tracker: ResponseTracker::new(),
            switch,
            collector: trace.map(TraceCollector::new),
            finished_traces: None,
            sample_period,
            load_end: SimTime::MAX,
            measure_start: SimTime::ZERO,
            measuring: true,
            energy_baseline: EnergyMeter::new(),
            offered_measured: 0,
            faults: FaultConfig::none(),
            retx: HashMap::new(),
            reassembly: HashMap::new(),
            retransmits: 0,
            lost_requests: 0,
            issued_total: 0,
            completed_total: 0,
            rejected_total: 0,
            misroutes: 0,
            watchdog: None,
            fleet: None,
            breakdown: BreakdownCollector::new(),
            collect_breakdown: true,
            stage_cache: HashMap::new(),
        })
    }

    /// Enables or disables per-stage latency collection (builder style).
    /// The path stamps are written either way; this only gates the
    /// client-side accumulation, so simulated results are bit-identical.
    #[must_use]
    pub fn with_breakdown(mut self, enabled: bool) -> Self {
        self.collect_breakdown = enabled;
        self
    }

    /// Installs the fault-injection subsystem (builder style): the
    /// switch's impairment layer plus, when the retransmission policy is
    /// enabled, the client-side reliability timers. An inert
    /// [`FaultConfig::none`] leaves the simulation byte-identical.
    #[must_use]
    pub fn with_fault_injection(mut self, faults: FaultConfig) -> Self {
        self.switch.set_faults(faults);
        self.faults = faults;
        self
    }

    /// Installs the fleet layer (builder style): attaches the LB node
    /// at `vip` to the switch and fronts every server with it. Clients
    /// should address the VIP; the LB dispatches per `cfg` and, when a
    /// coordinator is configured, parks/unparks backends as fleet load
    /// moves.
    #[must_use]
    pub fn with_fleet(mut self, vip: NodeId, cfg: &FleetConfig) -> Self {
        self.switch
            .attach(vip, netsim::Link::ten_gbe(), netsim::Link::ten_gbe());
        let backends: Vec<NodeId> = self.servers.iter().map(Kernel::node).collect();
        let down = vec![None; backends.len()];
        let partitioned = vec![false; backends.len()];
        self.fleet = Some(FleetState {
            lb: LoadBalancer::new(vip, backends, cfg),
            coordinator: cfg.coordinator.clone().map(FleetCoordinator::new),
            latency: cfg.lb_latency,
            health: cfg.effective_health(),
            faults: cfg.faults.clone(),
            domains: cfg.domains.clone(),
            partitioned,
            open_windows: 0,
            down,
            dead_frames: 0,
            last_failovers: 0,
        });
        self
    }

    /// Installs the runtime invariant watchdog (builder style). The
    /// watchdog is a pure observer — results are byte-identical with it
    /// on or off — and records structured
    /// [`InvariantViolation`](crate::watchdog::InvariantViolation)s.
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: Watchdog) -> Self {
        self.watchdog = Some(watchdog);
        self
    }

    /// Seeds the initial events: kernel boot, staggered client bursts,
    /// warmup boundary and trace sampling. Call once before running.
    pub fn initial_events(
        &mut self,
        warmup: SimDuration,
        load_end: SimTime,
    ) -> Vec<(SimTime, ClusterEvent)> {
        self.load_end = load_end;
        if !warmup.is_zero() {
            self.measuring = false;
        }
        let mut events = Vec::new();
        for si in 0..self.servers.len() {
            let node = self.servers[si].node();
            let fx = self.servers[si].init(SimTime::ZERO);
            for (t, e) in fx.schedule {
                events.push((t, ClusterEvent::Server(node, e)));
            }
        }
        // Stagger client start offsets so the three independent load
        // generators do not begin phase-locked.
        let n = self.clients.len().max(1) as u64;
        for (i, c) in self.clients.iter().enumerate() {
            let offset = c.config().period.as_nanos() * i as u64 / n;
            events.push((
                SimTime::from_nanos(offset),
                ClusterEvent::ClientBurst { idx: i },
            ));
        }
        if !warmup.is_zero() {
            events.push((SimTime::ZERO + warmup, ClusterEvent::StartMeasure));
        }
        if self.collector.is_some() {
            events.push((SimTime::ZERO + self.sample_period, ClusterEvent::Sample));
        }
        if let Some(wd) = &self.watchdog {
            events.push((SimTime::ZERO + wd.period(), ClusterEvent::Watchdog));
        }
        if let Some(co) = self.fleet.as_ref().and_then(|f| f.coordinator.as_ref()) {
            events.push((SimTime::ZERO + co.epoch_period(), ClusterEvent::FleetEpoch));
        }
        if let Some(fs) = &self.fleet {
            for spec in &fs.faults.specs {
                events.push((
                    spec.at,
                    ClusterEvent::BackendFail {
                        backend: spec.backend,
                        mode: spec.mode,
                    },
                ));
                if let Some(d) = spec.restart_after {
                    events.push((
                        spec.at + d,
                        ClusterEvent::BackendRestart {
                            backend: spec.backend,
                        },
                    ));
                }
            }
            for (i, spec) in fs.domains.domains.iter().enumerate() {
                events.push((spec.at, ClusterEvent::DomainFail { domain: i }));
                events.push((spec.heals_at(), ClusterEvent::DomainHeal { domain: i }));
            }
            if let Some(h) = &fs.health {
                events.push((SimTime::ZERO + h.interval, ClusterEvent::FleetHealth));
            }
        }
        // Pre-register the drop/recovery and overload counters so trace
        // CSV exports always carry the columns, even for runs where no
        // fault fires and nothing is shed.
        if simtrace::is_enabled() {
            for (component, name) in [
                ("nic", "rx_drops"),
                ("net", "fault_losses"),
                ("net", "fault_corruptions"),
                ("net", "fault_reorders"),
                ("cluster", "retransmits"),
                ("cluster", "lost_requests"),
                ("kernel", "rejected"),
                ("watchdog", "checks"),
            ] {
                simtrace::metric_add(component, name, 0, 0.0);
            }
            simtrace::metric_set("kernel", "queue_depth", 0, 0.0);
            simtrace::metric_set("cluster", "goodput", 0, 0.0);
            if let Some(fs) = &self.fleet {
                simtrace::metric_add("fleet", "dispatched", 0, 0.0);
                simtrace::metric_set("fleet", "lb_depth", 0, 0.0);
                simtrace::metric_set("fleet", "parked_backends", 0, 0.0);
                simtrace::metric_set("fleet", "active_backends", 0, 0.0);
                if fs.health.is_some() {
                    for name in [
                        "failovers",
                        "health_probes",
                        "health_fails",
                        "health_ejects",
                        "health_rejoins",
                        "dead_frames",
                    ] {
                        simtrace::metric_add("fleet", name, 0, 0.0);
                    }
                }
                if fs.domains.enabled() {
                    for name in ["partition_drops", "brownout_drops", "brownout_jitter_ns"] {
                        simtrace::metric_add("chaos", name, 0, 0.0);
                    }
                    simtrace::metric_set("chaos", "open_windows", 0, 0.0);
                }
                for i in 0..fs
                    .lb
                    .backend_count()
                    .min(fleetsim::metrics::MAX_TRACKED_BACKENDS)
                {
                    if let Some(name) = fleetsim::metrics::dispatched(i) {
                        simtrace::metric_add("fleet", name, 0, 0.0);
                    }
                    if let Some(name) = fleetsim::metrics::outstanding(i) {
                        simtrace::metric_set("fleet", name, 0, 0.0);
                    }
                    if let Some(name) = fleetsim::metrics::parked_ns(i) {
                        simtrace::metric_add("fleet", name, 0, 0.0);
                    }
                }
            }
        }
        events
    }

    fn route(&mut self, now: SimTime, frame: Packet, queue: &mut EventQueue<ClusterEvent>) {
        let delivery = self
            .switch
            .route(now, frame.src(), frame.dst(), frame.wire_len());
        match delivery {
            Ok(Delivery::Deliver(arrival)) => {
                queue.push(arrival, ClusterEvent::Deliver { frame });
            }
            // The frame vanishes in the fabric; recovery, if any, comes
            // from the retransmission timers.
            Ok(Delivery::Dropped(_)) => {}
            // A frame addressed to a node the switch does not know: drop
            // it and account the misroute — the watchdog surfaces it as a
            // structured Routing violation instead of a panic.
            Err(_) => {
                self.misroutes += 1;
                if simtrace::is_enabled() {
                    simtrace::instant_args(
                        "cluster",
                        "misroute",
                        now.as_nanos(),
                        &[
                            simtrace::arg("src", u64::from(frame.src().0)),
                            simtrace::arg("dst", u64::from(frame.dst().0)),
                        ],
                    );
                }
            }
        }
    }

    fn apply_effects(
        &mut self,
        now: SimTime,
        node: NodeId,
        fx: Effects,
        queue: &mut EventQueue<ClusterEvent>,
    ) {
        for (t, e) in fx.schedule {
            queue.push(t, ClusterEvent::Server(node, e));
        }
        for frame in fx.transmit {
            let bytes = frame.wire_len() as f64;
            if let Some(tr) = self.collector.as_mut() {
                tr.on_tx(now, bytes);
            }
            simtrace::metric_add("cluster", "bw_tx", now.as_nanos(), bytes);
            self.route(now, frame, queue);
        }
    }

    fn on_client_burst(&mut self, now: SimTime, idx: usize, queue: &mut EventQueue<ClusterEvent>) {
        let (frames, next) = self.clients[idx].next_burst(now);
        let is_bg = self.background[idx];
        for frame in frames {
            if !is_bg {
                if let Some(id) = frame.meta().request_id {
                    self.tracker.note_sent(id);
                    if self.measuring {
                        self.offered_measured += 1;
                    }
                    if self.faults.retx.enabled {
                        // Arm the reliability layer: a retransmission
                        // timer plus a response reassembler. Background
                        // traffic stays best-effort.
                        self.issued_total += 1;
                        self.retx.insert(
                            id,
                            RetxState {
                                frame: frame.clone(),
                                attempt: 0,
                            },
                        );
                        self.reassembly.insert(id, Reassembly::new());
                        queue.push(
                            now + self.faults.retx.rto_for(0),
                            ClusterEvent::RetxCheck { id, attempt: 0 },
                        );
                    }
                }
            }
            self.route(now, frame, queue);
        }
        if next <= self.load_end {
            queue.push(next, ClusterEvent::ClientBurst { idx });
        }
    }

    fn server_index(&self, node: NodeId) -> Option<usize> {
        self.servers.iter().position(|s| s.node() == node)
    }

    fn on_deliver(&mut self, now: SimTime, frame: Packet, queue: &mut EventQueue<ClusterEvent>) {
        if self
            .fleet
            .as_ref()
            .is_some_and(|f| f.lb.vip() == frame.dst())
        {
            self.on_lb_frame(now, frame, queue);
            return;
        }
        if let Some(si) = self.server_index(frame.dst()) {
            // A crashed machine's NIC is dark: frames already in the
            // fabric when it died (or forwarded before the prober caught
            // up) land on the floor. Recovery comes from retransmission
            // failover, never silently.
            if self
                .fleet
                .as_ref()
                .is_some_and(|f| f.down.get(si).copied().flatten() == Some(FailureMode::Stop))
            {
                self.note_dead_frame(now);
                return;
            }
            let bytes = frame.wire_len() as f64;
            if let Some(tr) = self.collector.as_mut() {
                tr.on_rx(now, bytes);
            }
            simtrace::metric_add("cluster", "bw_rx", now.as_nanos(), bytes);
            let node = self.servers[si].node();
            let fx = self.servers[si].handle(now, NodeEvent::FrameFromWire(frame));
            self.apply_effects(now, node, fx, queue);
        } else if self.faults.retx.enabled {
            self.on_client_response(now, &frame);
        } else {
            // Reliability off: nothing retransmits, so every 503 is
            // first-and-only — count it here (the tracker handles the
            // measured-window resolution below).
            if frame.meta().rejected && frame.meta().request_id.is_some() {
                self.rejected_total += 1;
            }
            if frame.meta().sent_at >= self.measure_start && self.measuring {
                self.tracker.on_response_frame(now, &frame);
                self.note_final_response(now, &frame.meta());
            }
        }
    }

    /// Accounts a frame that died at (or from) a failed machine.
    fn note_dead_frame(&mut self, now: SimTime) {
        if let Some(fs) = self.fleet.as_mut() {
            fs.dead_frames += 1;
            if simtrace::is_enabled() {
                simtrace::metric_add("fleet", "dead_frames", now.as_nanos(), 1.0);
            }
        }
    }

    /// The VIP receive path: the LB rewrites and forwards frames after
    /// its per-frame latency. Requests (from clients) pick a backend per
    /// the dispatch policy; responses (from backends) route back to the
    /// originating client and retire the conntrack entry.
    fn on_lb_frame(&mut self, now: SimTime, frame: Packet, queue: &mut EventQueue<ClusterEvent>) {
        let Some(mut fs) = self.fleet.take() else {
            return;
        };
        let is_response = fs.lb.backend_index(frame.src()).is_some();
        let mut slow_extra = SimDuration::ZERO;
        let forward = if let Some(idx) = fs.lb.backend_index(frame.src()) {
            // A crashed machine's responses died with it; a hung machine
            // admits requests but never answers. Either way the frame
            // never reaches the client — the conntrack entry stays open
            // until retransmission failover or loss resolves it.
            if matches!(fs.down[idx], Some(FailureMode::Stop | FailureMode::Hang)) {
                fs.dead_frames += 1;
                if simtrace::is_enabled() {
                    simtrace::metric_add("fleet", "dead_frames", now.as_nanos(), 1.0);
                }
                self.fleet = Some(fs);
                return;
            }
            if fs.health.is_some() {
                fs.lb.note_ok(idx);
            }
            let resp = fs.lb.on_response(frame);
            if let Some(drained) = resp.drained {
                if let Some(co) = fs.coordinator.as_mut() {
                    if let Some(action) = co.on_drained(now, &mut fs.lb, drained) {
                        Self::schedule_fleet_action(now, action, queue);
                    }
                }
            }
            if simtrace::is_enabled() {
                let t = now.as_nanos();
                simtrace::metric_set("fleet", "lb_depth", t, fs.lb.outstanding() as f64);
                if let Some(name) = fleetsim::metrics::outstanding(idx) {
                    simtrace::metric_set("fleet", name, t, fs.lb.outstanding_of(idx) as f64);
                }
            }
            resp.forward
        } else {
            let (idx, out) = fs.lb.dispatch(frame);
            // Fail-slow: the machine serves at a multiple of its normal
            // service time. Modelled coarsely as an extra forwarding
            // delay at the network boundary (the LB cannot know backend
            // service times; what matters is that the slow machine's
            // requests take visibly longer and trip client RTOs).
            if fs.down.get(idx).copied().flatten() == Some(FailureMode::Slow) {
                let ns = fs.latency.as_nanos() as f64 * fs.faults.slow_factor;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                {
                    slow_extra = SimDuration::from_nanos(ns as u64);
                }
            }
            if simtrace::is_enabled() {
                let t = now.as_nanos();
                simtrace::metric_add("fleet", "dispatched", t, 1.0);
                simtrace::metric_set("fleet", "lb_depth", t, fs.lb.outstanding() as f64);
                if let Some(name) = fleetsim::metrics::dispatched(idx) {
                    simtrace::metric_add("fleet", name, t, 1.0);
                }
                if let Some(name) = fleetsim::metrics::outstanding(idx) {
                    simtrace::metric_set("fleet", name, t, fs.lb.outstanding_of(idx) as f64);
                }
                let f = fs.lb.failovers();
                if f > fs.last_failovers {
                    simtrace::metric_add("fleet", "failovers", t, (f - fs.last_failovers) as f64);
                    fs.last_failovers = f;
                }
            }
            Some(out)
        };
        if let Some(mut f) = forward {
            // Attribution: the LB's forwarding hold, per direction. The
            // extra switch hop's transit stays in the net stages.
            let hold = ns32((fs.latency + slow_extra).as_nanos());
            let st = &mut f.meta_mut().stages;
            if is_response {
                st.lb_out_ns = st.lb_out_ns.saturating_add(hold);
            } else {
                st.lb_in_ns = st.lb_in_ns.saturating_add(hold);
            }
            self.route(now + fs.latency + slow_extra, f, queue);
        }
        self.fleet = Some(fs);
    }

    /// Turns a coordinator action into its completion event (and flushes
    /// the parked-time metric an unpark reveals).
    fn schedule_fleet_action(
        now: SimTime,
        action: FleetAction,
        queue: &mut EventQueue<ClusterEvent>,
    ) {
        match action {
            FleetAction::ParkDone { backend, gen, at } => {
                queue.push(at, ClusterEvent::FleetParkDone { backend, gen });
            }
            FleetAction::UnparkDone {
                backend,
                gen,
                at,
                parked_for,
            } => {
                if simtrace::is_enabled() && !parked_for.is_zero() {
                    if let Some(name) = fleetsim::metrics::parked_ns(backend) {
                        simtrace::metric_add("fleet", name, now.as_nanos(), {
                            parked_for.as_nanos() as f64
                        });
                    }
                }
                queue.push(at, ClusterEvent::FleetUnparkDone { backend, gen });
            }
        }
    }

    /// A coordinator epoch: re-estimate fleet load, park or unpark
    /// backends, and re-arm the epoch timer.
    fn on_fleet_epoch(&mut self, now: SimTime, queue: &mut EventQueue<ClusterEvent>) {
        let Some(mut fs) = self.fleet.take() else {
            return;
        };
        if let Some(co) = fs.coordinator.as_mut() {
            for action in co.epoch(now, &mut fs.lb) {
                Self::schedule_fleet_action(now, action, queue);
            }
            queue.push(now + co.epoch_period(), ClusterEvent::FleetEpoch);
            if simtrace::is_enabled() {
                let t = now.as_nanos();
                simtrace::metric_set("fleet", "active_backends", t, fs.lb.committed() as f64);
                simtrace::metric_set("fleet", "parked_backends", t, fs.lb.parked_count() as f64);
            }
        }
        self.fleet = Some(fs);
    }

    /// A park or unpark transition completed (generation-guarded: stale
    /// completions from cancelled transitions are ignored).
    fn on_fleet_transition_done(&mut self, now: SimTime, backend: usize, gen: u32, park: bool) {
        let Some(mut fs) = self.fleet.take() else {
            return;
        };
        if let Some(co) = fs.coordinator.as_mut() {
            let landed = if park {
                co.park_done(now, &mut fs.lb, backend, gen)
            } else {
                co.unpark_done(&mut fs.lb, backend, gen)
            };
            if landed && simtrace::is_enabled() {
                let t = now.as_nanos();
                simtrace::metric_set("fleet", "parked_backends", t, fs.lb.parked_count() as f64);
                simtrace::metric_set("fleet", "active_backends", t, fs.lb.committed() as f64);
            }
        }
        self.fleet = Some(fs);
    }

    /// A scheduled machine failure fires: record ground truth. The LB is
    /// not told — detection rides the prober (crash) or request timeouts
    /// (hang/slow), so detection latency is interval × threshold, like a
    /// real balancer's.
    fn on_backend_fail(&mut self, now: SimTime, backend: usize, mode: FailureMode) {
        if let Some(fs) = self.fleet.as_mut() {
            if let Some(slot) = fs.down.get_mut(backend) {
                *slot = Some(mode);
            }
            if simtrace::is_enabled() {
                simtrace::instant_args(
                    "fleet",
                    "backend_fail",
                    now.as_nanos(),
                    &[simtrace::arg("backend", backend as u64)],
                );
            }
        }
    }

    /// A failed machine restarts healthy. Reinstatement into rotation
    /// still waits for the prober's rejoin threshold.
    fn on_backend_restart(&mut self, now: SimTime, backend: usize) {
        if let Some(fs) = self.fleet.as_mut() {
            if let Some(slot) = fs.down.get_mut(backend) {
                *slot = None;
            }
            if simtrace::is_enabled() {
                simtrace::instant_args(
                    "fleet",
                    "backend_restart",
                    now.as_nanos(),
                    &[simtrace::arg("backend", backend as u64)],
                );
            }
        }
    }

    /// A correlated fault window opens: install the domain's impairment
    /// on the fabric switch for every member node and, for a partition,
    /// record the ground truth the prober is judged against. The LB is
    /// never told directly — like machine failures, domain faults are
    /// detected through probes and request timeouts.
    fn on_domain_fail(&mut self, now: SimTime, domain: usize) {
        let Some(fs) = self.fleet.as_mut() else {
            return;
        };
        let Some(spec) = fs.domains.domains.get(domain) else {
            return;
        };
        let members: Vec<NodeId> = spec
            .backends
            .iter()
            .filter_map(|&b| self.servers.get(b).map(Kernel::node))
            .collect();
        self.switch
            .fail_domain(&members, spec.impairment, fs.domains.seed);
        if matches!(spec.impairment, netsim::DomainImpairment::Partition) {
            for &b in &spec.backends {
                if let Some(slot) = fs.partitioned.get_mut(b) {
                    *slot = true;
                }
            }
        }
        fs.open_windows += 1;
        if simtrace::is_enabled() {
            let t = now.as_nanos();
            simtrace::instant_args(
                "chaos",
                "domain_fail",
                t,
                &[
                    simtrace::arg("domain", domain as u64),
                    simtrace::arg("members", spec.backends.len() as u64),
                ],
            );
            simtrace::metric_set("chaos", "open_windows", t, f64::from(fs.open_windows));
        }
    }

    /// A correlated fault window closes: heal the members on the switch
    /// and clear the partition ground truth (reinstatement into rotation
    /// still waits for the prober's rejoin threshold).
    fn on_domain_heal(&mut self, now: SimTime, domain: usize) {
        let Some(fs) = self.fleet.as_mut() else {
            return;
        };
        let Some(spec) = fs.domains.domains.get(domain) else {
            return;
        };
        let members: Vec<NodeId> = spec
            .backends
            .iter()
            .filter_map(|&b| self.servers.get(b).map(Kernel::node))
            .collect();
        self.switch.heal_domain(&members);
        for &b in &spec.backends {
            if let Some(slot) = fs.partitioned.get_mut(b) {
                *slot = false;
            }
        }
        fs.open_windows = fs.open_windows.saturating_sub(1);
        if simtrace::is_enabled() {
            let t = now.as_nanos();
            simtrace::instant_args(
                "chaos",
                "domain_heal",
                t,
                &[simtrace::arg("domain", domain as u64)],
            );
            simtrace::metric_set("chaos", "open_windows", t, f64::from(fs.open_windows));
        }
    }

    /// The active prober's tick: probe every non-parked backend, judge
    /// the result against the machine's ground-truth state, and let the
    /// LB apply its K-strike ejection/rejoin thresholds. Probes are not
    /// modelled as frames — their bandwidth is negligible next to request
    /// traffic, and the quantity that matters, detection latency
    /// (interval × threshold), is preserved exactly.
    fn on_fleet_health(&mut self, now: SimTime, queue: &mut EventQueue<ClusterEvent>) {
        let Some(mut fs) = self.fleet.take() else {
            return;
        };
        let Some(h) = fs.health else {
            self.fleet = Some(fs);
            return;
        };
        let before = (
            fs.lb.health_probes(),
            fs.lb.probe_failures(),
            fs.lb.ejections(),
            fs.lb.rejoins(),
        );
        for idx in 0..fs.lb.backend_count() {
            if !fs.lb.probeable(idx) {
                continue;
            }
            let ok = fs.down[idx].is_none_or(FailureMode::probe_succeeds) && !fs.partitioned[idx];
            let _ = fs.lb.record_probe(now, idx, ok);
        }
        if simtrace::is_enabled() {
            let t = now.as_nanos();
            let emit = |name: &'static str, prev: u64, cur: u64| {
                if cur > prev {
                    simtrace::metric_add("fleet", name, t, (cur - prev) as f64);
                }
            };
            emit("health_probes", before.0, fs.lb.health_probes());
            emit("health_fails", before.1, fs.lb.probe_failures());
            emit("health_ejects", before.2, fs.lb.ejections());
            emit("health_rejoins", before.3, fs.lb.rejoins());
        }
        queue.push(now + h.interval, ClusterEvent::FleetHealth);
        self.fleet = Some(fs);
    }

    /// Derives the reported per-stage vector from a completing response's
    /// attribution record. The residual stages (`net_in`, `net_out`)
    /// absorb switch/wire transit, so the vector tiles the
    /// client-observed latency exactly: Σ stages == `now - sent_at`.
    fn stage_vector(
        now: SimTime,
        sent_at: SimTime,
        st: &netsim::StageRecord,
    ) -> ([u32; STAGE_COUNT], u64) {
        let sent = sent_at.as_nanos();
        let total = now.as_nanos().saturating_sub(sent);
        let arrival = st.arrival.as_nanos();
        let mut v = [0u32; STAGE_COUNT];
        v[stage::NET_IN] = ns32(
            arrival
                .saturating_sub(sent)
                .saturating_sub(u64::from(st.retx_ns))
                .saturating_sub(u64::from(st.lb_in_ns)),
        );
        v[stage::LB] = st.lb_in_ns.saturating_add(st.lb_out_ns);
        v[stage::DMA] = ns32(st.dma_done.as_nanos().saturating_sub(arrival));
        v[stage::MODERATION] = st.moderation_ns;
        v[stage::WAKE] = st.wake_ns;
        v[stage::STACK] = st.stack_ns;
        v[stage::POLL_WAIT] = st.poll_wait_ns;
        v[stage::RQ_WAIT] = st.rq_wait_ns;
        v[stage::CPU] = st.cpu_ns;
        v[stage::IO] = st.io_ns;
        v[stage::TX] = st.tx_ns;
        v[stage::NET_OUT] = ns32(
            now.as_nanos()
                .saturating_sub(st.last_tx.as_nanos())
                .saturating_sub(u64::from(st.lb_out_ns)),
        );
        v[stage::RETX] = st.retx_ns.saturating_add(st.replay_ns);
        (v, total)
    }

    /// Records one completed request into the breakdown population and,
    /// when tracing, emits per-stage async spans tiling `[sent_at, now]`
    /// in canonical stage order.
    fn record_completion(
        &mut self,
        now: SimTime,
        rid: u64,
        sent_at: SimTime,
        st: &netsim::StageRecord,
    ) {
        if !self.collect_breakdown {
            return;
        }
        let (v, total) = Self::stage_vector(now, sent_at, st);
        self.breakdown.record(v, total);
        if simtrace::is_enabled() {
            const ORDER: [usize; STAGE_COUNT] = [
                stage::RETX,
                stage::NET_IN,
                stage::LB,
                stage::DMA,
                stage::MODERATION,
                stage::WAKE,
                stage::STACK,
                stage::POLL_WAIT,
                stage::RQ_WAIT,
                stage::CPU,
                stage::IO,
                stage::TX,
                stage::NET_OUT,
            ];
            let mut cursor = sent_at.as_nanos();
            for &i in &ORDER {
                let d = u64::from(v[i]);
                if d == 0 {
                    continue;
                }
                let id = simtrace::async_begin(
                    "latency",
                    STAGE_NAMES[i],
                    cursor,
                    &[simtrace::arg("id", rid)],
                );
                simtrace::async_end("latency", STAGE_NAMES[i], cursor + d, id);
                cursor += d;
            }
        }
    }

    /// Shared tail of both client receive paths: a final, served response
    /// frame completes its request for attribution purposes.
    fn note_final_response(&mut self, now: SimTime, meta: &PacketMeta) {
        if let Some(rid) = meta.request_id {
            if meta.is_final && !meta.rejected {
                self.record_completion(now, rid, meta.sent_at, &meta.stages);
            }
        }
    }

    /// Client-side receive path of the reliability layer: response
    /// segments feed the request's reassembler; duplicates (from response
    /// replays or reordering) are absorbed, and the request completes
    /// exactly once, when every segment has arrived.
    fn on_client_response(&mut self, now: SimTime, frame: &Packet) {
        let meta = frame.meta();
        let Some(rid) = meta.request_id else { return };
        if meta.rejected {
            // A 503: the server refused the request under overload. The
            // request is *resolved* (no retransmission, no latency
            // sample); a stale replay after resolution is ignored.
            if self.retx.remove(&rid).is_some() {
                self.rejected_total += 1;
                self.reassembly.remove(&rid);
                self.stage_cache.remove(&rid);
                if meta.sent_at >= self.measure_start && self.measuring {
                    self.tracker.reject(rid);
                }
            }
            return;
        }
        let Some(reasm) = self.reassembly.get_mut(&rid) else {
            // Unarmed traffic (background requests) stays best-effort and
            // keeps the legacy per-frame accounting.
            if meta.sent_at >= self.measure_start && self.measuring {
                self.tracker.on_response_frame(now, frame);
                self.note_final_response(now, &meta);
            }
            return;
        };
        // Remember the final frame's attribution record: reordering can
        // complete the request on a *non-final* segment.
        if meta.is_final {
            self.stage_cache.insert(rid, meta.stages);
        }
        match reasm.on_segment(meta.seq, meta.is_final) {
            SegmentStatus::Completed => {
                // Cancels the pending timer: the next RetxCheck finds no
                // state and is a no-op.
                self.retx.remove(&rid);
                self.completed_total += 1;
                let stages = self.stage_cache.remove(&rid);
                if meta.sent_at >= self.measure_start && self.measuring {
                    self.tracker.complete(now, rid, meta.sent_at);
                    if let Some(st) = stages {
                        self.record_completion(now, rid, meta.sent_at, &st);
                    }
                }
            }
            SegmentStatus::Fresh | SegmentStatus::Duplicate => {}
        }
    }

    /// A retransmission timer fired: resend the request (with backoff) or
    /// declare it lost after the final attempt.
    fn on_retx_check(
        &mut self,
        now: SimTime,
        id: u64,
        attempt: u32,
        queue: &mut EventQueue<ClusterEvent>,
    ) {
        let Some(state) = self.retx.get_mut(&id) else {
            return; // Completed; the timer outlived the request.
        };
        if state.attempt != attempt {
            return; // Stale generation; a newer timer is armed.
        }
        let retx = self.faults.retx;
        if state.attempt >= retx.max_retries {
            // Give up: the request is *reported* lost, never silent.
            self.retx.remove(&id);
            self.stage_cache.remove(&id);
            self.lost_requests += 1;
            if simtrace::is_enabled() {
                let t = now.as_nanos();
                simtrace::instant_args(
                    "cluster",
                    "request_lost",
                    t,
                    &[
                        simtrace::arg("id", id),
                        simtrace::arg("attempts", u64::from(attempt)),
                    ],
                );
                simtrace::metric_add("cluster", "lost_requests", t, 1.0);
            }
            return;
        }
        state.attempt += 1;
        let next_attempt = state.attempt;
        let mut frame = state.frame.clone();
        // Attribution: the cumulative client-side wait up to this resend.
        // If this copy is the one the server serves, the stamp rides with
        // it; earlier copies carry their own (smaller) stamp.
        frame.meta_mut().stages.retx_ns = ns32(
            now.as_nanos()
                .saturating_sub(state.frame.meta().sent_at.as_nanos()),
        );
        self.retransmits += 1;
        if simtrace::is_enabled() {
            let t = now.as_nanos();
            simtrace::instant_args(
                "cluster",
                "retransmit",
                t,
                &[
                    simtrace::arg("id", id),
                    simtrace::arg("attempt", u64::from(next_attempt)),
                ],
            );
            simtrace::metric_add("cluster", "retransmits", t, 1.0);
        }
        queue.push(
            now + retx.rto_for(next_attempt),
            ClusterEvent::RetxCheck {
                id,
                attempt: next_attempt,
            },
        );
        // Passive health: an RTO firing against a pinned backend is a
        // strike; enough consecutive strikes eject it — the only detector
        // that catches a hung machine, whose probes still succeed. The
        // resent frame then re-pins to a healthy backend at dispatch.
        if let Some(fs) = self.fleet.as_mut() {
            if let Some(idx) = fs.lb.pinned_backend(id) {
                let _ = fs.lb.note_timeout(idx);
            }
        }
        self.route(now, frame, queue);
    }

    /// Runs the periodic invariant check and re-arms its timer.
    fn on_watchdog(&mut self, now: SimTime, queue: &mut EventQueue<ClusterEvent>) {
        let Some(mut wd) = self.watchdog.take() else {
            return;
        };
        let acc = self.accounting_view();
        let ledger = self.fleet.as_ref().map(|f| f.lb.ledger());
        wd.check(now, &self.servers, &acc, ledger.as_ref());
        queue.push(now + wd.period(), ClusterEvent::Watchdog);
        self.watchdog = Some(wd);
    }

    fn accounting_view(&self) -> AccountingView {
        AccountingView {
            armed: self.faults.retx.enabled,
            issued: self.issued_total,
            completed: self.completed_total,
            lost: self.lost_requests,
            rejected: self.rejected_total,
            in_flight: self.retx.len() as u64,
            misroutes: self.misroutes,
        }
    }

    fn on_sample(&mut self, now: SimTime, queue: &mut EventQueue<ClusterEvent>) {
        // Traces follow the first server (the paper's single-server study).
        self.servers[0].finalize(now);
        let cores = self.servers[0].cores();
        let freq_ghz = cores[0].freq_hz() as f64 / 1e9;
        let total_busy: SimDuration = cores.iter().map(cpusim::Core::busy_time).sum();
        let modes = Traces::cstate_modes();
        let mut cstate = [SimDuration::ZERO; 3];
        for (i, m) in modes.iter().enumerate() {
            cstate[i] = cores.iter().map(|c| c.energy().time_in(*m)).sum();
        }
        let ncores = cores.len();
        // Goodput (served) vs. throughput (served + rejected): under
        // overload the two series diverge — rejected requests consume
        // almost no server work but still resolve at clients.
        let served = self.tracker.completed() as f64;
        let rejected = self.tracker.rejected() as f64;
        if let Some(tr) = self.collector.as_mut() {
            tr.sample(now, freq_ghz, total_busy, cstate, ncores);
            tr.throughput_sample(now, served, rejected);
        }
        if simtrace::is_enabled() {
            let t = now.as_nanos();
            simtrace::metric_set("cluster", "goodput", t, served);
            simtrace::metric_set("cluster", "throughput", t, served + rejected);
        }
        queue.push(now + self.sample_period, ClusterEvent::Sample);
    }

    fn on_start_measure(&mut self, now: SimTime) {
        for s in &mut self.servers {
            s.finalize(now);
        }
        self.energy_baseline = self.total_energy_raw();
        self.measure_start = now;
        self.measuring = true;
        self.tracker = ResponseTracker::new();
        self.offered_measured = 0;
        self.breakdown.reset();
    }

    fn total_energy_raw(&self) -> EnergyMeter {
        let mut total = EnergyMeter::new();
        for s in &self.servers {
            for c in s.cores() {
                total.merge(c.energy());
            }
            total.merge(s.uncore_energy());
        }
        // Park/unpark transition energy is part of the fleet's bill; by
        // folding it into the same meter the warmup-baseline diff stays
        // correct for coordinated runs.
        if let Some(co) = self.fleet.as_ref().and_then(|f| f.coordinator.as_ref()) {
            total.merge(co.energy());
        }
        total
    }

    // ----- results -------------------------------------------------------

    /// Flushes accounting to `now` (call once at the horizon).
    pub fn finalize(&mut self, now: SimTime) {
        for s in &mut self.servers {
            s.finalize(now);
        }
        if let Some(fs) = self.fleet.as_mut() {
            for (idx, parked) in fs.lb.finalize(now) {
                if simtrace::is_enabled() && !parked.is_zero() {
                    if let Some(name) = fleetsim::metrics::parked_ns(idx) {
                        simtrace::metric_add("fleet", name, now.as_nanos(), {
                            parked.as_nanos() as f64
                        });
                    }
                }
            }
        }
        // One terminal invariant check so the horizon state (notably the
        // conservation identity) is always validated, even for runs
        // shorter than the watchdog period.
        if let Some(mut wd) = self.watchdog.take() {
            let acc = self.accounting_view();
            let ledger = self.fleet.as_ref().map(|f| f.lb.ledger());
            wd.check(now, &self.servers, &acc, ledger.as_ref());
            wd.check_quiescence(now, &acc, ledger.as_ref());
            self.watchdog = Some(wd);
        }
        if let Some(tr) = self.collector.take() {
            let markers = self.servers[0].wake_marker_times().to_vec();
            let mut traces = tr.finish(markers);
            traces.rx_drops = self.servers.iter().map(|s| s.nic().rx_drops()).sum();
            traces.fault_drops = self.switch.fault_stats().dropped();
            self.finished_traces = Some(traces);
        }
    }

    /// Whole-run fault-injection and recovery accounting: injected
    /// impairments from the switch, recovery work from the clients and
    /// the server's duplicate-suppression counters.
    #[must_use]
    pub fn fault_summary(&self) -> FaultSummary {
        let fs = self.switch.fault_stats();
        let (mut dup, mut replays) = (0, 0);
        for s in &self.servers {
            let ks = s.stats();
            dup += ks.dup_suppressed;
            replays += ks.resp_replays;
        }
        FaultSummary {
            injected_losses: fs.losses,
            injected_corruptions: fs.corruptions,
            injected_reorders: fs.reorders,
            retransmits: self.retransmits,
            lost_requests: self.lost_requests,
            dup_suppressed: dup,
            resp_replays: replays,
            issued_total: self.issued_total,
            completed_total: self.completed_total,
            rejected_total: self.rejected_total,
            in_flight: self.retx.len() as u64,
        }
    }

    /// The fleet summary (dispatch accounting, per-backend states,
    /// park/unpark counts), if the fleet layer is installed. Call after
    /// [`finalize`](Self::finalize) so parked residency is flushed.
    #[must_use]
    pub fn fleet_summary(&self) -> Option<FleetSummary> {
        self.fleet.as_ref().map(|fs| {
            let mut s = fs.lb.summary();
            if let Some(co) = &fs.coordinator {
                s.parks = co.parks();
                s.unparks = co.unparks();
                s.transition_energy_j = co.energy().total_joules();
            }
            s
        })
    }

    /// The installed watchdog (checks performed, recorded violations).
    #[must_use]
    pub fn watchdog(&self) -> Option<&Watchdog> {
        self.watchdog.as_ref()
    }

    /// Reliable requests resolved by server rejection (whole run).
    #[must_use]
    pub fn rejected_total(&self) -> u64 {
        self.rejected_total
    }

    /// Frames dropped because the switch did not know their destination.
    #[must_use]
    pub fn misroutes(&self) -> u64 {
        self.misroutes
    }

    /// Frames that died at a failed machine (requests into a crashed
    /// backend, responses a crash or hang swallowed). Zero whenever the
    /// failure schedule is empty.
    #[must_use]
    pub fn fleet_dead_frames(&self) -> u64 {
        self.fleet.as_ref().map_or(0, |f| f.dead_frames)
    }

    /// Energy consumed since the warmup boundary, per mode.
    #[must_use]
    pub fn measured_energy(&self) -> EnergyMeter {
        self.total_energy_raw().diff(&self.energy_baseline)
    }

    /// Measured-window processor energy in joules.
    #[must_use]
    pub fn measured_energy_j(&self) -> f64 {
        self.measured_energy().total_joules()
    }

    /// Busy-mode share of measured energy (diagnostics).
    #[must_use]
    pub fn measured_busy_fraction(&self) -> f64 {
        let e = self.measured_energy();
        if e.total_joules() == 0.0 {
            0.0
        } else {
            e.joules(PowerMode::Busy) / e.total_joules()
        }
    }

    /// The response tracker (latency histogram, completion counts).
    #[must_use]
    pub fn tracker(&self) -> &ResponseTracker {
        &self.tracker
    }

    /// The raw per-stage attribution population collected during the
    /// measured window (empty when collection is disabled).
    #[must_use]
    pub fn breakdown_collector(&self) -> &BreakdownCollector {
        &self.breakdown
    }

    /// Condensed per-stage attribution, tail-conditioned at
    /// `tail_percentile` of total latency.
    #[must_use]
    pub fn latency_breakdown(&self, tail_percentile: f64) -> LatencyBreakdown {
        self.breakdown.finalize(tail_percentile)
    }

    /// Latency-critical requests offered during the measured window.
    #[must_use]
    pub fn offered_measured(&self) -> u64 {
        self.offered_measured
    }

    /// The first (or only) server kernel (counters, cores, NIC).
    #[must_use]
    pub fn server(&self) -> &Kernel {
        &self.servers[0]
    }

    /// All server kernels.
    #[must_use]
    pub fn servers(&self) -> &[Kernel] {
        &self.servers
    }

    /// The collected traces, if tracing was enabled. Available after
    /// [`finalize`](Self::finalize).
    #[must_use]
    pub fn traces(&self) -> Option<&Traces> {
        self.finished_traces.as_ref()
    }

    /// Consumes the simulation, returning the traces (reconstructed at
    /// [`finalize`](Self::finalize)).
    #[must_use]
    pub fn into_traces(self) -> Option<Traces> {
        self.finished_traces
    }
}

impl EventHandler for ClusterSim {
    type Event = ClusterEvent;

    fn handle(&mut self, now: SimTime, event: ClusterEvent, queue: &mut EventQueue<ClusterEvent>) {
        // Scope trace events to the node whose state this event mutates,
        // so exports get one Perfetto process per node.
        if simtrace::is_enabled() {
            let node = match &event {
                ClusterEvent::Server(node, _) => node.0,
                ClusterEvent::Deliver { frame } => frame.dst().0,
                ClusterEvent::ClientBurst { idx } => self.clients[*idx].config().me.0,
                ClusterEvent::RetxCheck { id, .. } => self
                    .retx
                    .get(id)
                    .map_or(self.servers[0].node().0, |s| s.frame.src().0),
                ClusterEvent::Sample | ClusterEvent::StartMeasure | ClusterEvent::Watchdog => {
                    self.servers[0].node().0
                }
                ClusterEvent::FleetEpoch
                | ClusterEvent::FleetParkDone { .. }
                | ClusterEvent::FleetUnparkDone { .. }
                | ClusterEvent::FleetHealth => self
                    .fleet
                    .as_ref()
                    .map_or(self.servers[0].node().0, |f| f.lb.vip().0),
                ClusterEvent::BackendFail { backend, .. }
                | ClusterEvent::BackendRestart { backend } => self
                    .servers
                    .get(*backend)
                    .map_or(self.servers[0].node().0, |s| s.node().0),
                ClusterEvent::DomainFail { .. } | ClusterEvent::DomainHeal { .. } => self
                    .fleet
                    .as_ref()
                    .map_or(self.servers[0].node().0, |f| f.lb.vip().0),
            };
            simtrace::set_node(node);
        }
        match event {
            ClusterEvent::Server(node, e) => {
                let si = self.server_index(node).expect("event for a known server");
                let fx = self.servers[si].handle(now, e);
                self.apply_effects(now, node, fx, queue);
            }
            ClusterEvent::ClientBurst { idx } => self.on_client_burst(now, idx, queue),
            ClusterEvent::Deliver { frame } => self.on_deliver(now, frame, queue),
            ClusterEvent::RetxCheck { id, attempt } => self.on_retx_check(now, id, attempt, queue),
            ClusterEvent::Sample => self.on_sample(now, queue),
            ClusterEvent::StartMeasure => self.on_start_measure(now),
            ClusterEvent::Watchdog => self.on_watchdog(now, queue),
            ClusterEvent::FleetEpoch => self.on_fleet_epoch(now, queue),
            ClusterEvent::FleetParkDone { backend, gen } => {
                self.on_fleet_transition_done(now, backend, gen, true);
            }
            ClusterEvent::FleetUnparkDone { backend, gen } => {
                self.on_fleet_transition_done(now, backend, gen, false);
            }
            ClusterEvent::BackendFail { backend, mode } => self.on_backend_fail(now, backend, mode),
            ClusterEvent::BackendRestart { backend } => self.on_backend_restart(now, backend),
            ClusterEvent::DomainFail { domain } => self.on_domain_fail(now, domain),
            ClusterEvent::DomainHeal { domain } => self.on_domain_heal(now, domain),
            ClusterEvent::FleetHealth => self.on_fleet_health(now, queue),
        }
    }

    fn classify(&self, event: &ClusterEvent) -> &'static str {
        match event {
            ClusterEvent::Server(_, e) => e.class(),
            ClusterEvent::ClientBurst { .. } => "client_burst",
            ClusterEvent::Deliver { .. } => "deliver",
            ClusterEvent::RetxCheck { .. } => "retx_check",
            ClusterEvent::Sample => "sample",
            ClusterEvent::StartMeasure => "start_measure",
            ClusterEvent::Watchdog => "watchdog",
            ClusterEvent::FleetEpoch => "fleet_epoch",
            ClusterEvent::FleetParkDone { .. } => "fleet_park",
            ClusterEvent::FleetUnparkDone { .. } => "fleet_unpark",
            ClusterEvent::BackendFail { .. } => "backend_fail",
            ClusterEvent::BackendRestart { .. } => "backend_restart",
            ClusterEvent::DomainFail { .. } => "domain_fail",
            ClusterEvent::DomainHeal { .. } => "domain_heal",
            ClusterEvent::FleetHealth => "fleet_health",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AppKind, ExperimentConfig};
    use crate::policy::Policy;
    use crate::runner::build_server;
    use desim::Simulation;
    use oldi_apps::ClientConfig;

    fn tiny_cluster(policy: Policy) -> (ClusterSim, Vec<(SimTime, ClusterEvent)>) {
        let cfg = ExperimentConfig::new(AppKind::Memcached, policy, 10_000.0)
            .with_durations(SimDuration::from_ms(5), SimDuration::from_ms(20));
        let server = build_server(&cfg, NodeId(0));
        let client = oldi_apps::OpenLoopClient::new(ClientConfig::memcached(
            NodeId(1),
            NodeId(0),
            20,
            SimDuration::from_ms(2),
            3,
        ));
        let mut sim = ClusterSim::new(server, vec![client], vec![false], None);
        let initial = sim.initial_events(cfg.warmup, SimTime::from_ms(25));
        (sim, initial)
    }

    fn run(policy: Policy) -> ClusterSim {
        let (cluster, initial) = tiny_cluster(policy);
        let mut sim = Simulation::new(cluster);
        for (t, e) in initial {
            sim.queue_mut().push(t, e);
        }
        sim.run_until(SimTime::from_ms(25));
        let now = sim.now();
        let c = sim.handler_mut();
        c.finalize(now);
        sim.into_handler()
    }

    #[test]
    fn direct_cluster_roundtrip() {
        let c = run(Policy::Perf);
        assert!(
            c.tracker().completed() > 100,
            "completed {}",
            c.tracker().completed()
        );
        assert!(c.measured_energy_j() > 0.0);
        assert!(c.offered_measured() > 0);
        assert!(c.measured_busy_fraction() > 0.0);
    }

    #[test]
    fn warmup_boundary_resets_measurement() {
        let c = run(Policy::Perf);
        // Offered during the measured window only: 20 ms at 10 K rps ≈ 200,
        // far less than the 25 ms total would imply if warmup leaked in.
        assert!(
            c.offered_measured() <= 260,
            "offered {}",
            c.offered_measured()
        );
    }

    #[test]
    fn ncap_cluster_records_wake_markers() {
        let c = run(Policy::NcapCons);
        assert!(!c.server().wake_marker_times().is_empty());
        assert_eq!(c.servers().len(), 1);
    }

    #[test]
    #[should_panic(expected = "flag per client required")]
    fn mismatched_background_flags_rejected() {
        let cfg = ExperimentConfig::new(AppKind::Memcached, Policy::Perf, 10_000.0);
        let server = build_server(&cfg, NodeId(0));
        let _ = ClusterSim::new(server, Vec::new(), vec![false], None);
    }

    #[test]
    fn debug_output_mentions_servers() {
        let (c, _) = tiny_cluster(Policy::Perf);
        assert!(format!("{c:?}").contains("servers"));
    }
}
