//! Chrome trace-event JSON export (the format Perfetto and
//! `chrome://tracing` load).
//!
//! Layout: one process per simulated node (`pid = node + 1`, named
//! `node<N>`), one thread per `(component, lane)` within a node, assigned
//! in order of first appearance so same-seed runs serialize identically.
//! Timestamps are microseconds with three decimals — exact for integer
//! nanosecond inputs, so the export is deterministic.

use crate::event::{ArgValue, EventKind, TraceEvent};
use crate::tracer::TraceData;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Formats `ns` as microseconds with exactly three decimals, without
/// going through floating point.
fn fmt_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_value(out: &mut String, v: ArgValue) {
    match v {
        ArgValue::U64(x) => {
            let _ = write!(out, "{x}");
        }
        ArgValue::I64(x) => {
            let _ = write!(out, "{x}");
        }
        // `{:?}` renders the shortest round-tripping form ("0.5", "1e300"),
        // which is valid JSON for every finite f64.
        ArgValue::F64(x) => {
            let _ = write!(out, "{x:?}");
        }
        ArgValue::Str(x) => push_json_str(out, x),
    }
}

fn push_args(out: &mut String, ev: &TraceEvent) {
    out.push_str(",\"args\":{");
    let mut first = true;
    if let EventKind::Counter { value } = ev.kind {
        push_json_str(out, ev.name);
        out.push(':');
        push_value(out, ArgValue::F64(value));
        first = false;
    }
    for &(name, value) in &ev.args {
        if !first {
            out.push(',');
        }
        push_json_str(out, name);
        out.push(':');
        push_value(out, value);
        first = false;
    }
    out.push('}');
}

/// One `{"ph":"M"}` metadata record.
fn push_meta(out: &mut String, name: &str, pid: u32, tid: Option<u32>, value: &str) {
    out.push_str("{\"name\":");
    push_json_str(out, name);
    out.push_str(",\"ph\":\"M\",\"pid\":");
    let _ = write!(out, "{pid}");
    if let Some(tid) = tid {
        let _ = write!(out, ",\"tid\":{tid}");
    }
    out.push_str(",\"args\":{\"name\":");
    push_json_str(out, value);
    out.push_str("}}");
}

pub(crate) fn export(data: &TraceData) -> String {
    // Track assignment: order of first appearance, deterministic because
    // the event ring is.
    let mut tids: BTreeMap<(u16, &'static str, u32), u32> = BTreeMap::new();
    let mut track_order: Vec<(u16, &'static str, u32)> = Vec::new();
    let mut nodes: Vec<u16> = Vec::new();
    for ev in &data.events {
        let key = (ev.node, ev.component, ev.lane);
        if let std::collections::btree_map::Entry::Vacant(slot) = tids.entry(key) {
            if !nodes.contains(&ev.node) {
                nodes.push(ev.node);
            }
            let tid = track_order
                .iter()
                .filter(|(node, _, _)| *node == ev.node)
                .count() as u32
                + 1;
            slot.insert(tid);
            track_order.push(key);
        }
    }

    let mut out = String::with_capacity(128 + data.events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        out.push('\n');
        *first = false;
    };
    for &node in &nodes {
        sep(&mut out, &mut first);
        push_meta(
            &mut out,
            "process_name",
            u32::from(node) + 1,
            None,
            &format!("node{node}"),
        );
    }
    for &(node, component, lane) in &track_order {
        sep(&mut out, &mut first);
        let label = if lane == 0 {
            component.to_string()
        } else {
            format!("{component}/lane{lane}")
        };
        push_meta(
            &mut out,
            "thread_name",
            u32::from(node) + 1,
            Some(tids[&(node, component, lane)]),
            &label,
        );
    }

    for ev in &data.events {
        sep(&mut out, &mut first);
        let pid = u32::from(ev.node) + 1;
        let tid = tids[&(ev.node, ev.component, ev.lane)];
        out.push_str("{\"name\":");
        push_json_str(&mut out, ev.name);
        out.push_str(",\"cat\":");
        push_json_str(&mut out, ev.component);
        let ph = match ev.kind {
            EventKind::Instant => "i",
            EventKind::Counter { .. } => "C",
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Complete { .. } => "X",
            EventKind::AsyncBegin { .. } => "b",
            EventKind::AsyncEnd { .. } => "e",
        };
        let _ = write!(out, ",\"ph\":\"{ph}\",\"ts\":");
        fmt_us(&mut out, ev.ts_ns);
        let _ = write!(out, ",\"pid\":{pid},\"tid\":{tid}");
        match ev.kind {
            EventKind::Instant => out.push_str(",\"s\":\"t\""),
            EventKind::Complete { dur_ns } => {
                out.push_str(",\"dur\":");
                fmt_us(&mut out, dur_ns);
            }
            EventKind::AsyncBegin { id } | EventKind::AsyncEnd { id } => {
                let _ = write!(out, ",\"id\":{id}");
            }
            _ => {}
        }
        push_args(&mut out, ev);
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::arg;
    use crate::tracer::{Tracer, TracerConfig};

    /// Golden-file test: a three-event trace pins the exact serialization.
    #[test]
    fn golden_three_event_trace() {
        let mut t = Tracer::new(TracerConfig::default().with_capacity(8));
        t.record(TraceEvent {
            ts_ns: 1_000,
            node: 0,
            lane: 0,
            component: "kernel",
            name: "work",
            kind: EventKind::Begin,
            args: vec![arg("kind", "isr")],
        });
        t.record(TraceEvent {
            ts_ns: 2_500,
            node: 0,
            lane: 0,
            component: "kernel",
            name: "work",
            kind: EventKind::End,
            args: Vec::new(),
        });
        t.record(TraceEvent {
            ts_ns: 3_141,
            node: 1,
            lane: 2,
            component: "cpu",
            name: "rate",
            kind: EventKind::Counter { value: 0.5 },
            args: vec![arg("n", 7u64)],
        });
        // record() stamps the tracer's node scope; emulate node 1 for the
        // third event.
        let mut data = t.into_data();
        data.events[2].node = 1;
        let expected = concat!(
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n",
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"node0\"}},\n",
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"args\":{\"name\":\"node1\"}},\n",
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"kernel\"}},\n",
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":1,\"args\":{\"name\":\"cpu/lane2\"}},\n",
            "{\"name\":\"work\",\"cat\":\"kernel\",\"ph\":\"B\",\"ts\":1.000,\"pid\":1,\"tid\":1,\"args\":{\"kind\":\"isr\"}},\n",
            "{\"name\":\"work\",\"cat\":\"kernel\",\"ph\":\"E\",\"ts\":2.500,\"pid\":1,\"tid\":1,\"args\":{}},\n",
            "{\"name\":\"rate\",\"cat\":\"cpu\",\"ph\":\"C\",\"ts\":3.141,\"pid\":2,\"tid\":1,\"args\":{\"rate\":0.5,\"n\":7}}\n",
            "]}\n",
        );
        assert_eq!(data.to_chrome_json(), expected);
    }

    #[test]
    fn span_kinds_serialize_their_extras() {
        let mut t = Tracer::new(TracerConfig::default().with_capacity(8));
        t.record(TraceEvent {
            ts_ns: 10,
            node: 0,
            lane: 0,
            component: "c",
            name: "x",
            kind: EventKind::Complete { dur_ns: 1_500 },
            args: Vec::new(),
        });
        t.record(TraceEvent {
            ts_ns: 20,
            node: 0,
            lane: 0,
            component: "c",
            name: "a",
            kind: EventKind::AsyncBegin { id: 42 },
            args: Vec::new(),
        });
        t.record(TraceEvent {
            ts_ns: 30,
            node: 0,
            lane: 0,
            component: "c",
            name: "i",
            kind: EventKind::Instant,
            args: vec![arg("v", -1i64), arg("r", 2.25f64)],
        });
        let json = t.into_data().to_chrome_json();
        assert!(json.contains("\"ph\":\"X\",\"ts\":0.010,\"pid\":1,\"tid\":1,\"dur\":1.500"));
        assert!(json.contains("\"ph\":\"b\",\"ts\":0.020,\"pid\":1,\"tid\":1,\"id\":42"));
        assert!(json.contains("\"ph\":\"i\",\"ts\":0.030,\"pid\":1,\"tid\":1,\"s\":\"t\",\"args\":{\"v\":-1,\"r\":2.25}"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
