//! # simtrace — structured event tracing and metrics for the simulator
//!
//! The observability layer of the NCAP reproduction: a typed event tracer
//! (spans, instants, counters keyed by `(component, name)`, recorded into
//! a preallocated drop-oldest ring) plus a metrics registry (named
//! counters/gauges bumped on hot paths, snapshotable at any instant), and
//! two exporters — Chrome trace-event JSON for Perfetto and windowed CSV
//! for the `stats` plotting path.
//!
//! ## The global tracer
//!
//! Instrumentation sites call the free functions below ([`instant`],
//! [`span_begin`], [`metric_add`], …). They are no-ops — a single
//! thread-local boolean branch — until a tracer is [`install`]ed, so
//! always-on instrumentation costs nothing in untraced runs and never
//! mutates simulation state (tracing is observer-effect-free by
//! construction). The tracer is thread-local: each experiment runs wholly
//! on one thread, so parallel experiment batches trace independently.
//!
//! ```
//! use simtrace::{arg, install, uninstall, TracerConfig};
//!
//! install(TracerConfig::default());
//! simtrace::span_begin("kernel", "work", 1_000, 0);
//! simtrace::span_end("kernel", "work", 2_500, 0);
//! simtrace::instant_args("nic", "irq_posted", 2_600, &[arg("queue", 0u64)]);
//! simtrace::metric_add("nic", "rx_bytes", 2_600, 1500.0);
//! let data = uninstall().unwrap();
//! assert_eq!(data.events.len(), 3);
//! assert!(data.to_chrome_json().contains("\"irq_posted\""));
//! ```
//!
//! Timestamps are raw nanoseconds (`SimTime::as_nanos()`): this crate
//! deliberately depends on nothing so that every layer, `desim` included,
//! can be instrumented.

mod chrome;
mod csv;
mod event;
mod metrics;
mod tracer;

pub use event::{arg, Arg, ArgValue, EventKind, TraceEvent};
pub use metrics::{MetricKind, MetricSnapshot, Metrics, MetricsSnapshot};
pub use tracer::{TraceData, Tracer, TracerConfig};

use std::cell::{Cell, RefCell};

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static TRACER: RefCell<Option<Tracer>> = const { RefCell::new(None) };
}

/// Installs a fresh tracer on this thread; subsequent recording helpers
/// are live until [`uninstall`].
pub fn install(config: TracerConfig) {
    TRACER.with(|t| *t.borrow_mut() = Some(Tracer::new(config)));
    ENABLED.with(|e| e.set(true));
}

/// Stops tracing on this thread and returns the collected data, if a
/// tracer was installed.
pub fn uninstall() -> Option<TraceData> {
    ENABLED.with(|e| e.set(false));
    TRACER
        .with(|t| t.borrow_mut().take())
        .map(Tracer::into_data)
}

/// `true` while a tracer is installed on this thread. The recording
/// helpers check this themselves; call it only to skip *preparing*
/// expensive arguments.
#[inline]
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.with(Cell::get)
}

#[inline]
fn with_tracer<R>(f: impl FnOnce(&mut Tracer) -> R) -> Option<R> {
    if !is_enabled() {
        return None;
    }
    TRACER.with(|t| t.borrow_mut().as_mut().map(f))
}

/// Scopes subsequent events/metrics to `node` (stamped onto each event).
#[inline]
pub fn set_node(node: u16) {
    with_tracer(|t| t.set_node(node));
}

#[inline]
fn record(
    component: &'static str,
    name: &'static str,
    ts_ns: u64,
    lane: u32,
    kind: EventKind,
    args: &[Arg],
) {
    with_tracer(|t| {
        t.record(TraceEvent {
            ts_ns,
            node: 0, // stamped by the tracer
            lane,
            component,
            name,
            kind,
            args: args.to_vec(),
        });
    });
}

/// Records a point event.
#[inline]
pub fn instant(component: &'static str, name: &'static str, ts_ns: u64) {
    record(component, name, ts_ns, 0, EventKind::Instant, &[]);
}

/// Records a point event with arguments (see [`arg`]).
#[inline]
pub fn instant_args(component: &'static str, name: &'static str, ts_ns: u64, args: &[Arg]) {
    record(component, name, ts_ns, 0, EventKind::Instant, args);
}

/// Opens a synchronous span on `(component, lane)`.
#[inline]
pub fn span_begin(component: &'static str, name: &'static str, ts_ns: u64, lane: u32) {
    record(component, name, ts_ns, lane, EventKind::Begin, &[]);
}

/// Opens a synchronous span with arguments.
#[inline]
pub fn span_begin_args(
    component: &'static str,
    name: &'static str,
    ts_ns: u64,
    lane: u32,
    args: &[Arg],
) {
    record(component, name, ts_ns, lane, EventKind::Begin, args);
}

/// Closes the innermost synchronous span on `(component, lane)`.
#[inline]
pub fn span_end(component: &'static str, name: &'static str, ts_ns: u64, lane: u32) {
    record(component, name, ts_ns, lane, EventKind::End, &[]);
}

/// Records a self-contained span of `dur_ns` nanoseconds (zero for
/// point-like work such as a governor decision).
#[inline]
pub fn complete(
    component: &'static str,
    name: &'static str,
    ts_ns: u64,
    dur_ns: u64,
    args: &[Arg],
) {
    record(
        component,
        name,
        ts_ns,
        0,
        EventKind::Complete { dur_ns },
        args,
    );
}

/// Opens an async (overlap-safe) span; returns the correlation id to pass
/// to [`async_end`], or 0 when tracing is disabled.
#[inline]
pub fn async_begin(component: &'static str, name: &'static str, ts_ns: u64, args: &[Arg]) -> u64 {
    with_tracer(|t| {
        let id = t.next_async_id();
        t.record(TraceEvent {
            ts_ns,
            node: 0,
            lane: 0,
            component,
            name,
            kind: EventKind::AsyncBegin { id },
            args: args.to_vec(),
        });
        id
    })
    .unwrap_or(0)
}

/// Closes the async span opened by [`async_begin`]. A zero id (disabled
/// tracing at begin time) records nothing.
#[inline]
pub fn async_end(component: &'static str, name: &'static str, ts_ns: u64, id: u64) {
    if id == 0 {
        return;
    }
    record(component, name, ts_ns, 0, EventKind::AsyncEnd { id }, &[]);
}

/// Records a counter-track sample.
#[inline]
pub fn counter(component: &'static str, name: &'static str, ts_ns: u64, value: f64) {
    record(component, name, ts_ns, 0, EventKind::Counter { value }, &[]);
}

/// Adds to a registry counter (running total + window bin at `ts_ns`).
#[inline]
pub fn metric_add(component: &'static str, name: &'static str, ts_ns: u64, amount: f64) {
    with_tracer(|t| t.metrics_mut().add(component, name, ts_ns, amount));
}

/// Adds to a registry counter's running total only (no timestamp in
/// scope at the call site).
#[inline]
pub fn metric_add_cum(component: &'static str, name: &'static str, amount: f64) {
    with_tracer(|t| t.metrics_mut().add_cum(component, name, amount));
}

/// Sets a registry gauge at `ts_ns`.
#[inline]
pub fn metric_set(component: &'static str, name: &'static str, ts_ns: u64, value: f64) {
    with_tracer(|t| t.metrics_mut().set(component, name, ts_ns, value));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_helpers_are_noops() {
        assert!(!is_enabled());
        instant("c", "n", 0);
        span_begin("c", "n", 0, 0);
        span_end("c", "n", 1, 0);
        metric_add("c", "n", 0, 1.0);
        assert_eq!(async_begin("c", "n", 0, &[]), 0);
        async_end("c", "n", 1, 0);
        assert!(uninstall().is_none());
    }

    #[test]
    fn install_record_uninstall_roundtrip() {
        install(TracerConfig::default().with_capacity(16));
        assert!(is_enabled());
        set_node(3);
        instant("nic", "irq", 10);
        complete("core", "rate_eval", 20, 0, &[arg("rps", 1.5f64)]);
        let id = async_begin("net", "transit", 30, &[arg("bytes", 100usize)]);
        assert!(id > 0);
        async_end("net", "transit", 40, id);
        counter("nic", "backlog", 50, 2.0);
        metric_add("nic", "rx", 60, 1500.0);
        metric_add_cum("core", "matches", 1.0);
        metric_set("cpu", "freq", 70, 3.1);
        let data = uninstall().unwrap();
        assert!(!is_enabled());
        assert_eq!(data.events.len(), 5);
        assert!(data.events.iter().all(|e| e.node == 3));
        assert_eq!(data.metrics.len(), 3);
        assert_eq!(data.metrics.get("nic", "rx").unwrap().value, 1500.0);
        // A second install starts clean.
        install(TracerConfig::default().with_capacity(16));
        let clean = uninstall().unwrap();
        assert!(clean.events.is_empty());
        assert_eq!(clean.events.len(), 0);
    }

    #[test]
    fn reinstall_resets_node_scope() {
        install(TracerConfig::default());
        set_node(7);
        install(TracerConfig::default());
        instant("c", "n", 0);
        let data = uninstall().unwrap();
        assert_eq!(data.events[0].node, 0);
    }
}
