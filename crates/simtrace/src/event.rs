//! The trace-event vocabulary: typed arguments, event kinds, and the
//! event record itself.
//!
//! Events are keyed by a `(component, name)` pair of static strings so
//! instrumentation sites pay no allocation for identity. Timestamps are
//! raw simulated nanoseconds (`desim::SimTime::as_nanos()`), keeping this
//! crate dependency-free so every layer — including `desim` itself — can
//! link against it.

/// A typed argument value attached to an event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer payload (counts, byte sizes, ids).
    U64(u64),
    /// Signed integer payload.
    I64(i64),
    /// Floating-point payload (rates, utilizations).
    F64(f64),
    /// Static string payload (verdicts, state names).
    Str(&'static str),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}

impl From<u8> for ArgValue {
    fn from(v: u8) -> Self {
        ArgValue::U64(u64::from(v))
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&'static str> for ArgValue {
    fn from(v: &'static str) -> Self {
        ArgValue::Str(v)
    }
}

/// A named argument; build with [`arg`].
pub type Arg = (&'static str, ArgValue);

/// Builds a named argument for the `*_args` recording helpers.
///
/// # Example
///
/// ```
/// use simtrace::{arg, ArgValue};
/// assert_eq!(arg("bytes", 1500u64), ("bytes", ArgValue::U64(1500)));
/// ```
pub fn arg(name: &'static str, value: impl Into<ArgValue>) -> Arg {
    (name, value.into())
}

/// What an event records.
///
/// Synchronous [`Begin`](EventKind::Begin)/[`End`](EventKind::End) pairs
/// form a stack per `(node, component, lane)` track and must nest (the
/// per-core work and sleep spans satisfy this by construction).
/// [`AsyncBegin`](EventKind::AsyncBegin)/[`AsyncEnd`](EventKind::AsyncEnd)
/// pairs are matched by id instead and may overlap freely (DMA transfers,
/// link transits). [`Complete`](EventKind::Complete) is a self-contained
/// span with an explicit duration (zero for point-like decisions that are
/// still conceptually "work", like a governor evaluation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A point event.
    Instant,
    /// A sampled counter value (rendered as a counter track).
    Counter {
        /// The sampled value.
        value: f64,
    },
    /// Opens a synchronous span on the event's lane.
    Begin,
    /// Closes the innermost synchronous span on the event's lane.
    End,
    /// A self-contained span of `dur_ns` nanoseconds.
    Complete {
        /// Span duration in nanoseconds.
        dur_ns: u64,
    },
    /// Opens an async span; closed by the `AsyncEnd` with the same id.
    AsyncBegin {
        /// Tracer-assigned correlation id.
        id: u64,
    },
    /// Closes the async span opened with the same id.
    AsyncEnd {
        /// Tracer-assigned correlation id.
        id: u64,
    },
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulated nanoseconds since time zero.
    pub ts_ns: u64,
    /// The node (server/client index) the event belongs to.
    pub node: u16,
    /// Sub-track within the component (e.g. the core index).
    pub lane: u32,
    /// Emitting subsystem (`"nic"`, `"kernel"`, …).
    pub component: &'static str,
    /// Event name within the component.
    pub name: &'static str,
    /// Event kind and kind-specific payload.
    pub kind: EventKind,
    /// Optional named arguments.
    pub args: Vec<Arg>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_conversions() {
        assert_eq!(arg("a", 3u8).1, ArgValue::U64(3));
        assert_eq!(arg("a", 3u32).1, ArgValue::U64(3));
        assert_eq!(arg("a", 3usize).1, ArgValue::U64(3));
        assert_eq!(arg("a", -3i64).1, ArgValue::I64(-3));
        assert_eq!(arg("a", 0.5f64).1, ArgValue::F64(0.5));
        assert_eq!(arg("a", "x").1, ArgValue::Str("x"));
    }
}
