//! Windowed CSV export of the metrics registry.
//!
//! One row per counter window (`time_ns` is the window start), one column
//! per metric with windowed data, sorted by `component.name` — the same
//! shape the `stats::TimeSeries`/`RateTrace` plotting path consumes.
//! Counter columns carry per-window sums (identical to
//! `RateTrace::finish`); gauge columns carry the last sampled value at or
//! before the window's end, forward-filled from 0.
//!
//! Cumulative-only counters (no timestamped adds) have no windowed data
//! and are omitted; they appear in the metrics snapshot summary instead.

use crate::metrics::{MetricKind, MetricsSnapshot};
use std::fmt::Write;

pub(crate) fn export(metrics: &MetricsSnapshot, end_ns: u64) -> String {
    let window = metrics.window_ns;
    let rows = (end_ns / window) as usize;
    let cols: Vec<_> = metrics
        .iter()
        .filter(|m| !m.bins.is_empty() || !m.points.is_empty())
        .collect();
    let mut out = String::new();
    out.push_str("time_ns");
    for m in &cols {
        let _ = write!(out, ",{}.{}", m.component, m.name);
    }
    out.push('\n');
    // Per-gauge cursor into its sample list (points are in set order,
    // which is chronological for a simulation-driven collector).
    let mut cursors = vec![0usize; cols.len()];
    let mut held = vec![0.0f64; cols.len()];
    for row in 0..rows {
        let start = row as u64 * window;
        let _ = write!(out, "{start}");
        for (ci, m) in cols.iter().enumerate() {
            let v = match m.kind {
                MetricKind::Counter => m.bins.get(row).copied().unwrap_or(0.0),
                MetricKind::Gauge => {
                    let end = start + window;
                    while cursors[ci] < m.points.len() && m.points[cursors[ci]].0 < end {
                        held[ci] = m.points[cursors[ci]].1;
                        cursors[ci] += 1;
                    }
                    held[ci]
                }
            };
            let _ = write!(out, ",{v:?}");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::metrics::Metrics;

    #[test]
    fn counters_and_gauges_render_by_window() {
        let mut m = Metrics::new(100);
        m.add("nic", "rx", 10, 1000.0);
        m.add("nic", "rx", 110, 500.0);
        m.set("cpu", "freq", 150, 3.1);
        m.add_cum("core", "matches", 7.0); // cum-only: not a column
        let csv = m.snapshot().export_csv(300);
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "time_ns,cpu.freq,nic.rx");
        assert_eq!(lines[1], "0,0.0,1000.0");
        assert_eq!(lines[2], "100,3.1,500.0");
        assert_eq!(lines[3], "200,3.1,0.0");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn truncates_to_end() {
        let mut m = Metrics::new(100);
        m.add("a", "x", 950, 2.0);
        let csv = m.snapshot().export_csv(500);
        assert_eq!(csv.lines().count(), 6); // header + 5 windows
    }
}
