//! The tracer: a preallocated drop-oldest event ring plus the metrics
//! registry, and the finished [`TraceData`] it exports.

use crate::event::TraceEvent;
use crate::metrics::{Metrics, MetricsSnapshot};

/// Tracer sizing and windowing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracerConfig {
    /// Event-ring capacity; the oldest events are dropped (and counted)
    /// once the ring is full.
    pub capacity: usize,
    /// Counter-metric window in nanoseconds (1 ms matches the figure
    /// traces' `TraceConfig::per_ms`).
    pub window_ns: u64,
}

impl TracerConfig {
    /// Default ring capacity (events). Dispatch spans dominate volume; a
    /// quarter-million events cover ~100 ms of a loaded server.
    pub const DEFAULT_CAPACITY: usize = 1 << 18;
    /// Default counter window: 1 ms.
    pub const DEFAULT_WINDOW_NS: u64 = 1_000_000;

    /// Overrides the ring capacity (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        self.capacity = capacity;
        self
    }

    /// Overrides the counter window (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is zero.
    #[must_use]
    pub fn with_window_ns(mut self, window_ns: u64) -> Self {
        assert!(window_ns > 0, "metric window must be positive");
        self.window_ns = window_ns;
        self
    }
}

impl Default for TracerConfig {
    fn default() -> Self {
        TracerConfig {
            capacity: Self::DEFAULT_CAPACITY,
            window_ns: Self::DEFAULT_WINDOW_NS,
        }
    }
}

/// An active trace collection: event ring + metrics registry + the
/// current node scope. Usually driven through the thread-local helpers in
/// the crate root; owned directly only by tests and special collectors.
#[derive(Debug)]
pub struct Tracer {
    config: TracerConfig,
    ring: Vec<TraceEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
    metrics: Metrics,
    next_async_id: u64,
    node: u16,
}

impl Tracer {
    /// Creates a tracer, preallocating the event ring.
    ///
    /// # Panics
    ///
    /// Panics if the configured capacity or window is zero.
    #[must_use]
    pub fn new(config: TracerConfig) -> Self {
        assert!(config.capacity > 0, "ring capacity must be positive");
        Tracer {
            ring: Vec::with_capacity(config.capacity),
            head: 0,
            dropped: 0,
            metrics: Metrics::new(config.window_ns),
            next_async_id: 0,
            node: 0,
            config,
        }
    }

    /// Sets the node scope stamped onto subsequently recorded events.
    pub fn set_node(&mut self, node: u16) {
        self.node = node;
    }

    /// The current node scope.
    #[must_use]
    pub fn node(&self) -> u16 {
        self.node
    }

    /// Records `event`, stamping the current node scope onto it. Drops
    /// (and counts) the oldest event when the ring is full.
    pub fn record(&mut self, mut event: TraceEvent) {
        event.node = self.node;
        if self.ring.len() < self.config.capacity {
            self.ring.push(event);
        } else {
            self.ring[self.head] = event;
            self.head = (self.head + 1) % self.config.capacity;
            self.dropped += 1;
        }
    }

    /// A fresh async-span correlation id (deterministic, monotonically
    /// increasing, never zero).
    pub fn next_async_id(&mut self) -> u64 {
        self.next_async_id += 1;
        self.next_async_id
    }

    /// The metrics registry.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Events currently held (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when no events are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events dropped to ring overflow.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Finishes collection: events in chronological (insertion) order,
    /// plus a final metrics snapshot.
    #[must_use]
    pub fn into_data(mut self) -> TraceData {
        let metrics = self.metrics.snapshot();
        self.ring.rotate_left(self.head);
        // Don't let a lightly-used ring pin its full preallocation —
        // batch runners keep many TraceData results alive at once.
        self.ring.shrink_to_fit();
        TraceData {
            config: self.config,
            events: self.ring,
            dropped: self.dropped,
            metrics,
        }
    }
}

/// A finished trace: what [`Tracer::into_data`] returns and the exporters
/// consume.
#[derive(Clone, PartialEq)]
pub struct TraceData {
    /// The configuration the trace was collected under.
    pub config: TracerConfig,
    /// Events in insertion order (oldest first; the prefix may have been
    /// dropped — see [`dropped`](Self::dropped)).
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overflow.
    pub dropped: u64,
    /// Final metrics snapshot.
    pub metrics: MetricsSnapshot,
}

impl std::fmt::Debug for TraceData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Compact on purpose: a trace holds up to `capacity` events and
        // would flood any derived debug output.
        f.debug_struct("TraceData")
            .field("events", &self.events.len())
            .field("dropped", &self.dropped)
            .field("metrics", &self.metrics.len())
            .finish()
    }
}

impl TraceData {
    /// Components that recorded at least one span-type event (sync,
    /// async, or complete), sorted and deduplicated.
    #[must_use]
    pub fn components_with_spans(&self) -> Vec<&'static str> {
        use crate::event::EventKind;
        let mut out: Vec<&'static str> = self
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::Begin
                        | EventKind::End
                        | EventKind::Complete { .. }
                        | EventKind::AsyncBegin { .. }
                        | EventKind::AsyncEnd { .. }
                )
            })
            .map(|e| e.component)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Exports the event ring as Chrome trace-event JSON (Perfetto- and
    /// `chrome://tracing`-loadable).
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        crate::chrome::export(self)
    }

    /// Exports the windowed metrics as CSV up to `end_ns` (exclusive);
    /// column layout matches the `stats::TimeSeries` plotting path.
    #[must_use]
    pub fn to_csv(&self, end_ns: u64) -> String {
        crate::csv::export(&self.metrics, end_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::metrics::Metrics;

    fn ev(ts_ns: u64, name: &'static str) -> TraceEvent {
        TraceEvent {
            ts_ns,
            node: 0,
            lane: 0,
            component: "t",
            name,
            kind: EventKind::Instant,
            args: Vec::new(),
        }
    }

    #[test]
    fn ring_drops_oldest_on_overflow() {
        let mut t = Tracer::new(TracerConfig::default().with_capacity(3));
        for (i, n) in ["a", "b", "c", "d", "e"].iter().enumerate() {
            t.record(ev(i as u64, n));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let data = t.into_data();
        let names: Vec<_> = data.events.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["c", "d", "e"]);
        assert_eq!(data.dropped, 2);
    }

    #[test]
    fn node_scope_is_stamped() {
        let mut t = Tracer::new(TracerConfig::default().with_capacity(4));
        t.record(ev(0, "a"));
        t.set_node(2);
        assert_eq!(t.node(), 2);
        t.record(ev(1, "b"));
        let data = t.into_data();
        assert_eq!(data.events[0].node, 0);
        assert_eq!(data.events[1].node, 2);
    }

    #[test]
    fn async_ids_are_monotonic_and_nonzero() {
        let mut t = Tracer::new(TracerConfig::default());
        assert_eq!(t.next_async_id(), 1);
        assert_eq!(t.next_async_id(), 2);
    }

    #[test]
    fn debug_output_is_compact() {
        let mut t = Tracer::new(TracerConfig::default().with_capacity(2));
        t.record(ev(0, "a"));
        assert!(!t.is_empty());
        let s = format!("{:?}", t.into_data());
        assert!(s.contains("events: 1"), "{s}");
        assert!(!s.contains("\"a\""), "{s}");
    }

    #[test]
    fn components_with_spans_filters_instants() {
        let mut t = Tracer::new(TracerConfig::default());
        t.record(ev(0, "point"));
        t.record(TraceEvent {
            kind: EventKind::Complete { dur_ns: 5 },
            component: "spanful",
            ..ev(1, "work")
        });
        let data = t.into_data();
        assert_eq!(data.components_with_spans(), vec!["spanful"]);
    }

    #[test]
    #[should_panic(expected = "ring capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = TracerConfig::default().with_capacity(0);
    }

    /// Counter snapshots are monotonic: however adds are interleaved with
    /// snapshots, each metric's running total never decreases.
    #[test]
    fn prop_counter_snapshots_monotonic() {
        use check::{ensure, gen, Check};
        Check::new("counter_snapshots_monotonic").run(
            |rng, size| {
                gen::vec_with(rng, size, 1, 80, |r| {
                    (
                        r.next_below(3) as usize,        // which counter
                        r.next_below(5_000_000),         // timestamp
                        gen::u64_in(r, 0, 1_000) as f64, // amount
                    )
                })
            },
            |adds| {
                const NAMES: [&str; 3] = ["a", "b", "c"];
                let mut m = Metrics::new(1_000_000);
                let mut last = [0.0f64; 3];
                for &(which, ts, amount) in adds {
                    m.add("t", NAMES[which], ts, amount);
                    let snap = m.snapshot();
                    for (i, name) in NAMES.iter().enumerate() {
                        let v = snap.get("t", name).map_or(0.0, |s| s.value);
                        ensure!(
                            v >= last[i],
                            "counter t.{name} went backwards: {v} < {}",
                            last[i]
                        );
                        let bin_sum: f64 = snap.get("t", name).map_or(0.0, |s| s.bins.iter().sum());
                        ensure!(
                            (bin_sum - v).abs() < 1e-9,
                            "bins {bin_sum} disagree with total {v}"
                        );
                        last[i] = v;
                    }
                }
                Ok(())
            },
        );
    }
}
