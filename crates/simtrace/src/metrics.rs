//! The metrics registry: named counters and gauges, registered on first
//! touch and bumped on hot paths.
//!
//! Counters accumulate a running total plus per-window sums; the window
//! arithmetic (`bins[ts / window] += amount`) is deliberately identical to
//! `simstats::RateTrace::add`, so a counter's windowed bins reproduce a
//! legacy rate trace bit-for-bit. Gauges keep every `(ts, value)` sample
//! (they are set at sampling cadence, not per packet) plus the last value.

use std::collections::BTreeMap;

/// Whether a metric accumulates (counter) or tracks a level (gauge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically accumulating quantity (bytes, frames, decisions).
    Counter,
    /// A sampled level (frequency, cumulative busy time).
    Gauge,
}

#[derive(Debug, Clone)]
struct MetricData {
    kind: MetricKind,
    /// Counters: running total. Gauges: last set value.
    value: f64,
    /// Counters only: per-window sums, indexed by `ts / window`.
    bins: Vec<f64>,
    /// Gauges only: every `(ts_ns, value)` sample in set order.
    points: Vec<(u64, f64)>,
}

impl MetricData {
    fn new(kind: MetricKind) -> Self {
        MetricData {
            kind,
            value: 0.0,
            bins: Vec::new(),
            points: Vec::new(),
        }
    }
}

/// The registry. One instance lives inside each installed tracer;
/// subsystems that want figure-grade collection without global tracing
/// (e.g. `cluster`'s legacy `Traces`) can own one directly.
#[derive(Debug, Clone)]
pub struct Metrics {
    window_ns: u64,
    map: BTreeMap<(&'static str, &'static str), MetricData>,
}

impl Metrics {
    /// Creates an empty registry with the given counter window.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is zero.
    #[must_use]
    pub fn new(window_ns: u64) -> Self {
        assert!(window_ns > 0, "metric window must be positive");
        Metrics {
            window_ns,
            map: BTreeMap::new(),
        }
    }

    /// The counter window width in nanoseconds.
    #[must_use]
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn entry(
        &mut self,
        component: &'static str,
        name: &'static str,
        kind: MetricKind,
    ) -> &mut MetricData {
        let data = self
            .map
            .entry((component, name))
            .or_insert_with(|| MetricData::new(kind));
        debug_assert_eq!(
            data.kind, kind,
            "metric {component}.{name} used as both counter and gauge"
        );
        data
    }

    /// Adds `amount` to the counter at instant `ts_ns` (total + window bin).
    pub fn add(&mut self, component: &'static str, name: &'static str, ts_ns: u64, amount: f64) {
        let window = self.window_ns;
        let data = self.entry(component, name, MetricKind::Counter);
        data.value += amount;
        let idx = (ts_ns / window) as usize;
        if idx >= data.bins.len() {
            data.bins.resize(idx + 1, 0.0);
        }
        data.bins[idx] += amount;
    }

    /// Adds `amount` to the counter's running total only — for call sites
    /// that have no timestamp in scope (pure hardware counters).
    pub fn add_cum(&mut self, component: &'static str, name: &'static str, amount: f64) {
        self.entry(component, name, MetricKind::Counter).value += amount;
    }

    /// Sets the gauge to `value` at instant `ts_ns`.
    pub fn set(&mut self, component: &'static str, name: &'static str, ts_ns: u64, value: f64) {
        let data = self.entry(component, name, MetricKind::Gauge);
        data.value = value;
        data.points.push((ts_ns, value));
    }

    /// Snapshots every metric, sorted by `(component, name)`.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            window_ns: self.window_ns,
            metrics: self
                .map
                .iter()
                .map(|(&(component, name), d)| MetricSnapshot {
                    component,
                    name,
                    kind: d.kind,
                    value: d.value,
                    bins: d.bins.clone(),
                    points: d.points.clone(),
                })
                .collect(),
        }
    }
}

/// One metric's state at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Emitting subsystem.
    pub component: &'static str,
    /// Metric name within the component.
    pub name: &'static str,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Counters: running total. Gauges: last set value.
    pub value: f64,
    /// Counters: per-window sums (`RateTrace`-compatible).
    pub bins: Vec<f64>,
    /// Gauges: every `(ts_ns, value)` sample.
    pub points: Vec<(u64, f64)>,
}

/// A point-in-time copy of the whole registry.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter window width in nanoseconds.
    pub window_ns: u64,
    metrics: Vec<MetricSnapshot>,
}

impl MetricsSnapshot {
    /// An empty snapshot (used by the disabled-tracing path).
    #[must_use]
    pub fn empty(window_ns: u64) -> Self {
        MetricsSnapshot {
            window_ns,
            metrics: Vec::new(),
        }
    }

    /// Looks up one metric.
    #[must_use]
    pub fn get(&self, component: &str, name: &str) -> Option<&MetricSnapshot> {
        self.metrics
            .iter()
            .find(|m| m.component == component && m.name == name)
    }

    /// Iterates in `(component, name)` order.
    pub fn iter(&self) -> impl Iterator<Item = &MetricSnapshot> {
        self.metrics.iter()
    }

    /// Number of metrics captured.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// `true` when no metrics were captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Exports the windowed metrics as CSV up to `end_ns` (exclusive).
    #[must_use]
    pub fn export_csv(&self, end_ns: u64) -> String {
        crate::csv::export(self, end_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_totals_and_bins() {
        let mut m = Metrics::new(100);
        m.add("nic", "rx", 10, 1.0);
        m.add("nic", "rx", 99, 2.0);
        m.add("nic", "rx", 250, 4.0);
        m.add_cum("nic", "rx", 8.0);
        let s = m.snapshot();
        let rx = s.get("nic", "rx").unwrap();
        assert_eq!(rx.kind, MetricKind::Counter);
        assert_eq!(rx.value, 15.0);
        assert_eq!(rx.bins, vec![3.0, 0.0, 4.0]);
        assert!(rx.points.is_empty());
    }

    #[test]
    fn gauge_keeps_samples() {
        let mut m = Metrics::new(100);
        m.set("cpu", "freq", 0, 3.1);
        m.set("cpu", "freq", 200, 0.8);
        let s = m.snapshot();
        let f = s.get("cpu", "freq").unwrap();
        assert_eq!(f.kind, MetricKind::Gauge);
        assert_eq!(f.value, 0.8);
        assert_eq!(f.points, vec![(0, 3.1), (200, 0.8)]);
    }

    #[test]
    fn snapshot_is_sorted_and_searchable() {
        let mut m = Metrics::new(100);
        m.add_cum("z", "last", 1.0);
        m.add_cum("a", "first", 1.0);
        let s = m.snapshot();
        let keys: Vec<_> = s.iter().map(|x| (x.component, x.name)).collect();
        assert_eq!(keys, vec![("a", "first"), ("z", "last")]);
        assert!(s.get("a", "first").is_some());
        assert!(s.get("a", "missing").is_none());
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(MetricsSnapshot::empty(100).is_empty());
    }

    #[test]
    #[should_panic(expected = "metric window must be positive")]
    fn zero_window_rejected() {
        let _ = Metrics::new(0);
    }
}
