//! Size-aware generator helpers.
//!
//! These wrap [`Rng`](crate::Rng)'s raw draws with the `size`-budget
//! convention the shrinker relies on: collection lengths and integer
//! magnitudes scale with `size`, so bisecting `size` shrinks the
//! counterexample. Use them inside `Check::run` generator closures; for
//! anything unusual, draw from the `Rng` directly.

use crate::Rng;

/// A length in `[lo, hi]`, additionally capped by the size budget: the
/// effective upper bound is `min(hi, lo + size)`.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn len_in(rng: &mut Rng, size: usize, lo: usize, hi: usize) -> usize {
    assert!(lo <= hi, "invalid length range");
    let capped_hi = hi.min(lo.saturating_add(size));
    rng.next_range(lo as u64, capped_hi as u64) as usize
}

/// A `Vec` whose length obeys [`len_in`] and whose elements come from
/// `element`.
pub fn vec_with<T>(
    rng: &mut Rng,
    size: usize,
    lo: usize,
    hi: usize,
    mut element: impl FnMut(&mut Rng) -> T,
) -> Vec<T> {
    let n = len_in(rng, size, lo, hi);
    (0..n).map(|_| element(rng)).collect()
}

/// A `u64` in `[lo, hi)` whose magnitude above `lo` scales with `size`
/// (full range at `size >=` [`crate::DEFAULT_MAX_SIZE`]).
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn u64_scaled(rng: &mut Rng, size: usize, lo: u64, hi: u64) -> u64 {
    assert!(lo < hi, "invalid range");
    let span = hi - lo;
    let frac = (size as f64 / crate::DEFAULT_MAX_SIZE as f64).min(1.0);
    // Keep at least one choice so size 0 still generates `lo`.
    let scaled = ((span as f64 * frac) as u64).clamp(1, span);
    lo + rng.next_below(scaled)
}

/// A uniform `u64` in `[lo, hi)`, size-independent.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn u64_in(rng: &mut Rng, lo: u64, hi: u64) -> u64 {
    assert!(lo < hi, "invalid range");
    lo + rng.next_below(hi - lo)
}

/// A uniform `usize` in `[lo, hi)`, size-independent.
pub fn usize_in(rng: &mut Rng, lo: usize, hi: usize) -> usize {
    u64_in(rng, lo as u64, hi as u64) as usize
}

/// A uniform `f64` in `[lo, hi)`.
pub fn f64_in(rng: &mut Rng, lo: f64, hi: f64) -> f64 {
    rng.next_f64_in(lo, hi)
}

/// A fair coin.
pub fn bool(rng: &mut Rng) -> bool {
    rng.next_u64() & 1 == 1
}

/// A uniform byte.
pub fn byte(rng: &mut Rng) -> u8 {
    rng.next_below(256) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_respects_range_and_size_cap() {
        let mut rng = Rng::new(1);
        for _ in 0..1_000 {
            let n = len_in(&mut rng, 10, 1, 200);
            assert!((1..=11).contains(&n), "len {n}");
        }
        for _ in 0..1_000 {
            let n = len_in(&mut rng, 10_000, 1, 200);
            assert!((1..=200).contains(&n));
        }
    }

    #[test]
    fn scaled_magnitude_grows_with_size() {
        let mut rng = Rng::new(2);
        for _ in 0..1_000 {
            assert_eq!(u64_scaled(&mut rng, 0, 5, 1_000), 5);
            assert!(u64_scaled(&mut rng, 10, 5, 1_005) < 5 + 101);
            assert!(u64_scaled(&mut rng, 100, 0, 1_000) < 1_000);
        }
    }

    #[test]
    fn vec_with_generates_elements_in_order() {
        let mut rng = Rng::new(3);
        let v = vec_with(&mut rng, 50, 5, 5, |r| r.next_below(7));
        assert_eq!(v.len(), 5);
        assert!(v.iter().all(|&x| x < 7));
    }

    #[test]
    fn uniform_helpers_hit_bounds() {
        let mut rng = Rng::new(4);
        let mut lo_seen = false;
        for _ in 0..10_000 {
            let x = usize_in(&mut rng, 3, 6);
            assert!((3..6).contains(&x));
            lo_seen |= x == 3;
        }
        assert!(lo_seen);
        for _ in 0..100 {
            let f = f64_in(&mut rng, -1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn coin_is_not_constant() {
        let mut rng = Rng::new(5);
        let heads = (0..1_000).filter(|_| bool(&mut rng)).count();
        assert!((300..700).contains(&heads));
    }
}
