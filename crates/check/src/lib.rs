//! # check — a minimal in-tree property-testing harness
//!
//! A purpose-built replacement for the slice of `proptest` this
//! repository actually used, so the test suite builds and runs with no
//! registry access. The model:
//!
//! * **Seeded generators.** A generator is any `Fn(&mut Rng, usize) -> T`
//!   closure: it draws from a [`Rng`] (the simulator's own
//!   [`desim::SplitMix64`]) and respects a `size` budget. Each test case
//!   gets an independent case seed derived from the base seed, so any
//!   single case can be replayed in isolation.
//! * **`for_all` runner.** [`Check::run`] generates `cases` values with
//!   `size` ramping from small to [`Check::max_size`] and applies the
//!   property. Properties return `Result<(), String>`; panics inside the
//!   property are caught and treated as failures too.
//! * **Binary-search shrinking.** On failure the runner bisects the
//!   `size` budget — regenerating from the same case seed — to find the
//!   smallest size at which the property still fails, then reports that
//!   minimal counterexample. Since generators scale collection lengths
//!   and magnitudes with `size` (see [`gen`]), this shrinks both.
//! * **Failure-seed replay.** Every failure message carries a
//!   `CHECK_REPLAY=<seed>:<size>` recipe; setting that variable reruns
//!   exactly the failing case. Pinned regressions from a previous
//!   `proptest-regressions/` corpus live on as explicit `#[test]`s that
//!   call the property function directly with the shrunken value.
//!
//! ```
//! use check::{ensure, Check};
//!
//! Check::new("addition_commutes").run(
//!     |rng, _size| (rng.next_u64() >> 1, rng.next_u64() >> 1),
//!     |&(a, b)| {
//!         ensure!(a + b == b + a, "{a} + {b}");
//!         Ok(())
//!     },
//! );
//! ```

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub use desim::SplitMix64 as Rng;

pub mod gen;

/// Outcome of one property application.
pub type PropResult = Result<(), String>;

/// Default number of random cases per property.
pub const DEFAULT_CASES: u32 = 96;
/// Default maximum size budget.
pub const DEFAULT_MAX_SIZE: usize = 100;
/// Default base seed. Every run of the suite explores the same cases —
/// reproducibility is worth more to a simulator repo than novelty.
pub const DEFAULT_SEED: u64 = 0x4E43_4150_5345_4544; // "NCAPSEED"

/// A configured property check. Build with [`Check::new`], customize,
/// then call [`Check::run`].
#[derive(Debug, Clone)]
pub struct Check {
    name: &'static str,
    cases: u32,
    max_size: usize,
    seed: u64,
}

impl Check {
    /// A check with defaults: [`DEFAULT_CASES`] cases, size up to
    /// [`DEFAULT_MAX_SIZE`], seed from `CHECK_SEED` (hex, `0x` optional)
    /// or [`DEFAULT_SEED`]. `CHECK_CASES` overrides the case count
    /// globally.
    #[must_use]
    pub fn new(name: &'static str) -> Self {
        let cases = std::env::var("CHECK_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        let seed = std::env::var("CHECK_SEED")
            .ok()
            .and_then(|v| parse_u64(&v))
            .unwrap_or(DEFAULT_SEED);
        Check {
            name,
            cases,
            max_size: DEFAULT_MAX_SIZE,
            seed,
        }
    }

    /// Overrides the number of random cases.
    #[must_use]
    pub fn cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Overrides the maximum size budget handed to the generator.
    #[must_use]
    pub fn max_size(mut self, max_size: usize) -> Self {
        self.max_size = max_size;
        self
    }

    /// Overrides the base seed (rarely needed; prefer `CHECK_SEED`).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the property over generated inputs.
    ///
    /// # Panics
    ///
    /// Panics with a replayable counterexample report if the property
    /// fails (the harness contract, like any `assert!`).
    pub fn run<T, G, P>(&self, generate: G, property: P)
    where
        T: Debug,
        G: Fn(&mut Rng, usize) -> T,
        P: Fn(&T) -> PropResult,
    {
        // Replay mode: run exactly one pinned case, no search.
        if let Some((seed, size)) = replay_request() {
            let value = generate(&mut Rng::new(seed), size);
            if let Err(msg) = apply(&property, &value) {
                panic!(
                    "property '{}' falsified on replay (CHECK_REPLAY={seed:#x}:{size})\n  \
                     failure: {msg}\n  value: {value:?}",
                    self.name
                );
            }
            return;
        }

        let mut seeds = Rng::new(self.seed);
        for case in 0..self.cases {
            // Ramp the size budget so early cases are small: a property
            // that fails on trivial inputs reports a trivial example
            // without any shrinking at all.
            let size = ramp(case, self.cases, self.max_size);
            let case_seed = seeds.next_u64();
            let value = generate(&mut Rng::new(case_seed), size);
            if let Err(msg) = apply(&property, &value) {
                self.report(&generate, &property, case, case_seed, size, &msg);
            }
        }
    }

    /// Shrinks via binary search on the size budget, then panics with the
    /// smallest counterexample found.
    fn report<T, G, P>(
        &self,
        generate: &G,
        property: &P,
        case: u32,
        case_seed: u64,
        failed_size: usize,
        first_msg: &str,
    ) -> !
    where
        T: Debug,
        G: Fn(&mut Rng, usize) -> T,
        P: Fn(&T) -> PropResult,
    {
        let fails = |size: usize| -> Option<String> {
            let value = generate(&mut Rng::new(case_seed), size);
            apply(property, &value).err()
        };
        // Invariant: `hi` is a size known to fail. Failure need not be
        // monotone in size, so this is a heuristic minimizer — each probe
        // that fails becomes the new upper bound.
        let (mut lo, mut hi) = (0usize, failed_size);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if fails(mid).is_some() {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let shrunk_size = hi;
        let value = generate(&mut Rng::new(case_seed), shrunk_size);
        let msg = apply(property, &value).err().unwrap_or_else(|| {
            // The bisection landed on a passing probe (non-monotone
            // failure region); fall back to the original case.
            first_msg.to_owned()
        });
        let (final_size, final_value) = if apply(property, &value).is_err() {
            (shrunk_size, value)
        } else {
            (failed_size, generate(&mut Rng::new(case_seed), failed_size))
        };
        panic!(
            "property '{}' falsified at case {}/{} (shrunk size {} from {})\n  \
             failure: {}\n  value: {:?}\n  \
             replay: CHECK_REPLAY={:#x}:{} cargo test {}",
            self.name,
            case + 1,
            self.cases,
            final_size,
            failed_size,
            msg,
            final_value,
            case_seed,
            final_size,
            self.name,
        );
    }
}

/// Applies the property, converting panics into `Err` so the shrinker
/// can probe freely. (Panic messages still reach stderr via the default
/// hook — acceptable noise on the failure path only.)
fn apply<T, P: Fn(&T) -> PropResult>(property: &P, value: &T) -> PropResult {
    match catch_unwind(AssertUnwindSafe(|| property(value))) {
        Ok(r) => r,
        // `as_ref` matters: `&payload` would unsize the Box itself into
        // the trait object and every downcast would miss.
        Err(payload) => Err(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked (non-string payload)".to_owned()
    }
}

/// Size ramp: case 0 gets a tiny budget, the last case the full one.
fn ramp(case: u32, cases: u32, max_size: usize) -> usize {
    let span = cases.max(1) as usize;
    1 + (case as usize * max_size.saturating_sub(1)) / span
}

fn parse_u64(text: &str) -> Option<u64> {
    let t = text.trim();
    t.strip_prefix("0x")
        .map_or_else(|| t.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok())
}

fn replay_request() -> Option<(u64, usize)> {
    let var = std::env::var("CHECK_REPLAY").ok()?;
    let (seed, size) = var.split_once(':')?;
    Some((parse_u64(seed)?, size.trim().parse().ok()?))
}

/// Fails the enclosing property unless `cond` holds.
///
/// The failure records the condition (or a formatted message) with file
/// and line, mirroring `prop_assert!`.
#[macro_export]
macro_rules! ensure {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "{} is false at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "{} at {}:{}",
                format_args!($($fmt)+),
                file!(),
                line!()
            ));
        }
    };
}

/// Fails the enclosing property unless `left == right`, reporting both.
#[macro_export]
macro_rules! ensure_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{} != {} ({:?} vs {:?}) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{} ({:?} vs {:?}) at {}:{}",
                format_args!($($fmt)+),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut hits = 0u32;
        let counter = std::cell::Cell::new(0u32);
        Check::new("always_true").cases(25).run(
            |rng, size| (rng.next_u64(), size),
            |&(_, _)| {
                counter.set(counter.get() + 1);
                Ok(())
            },
        );
        hits += counter.get();
        assert_eq!(hits, 25);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let collect = |seed: u64| {
            let mut out = Vec::new();
            Check::new("collect").seed(seed).cases(10).run(
                |rng, size| gen::vec_with(rng, size, 0, 20, |r| r.next_below(100)),
                |v| {
                    // Properties observe values by side effect here only to
                    // assert determinism of the harness itself.
                    let _ = &v;
                    Ok(())
                },
            );
            let mut seeds = Rng::new(seed);
            for case in 0..10 {
                let size = super::ramp(case, 10, DEFAULT_MAX_SIZE);
                let cs = seeds.next_u64();
                out.push(gen::vec_with(&mut Rng::new(cs), size, 0, 20, |r| {
                    r.next_below(100)
                }));
            }
            out
        };
        assert_eq!(collect(42), collect(42));
        assert_ne!(collect(42), collect(43));
    }

    #[test]
    fn failing_property_reports_shrunken_size_and_replay() {
        let result = catch_unwind(|| {
            Check::new("fails_when_long").cases(50).run(
                |rng, size| gen::vec_with(rng, size, 0, 100, |r| r.next_below(10)),
                |v| {
                    ensure!(v.len() < 5, "vec of {} elements", v.len());
                    Ok(())
                },
            );
        });
        let msg = panic_message(result.expect_err("property must fail").as_ref());
        assert!(msg.contains("falsified"), "{msg}");
        assert!(msg.contains("CHECK_REPLAY="), "{msg}");
        // The shrinker drives the size budget to the smallest failing
        // one, so the reported vec is near the 5-element boundary.
        let reported_len = msg
            .split("vec of ")
            .nth(1)
            .and_then(|rest| rest.split(' ').next())
            .and_then(|n| n.parse::<usize>().ok())
            .expect("message carries the failing length");
        assert!(reported_len < 20, "shrunk poorly: {msg}");
    }

    #[test]
    fn panicking_property_is_caught_and_reported() {
        let result = catch_unwind(|| {
            Check::new("panics")
                .cases(5)
                .run(|rng, _| rng.next_u64(), |_| panic!("boom inside property"));
        });
        let msg = panic_message(
            result
                .expect_err("panic must propagate as failure")
                .as_ref(),
        );
        assert!(msg.contains("boom inside property"), "{msg}");
    }

    #[test]
    fn ensure_macros_format() {
        fn p(x: u64) -> PropResult {
            ensure!(x < 10, "x was {x}");
            ensure_eq!(x % 2, 0);
            Ok(())
        }
        assert!(p(2).is_ok());
        assert!(p(12).unwrap_err().contains("x was 12"));
        assert!(p(3).unwrap_err().contains("x % 2"));
    }

    #[test]
    fn ramp_spans_the_budget() {
        assert_eq!(ramp(0, 100, 100), 1);
        assert!(ramp(99, 100, 100) >= 98);
        assert_eq!(ramp(0, 1, 1), 1);
    }

    #[test]
    fn seed_parsing() {
        assert_eq!(parse_u64("0xff"), Some(255));
        assert_eq!(parse_u64("17"), Some(17));
        assert_eq!(parse_u64("zzz"), None);
    }
}
