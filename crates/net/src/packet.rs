//! TCP/IP-lite packet model.
//!
//! A [`Packet`] models one Ethernet frame carrying a TCP segment. Header
//! layout follows the paper's description of the receive path: the TCP
//! payload (where an OLDI request's method token lives) starts at byte 66
//! of the frame — 14 bytes Ethernet + 20 IPv4 + 20 TCP + 12 TCP options
//! (timestamps). NCAP's ReqMonitor inspects exactly the first two payload
//! bytes (paper §4.1), so the model keeps real payload bytes.
//!
//! Out-of-band [`PacketMeta`] carries measurement bookkeeping (request id,
//! client send time). It is *never* consulted by power-management logic —
//! NCAP sees only bytes, counters and times, as hardware would.

use crate::bytes::Bytes;
use core::fmt;
use desim::{SimDuration, SimTime};

/// Ethernet header bytes (dst MAC, src MAC, ethertype).
pub const ETH_HEADER: usize = 14;
/// IPv4 header bytes (no options).
pub const IPV4_HEADER: usize = 20;
/// TCP header bytes (no options).
pub const TCP_HEADER: usize = 20;
/// TCP option bytes (timestamp + NOPs), as in typical Linux flows.
pub const TCP_OPTIONS: usize = 12;
/// Offset of the first TCP payload byte within the frame. The paper's
/// ReqMonitor compares the two bytes at this offset against its templates.
pub const PAYLOAD_OFFSET: usize = ETH_HEADER + IPV4_HEADER + TCP_HEADER + TCP_OPTIONS;
/// Ethernet MTU: maximum IP datagram size per frame.
pub const MTU: usize = 1500;
/// Maximum TCP payload per segment under this header model.
pub const MSS: usize = MTU - IPV4_HEADER - TCP_HEADER - TCP_OPTIONS;
/// Per-frame wire overhead beyond the frame bytes: preamble + SFD (8),
/// FCS (4) and inter-frame gap (12).
pub const WIRE_OVERHEAD: usize = 24;

/// Identifies a simulated machine in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Per-request latency attribution, carried in the measurement sideband.
///
/// Stamped incrementally along the request's path — the client's
/// retransmission timer, the load balancer's forwarding hop, the server
/// NIC and kernel — so that by the time the final response frame reaches
/// the client, consecutive anchors and durations *tile* the whole
/// client-observed latency: the per-stage durations sum to it exactly
/// (the conservation identity `tests/observability.rs` enforces). Like
/// every other [`PacketMeta`] field, it is never consulted by simulated
/// logic; simulation results are bit-identical whether anything reads it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageRecord {
    /// Client-side wait before the served attempt was sent: zero when the
    /// originally transmitted copy was served, the elapsed retransmission
    /// backoff when the server ended up serving a resent copy.
    pub retx_ns: u32,
    /// Load-balancer forwarding hold on the request path.
    pub lb_in_ns: u32,
    /// Load-balancer forwarding hold on the response path.
    pub lb_out_ns: u32,
    /// When the request frame fully arrived at the serving NIC.
    pub arrival: SimTime,
    /// When the request frame's RX DMA into host memory completed.
    pub dma_done: SimTime,
    /// NIC residency after DMA: interrupt-moderation hold, ring wait and
    /// interrupt servicing, minus any C-state wake overlap.
    pub moderation_ns: u32,
    /// C-state wake latency the delivering interrupt waited out.
    pub wake_ns: u32,
    /// Receive SoftIRQ queue wait plus protocol processing.
    pub stack_ns: u32,
    /// Bypass datapath only: ring residency from DMA completion to the
    /// userspace poll pickup, plus poll-mode RX processing. Replaces
    /// `moderation + wake + stack` on the poll path; zero on the kernel
    /// datapath.
    pub poll_wait_ns: u32,
    /// Run-queue wait of the application's CPU phases.
    pub rq_wait_ns: u32,
    /// CPU execution time of the application phases.
    pub cpu_ns: u32,
    /// Application IO (disk) waits.
    pub io_ns: u32,
    /// Server-side replay overhead: for responses that had to be
    /// regenerated after a client retransmission, the gap between the
    /// original response generation and the replay.
    pub replay_ns: u32,
    /// When the application finished the response (or the replay was
    /// emitted) — the anchor the TX stage is measured from.
    pub app_done: SimTime,
    /// TX stage: softirq-tx queueing and processing plus NIC TX DMA and
    /// serialization, up to the final frame hitting the wire.
    pub tx_ns: u32,
    /// When the final response frame left the server on the wire.
    pub last_tx: SimTime,
}

/// Measurement-only sideband attached to packets.
///
/// Fields here exist so the harness can attribute completed responses to
/// the request that caused them without perturbing the simulated system —
/// the same role as the gem5 pseudo-instruction annotations in the paper's
/// methodology (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PacketMeta {
    /// Id of the application-level request this frame belongs to, if any.
    pub request_id: Option<u64>,
    /// When the originating client issued the request.
    pub sent_at: SimTime,
    /// Segment index within the message (0 for single-frame messages).
    /// The reliability layer deduplicates retransmitted frames by
    /// `(request_id, seq)`.
    pub seq: u32,
    /// `true` on the last frame of a message (single-frame messages are
    /// final); clients use this to timestamp response completion.
    pub is_final: bool,
    /// Completion deadline measured from `sent_at`. A request whose
    /// queueing delay has already consumed the whole budget can be shed
    /// by a deadline-aware server. `Some(ZERO)` is an already-expired
    /// deadline; `None` tolerates any delay. On the wire this rides in
    /// the TCP timestamp option (see `wire::encode`).
    pub deadline: Option<SimDuration>,
    /// `true` on 503-style rejection responses: the server declined the
    /// request under overload instead of serving it. Clients count these
    /// as rejected, not completed, and never record their latency.
    pub rejected: bool,
    /// Per-stage latency attribution accumulated along the path.
    pub stages: StageRecord,
}

/// One Ethernet frame carrying a TCP segment.
#[derive(Debug, Clone)]
pub struct Packet {
    src: NodeId,
    dst: NodeId,
    flow: u32,
    payload: Bytes,
    meta: PacketMeta,
}

impl Packet {
    /// Builds a frame from raw parts.
    #[must_use]
    pub fn new(src: NodeId, dst: NodeId, flow: u32, payload: Bytes, meta: PacketMeta) -> Self {
        Packet {
            src,
            dst,
            flow,
            payload,
            meta,
        }
    }

    /// Convenience constructor for a request frame (client → server).
    #[must_use]
    pub fn request(src: NodeId, dst: NodeId, request_id: u64, payload: Bytes) -> Self {
        Packet::new(
            src,
            dst,
            request_id as u32,
            payload,
            PacketMeta {
                request_id: Some(request_id),
                sent_at: SimTime::ZERO,
                seq: 0,
                is_final: true,
                ..PacketMeta::default()
            },
        )
    }

    /// Builds the cheap 503-style rejection frame a server returns when
    /// admission control sheds a request: a minimal final segment whose
    /// payload is just the status token, so the client learns of the
    /// rejection at one frame's cost instead of waiting out an RTO.
    #[must_use]
    pub fn reject_response(src: NodeId, dst: NodeId, request_id: u64, sent_at: SimTime) -> Self {
        Packet::new(
            src,
            dst,
            request_id as u32,
            Bytes::from_static(b"503"),
            PacketMeta {
                request_id: Some(request_id),
                sent_at,
                seq: 0,
                is_final: true,
                rejected: true,
                ..PacketMeta::default()
            },
        )
    }

    /// Sets the client send timestamp (builder-style).
    #[must_use]
    pub fn sent_at(mut self, t: SimTime) -> Self {
        self.meta.sent_at = t;
        self
    }

    /// Rewrites the frame's addressing `src → dst` — the NAT hop a
    /// load balancer performs when forwarding a frame. Payload, flow and
    /// the measurement sideband are untouched, so request identity (and
    /// therefore latency attribution) survives the middlebox.
    #[must_use]
    pub fn readdress(mut self, src: NodeId, dst: NodeId) -> Self {
        self.src = src;
        self.dst = dst;
        self
    }

    /// Stamps a completion deadline, measured from `sent_at`
    /// (builder-style).
    #[must_use]
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        self.meta.deadline = Some(deadline);
        self
    }

    /// Source node.
    #[must_use]
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Destination node.
    #[must_use]
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// Flow identifier (connection surrogate).
    #[must_use]
    pub fn flow(&self) -> u32 {
        self.flow
    }

    /// TCP payload bytes (starting at frame offset [`PAYLOAD_OFFSET`]).
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// A zero-copy handle to the payload storage.
    #[must_use]
    pub fn payload_bytes(&self) -> Bytes {
        self.payload.clone()
    }

    /// Measurement sideband.
    #[must_use]
    pub fn meta(&self) -> PacketMeta {
        self.meta
    }

    /// Mutable access to the measurement sideband — for the attribution
    /// stamps instrumentation layers (client retx timer, load balancer,
    /// server NIC/kernel) write as the frame passes through them. Only
    /// measurement code may use this; simulated logic never reads meta.
    pub fn meta_mut(&mut self) -> &mut PacketMeta {
        &mut self.meta
    }

    /// The first two payload bytes — what ReqMonitor's template comparison
    /// reads — or `None` for payloads shorter than two bytes (pure ACKs).
    #[must_use]
    pub fn leading_bytes(&self) -> Option<[u8; 2]> {
        if self.payload.len() >= 2 {
            Some([self.payload[0], self.payload[1]])
        } else {
            None
        }
    }

    /// Frame length in bytes: headers + payload.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the payload fits in one segment ([`MSS`]).
    #[must_use]
    pub fn frame_len(&self) -> usize {
        debug_assert!(
            self.payload.len() <= MSS,
            "payload exceeds MSS; segment first"
        );
        PAYLOAD_OFFSET + self.payload.len()
    }

    /// Bytes occupying the wire, including preamble/FCS/IFG — what the
    /// serialization-delay computation uses. Frames shorter than the
    /// 64-byte Ethernet minimum are padded.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        self.frame_len().max(64) + WIRE_OVERHEAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_offset_is_66() {
        // Paper §4.1: "The payload field ... starts from the 66th byte of a
        // received TCP packet."
        assert_eq!(PAYLOAD_OFFSET, 66);
    }

    #[test]
    fn mss_fits_mtu() {
        assert_eq!(MSS + IPV4_HEADER + TCP_HEADER + TCP_OPTIONS, MTU);
    }

    #[test]
    fn leading_bytes_of_get() {
        let p = Packet::request(NodeId(1), NodeId(0), 1, Bytes::from_static(b"GET /x"));
        assert_eq!(p.leading_bytes(), Some(*b"GE"));
    }

    #[test]
    fn leading_bytes_of_short_payload() {
        let ack = Packet::new(NodeId(1), NodeId(0), 0, Bytes::new(), PacketMeta::default());
        assert_eq!(ack.leading_bytes(), None);
    }

    #[test]
    fn frame_and_wire_lengths() {
        let p = Packet::request(NodeId(1), NodeId(0), 1, Bytes::from(vec![0u8; 100]));
        assert_eq!(p.frame_len(), 166);
        assert_eq!(p.wire_len(), 166 + WIRE_OVERHEAD);
        // A header-only frame (66 B) already exceeds the 64 B minimum.
        let ack = Packet::new(NodeId(1), NodeId(0), 0, Bytes::new(), PacketMeta::default());
        assert_eq!(ack.wire_len(), PAYLOAD_OFFSET + WIRE_OVERHEAD);
    }

    #[test]
    fn meta_roundtrip() {
        let p = Packet::request(NodeId(2), NodeId(0), 9, Bytes::from_static(b"GET /"))
            .sent_at(SimTime::from_us(3));
        assert_eq!(p.meta().request_id, Some(9));
        assert_eq!(p.meta().sent_at, SimTime::from_us(3));
        assert_eq!(p.src(), NodeId(2));
        assert_eq!(p.dst(), NodeId(0));
        assert_eq!(p.flow(), 9);
    }

    #[test]
    fn readdress_rewrites_only_addressing() {
        let p = Packet::request(NodeId(9), NodeId(4), 7, Bytes::from_static(b"GET /"))
            .sent_at(SimTime::from_us(11))
            .readdress(NodeId(4), NodeId(0));
        assert_eq!(p.src(), NodeId(4));
        assert_eq!(p.dst(), NodeId(0));
        assert_eq!(p.flow(), 7);
        assert_eq!(p.meta().request_id, Some(7));
        assert_eq!(p.meta().sent_at, SimTime::from_us(11));
        assert_eq!(p.payload(), b"GET /");
    }

    #[test]
    fn node_display() {
        assert_eq!(NodeId(3).to_string(), "node3");
    }

    #[test]
    fn deadline_and_rejection_metadata() {
        let req = Packet::request(NodeId(1), NodeId(0), 4, Bytes::from_static(b"GET /"))
            .with_deadline(SimDuration::from_us(200));
        assert_eq!(req.meta().deadline, Some(SimDuration::from_us(200)));
        assert!(!req.meta().rejected);

        let nack = Packet::reject_response(NodeId(0), NodeId(1), 4, SimTime::from_us(7));
        assert!(nack.meta().rejected);
        assert!(nack.meta().is_final);
        assert_eq!(nack.meta().request_id, Some(4));
        assert_eq!(nack.meta().sent_at, SimTime::from_us(7));
        assert_eq!(nack.leading_bytes(), Some(*b"50"));
        // Cheap on the wire: payload is the bare status token.
        assert_eq!(nack.frame_len(), PAYLOAD_OFFSET + 3);
    }
}
