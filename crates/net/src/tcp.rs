//! TCP-lite: MSS segmentation, sequence tracking and reassembly.
//!
//! By default the fabric is lossless (switched datacenter fabric, no
//! congestion drops at the simulated loads) and nothing here is exercised
//! beyond segmentation: "most responses are larger than the Ethernet
//! maximum transmission unit, and thus several TCP packets constituting a
//! single response are transmitted" (§4.1) — the paper's TxBytesCounter
//! rationale. [`segment_response`] performs that split and stamps each
//! frame with a per-message sequence number.
//!
//! When fault injection is active (see [`crate::faults`]) the sequence
//! numbers carry the reliability layer: [`Reassembly`] tracks which
//! segments of a message have arrived, suppresses retransmitted
//! duplicates, tolerates reordering, and reports completion only once
//! *every* segment through the final one has been received — a lost
//! middle frame can no longer masquerade as a completed response.

use crate::bytes::Bytes;
use crate::packet::{NodeId, Packet, PacketMeta, MSS};
use desim::SimTime;
use std::collections::HashSet;

/// Splits a response body into MSS-sized frames from `src` to `dst`.
///
/// Every produced packet shares the response body's storage (`Bytes`
/// slicing is zero-copy) and carries the same `request_id` so the harness
/// can detect response completion. A zero-length body still produces one
/// (header-only) packet so empty responses remain observable on the wire.
///
/// # Example
///
/// ```
/// use netsim::tcp::segment_response;
/// use netsim::packet::{NodeId, MSS};
/// use netsim::Bytes;
/// use desim::SimTime;
///
/// let body = Bytes::from(vec![0u8; MSS * 2 + 100]);
/// let frames = segment_response(NodeId(0), NodeId(1), 7, body, SimTime::ZERO);
/// assert_eq!(frames.len(), 3);
/// assert_eq!(frames[0].payload().len(), MSS);
/// assert_eq!(frames[2].payload().len(), 100);
/// ```
#[must_use]
pub fn segment_response(
    src: NodeId,
    dst: NodeId,
    request_id: u64,
    body: Bytes,
    sent_at: SimTime,
) -> Vec<Packet> {
    let meta = PacketMeta {
        request_id: Some(request_id),
        sent_at,
        seq: 0,
        is_final: false,
        ..PacketMeta::default()
    };
    if body.is_empty() {
        simtrace::metric_add_cum("net", "tcp_segments", 1.0);
        return vec![Packet::new(
            src,
            dst,
            request_id as u32,
            body,
            PacketMeta {
                is_final: true,
                ..meta
            },
        )];
    }
    let mut frames = Vec::with_capacity(body.len().div_ceil(MSS));
    let mut offset = 0;
    while offset < body.len() {
        let end = (offset + MSS).min(body.len());
        let last = end == body.len();
        frames.push(Packet::new(
            src,
            dst,
            request_id as u32,
            body.slice(offset..end),
            PacketMeta {
                seq: frames.len() as u32,
                is_final: last,
                ..meta
            },
        ));
        offset = end;
    }
    simtrace::metric_add_cum("net", "tcp_segments", frames.len() as f64);
    frames
}

/// Total bytes a response occupies on the wire once segmented (including
/// all per-frame header and wire overhead). Used by bandwidth traces.
#[must_use]
pub fn response_wire_bytes(body_len: usize) -> usize {
    let frames = if body_len == 0 {
        1
    } else {
        body_len.div_ceil(MSS)
    };
    let mut total = 0;
    let mut remaining = body_len;
    for _ in 0..frames {
        let chunk = remaining.min(MSS);
        remaining -= chunk;
        total += (crate::packet::PAYLOAD_OFFSET + chunk).max(64) + crate::packet::WIRE_OVERHEAD;
    }
    total
}

/// Outcome of feeding one segment into a [`Reassembly`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentStatus {
    /// A segment not seen before; the message is still incomplete.
    Fresh,
    /// A retransmitted duplicate (or any segment after completion) — the
    /// receiver should suppress it.
    Duplicate,
    /// This segment completed the message: every sequence number from 0
    /// through the final one has now been received exactly once-or-more.
    Completed,
}

/// Receiver-side reassembly state for one message.
///
/// Tracks received sequence numbers so duplicates are suppressed and
/// out-of-order arrival is tolerated; the message completes only when all
/// segments `0..=final_seq` have arrived. Once complete, every further
/// segment reports [`SegmentStatus::Duplicate`].
///
/// A request that fails over mid-response can be re-served by a different
/// backend with a *different* response length, so segments from two
/// serializations of the same message may interleave here. The latest
/// final segment is authoritative for the message bound (it belongs to
/// the serialization currently being replayed), and completion checks
/// that `0..=final_seq` is covered rather than counting segments —
/// leftovers from a longer, abandoned serialization must not wedge the
/// message open forever.
#[derive(Debug, Default)]
pub struct Reassembly {
    received: HashSet<u32>,
    final_seq: Option<u32>,
    done: bool,
}

impl Reassembly {
    /// Empty state: no segments received.
    #[must_use]
    pub fn new() -> Self {
        Reassembly::default()
    }

    /// Feeds one segment, identified by its sequence number and final
    /// flag, and reports what the receiver should do with it.
    pub fn on_segment(&mut self, seq: u32, is_final: bool) -> SegmentStatus {
        if self.done {
            return SegmentStatus::Duplicate;
        }
        let fresh = self.received.insert(seq);
        if is_final {
            // Even a repeated seq re-binds the message end: a replay from
            // a failed-over backend may end earlier than the original
            // serialization did, and its final frame is the truth now.
            self.final_seq = Some(seq);
        } else if !fresh {
            return SegmentStatus::Duplicate;
        }
        match self.final_seq {
            Some(last) if (0..=last).all(|s| self.received.contains(&s)) => {
                self.done = true;
                SegmentStatus::Completed
            }
            _ if fresh => SegmentStatus::Fresh,
            _ => SegmentStatus::Duplicate,
        }
    }

    /// `true` once the message has fully arrived.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.done
    }

    /// Segments received so far (duplicates not counted).
    #[must_use]
    pub fn segments_received(&self) -> usize {
        self.received.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::{ensure, ensure_eq, Check};

    #[test]
    fn small_body_single_frame() {
        let frames = segment_response(
            NodeId(0),
            NodeId(1),
            1,
            Bytes::from_static(b"hello"),
            SimTime::ZERO,
        );
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].payload(), b"hello");
    }

    #[test]
    fn empty_body_still_produces_frame() {
        let frames = segment_response(NodeId(0), NodeId(1), 1, Bytes::new(), SimTime::ZERO);
        assert_eq!(frames.len(), 1);
        assert!(frames[0].payload().is_empty());
    }

    #[test]
    fn exact_mss_boundary() {
        let frames = segment_response(
            NodeId(0),
            NodeId(1),
            1,
            Bytes::from(vec![1u8; MSS]),
            SimTime::ZERO,
        );
        assert_eq!(frames.len(), 1);
        let frames = segment_response(
            NodeId(0),
            NodeId(1),
            1,
            Bytes::from(vec![1u8; MSS + 1]),
            SimTime::ZERO,
        );
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[1].payload().len(), 1);
    }

    #[test]
    fn all_frames_tagged_with_request() {
        let frames = segment_response(
            NodeId(0),
            NodeId(1),
            42,
            Bytes::from(vec![0u8; MSS * 3]),
            SimTime::from_us(5),
        );
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.meta().request_id, Some(42));
            assert_eq!(f.meta().sent_at, SimTime::from_us(5));
            assert_eq!(f.meta().is_final, i == frames.len() - 1);
        }
    }

    #[test]
    fn segments_carry_sequence_numbers() {
        let frames = segment_response(
            NodeId(0),
            NodeId(1),
            7,
            Bytes::from(vec![0u8; MSS * 2 + 10]),
            SimTime::ZERO,
        );
        let seqs: Vec<u32> = frames.iter().map(|f| f.meta().seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        let empty = segment_response(NodeId(0), NodeId(1), 7, Bytes::new(), SimTime::ZERO);
        assert_eq!(empty[0].meta().seq, 0);
        assert!(empty[0].meta().is_final);
    }

    #[test]
    fn reassembly_in_order() {
        let mut r = Reassembly::new();
        assert_eq!(r.on_segment(0, false), SegmentStatus::Fresh);
        assert_eq!(r.on_segment(1, false), SegmentStatus::Fresh);
        assert_eq!(r.on_segment(2, true), SegmentStatus::Completed);
        assert!(r.is_complete());
        assert_eq!(r.segments_received(), 3);
    }

    #[test]
    fn reassembly_tolerates_reordering() {
        // Final frame arrives first; completion waits for the hole.
        let mut r = Reassembly::new();
        assert_eq!(r.on_segment(2, true), SegmentStatus::Fresh);
        assert_eq!(r.on_segment(0, false), SegmentStatus::Fresh);
        assert!(!r.is_complete());
        assert_eq!(r.on_segment(1, false), SegmentStatus::Completed);
        assert!(r.is_complete());
    }

    #[test]
    fn reassembly_suppresses_duplicates() {
        let mut r = Reassembly::new();
        assert_eq!(r.on_segment(0, false), SegmentStatus::Fresh);
        assert_eq!(r.on_segment(0, false), SegmentStatus::Duplicate);
        assert_eq!(r.on_segment(1, true), SegmentStatus::Completed);
        // Everything after completion is a duplicate, even unseen seqs
        // (a stale retransmit of an already-answered message).
        assert_eq!(r.on_segment(1, true), SegmentStatus::Duplicate);
        assert_eq!(r.on_segment(0, false), SegmentStatus::Duplicate);
    }

    #[test]
    fn single_frame_message_completes_immediately() {
        let mut r = Reassembly::new();
        assert_eq!(r.on_segment(0, true), SegmentStatus::Completed);
    }

    #[test]
    fn shorter_reserialization_completes_despite_leftover_segments() {
        // Failover re-serve: the original backend's response had >= 2
        // segments and only seq 1 arrived; the re-pinned backend serves
        // the same request as a single-segment response. The stray seq 1
        // must not hold the message open.
        let mut r = Reassembly::new();
        assert_eq!(r.on_segment(1, false), SegmentStatus::Fresh);
        assert_eq!(r.on_segment(0, true), SegmentStatus::Completed);
        assert!(r.is_complete());
    }

    #[test]
    fn duplicate_final_rebinds_message_end() {
        // The original serialization's final (seq 2) arrived but seq 1
        // was lost; the failover backend replays a one-segment response
        // whose seq 0 the client already has. The repeated final frame
        // still re-binds the end and completes the message.
        let mut r = Reassembly::new();
        assert_eq!(r.on_segment(0, false), SegmentStatus::Fresh);
        assert_eq!(r.on_segment(2, true), SegmentStatus::Fresh);
        assert!(!r.is_complete());
        assert_eq!(r.on_segment(0, true), SegmentStatus::Completed);
        assert!(r.is_complete());
        assert_eq!(r.on_segment(0, true), SegmentStatus::Duplicate);
    }

    /// Reassembling segmented payloads recovers the body exactly.
    #[test]
    fn prop_segmentation_roundtrip() {
        Check::new("tcp_segmentation_roundtrip").run(
            |rng, size| check::gen::u64_scaled(rng, size, 0, (MSS * 5) as u64) as usize,
            |&len| {
                let body: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
                let frames = segment_response(
                    NodeId(0),
                    NodeId(1),
                    1,
                    Bytes::from(body.clone()),
                    SimTime::ZERO,
                );
                let mut rebuilt = Vec::new();
                for f in &frames {
                    ensure!(f.payload().len() <= MSS, "segment above MSS");
                    rebuilt.extend_from_slice(f.payload());
                }
                ensure_eq!(rebuilt, body);
                Ok(())
            },
        );
    }

    /// Wire-byte accounting matches the per-frame sum.
    #[test]
    fn prop_wire_bytes_match_frames() {
        Check::new("tcp_wire_bytes_match_frames").run(
            |rng, size| check::gen::u64_scaled(rng, size, 0, (MSS * 5) as u64) as usize,
            |&len| {
                let frames = segment_response(
                    NodeId(0),
                    NodeId(1),
                    1,
                    Bytes::from(vec![0u8; len]),
                    SimTime::ZERO,
                );
                let total: usize = frames.iter().map(Packet::wire_len).sum();
                ensure_eq!(total, response_wire_bytes(len));
                Ok(())
            },
        );
    }
}
