//! A store-and-forward Ethernet switch connecting cluster nodes.
//!
//! The evaluation cluster is a star: every node has a full-duplex link to
//! one switch (paper §5 models a four-node cluster on a switched Ethernet).
//! The switch receives a frame completely (store) and then forwards it on
//! the egress port toward its destination (forward), adding a small fixed
//! switching latency. Each direction of each port is an independent
//! [`Link`], so a response burst from the server contends only with other
//! traffic to the same destination.

use crate::link::Link;
use crate::packet::NodeId;
use desim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// A star-topology switch with per-port full-duplex links.
///
/// # Example
///
/// ```
/// use netsim::{Switch, Link, packet::NodeId};
/// use desim::{SimTime, SimDuration};
///
/// let mut sw = Switch::new(SimDuration::from_nanos(500));
/// sw.attach(NodeId(0), Link::ten_gbe(), Link::ten_gbe());
/// sw.attach(NodeId(1), Link::ten_gbe(), Link::ten_gbe());
/// let arrival = sw.forward(SimTime::ZERO, NodeId(0), NodeId(1), 1250).unwrap();
/// assert!(arrival > SimTime::from_us(2));
/// ```
#[derive(Debug)]
pub struct Switch {
    switching_latency: SimDuration,
    /// Per node: (node→switch uplink, switch→node downlink).
    ports: BTreeMap<NodeId, Port>,
    frames_forwarded: u64,
}

#[derive(Debug)]
struct Port {
    uplink: Link,
    downlink: Link,
}

/// Error returned when forwarding to/from an unattached node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownNode(pub NodeId);

impl core::fmt::Display for UnknownNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "node {} is not attached to the switch", self.0)
    }
}

impl std::error::Error for UnknownNode {}

impl Switch {
    /// Creates a switch with the given store-and-forward latency.
    #[must_use]
    pub fn new(switching_latency: SimDuration) -> Self {
        Switch {
            switching_latency,
            ports: BTreeMap::new(),
            frames_forwarded: 0,
        }
    }

    /// Attaches `node` with its uplink (node→switch) and downlink
    /// (switch→node). Re-attaching replaces the port.
    pub fn attach(&mut self, node: NodeId, uplink: Link, downlink: Link) {
        self.ports.insert(node, Port { uplink, downlink });
    }

    /// Number of attached nodes.
    #[must_use]
    pub fn ports(&self) -> usize {
        self.ports.len()
    }

    /// Total frames forwarded.
    #[must_use]
    pub fn frames_forwarded(&self) -> u64 {
        self.frames_forwarded
    }

    /// Carries a frame of `wire_bytes` from `src` to `dst`, starting at
    /// `now` on the source NIC's egress. Returns the instant the frame is
    /// fully received by the destination NIC.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownNode`] if either endpoint is not attached.
    pub fn forward(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        wire_bytes: usize,
    ) -> Result<SimTime, UnknownNode> {
        if !self.ports.contains_key(&dst) {
            return Err(UnknownNode(dst));
        }
        let src_port = self.ports.get_mut(&src).ok_or(UnknownNode(src))?;
        // Node → switch.
        let (_, at_switch) = src_port.uplink.transmit(now, wire_bytes);
        let ready = at_switch + self.switching_latency;
        // Switch → node.
        let dst_port = self.ports.get_mut(&dst).expect("checked above");
        let (_, at_dst) = dst_port.downlink.transmit(ready, wire_bytes);
        self.frames_forwarded += 1;
        if simtrace::is_enabled() {
            let t = now.as_nanos();
            let id =
                simtrace::async_begin("net", "transit", t, &[simtrace::arg("bytes", wire_bytes)]);
            simtrace::async_end("net", "transit", at_dst.as_nanos(), id);
            simtrace::metric_add("net", "frames_forwarded", t, 1.0);
        }
        Ok(at_dst)
    }

    /// Bytes carried toward `node` so far (downlink utilization).
    #[must_use]
    pub fn bytes_to(&self, node: NodeId) -> Option<u64> {
        self.ports.get(&node).map(|p| p.downlink.bytes_carried())
    }

    /// Bytes carried from `node` so far (uplink utilization).
    #[must_use]
    pub fn bytes_from(&self, node: NodeId) -> Option<u64> {
        self.ports.get(&node).map(|p| p.uplink.bytes_carried())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_switch() -> Switch {
        let mut sw = Switch::new(SimDuration::from_nanos(500));
        sw.attach(NodeId(0), Link::ten_gbe(), Link::ten_gbe());
        sw.attach(NodeId(1), Link::ten_gbe(), Link::ten_gbe());
        sw
    }

    #[test]
    fn end_to_end_latency_components() {
        let mut sw = two_node_switch();
        // 1250 B at 10 Gbps = 1 us serialization per hop; 1 us propagation
        // per hop; 0.5 us switching.
        let arrival = sw
            .forward(SimTime::ZERO, NodeId(0), NodeId(1), 1250)
            .unwrap();
        assert_eq!(arrival, SimTime::from_nanos(4_500));
    }

    #[test]
    fn unknown_nodes_are_errors() {
        let mut sw = two_node_switch();
        assert_eq!(
            sw.forward(SimTime::ZERO, NodeId(0), NodeId(9), 100),
            Err(UnknownNode(NodeId(9)))
        );
        assert_eq!(
            sw.forward(SimTime::ZERO, NodeId(9), NodeId(0), 100),
            Err(UnknownNode(NodeId(9)))
        );
        assert!(UnknownNode(NodeId(9)).to_string().contains("node9"));
    }

    #[test]
    fn contention_only_on_shared_downlink() {
        let mut sw = Switch::new(SimDuration::ZERO);
        for n in 0..3 {
            sw.attach(NodeId(n), Link::ten_gbe(), Link::ten_gbe());
        }
        // Two sources, one destination: second frame queues on the downlink.
        let a1 = sw
            .forward(SimTime::ZERO, NodeId(0), NodeId(2), 12_500)
            .unwrap();
        let a2 = sw
            .forward(SimTime::ZERO, NodeId(1), NodeId(2), 12_500)
            .unwrap();
        assert!(a2 > a1);
        // Distinct destinations do not contend.
        let mut sw2 = Switch::new(SimDuration::ZERO);
        for n in 0..3 {
            sw2.attach(NodeId(n), Link::ten_gbe(), Link::ten_gbe());
        }
        let b1 = sw2
            .forward(SimTime::ZERO, NodeId(0), NodeId(1), 12_500)
            .unwrap();
        let b2 = sw2
            .forward(SimTime::ZERO, NodeId(2), NodeId(1), 12_500)
            .unwrap();
        let c1 = sw2
            .forward(SimTime::from_ms(1), NodeId(0), NodeId(2), 12_500)
            .unwrap();
        assert!(b2 > b1);
        assert!(c1 < SimTime::from_ms(2));
    }

    #[test]
    fn per_pair_fifo_order_is_preserved() {
        // Frames between one (src, dst) pair arrive in the order sent —
        // TCP's in-order assumption holds on this fabric.
        use check::{ensure, gen, Check};
        Check::new("switch_per_pair_fifo").run(
            |rng, size| {
                gen::vec_with(rng, size, 1, 60, |r| {
                    (gen::usize_in(r, 64, 1_600), r.next_below(5_000))
                })
            },
            |frames| {
                let mut sw = Switch::new(SimDuration::from_nanos(500));
                sw.attach(NodeId(0), Link::ten_gbe(), Link::ten_gbe());
                sw.attach(NodeId(1), Link::ten_gbe(), Link::ten_gbe());
                let mut now = SimTime::ZERO;
                let mut last_arrival = SimTime::ZERO;
                for &(sz, gap) in frames {
                    now += SimDuration::from_nanos(gap);
                    let arrival = sw.forward(now, NodeId(0), NodeId(1), sz).unwrap();
                    ensure!(arrival > now, "arrival after send");
                    ensure!(arrival >= last_arrival, "in-order delivery");
                    last_arrival = arrival;
                }
                Ok(())
            },
        );
    }

    #[test]
    fn byte_accounting_per_port() {
        let mut sw = two_node_switch();
        sw.forward(SimTime::ZERO, NodeId(0), NodeId(1), 1_000)
            .unwrap();
        assert_eq!(sw.bytes_from(NodeId(0)), Some(1_000));
        assert_eq!(sw.bytes_to(NodeId(1)), Some(1_000));
        assert_eq!(sw.bytes_to(NodeId(0)), Some(0));
        assert_eq!(sw.bytes_to(NodeId(7)), None);
        assert_eq!(sw.frames_forwarded(), 1);
        assert_eq!(sw.ports(), 2);
    }
}
