//! A store-and-forward Ethernet switch connecting cluster nodes.
//!
//! The evaluation cluster is a star: every node has a full-duplex link to
//! one switch (paper §5 models a four-node cluster on a switched Ethernet).
//! The switch receives a frame completely (store) and then forwards it on
//! the egress port toward its destination (forward), adding a small fixed
//! switching latency. Each direction of each port is an independent
//! [`Link`], so a response burst from the server contends only with other
//! traffic to the same destination.

use crate::faults::{
    DomainFaultStats, DomainImpairment, DropKind, FaultConfig, FaultStats, FaultVerdict, LinkFaults,
};
use crate::link::Link;
use crate::packet::NodeId;
use desim::{SimDuration, SimTime, SplitMix64};
use std::collections::BTreeMap;

/// A star-topology switch with per-port full-duplex links.
///
/// # Example
///
/// ```
/// use netsim::{Switch, Link, packet::NodeId};
/// use desim::{SimTime, SimDuration};
///
/// let mut sw = Switch::new(SimDuration::from_nanos(500));
/// sw.attach(NodeId(0), Link::ten_gbe(), Link::ten_gbe());
/// sw.attach(NodeId(1), Link::ten_gbe(), Link::ten_gbe());
/// let arrival = sw.forward(SimTime::ZERO, NodeId(0), NodeId(1), 1250).unwrap();
/// assert!(arrival > SimTime::from_us(2));
/// ```
#[derive(Debug)]
pub struct Switch {
    switching_latency: SimDuration,
    /// Per node: (node→switch uplink, switch→node downlink).
    ports: BTreeMap<NodeId, Port>,
    frames_forwarded: u64,
    /// Impairment layer; `None` keeps the fault-free fast path untouched.
    faults: Option<FaultLayer>,
    /// Correlated failure-domain layer; `None` until the first
    /// [`fail_domain`](Self::fail_domain) call.
    domains: Option<DomainLayer>,
}

/// Per-switch fault-injection state: one RNG stream per directed pair,
/// created lazily so attach order does not matter.
#[derive(Debug)]
struct FaultLayer {
    config: FaultConfig,
    per_pair: BTreeMap<(NodeId, NodeId), LinkFaults>,
    stats: FaultStats,
}

/// Correlated failure-domain state: which nodes are currently impaired
/// and one lazily-created RNG stream per directed pair for brownout
/// draws. Created on the first [`Switch::fail_domain`] call, so a run
/// that never opens a fault window pays nothing.
#[derive(Debug)]
struct DomainLayer {
    seed: u64,
    impaired: BTreeMap<NodeId, DomainImpairment>,
    per_pair: BTreeMap<(NodeId, NodeId), SplitMix64>,
    stats: DomainFaultStats,
}

/// Verdict of the domain layer for one frame.
enum DomainVerdict {
    Deliver { extra_delay: SimDuration },
    DropPartition,
    DropBrownout,
}

impl DomainLayer {
    /// Stream for brownout draws on `src → dst`. A different mix constant
    /// than [`LinkFaults`] keeps domain and per-link streams independent
    /// even under the same seed.
    fn pair_rng(&mut self, src: NodeId, dst: NodeId) -> &mut SplitMix64 {
        let seed = self.seed;
        self.per_pair.entry((src, dst)).or_insert_with(|| {
            let mixed = seed
                .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                .wrapping_add(u64::from(src.0) << 16)
                .wrapping_add(u64::from(dst.0) + 1);
            SplitMix64::new(mixed)
        })
    }

    /// Judges one frame: partition on either endpoint drops it outright;
    /// brownouts draw loss then jitter per impaired endpoint in `(src,
    /// dst)` order from the directed pair's stream.
    fn judge(&mut self, src: NodeId, dst: NodeId) -> DomainVerdict {
        let ends = [
            self.impaired.get(&src).copied(),
            self.impaired.get(&dst).copied(),
        ];
        if ends.iter().all(Option::is_none) {
            return DomainVerdict::Deliver {
                extra_delay: SimDuration::ZERO,
            };
        }
        if ends
            .iter()
            .any(|i| matches!(i, Some(DomainImpairment::Partition)))
        {
            self.stats.partition_drops += 1;
            return DomainVerdict::DropPartition;
        }
        let mut extra = SimDuration::ZERO;
        for imp in ends.into_iter().flatten() {
            let DomainImpairment::Brownout { loss, jitter } = imp else {
                continue;
            };
            if loss > 0.0 && self.pair_rng(src, dst).next_f64() < loss {
                self.stats.brownout_drops += 1;
                return DomainVerdict::DropBrownout;
            }
            if jitter > SimDuration::ZERO {
                let j = jitter.mul_f64(self.pair_rng(src, dst).next_f64());
                if j > SimDuration::ZERO {
                    self.stats.brownout_delayed += 1;
                    extra += j;
                }
            }
        }
        DomainVerdict::Deliver { extra_delay: extra }
    }
}

/// Outcome of [`Switch::route`]: either the frame arrives, or an injected
/// fault removed it from the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Frame fully received by the destination NIC at this instant.
    Deliver(SimTime),
    /// Frame dropped by the impairment layer; the sender's uplink time
    /// was still consumed (serialization happens before the drop).
    Dropped(DropKind),
}

#[derive(Debug)]
struct Port {
    uplink: Link,
    downlink: Link,
}

/// Error returned when forwarding to/from an unattached node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownNode(pub NodeId);

impl core::fmt::Display for UnknownNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "node {} is not attached to the switch", self.0)
    }
}

impl std::error::Error for UnknownNode {}

impl Switch {
    /// Creates a switch with the given store-and-forward latency.
    #[must_use]
    pub fn new(switching_latency: SimDuration) -> Self {
        Switch {
            switching_latency,
            ports: BTreeMap::new(),
            frames_forwarded: 0,
            faults: None,
            domains: None,
        }
    }

    /// Installs the impairment layer. A config with no active impairment
    /// dimensions leaves the switch fault-free (the retransmission policy
    /// lives in the cluster harness, not here).
    pub fn set_faults(&mut self, config: FaultConfig) {
        self.faults = config.impairs().then(|| FaultLayer {
            config,
            per_pair: BTreeMap::new(),
            stats: FaultStats::default(),
        });
    }

    /// Injected-fault counters ([`FaultStats::default`] when no
    /// impairment layer is installed).
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.faults
            .as_ref()
            .map_or_else(FaultStats::default, |f| f.stats)
    }

    /// Opens a correlated fault window: applies `impairment` to every
    /// member node at once, affecting all frames whose source or
    /// destination is a member. The first call installs the domain layer
    /// with `seed` for its brownout RNG streams; later calls reuse the
    /// installed streams so draws stay deterministic across overlapping
    /// windows. Re-failing an already impaired node replaces its
    /// impairment.
    pub fn fail_domain(&mut self, members: &[NodeId], impairment: DomainImpairment, seed: u64) {
        let layer = self.domains.get_or_insert_with(|| DomainLayer {
            seed,
            impaired: BTreeMap::new(),
            per_pair: BTreeMap::new(),
            stats: DomainFaultStats::default(),
        });
        for &node in members {
            layer.impaired.insert(node, impairment);
        }
    }

    /// Closes a fault window: removes any impairment from the member
    /// nodes. Counters and RNG streams persist so a later window on the
    /// same pair continues its stream.
    pub fn heal_domain(&mut self, members: &[NodeId]) {
        if let Some(layer) = self.domains.as_mut() {
            for node in members {
                layer.impaired.remove(node);
            }
        }
    }

    /// `true` while `node` is under a hard partition (health probes to a
    /// partitioned backend cannot succeed).
    #[must_use]
    pub fn is_partitioned(&self, node: NodeId) -> bool {
        self.domains.as_ref().is_some_and(|layer| {
            matches!(layer.impaired.get(&node), Some(DomainImpairment::Partition))
        })
    }

    /// Domain-fault counters ([`DomainFaultStats::default`] when no
    /// domain fault was ever injected).
    #[must_use]
    pub fn domain_stats(&self) -> DomainFaultStats {
        self.domains
            .as_ref()
            .map_or_else(DomainFaultStats::default, |layer| layer.stats)
    }

    /// Attaches `node` with its uplink (node→switch) and downlink
    /// (switch→node). Re-attaching replaces the port.
    pub fn attach(&mut self, node: NodeId, uplink: Link, downlink: Link) {
        self.ports.insert(node, Port { uplink, downlink });
    }

    /// Number of attached nodes.
    #[must_use]
    pub fn ports(&self) -> usize {
        self.ports.len()
    }

    /// Total frames forwarded.
    #[must_use]
    pub fn frames_forwarded(&self) -> u64 {
        self.frames_forwarded
    }

    /// Carries a frame of `wire_bytes` from `src` to `dst`, starting at
    /// `now` on the source NIC's egress. Returns the instant the frame is
    /// fully received by the destination NIC.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownNode`] if either endpoint is not attached.
    pub fn forward(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        wire_bytes: usize,
    ) -> Result<SimTime, UnknownNode> {
        self.carry(now, src, dst, wire_bytes)
    }

    /// Fault-free carry: uplink serialization, switching latency,
    /// downlink serialization. Shared by [`forward`](Self::forward) and
    /// the delivered arm of [`route`](Self::route).
    fn carry(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        wire_bytes: usize,
    ) -> Result<SimTime, UnknownNode> {
        if !self.ports.contains_key(&dst) {
            return Err(UnknownNode(dst));
        }
        let src_port = self.ports.get_mut(&src).ok_or(UnknownNode(src))?;
        // Node → switch.
        let (_, at_switch) = src_port.uplink.transmit(now, wire_bytes);
        let ready = at_switch + self.switching_latency;
        // Switch → node.
        let dst_port = self.ports.get_mut(&dst).expect("checked above");
        let (_, at_dst) = dst_port.downlink.transmit(ready, wire_bytes);
        self.frames_forwarded += 1;
        if simtrace::is_enabled() {
            let t = now.as_nanos();
            let id =
                simtrace::async_begin("net", "transit", t, &[simtrace::arg("bytes", wire_bytes)]);
            simtrace::async_end("net", "transit", at_dst.as_nanos(), id);
            simtrace::metric_add("net", "frames_forwarded", t, 1.0);
        }
        Ok(at_dst)
    }

    /// Carries a frame like [`forward`](Self::forward), but subject to
    /// the installed impairment layer. Without one (or when the config is
    /// inert) this is exactly `forward` — same timing, same trace events
    /// — so routing through here is observer-effect-free when faults are
    /// off.
    ///
    /// A dropped frame still consumes the sender's uplink (serialization
    /// happens before the drop); a corrupted frame additionally consumes
    /// the downlink, since it reaches the receiver before the FCS check
    /// discards it.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownNode`] if either endpoint is not attached.
    pub fn route(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        wire_bytes: usize,
    ) -> Result<Delivery, UnknownNode> {
        // Domain faults first: a partition or brownout on either endpoint
        // affects the frame regardless of per-link impairments, and its
        // drops count as losses end-to-end (the retransmission layer
        // cannot tell them apart, only the counters can).
        let mut domain_extra = SimDuration::ZERO;
        if let Some(dom) = self.domains.as_mut() {
            match dom.judge(src, dst) {
                DomainVerdict::Deliver { extra_delay } => domain_extra = extra_delay,
                verdict @ (DomainVerdict::DropPartition | DomainVerdict::DropBrownout) => {
                    if !self.ports.contains_key(&dst) {
                        return Err(UnknownNode(dst));
                    }
                    // The drop still consumes the sender's uplink.
                    let src_port = self.ports.get_mut(&src).ok_or(UnknownNode(src))?;
                    let _ = src_port.uplink.transmit(now, wire_bytes);
                    if simtrace::is_enabled() {
                        let metric = match verdict {
                            DomainVerdict::DropPartition => "partition_drops",
                            _ => "brownout_drops",
                        };
                        simtrace::metric_add("chaos", metric, now.as_nanos(), 1.0);
                    }
                    return Ok(Delivery::Dropped(DropKind::Loss));
                }
            }
        }
        if simtrace::is_enabled() && domain_extra > SimDuration::ZERO {
            simtrace::metric_add(
                "chaos",
                "brownout_jitter_ns",
                now.as_nanos(),
                domain_extra.as_nanos() as f64,
            );
        }
        let Some(layer) = self.faults.as_mut() else {
            let at = self.carry(now, src, dst, wire_bytes)? + domain_extra;
            return Ok(Delivery::Deliver(at));
        };
        let seed = layer.config.seed;
        let before = layer.stats;
        let verdict = layer
            .per_pair
            .entry((src, dst))
            .or_insert_with(|| LinkFaults::new(seed, src, dst))
            .judge(&layer.config, &mut layer.stats);
        let (reordered, jittered) = (
            layer.stats.reorders > before.reorders,
            layer.stats.jittered > before.jittered,
        );
        match verdict {
            FaultVerdict::Deliver { extra_delay } => {
                let at_dst = self.carry(now, src, dst, wire_bytes)? + extra_delay + domain_extra;
                if simtrace::is_enabled() {
                    let t = now.as_nanos();
                    if reordered {
                        simtrace::metric_add("net", "fault_reorders", t, 1.0);
                    }
                    if jittered {
                        simtrace::metric_add(
                            "net",
                            "fault_jitter_ns",
                            t,
                            extra_delay.as_nanos() as f64,
                        );
                    }
                }
                Ok(Delivery::Deliver(at_dst))
            }
            FaultVerdict::Drop(kind) => {
                if !self.ports.contains_key(&dst) {
                    return Err(UnknownNode(dst));
                }
                let src_port = self.ports.get_mut(&src).ok_or(UnknownNode(src))?;
                let (_, at_switch) = src_port.uplink.transmit(now, wire_bytes);
                if kind == DropKind::Corrupt {
                    // The corrupted frame traverses the fabric and is
                    // discarded at the receiver.
                    let ready = at_switch + self.switching_latency;
                    let dst_port = self.ports.get_mut(&dst).expect("checked above");
                    let _ = dst_port.downlink.transmit(ready, wire_bytes);
                }
                if simtrace::is_enabled() {
                    let t = now.as_nanos();
                    let (name, metric) = match kind {
                        DropKind::Loss => ("fault_loss", "fault_losses"),
                        DropKind::Corrupt => ("fault_corrupt", "fault_corruptions"),
                    };
                    simtrace::instant_args("net", name, t, &[simtrace::arg("bytes", wire_bytes)]);
                    simtrace::metric_add("net", metric, t, 1.0);
                }
                Ok(Delivery::Dropped(kind))
            }
        }
    }

    /// Bytes carried toward `node` so far (downlink utilization).
    #[must_use]
    pub fn bytes_to(&self, node: NodeId) -> Option<u64> {
        self.ports.get(&node).map(|p| p.downlink.bytes_carried())
    }

    /// Bytes carried from `node` so far (uplink utilization).
    #[must_use]
    pub fn bytes_from(&self, node: NodeId) -> Option<u64> {
        self.ports.get(&node).map(|p| p.uplink.bytes_carried())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_switch() -> Switch {
        let mut sw = Switch::new(SimDuration::from_nanos(500));
        sw.attach(NodeId(0), Link::ten_gbe(), Link::ten_gbe());
        sw.attach(NodeId(1), Link::ten_gbe(), Link::ten_gbe());
        sw
    }

    #[test]
    fn end_to_end_latency_components() {
        let mut sw = two_node_switch();
        // 1250 B at 10 Gbps = 1 us serialization per hop; 1 us propagation
        // per hop; 0.5 us switching.
        let arrival = sw
            .forward(SimTime::ZERO, NodeId(0), NodeId(1), 1250)
            .unwrap();
        assert_eq!(arrival, SimTime::from_nanos(4_500));
    }

    #[test]
    fn unknown_nodes_are_errors() {
        let mut sw = two_node_switch();
        assert_eq!(
            sw.forward(SimTime::ZERO, NodeId(0), NodeId(9), 100),
            Err(UnknownNode(NodeId(9)))
        );
        assert_eq!(
            sw.forward(SimTime::ZERO, NodeId(9), NodeId(0), 100),
            Err(UnknownNode(NodeId(9)))
        );
        assert!(UnknownNode(NodeId(9)).to_string().contains("node9"));
    }

    #[test]
    fn contention_only_on_shared_downlink() {
        let mut sw = Switch::new(SimDuration::ZERO);
        for n in 0..3 {
            sw.attach(NodeId(n), Link::ten_gbe(), Link::ten_gbe());
        }
        // Two sources, one destination: second frame queues on the downlink.
        let a1 = sw
            .forward(SimTime::ZERO, NodeId(0), NodeId(2), 12_500)
            .unwrap();
        let a2 = sw
            .forward(SimTime::ZERO, NodeId(1), NodeId(2), 12_500)
            .unwrap();
        assert!(a2 > a1);
        // Distinct destinations do not contend.
        let mut sw2 = Switch::new(SimDuration::ZERO);
        for n in 0..3 {
            sw2.attach(NodeId(n), Link::ten_gbe(), Link::ten_gbe());
        }
        let b1 = sw2
            .forward(SimTime::ZERO, NodeId(0), NodeId(1), 12_500)
            .unwrap();
        let b2 = sw2
            .forward(SimTime::ZERO, NodeId(2), NodeId(1), 12_500)
            .unwrap();
        let c1 = sw2
            .forward(SimTime::from_ms(1), NodeId(0), NodeId(2), 12_500)
            .unwrap();
        assert!(b2 > b1);
        assert!(c1 < SimTime::from_ms(2));
    }

    #[test]
    fn per_pair_fifo_order_is_preserved() {
        // Frames between one (src, dst) pair arrive in the order sent —
        // TCP's in-order assumption holds on this fabric.
        use check::{ensure, gen, Check};
        Check::new("switch_per_pair_fifo").run(
            |rng, size| {
                gen::vec_with(rng, size, 1, 60, |r| {
                    (gen::usize_in(r, 64, 1_600), r.next_below(5_000))
                })
            },
            |frames| {
                let mut sw = Switch::new(SimDuration::from_nanos(500));
                sw.attach(NodeId(0), Link::ten_gbe(), Link::ten_gbe());
                sw.attach(NodeId(1), Link::ten_gbe(), Link::ten_gbe());
                let mut now = SimTime::ZERO;
                let mut last_arrival = SimTime::ZERO;
                for &(sz, gap) in frames {
                    now += SimDuration::from_nanos(gap);
                    let arrival = sw.forward(now, NodeId(0), NodeId(1), sz).unwrap();
                    ensure!(arrival > now, "arrival after send");
                    ensure!(arrival >= last_arrival, "in-order delivery");
                    last_arrival = arrival;
                }
                Ok(())
            },
        );
    }

    #[test]
    fn route_without_faults_matches_forward() {
        let mut a = two_node_switch();
        let mut b = two_node_switch();
        // Inert config: set_faults must not install a layer.
        b.set_faults(FaultConfig::none());
        for i in 0..20u64 {
            let now = SimTime::from_nanos(i * 700);
            let fwd = a.forward(now, NodeId(0), NodeId(1), 1_000).unwrap();
            let routed = b.route(now, NodeId(0), NodeId(1), 1_000).unwrap();
            assert_eq!(routed, Delivery::Deliver(fwd));
        }
        assert_eq!(b.fault_stats(), FaultStats::default());
        assert_eq!(a.frames_forwarded(), b.frames_forwarded());
    }

    #[test]
    fn route_injects_deterministic_drops() {
        let run = || {
            let mut sw = two_node_switch();
            sw.set_faults(FaultConfig::lossy(0.3, 99));
            let mut outcomes = Vec::new();
            for i in 0..200u64 {
                let now = SimTime::from_nanos(i * 2_000);
                outcomes.push(sw.route(now, NodeId(0), NodeId(1), 800).unwrap());
            }
            (outcomes, sw.fault_stats())
        };
        let (a, stats) = run();
        let (b, _) = run();
        assert_eq!(a, b, "same seed, same verdicts");
        let dropped = a
            .iter()
            .filter(|d| matches!(d, Delivery::Dropped(_)))
            .count() as u64;
        assert_eq!(dropped, stats.dropped());
        assert!(dropped > 20, "~30% of 200 frames should drop");
        assert!(dropped < 120);
    }

    #[test]
    fn jitter_delays_but_delivers() {
        let mut plain = two_node_switch();
        let mut jittery = two_node_switch();
        jittery.set_faults(FaultConfig::lossy(0.0, 5).with_jitter(SimDuration::from_us(10)));
        let mut delayed = 0;
        for i in 0..50u64 {
            let now = SimTime::from_nanos(i * 20_000);
            let base = plain.forward(now, NodeId(0), NodeId(1), 500).unwrap();
            match jittery.route(now, NodeId(0), NodeId(1), 500).unwrap() {
                Delivery::Deliver(at) => {
                    assert!(at >= base);
                    assert!(at <= base + SimDuration::from_us(10));
                    if at > base {
                        delayed += 1;
                    }
                }
                Delivery::Dropped(_) => panic!("loss disabled"),
            }
        }
        assert!(delayed > 0, "jitter should delay some frames");
        assert_eq!(jittery.fault_stats().jittered, delayed);
    }

    #[test]
    fn partition_drops_every_frame_until_healed() {
        let mut sw = two_node_switch();
        assert!(!sw.is_partitioned(NodeId(1)));
        sw.fail_domain(&[NodeId(1)], DomainImpairment::Partition, 7);
        assert!(sw.is_partitioned(NodeId(1)));
        for i in 0..10u64 {
            let now = SimTime::from_nanos(i * 5_000);
            // Both directions die: the member cannot send or receive.
            assert_eq!(
                sw.route(now, NodeId(0), NodeId(1), 500).unwrap(),
                Delivery::Dropped(DropKind::Loss)
            );
            assert_eq!(
                sw.route(now, NodeId(1), NodeId(0), 500).unwrap(),
                Delivery::Dropped(DropKind::Loss)
            );
        }
        assert_eq!(sw.domain_stats().partition_drops, 20);
        sw.heal_domain(&[NodeId(1)]);
        assert!(!sw.is_partitioned(NodeId(1)));
        let healed = sw.route(SimTime::from_ms(1), NodeId(0), NodeId(1), 500);
        assert!(matches!(healed, Ok(Delivery::Deliver(_))));
        assert_eq!(sw.domain_stats().partition_drops, 20);
        // Per-link fault stats stay untouched by domain drops.
        assert_eq!(sw.fault_stats(), FaultStats::default());
    }

    #[test]
    fn brownout_is_deterministic_and_composes_with_link_faults() {
        let imp = DomainImpairment::Brownout {
            loss: 0.3,
            jitter: SimDuration::from_us(5),
        };
        let run = || {
            let mut sw = two_node_switch();
            sw.set_faults(FaultConfig::lossy(0.1, 11));
            sw.fail_domain(&[NodeId(1)], imp, 77);
            let mut outcomes = Vec::new();
            for i in 0..300u64 {
                let now = SimTime::from_nanos(i * 3_000);
                outcomes.push(sw.route(now, NodeId(0), NodeId(1), 600).unwrap());
            }
            (outcomes, sw.domain_stats(), sw.fault_stats())
        };
        let (a, dom, link) = run();
        let (b, _, _) = run();
        assert_eq!(a, b, "same seed, same verdicts");
        assert!(dom.brownout_drops > 30, "~30% brownout loss: {dom:?}");
        assert!(dom.brownout_delayed > 0);
        assert_eq!(dom.partition_drops, 0);
        assert!(link.losses > 0, "per-link loss still active: {link:?}");
        let dropped = a
            .iter()
            .filter(|d| matches!(d, Delivery::Dropped(_)))
            .count() as u64;
        assert_eq!(dropped, dom.dropped() + link.dropped());
    }

    #[test]
    fn unused_domain_layer_is_observer_effect_free() {
        let mut plain = two_node_switch();
        let mut chaotic = two_node_switch();
        // Open and immediately close a window before any traffic: the
        // healed switch must behave exactly like one never touched.
        chaotic.fail_domain(&[NodeId(0)], DomainImpairment::Partition, 3);
        chaotic.heal_domain(&[NodeId(0)]);
        for i in 0..20u64 {
            let now = SimTime::from_nanos(i * 900);
            let a = plain.forward(now, NodeId(0), NodeId(1), 800).unwrap();
            let b = chaotic.route(now, NodeId(0), NodeId(1), 800).unwrap();
            assert_eq!(b, Delivery::Deliver(a));
        }
        assert_eq!(chaotic.domain_stats(), DomainFaultStats::default());
    }

    #[test]
    fn byte_accounting_per_port() {
        let mut sw = two_node_switch();
        sw.forward(SimTime::ZERO, NodeId(0), NodeId(1), 1_000)
            .unwrap();
        assert_eq!(sw.bytes_from(NodeId(0)), Some(1_000));
        assert_eq!(sw.bytes_to(NodeId(1)), Some(1_000));
        assert_eq!(sw.bytes_to(NodeId(0)), Some(0));
        assert_eq!(sw.bytes_to(NodeId(7)), None);
        assert_eq!(sw.frames_forwarded(), 1);
        assert_eq!(sw.ports(), 2);
    }
}
