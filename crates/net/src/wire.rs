//! Wire-format encoding: real Ethernet/IPv4/TCP bytes.
//!
//! The simulation usually carries [`Packet`]s as structured objects, but
//! the NCAP hardware argument rests on byte-level layout: ReqMonitor
//! compares "the first two bytes of the payload", which "starts from the
//! 66th byte of a received TCP packet" (§4.1). This module materializes
//! frames at that exact layout — 14 B Ethernet, 20 B IPv4 (with a real
//! header checksum), 20 B TCP, 12 B options — and parses them back, so
//! tests can validate the offset arithmetic against genuine bytes and a
//! hardware-model consumer can work from `&[u8]`.

use crate::packet::{
    NodeId, Packet, ETH_HEADER, IPV4_HEADER, PAYLOAD_OFFSET, TCP_HEADER, TCP_OPTIONS,
};
use desim::SimDuration;

/// Frame offset of the 8 TCP-timestamp option bytes (TSval/TSecr) that
/// carry the request deadline on the wire.
const DEADLINE_OFFSET: usize = PAYLOAD_OFFSET - 8;

/// Errors from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the fixed header stack.
    Truncated {
        /// Bytes available.
        len: usize,
    },
    /// Not the IPv4 EtherType.
    NotIpv4(u16),
    /// IPv4 header checksum mismatch.
    BadChecksum {
        /// Checksum found in the header.
        found: u16,
        /// Checksum recomputed over the header.
        expected: u16,
    },
    /// The IPv4 total-length field disagrees with the buffer.
    LengthMismatch {
        /// Length claimed by the header.
        claimed: usize,
        /// Bytes actually present after the Ethernet header.
        actual: usize,
    },
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated { len } => write!(f, "frame truncated at {len} bytes"),
            WireError::NotIpv4(et) => write!(f, "unexpected ethertype {et:#06x}"),
            WireError::BadChecksum { found, expected } => {
                write!(
                    f,
                    "bad IPv4 checksum {found:#06x}, expected {expected:#06x}"
                )
            }
            WireError::LengthMismatch { claimed, actual } => {
                write!(f, "IPv4 length {claimed} but {actual} bytes present")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A parsed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedFrame {
    /// Sender, recovered from the source IP.
    pub src: NodeId,
    /// Receiver, recovered from the destination IP.
    pub dst: NodeId,
    /// TCP sequence number (the simulator's flow id).
    pub seq: u32,
    /// Request deadline recovered from the TCP timestamp option, if the
    /// sender stamped one.
    pub deadline: Option<SimDuration>,
    /// The TCP payload.
    pub payload: Vec<u8>,
}

/// The locally-administered MAC address of a node.
#[must_use]
pub fn mac_of(node: NodeId) -> [u8; 6] {
    let [hi, lo] = node.0.to_be_bytes();
    [0x02, 0x4E, 0x43, 0x41, hi, lo] // 02:"NCA":<id>
}

/// The 10.0.x.y address of a node.
#[must_use]
pub fn ip_of(node: NodeId) -> [u8; 4] {
    let [hi, lo] = node.0.to_be_bytes();
    [10, 0, hi, lo]
}

/// RFC 1071 internet checksum over `data` (odd tail zero-padded).
#[must_use]
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [tail] = *chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([tail, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Serializes a packet to its on-the-wire bytes (without preamble/FCS).
///
/// The produced buffer is exactly [`Packet::frame_len`] bytes and places
/// the first payload byte at [`PAYLOAD_OFFSET`].
///
/// # Example
///
/// ```
/// use netsim::packet::{NodeId, Packet, PAYLOAD_OFFSET};
/// use netsim::wire::encode;
/// use netsim::http::HttpRequest;
///
/// let p = Packet::request(NodeId(1), NodeId(0), 1, HttpRequest::get("/").to_payload());
/// let bytes = encode(&p);
/// assert_eq!(&bytes[PAYLOAD_OFFSET..PAYLOAD_OFFSET + 4], b"GET ");
/// ```
#[must_use]
pub fn encode(packet: &Packet) -> Vec<u8> {
    let payload = packet.payload();
    let mut out = Vec::with_capacity(PAYLOAD_OFFSET + payload.len());

    // Ethernet: dst MAC, src MAC, EtherType 0x0800.
    out.extend_from_slice(&mac_of(packet.dst()));
    out.extend_from_slice(&mac_of(packet.src()));
    out.extend_from_slice(&0x0800u16.to_be_bytes());
    debug_assert_eq!(out.len(), ETH_HEADER);

    // IPv4 header, 20 bytes, checksum filled after.
    let total_len = (IPV4_HEADER + TCP_HEADER + TCP_OPTIONS + payload.len()) as u16;
    let ip_start = out.len();
    out.push(0x45); // version 4, IHL 5
    out.push(0); // DSCP/ECN
    out.extend_from_slice(&total_len.to_be_bytes());
    out.extend_from_slice(&[0, 0, 0x40, 0]); // id, flags (DF), frag
    out.push(64); // TTL
    out.push(6); // protocol: TCP
    out.extend_from_slice(&[0, 0]); // checksum placeholder
    out.extend_from_slice(&ip_of(packet.src()));
    out.extend_from_slice(&ip_of(packet.dst()));
    let csum = internet_checksum(&out[ip_start..ip_start + IPV4_HEADER]);
    out[ip_start + 10..ip_start + 12].copy_from_slice(&csum.to_be_bytes());

    // TCP header, 20 bytes + 12 option bytes (timestamps + NOPs).
    out.extend_from_slice(&49152u16.to_be_bytes()); // src port
    out.extend_from_slice(&80u16.to_be_bytes()); // dst port
    out.extend_from_slice(&packet.flow().to_be_bytes()); // seq = flow id
    out.extend_from_slice(&0u32.to_be_bytes()); // ack
    out.push(0x80); // data offset 8 words (20 + 12 options)
    out.push(0x18); // flags: PSH|ACK
    out.extend_from_slice(&0xFFFFu16.to_be_bytes()); // window
    out.extend_from_slice(&[0, 0, 0, 0]); // checksum + urgent (unused)
    out.extend_from_slice(&[1, 1]); // NOP NOP
    out.push(8); // kind: timestamps
    out.push(10); // length
                  // TSval/TSecr carry the client deadline: `deadline_ns + 1` so that an
                  // all-zero option (a sender that stamped nothing) stays distinguishable
                  // from a zero-nanosecond deadline.
    let ts = packet
        .meta()
        .deadline
        .map_or(0, |d| d.as_nanos().saturating_add(1));
    out.extend_from_slice(&ts.to_be_bytes());
    debug_assert_eq!(out.len(), PAYLOAD_OFFSET);

    out.extend_from_slice(payload);
    out
}

/// Parses bytes produced by [`encode`] (or any frame with the same
/// layout) back into addressing and payload.
///
/// # Errors
///
/// Returns a [`WireError`] describing the first malformation found.
pub fn decode(bytes: &[u8]) -> Result<DecodedFrame, WireError> {
    if bytes.len() < PAYLOAD_OFFSET {
        return Err(WireError::Truncated { len: bytes.len() });
    }
    let ethertype = u16::from_be_bytes([bytes[12], bytes[13]]);
    if ethertype != 0x0800 {
        return Err(WireError::NotIpv4(ethertype));
    }
    let ip = &bytes[ETH_HEADER..ETH_HEADER + IPV4_HEADER];
    let found = u16::from_be_bytes([ip[10], ip[11]]);
    let mut scratch = ip.to_vec();
    scratch[10] = 0;
    scratch[11] = 0;
    let expected = internet_checksum(&scratch);
    if found != expected {
        return Err(WireError::BadChecksum { found, expected });
    }
    let claimed = usize::from(u16::from_be_bytes([ip[2], ip[3]]));
    let actual = bytes.len() - ETH_HEADER;
    if claimed != actual {
        return Err(WireError::LengthMismatch { claimed, actual });
    }
    let src = NodeId(u16::from_be_bytes([ip[14], ip[15]]));
    let dst = NodeId(u16::from_be_bytes([ip[18], ip[19]]));
    let tcp = &bytes[ETH_HEADER + IPV4_HEADER..];
    let seq = u32::from_be_bytes([tcp[4], tcp[5], tcp[6], tcp[7]]);
    let ts_bytes: [u8; 8] = bytes[DEADLINE_OFFSET..PAYLOAD_OFFSET]
        .try_into()
        .expect("slice is exactly 8 bytes");
    let ts = u64::from_be_bytes(ts_bytes);
    let deadline = ts.checked_sub(1).map(SimDuration::from_nanos);
    Ok(DecodedFrame {
        src,
        dst,
        seq,
        deadline,
        payload: bytes[PAYLOAD_OFFSET..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytes::Bytes;
    use crate::http::HttpRequest;

    fn sample(payload: &'static [u8]) -> Packet {
        Packet::request(NodeId(3), NodeId(0), 42, Bytes::from_static(payload))
    }

    #[test]
    fn payload_lands_at_offset_66() {
        let bytes = encode(&sample(b"GET /index.html HTTP/1.1"));
        assert_eq!(&bytes[PAYLOAD_OFFSET..PAYLOAD_OFFSET + 2], b"GE");
        assert_eq!(bytes.len(), PAYLOAD_OFFSET + 24);
    }

    #[test]
    fn roundtrip_recovers_addressing() {
        let p = Packet::request(
            NodeId(7),
            NodeId(2),
            99,
            HttpRequest::get("/x").to_payload(),
        );
        let d = decode(&encode(&p)).unwrap();
        assert_eq!(d.src, NodeId(7));
        assert_eq!(d.dst, NodeId(2));
        assert_eq!(d.seq, 99);
        assert_eq!(d.deadline, None);
        assert_eq!(d.payload, p.payload());
    }

    #[test]
    fn deadline_rides_the_timestamp_option() {
        let stamped = sample(b"GET /x").with_deadline(SimDuration::from_us(250));
        let d = decode(&encode(&stamped)).unwrap();
        assert_eq!(d.deadline, Some(SimDuration::from_us(250)));
        // A zero deadline is distinguishable from "no deadline".
        let zero = sample(b"GET /x").with_deadline(SimDuration::ZERO);
        assert_eq!(
            decode(&encode(&zero)).unwrap().deadline,
            Some(SimDuration::ZERO)
        );
        assert_eq!(decode(&encode(&sample(b"GET /x"))).unwrap().deadline, None);
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut bytes = encode(&sample(b"GET /"));
        bytes[ETH_HEADER + 8] ^= 0xFF; // flip the TTL
        assert!(matches!(decode(&bytes), Err(WireError::BadChecksum { .. })));
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode(&sample(b"GET /"));
        assert!(matches!(
            decode(&bytes[..40]),
            Err(WireError::Truncated { len: 40 })
        ));
    }

    #[test]
    fn non_ip_rejected() {
        let mut bytes = encode(&sample(b"GET /"));
        bytes[12] = 0x86; // 0x86DD = IPv6
        bytes[13] = 0xDD;
        assert_eq!(decode(&bytes), Err(WireError::NotIpv4(0x86DD)));
    }

    #[test]
    fn length_mismatch_detected() {
        let mut bytes = encode(&sample(b"GET /"));
        bytes.push(0); // trailing garbage
        assert!(matches!(
            decode(&bytes),
            Err(WireError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn checksum_matches_rfc1071_example() {
        // Classic example: checksum of this header equals 0xB861.
        let header: [u8; 20] = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(internet_checksum(&header), 0xB861);
    }

    #[test]
    fn node_addresses_are_unique() {
        assert_ne!(mac_of(NodeId(1)), mac_of(NodeId(2)));
        assert_ne!(ip_of(NodeId(1)), ip_of(NodeId(258)));
    }

    /// Invariant `wire encode/decode round-trip`: any encodable packet
    /// decodes back to itself.
    #[test]
    fn prop_roundtrip() {
        use check::{ensure_eq, gen, Check};
        Check::new("wire_roundtrip").run(
            |rng, size| {
                let src = gen::u64_in(rng, 0, 100) as u16;
                let dst = gen::u64_in(rng, 0, 100) as u16;
                let flow = rng.next_u64() as u32;
                let payload = gen::vec_with(rng, size * 14, 0, 1_400, gen::byte);
                (src, dst, flow, payload)
            },
            |(src, dst, flow, payload)| {
                let p = Packet::new(
                    NodeId(*src),
                    NodeId(*dst),
                    *flow,
                    Bytes::from(payload.clone()),
                    crate::packet::PacketMeta::default(),
                );
                let d = decode(&encode(&p)).unwrap();
                ensure_eq!(d.src, NodeId(*src));
                ensure_eq!(d.dst, NodeId(*dst));
                ensure_eq!(d.seq, *flow);
                ensure_eq!(&d.payload, payload);
                Ok(())
            },
        );
    }

    /// Single-byte corruption of the IP header never decodes cleanly.
    #[test]
    fn prop_ip_corruption_detected() {
        use check::{ensure, gen, Check};
        Check::new("wire_ip_corruption_detected").run(
            |rng, _size| (gen::usize_in(rng, 0, 20), gen::u64_in(rng, 0, 8) as u8),
            |&(pos, bit)| {
                let p = sample(b"GET /corrupt");
                let mut bytes = encode(&p);
                let idx = ETH_HEADER + pos;
                bytes[idx] ^= 1 << bit;
                if bytes != encode(&p) {
                    ensure!(decode(&bytes).is_err(), "corruption at {idx} undetected");
                }
                Ok(())
            },
        );
    }
}
