//! Deterministic network fault injection.
//!
//! The fabric model is lossless by default, which is faithful to the
//! paper's evaluation but leaves NCAP's packet-context machinery untested
//! against the impairments real datacenter links exhibit: drops, CRC
//! corruption, reordering and latency jitter. This module provides a
//! seeded impairment layer that the [`Switch`](crate::Switch) applies per
//! directed link, plus the retransmission-policy knobs the cluster
//! harness uses to recover from injected (and NIC ring-overflow) drops.
//!
//! Determinism: every `(src, dst)` pair owns its own [`SplitMix64`]
//! stream, derived from [`FaultConfig::seed`] and the pair's node ids.
//! The simulation is single-threaded and frames traverse a pair's stream
//! in a deterministic order, so same-seed runs draw identical verdicts —
//! fault-injected runs stay byte-identical, including under the parallel
//! experiment runner.
//!
//! Observer effect: with [`FaultConfig::none`] (the default) the layer is
//! completely inert — no RNG streams are created, no verdicts drawn, no
//! timers armed and no trace metrics emitted, so enabling the *code path*
//! without enabling faults cannot perturb pinned outputs.

use desim::{ConfigError, SimDuration, SplitMix64};

use crate::packet::NodeId;

/// Retransmission policy for the client-side reliability layer.
///
/// The harness arms one retransmission timer per issued request. When it
/// fires before the response completes, the request frame is resent and
/// the timeout doubles (classic exponential RTO backoff) up to
/// [`rto_max`](Self::rto_max); after [`max_retries`](Self::max_retries)
/// unanswered attempts the request is reported *lost* with a reason
/// rather than silently vanishing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetxConfig {
    /// Master switch: when `false` no timers are armed at all.
    pub enabled: bool,
    /// Initial retransmission timeout (first attempt).
    pub rto_initial: SimDuration,
    /// Upper bound the exponential backoff saturates at.
    pub rto_max: SimDuration,
    /// Retransmission attempts before a request is declared lost.
    pub max_retries: u32,
}

impl RetxConfig {
    /// Reliability disabled: no timers, no retransmissions.
    #[must_use]
    pub fn disabled() -> Self {
        RetxConfig {
            enabled: false,
            rto_initial: SimDuration::ZERO,
            rto_max: SimDuration::ZERO,
            max_retries: 0,
        }
    }

    /// Default reliability policy: 5 ms initial RTO, doubling to a 40 ms
    /// cap, at most 8 retransmissions. The initial RTO sits above typical
    /// burst queueing delay at the simulated loads; the occasional
    /// spurious retransmit (e.g. slow responses while a cold server ramps
    /// its P-state during warmup) is absorbed harmlessly by the server's
    /// duplicate suppression.
    #[must_use]
    pub fn standard() -> Self {
        RetxConfig {
            enabled: true,
            rto_initial: SimDuration::from_ms(5),
            rto_max: SimDuration::from_ms(40),
            max_retries: 8,
        }
    }

    /// RTO for the `attempt`-th (0-based) retransmission: the initial
    /// timeout doubled per attempt, saturating at [`rto_max`](Self::rto_max).
    #[must_use]
    pub fn rto_for(&self, attempt: u32) -> SimDuration {
        let base = self.rto_initial.as_nanos();
        let scaled = base.saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        SimDuration::from_nanos(scaled).min(self.rto_max)
    }
}

impl Default for RetxConfig {
    fn default() -> Self {
        RetxConfig::disabled()
    }
}

/// Network impairment and recovery configuration.
///
/// Probabilities are per-frame and independent; `jitter` adds a uniform
/// extra delay in `[0, jitter]` to every delivered frame, and a frame
/// selected for reordering is additionally held back by `reorder_delay`
/// so it lands behind later-sent traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Per-frame probability the frame is dropped in transit.
    pub loss: f64,
    /// Per-frame probability the frame is corrupted (dropped by the
    /// receiver's FCS check — indistinguishable from loss end-to-end, but
    /// counted separately).
    pub corrupt: f64,
    /// Per-frame probability the frame is delayed by `reorder_delay`.
    pub reorder: f64,
    /// Maximum uniform extra latency added per delivered frame.
    pub jitter: SimDuration,
    /// Hold-back applied to frames selected for reordering.
    pub reorder_delay: SimDuration,
    /// Seed for the per-link impairment RNG streams.
    pub seed: u64,
    /// Client-side retransmission policy.
    pub retx: RetxConfig,
}

/// Default seed for fault-injection RNG streams.
pub const DEFAULT_FAULT_SEED: u64 = 0xFA17_5EED;

impl FaultConfig {
    /// No impairment and no reliability layer — the inert default.
    #[must_use]
    pub fn none() -> Self {
        FaultConfig {
            loss: 0.0,
            corrupt: 0.0,
            reorder: 0.0,
            jitter: SimDuration::ZERO,
            reorder_delay: SimDuration::ZERO,
            seed: DEFAULT_FAULT_SEED,
            retx: RetxConfig::disabled(),
        }
    }

    /// Uniform random loss at rate `loss` with the standard
    /// retransmission policy — the common experiment entry point.
    #[must_use]
    pub fn lossy(loss: f64, seed: u64) -> Self {
        FaultConfig {
            loss,
            seed,
            retx: RetxConfig::standard(),
            ..FaultConfig::none()
        }
    }

    /// Sets the jitter bound (builder-style).
    #[must_use]
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the retransmission policy (builder-style).
    #[must_use]
    pub fn with_retx(mut self, retx: RetxConfig) -> Self {
        self.retx = retx;
        self
    }

    /// `true` when any impairment dimension is active.
    #[must_use]
    pub fn impairs(&self) -> bool {
        self.loss > 0.0
            || self.corrupt > 0.0
            || self.reorder > 0.0
            || self.jitter > SimDuration::ZERO
    }

    /// `true` when the whole subsystem is inert (no impairment and no
    /// reliability layer) — the observer-effect-free state.
    #[must_use]
    pub fn is_off(&self) -> bool {
        !self.impairs() && !self.retx.enabled
    }

    /// Validates probability ranges and retransmission constants.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, p) in [
            ("loss", self.loss),
            ("corrupt", self.corrupt),
            ("reorder", self.reorder),
        ] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(ConfigError::new(
                    field,
                    format!("probability must be in [0, 1], got {p}"),
                ));
            }
        }
        if self.reorder > 0.0 && self.reorder_delay == SimDuration::ZERO {
            return Err(ConfigError::new(
                "reorder_delay",
                "must be positive when reordering is enabled",
            ));
        }
        if self.retx.enabled {
            if self.retx.rto_initial == SimDuration::ZERO {
                return Err(ConfigError::new(
                    "rto_initial",
                    "must be positive when retransmission is enabled",
                ));
            }
            if self.retx.rto_max < self.retx.rto_initial {
                return Err(ConfigError::new("rto_max", "must be at least rto_initial"));
            }
            if self.retx.max_retries == 0 {
                return Err(ConfigError::new(
                    "max_retries",
                    "must be at least 1 when retransmission is enabled",
                ));
            }
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// Correlated link-level impairment applied to every member of a failure
/// domain (a rack or switch grouping) at once.
///
/// Unlike the per-link [`FaultConfig`] dimensions, a domain impairment is
/// *scoped in time and topology*: the cluster harness installs it on the
/// switch when the domain's fault window opens and removes it when the
/// window closes, and it affects every frame whose source or destination
/// is a member node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DomainImpairment {
    /// Hard partition: every frame to or from a member is dropped.
    Partition,
    /// Brownout: frames touching a member suffer extra loss and uniform
    /// latency jitter in `[0, jitter]`, on top of any per-link faults.
    Brownout {
        /// Per-frame drop probability while the brownout is active.
        loss: f64,
        /// Maximum extra latency per delivered frame.
        jitter: SimDuration,
    },
}

impl DomainImpairment {
    /// Short stable name for logs and scenario files.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            DomainImpairment::Partition => "partition",
            DomainImpairment::Brownout { .. } => "brownout",
        }
    }

    /// Validates probability ranges.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let DomainImpairment::Brownout { loss, .. } = self {
            if !(0.0..=1.0).contains(loss) || !loss.is_finite() {
                return Err(ConfigError::new(
                    "domain.loss",
                    format!("brownout loss must be in [0, 1], got {loss}"),
                ));
            }
        }
        Ok(())
    }
}

/// Counters for domain-fault activity, kept separate from [`FaultStats`]
/// so per-link and correlated impairments stay individually auditable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DomainFaultStats {
    /// Frames dropped because an endpoint was partitioned.
    pub partition_drops: u64,
    /// Frames dropped by a brownout's extra loss.
    pub brownout_drops: u64,
    /// Frames delivered with non-zero brownout jitter.
    pub brownout_delayed: u64,
}

impl DomainFaultStats {
    /// Total frames removed from the wire by domain faults.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.partition_drops + self.brownout_drops
    }
}

/// Why an injected fault removed a frame from the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropKind {
    /// Dropped in transit (congestion/loss model).
    Loss,
    /// Delivered with a bad FCS and discarded by the receiver.
    Corrupt,
}

/// Verdict for one frame traversing an impaired link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// Deliver, with this much extra latency (jitter + reorder hold-back).
    Deliver {
        /// Extra delay added on top of the fault-free arrival time.
        extra_delay: SimDuration,
    },
    /// Drop the frame.
    Drop(DropKind),
}

/// Counters for injected faults — the "injected-fault log" that trace
/// exports and experiment results are validated against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Frames dropped by the loss model.
    pub losses: u64,
    /// Frames dropped as corrupted.
    pub corruptions: u64,
    /// Frames held back for reordering.
    pub reorders: u64,
    /// Frames delivered with non-zero jitter.
    pub jittered: u64,
}

impl FaultStats {
    /// Total frames removed from the wire by injection.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.losses + self.corruptions
    }
}

/// Per-directed-link impairment state: one RNG stream per `(src, dst)`.
#[derive(Debug)]
pub struct LinkFaults {
    rng: SplitMix64,
}

impl LinkFaults {
    /// Builds the stream for link `src → dst` under `seed`. The stream
    /// seed mixes both endpoints so each direction of each pair is
    /// independent.
    #[must_use]
    pub fn new(seed: u64, src: NodeId, dst: NodeId) -> Self {
        let mixed = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(src.0) << 16)
            .wrapping_add(u64::from(dst.0) + 1);
        LinkFaults {
            rng: SplitMix64::new(mixed),
        }
    }

    /// Draws the verdict for the next frame on this link. Draw order is
    /// fixed (loss, corrupt, reorder, jitter) and each dimension draws
    /// only when enabled, so a given config replays identically.
    pub fn judge(&mut self, cfg: &FaultConfig, stats: &mut FaultStats) -> FaultVerdict {
        if cfg.loss > 0.0 && self.rng.next_f64() < cfg.loss {
            stats.losses += 1;
            return FaultVerdict::Drop(DropKind::Loss);
        }
        if cfg.corrupt > 0.0 && self.rng.next_f64() < cfg.corrupt {
            stats.corruptions += 1;
            return FaultVerdict::Drop(DropKind::Corrupt);
        }
        let mut extra = SimDuration::ZERO;
        if cfg.reorder > 0.0 && self.rng.next_f64() < cfg.reorder {
            stats.reorders += 1;
            extra += cfg.reorder_delay;
        }
        if cfg.jitter > SimDuration::ZERO {
            let j = cfg.jitter.mul_f64(self.rng.next_f64());
            if j > SimDuration::ZERO {
                stats.jittered += 1;
                extra += j;
            }
        }
        FaultVerdict::Deliver { extra_delay: extra }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert() {
        let cfg = FaultConfig::none();
        assert!(cfg.is_off());
        assert!(!cfg.impairs());
        assert!(cfg.validate().is_ok());
        assert_eq!(FaultConfig::default(), cfg);
    }

    #[test]
    fn lossy_enables_retx() {
        let cfg = FaultConfig::lossy(0.01, 7);
        assert!(cfg.impairs());
        assert!(!cfg.is_off());
        assert!(cfg.retx.enabled);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_fields() {
        assert_eq!(
            FaultConfig::lossy(1.5, 1).validate().unwrap_err().field,
            "loss"
        );
        let mut cfg = FaultConfig::lossy(0.01, 1);
        cfg.retx.rto_initial = SimDuration::ZERO;
        assert_eq!(cfg.validate().unwrap_err().field, "rto_initial");
        let mut cfg = FaultConfig::lossy(0.01, 1);
        cfg.retx.rto_max = SimDuration::from_nanos(1);
        assert_eq!(cfg.validate().unwrap_err().field, "rto_max");
        let mut cfg = FaultConfig::lossy(0.01, 1);
        cfg.retx.max_retries = 0;
        assert_eq!(cfg.validate().unwrap_err().field, "max_retries");
        let mut cfg = FaultConfig::none();
        cfg.reorder = 0.1;
        assert_eq!(cfg.validate().unwrap_err().field, "reorder_delay");
    }

    #[test]
    fn domain_impairment_validates_and_names() {
        assert!(DomainImpairment::Partition.validate().is_ok());
        assert_eq!(DomainImpairment::Partition.name(), "partition");
        let ok = DomainImpairment::Brownout {
            loss: 0.2,
            jitter: SimDuration::from_us(30),
        };
        assert!(ok.validate().is_ok());
        assert_eq!(ok.name(), "brownout");
        let bad = DomainImpairment::Brownout {
            loss: 1.2,
            jitter: SimDuration::ZERO,
        };
        assert_eq!(bad.validate().unwrap_err().field, "domain.loss");
        let nan = DomainImpairment::Brownout {
            loss: f64::NAN,
            jitter: SimDuration::ZERO,
        };
        assert!(nan.validate().is_err());
    }

    #[test]
    fn rto_backoff_doubles_and_caps() {
        let retx = RetxConfig::standard();
        assert_eq!(retx.rto_for(0), SimDuration::from_ms(5));
        assert_eq!(retx.rto_for(1), SimDuration::from_ms(10));
        assert_eq!(retx.rto_for(2), SimDuration::from_ms(20));
        assert_eq!(retx.rto_for(3), SimDuration::from_ms(40));
        // Saturates at the cap, even for huge attempt counts.
        assert_eq!(retx.rto_for(10), SimDuration::from_ms(40));
        assert_eq!(retx.rto_for(63), SimDuration::from_ms(40));
        assert_eq!(retx.rto_for(64), SimDuration::from_ms(40));
    }

    #[test]
    fn same_seed_same_verdicts() {
        let cfg = FaultConfig::lossy(0.2, 42).with_jitter(SimDuration::from_us(3));
        let run = || {
            let mut lf = LinkFaults::new(cfg.seed, NodeId(0), NodeId(1));
            let mut stats = FaultStats::default();
            let verdicts: Vec<_> = (0..500).map(|_| lf.judge(&cfg, &mut stats)).collect();
            (verdicts, stats)
        };
        assert_eq!(run(), run());
        let (_, stats) = run();
        assert!(stats.losses > 50, "expected ~100 losses, got {stats:?}");
        assert!(stats.jittered > 0);
        assert_eq!(stats.corruptions, 0);
    }

    #[test]
    fn directions_draw_independent_streams() {
        let cfg = FaultConfig::lossy(0.5, 9);
        let mut stats = FaultStats::default();
        let a: Vec<_> = {
            let mut lf = LinkFaults::new(cfg.seed, NodeId(0), NodeId(1));
            (0..64).map(|_| lf.judge(&cfg, &mut stats)).collect()
        };
        let b: Vec<_> = {
            let mut lf = LinkFaults::new(cfg.seed, NodeId(1), NodeId(0));
            (0..64).map(|_| lf.judge(&cfg, &mut stats)).collect()
        };
        assert_ne!(a, b, "reverse direction should have its own stream");
    }
}
