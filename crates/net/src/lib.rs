//! # netsim — network substrate for the NCAP reproduction
//!
//! Models the pieces of a datacenter Ethernet that the paper's evaluation
//! depends on (Table 1: 10 Gbps links, 1 µs latency, TCP/IP encapsulation):
//!
//! * [`packet`] — Ethernet/IPv4/TCP-lite frames. The TCP payload begins at
//!   byte 66 of the frame (14 Ethernet + 20 IP + 20 TCP + 12 options),
//!   exactly the offset NCAP's ReqMonitor inspects (paper §4.1).
//! * [`http`] — HTTP-like and Memcached-like request/response payloads with
//!   the predefined leading method tokens (`GET `, `PUT `, …) that make
//!   requests recognisable from their first payload bytes.
//! * [`tcp`] — MSS segmentation of responses larger than the MTU
//!   (responses usually span several frames — the paper's rationale for
//!   the context-free TxBytesCounter).
//! * [`link`] — serialization + propagation delay with a FIFO egress queue.
//! * [`switch`] — a store-and-forward switch connecting cluster nodes.
//! * [`faults`] — seeded per-link impairment (loss, corruption, reorder,
//!   jitter) plus the retransmission policy used to recover from drops.
//! * [`bytes`] — the in-tree zero-copy [`Bytes`] buffer the payload types
//!   are built on (no external `bytes` crate: the build is hermetic).
//!
//! All types here are *passive*: they compute sizes and times but schedule
//! nothing. The `cluster` crate turns their outputs into simulation events.
//!
//! ## Example
//!
//! ```
//! use netsim::packet::{NodeId, Packet};
//! use netsim::http::HttpRequest;
//!
//! let req = HttpRequest::get("/index.html").to_payload();
//! let pkt = Packet::request(NodeId(1), NodeId(0), 7, req);
//! assert_eq!(&pkt.payload()[..4], b"GET ");
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod bytes;
pub mod faults;
pub mod http;
pub mod link;
pub mod packet;
pub mod switch;
pub mod tcp;
pub mod wire;

pub use bytes::Bytes;
pub use faults::{
    DomainFaultStats, DomainImpairment, DropKind, FaultConfig, FaultStats, FaultVerdict,
    LinkFaults, RetxConfig, DEFAULT_FAULT_SEED,
};
pub use http::{HttpRequest, MemcachedRequest};
pub use link::Link;
pub use packet::{NodeId, Packet, PacketMeta, StageRecord};
pub use switch::{Delivery, Switch};
pub use tcp::{segment_response, Reassembly, SegmentStatus};
