//! Point-to-point link model: serialization + propagation + FIFO egress.
//!
//! Table 1 of the paper specifies 10 Gbps links with 1 µs latency. A
//! [`Link`] computes, for a frame handed to it at time `t`, when the frame
//! finishes serializing onto the wire (departure) and when it fully
//! arrives at the far end. The egress is a FIFO: a frame cannot begin
//! serializing before the previous frame finished (`busy_until`), which is
//! what creates the transmit-side queuing visible in BW(Tx) surges.

use desim::{SimDuration, SimTime};

/// A unidirectional link with finite bandwidth and fixed propagation delay.
///
/// # Example
///
/// ```
/// use netsim::Link;
/// use desim::SimTime;
///
/// let mut link = Link::ten_gbe();
/// let (depart, arrive) = link.transmit(SimTime::ZERO, 1250);
/// // 1250 bytes at 10 Gbps = 1 us serialization, + 1 us propagation.
/// assert_eq!(depart, SimTime::from_us(1));
/// assert_eq!(arrive, SimTime::from_us(2));
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    bandwidth_bps: u64,
    propagation: SimDuration,
    busy_until: SimTime,
    bytes_carried: u64,
    frames_carried: u64,
}

impl Link {
    /// Creates a link.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is zero.
    #[must_use]
    pub fn new(bandwidth_bps: u64, propagation: SimDuration) -> Self {
        assert!(bandwidth_bps > 0, "link bandwidth must be positive");
        Link {
            bandwidth_bps,
            propagation,
            busy_until: SimTime::ZERO,
            bytes_carried: 0,
            frames_carried: 0,
        }
    }

    /// The paper's link: 10 Gbps, 1 µs latency (Table 1).
    #[must_use]
    pub fn ten_gbe() -> Self {
        Link::new(10_000_000_000, SimDuration::from_us(1))
    }

    /// Time to clock `bytes` onto the wire at this link's rate.
    #[must_use]
    pub fn serialization_delay(&self, bytes: usize) -> SimDuration {
        let ns = (bytes as u128 * 8 * 1_000_000_000) / self.bandwidth_bps as u128;
        SimDuration::from_nanos(ns as u64)
    }

    /// Enqueues a frame of `wire_bytes` at time `now`.
    ///
    /// Returns `(departure, arrival)`: when the last bit leaves this end
    /// and when it reaches the far end. Serialization starts at
    /// `max(now, busy_until)` — the FIFO discipline.
    pub fn transmit(&mut self, now: SimTime, wire_bytes: usize) -> (SimTime, SimTime) {
        let start = if now > self.busy_until {
            now
        } else {
            self.busy_until
        };
        let depart = start + self.serialization_delay(wire_bytes);
        self.busy_until = depart;
        self.bytes_carried += wire_bytes as u64;
        self.frames_carried += 1;
        (depart, depart + self.propagation)
    }

    /// Instant until which the egress is occupied.
    #[must_use]
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Queueing delay a frame enqueued at `now` would experience before
    /// its first bit serializes.
    #[must_use]
    pub fn queue_delay(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// Total payload-carrying traffic so far, in bytes.
    #[must_use]
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Total frames carried so far.
    #[must_use]
    pub fn frames_carried(&self) -> u64 {
        self.frames_carried
    }

    /// Link bandwidth in bits per second.
    #[must_use]
    pub fn bandwidth_bps(&self) -> u64 {
        self.bandwidth_bps
    }

    /// One-way propagation delay.
    #[must_use]
    pub fn propagation(&self) -> SimDuration {
        self.propagation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::{ensure, ensure_eq, gen, Check};

    #[test]
    fn serialization_math() {
        let link = Link::new(1_000_000_000, SimDuration::ZERO); // 1 Gbps
        assert_eq!(link.serialization_delay(125), SimDuration::from_us(1));
        assert_eq!(link.serialization_delay(0), SimDuration::ZERO);
    }

    #[test]
    fn fifo_back_to_back() {
        let mut link = Link::ten_gbe();
        let (d1, _) = link.transmit(SimTime::ZERO, 1250); // 1 us
        let (d2, a2) = link.transmit(SimTime::ZERO, 1250); // queued behind
        assert_eq!(d1, SimTime::from_us(1));
        assert_eq!(d2, SimTime::from_us(2));
        assert_eq!(a2, SimTime::from_us(3));
    }

    #[test]
    fn idle_link_starts_immediately() {
        let mut link = Link::ten_gbe();
        link.transmit(SimTime::ZERO, 1250);
        // After the link idles, a later frame is not delayed.
        let (d, _) = link.transmit(SimTime::from_ms(1), 1250);
        assert_eq!(d, SimTime::from_ms(1) + SimDuration::from_us(1));
    }

    #[test]
    fn queue_delay_reports_backlog() {
        let mut link = Link::ten_gbe();
        link.transmit(SimTime::ZERO, 12_500); // 10 us
        assert_eq!(
            link.queue_delay(SimTime::from_us(4)),
            SimDuration::from_us(6)
        );
        assert_eq!(link.queue_delay(SimTime::from_us(20)), SimDuration::ZERO);
    }

    #[test]
    fn counters_accumulate() {
        let mut link = Link::ten_gbe();
        link.transmit(SimTime::ZERO, 100);
        link.transmit(SimTime::ZERO, 200);
        assert_eq!(link.bytes_carried(), 300);
        assert_eq!(link.frames_carried(), 2);
    }

    /// Departures are strictly ordered and never precede enqueue time.
    #[test]
    fn prop_fifo_order() {
        Check::new("link_fifo_order").run(
            |rng, size| {
                gen::vec_with(rng, size, 1, 50, |r| {
                    (r.next_below(10_000), gen::usize_in(r, 64, 2_000))
                })
            },
            |frames| {
                let mut link = Link::ten_gbe();
                let mut last_depart = SimTime::ZERO;
                let mut clock = SimTime::ZERO;
                for &(gap_ns, bytes) in frames {
                    clock += SimDuration::from_nanos(gap_ns);
                    let (depart, arrive) = link.transmit(clock, bytes);
                    ensure!(depart >= clock, "departed before enqueue");
                    ensure!(depart >= last_depart, "departures out of order");
                    ensure_eq!(arrive, depart + link.propagation());
                    last_depart = depart;
                }
                Ok(())
            },
        );
    }
}
