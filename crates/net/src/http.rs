//! Application-protocol payload builders.
//!
//! OLDI requests "have a predefined format, following a standardized
//! universal protocol" (paper §4.1) — that is what makes them detectable
//! from their first bytes. This module builds realistic-enough payloads
//! for two protocols:
//!
//! * HTTP/1.1 request lines (`GET`, `HEAD`, `POST`, `PUT`) for the
//!   Apache-like workload;
//! * the Memcached text protocol (`get`, `set`) for the Memcached-like
//!   workload.

use crate::bytes::Bytes;

/// HTTP request methods the model understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HttpMethod {
    /// Latency-critical content fetch.
    Get,
    /// Latency-critical metadata fetch.
    Head,
    /// Content creation; treated as latency-critical by default templates.
    Post,
    /// Content update — the paper's example of a *non*-latency-critical
    /// request type (§4.1).
    Put,
}

impl HttpMethod {
    /// The method token as it appears on the wire.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            HttpMethod::Get => "GET",
            HttpMethod::Head => "HEAD",
            HttpMethod::Post => "POST",
            HttpMethod::Put => "PUT",
        }
    }

    /// First two payload bytes for this method — the template ReqMonitor
    /// registers (paper §4.1 compares two bytes).
    #[must_use]
    pub fn template(self) -> [u8; 2] {
        let b = self.token().as_bytes();
        [b[0], b[1]]
    }
}

/// A buildable HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    method: HttpMethod,
    path: String,
}

impl HttpRequest {
    /// A `GET` request for `path`.
    #[must_use]
    pub fn get(path: impl Into<String>) -> Self {
        HttpRequest {
            method: HttpMethod::Get,
            path: path.into(),
        }
    }

    /// A `PUT` request for `path` (non-latency-critical update traffic).
    #[must_use]
    pub fn put(path: impl Into<String>) -> Self {
        HttpRequest {
            method: HttpMethod::Put,
            path: path.into(),
        }
    }

    /// A request with an explicit method.
    #[must_use]
    pub fn with_method(method: HttpMethod, path: impl Into<String>) -> Self {
        HttpRequest {
            method,
            path: path.into(),
        }
    }

    /// The request method.
    #[must_use]
    pub fn method(&self) -> HttpMethod {
        self.method
    }

    /// Serializes the request line + minimal headers to payload bytes.
    ///
    /// # Example
    ///
    /// ```
    /// use netsim::http::HttpRequest;
    /// let p = HttpRequest::get("/a").to_payload();
    /// assert!(p.starts_with(b"GET /a HTTP/1.1\r\n"));
    /// ```
    #[must_use]
    pub fn to_payload(&self) -> Bytes {
        let s = format!(
            "{} {} HTTP/1.1\r\nHost: server\r\nUser-Agent: ncap-sim\r\nAccept: */*\r\n\r\n",
            self.method.token(),
            self.path
        );
        Bytes::from(s)
    }
}

/// A buildable Memcached text-protocol request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemcachedRequest {
    key: String,
    set_value_len: Option<usize>,
}

impl MemcachedRequest {
    /// A `get <key>` request (latency-critical).
    #[must_use]
    pub fn get(key: impl Into<String>) -> Self {
        MemcachedRequest {
            key: key.into(),
            set_value_len: None,
        }
    }

    /// A `set <key>` request carrying `value_len` bytes (update traffic).
    #[must_use]
    pub fn set(key: impl Into<String>, value_len: usize) -> Self {
        MemcachedRequest {
            key: key.into(),
            set_value_len: Some(value_len),
        }
    }

    /// `true` for `get` requests.
    #[must_use]
    pub fn is_get(&self) -> bool {
        self.set_value_len.is_none()
    }

    /// Serializes the command to payload bytes.
    ///
    /// # Example
    ///
    /// ```
    /// use netsim::http::MemcachedRequest;
    /// let p = MemcachedRequest::get("user:42").to_payload();
    /// assert!(p.starts_with(b"get user:42\r\n"));
    /// ```
    #[must_use]
    pub fn to_payload(&self) -> Bytes {
        match self.set_value_len {
            None => Bytes::from(format!("get {}\r\n", self.key)),
            Some(len) => {
                let mut s = format!("set {} 0 0 {len}\r\n", self.key).into_bytes();
                s.extend(std::iter::repeat_n(b'v', len));
                s.extend_from_slice(b"\r\n");
                Bytes::from(s)
            }
        }
    }

    /// First two payload bytes: `ge` for get, `se` for set.
    #[must_use]
    pub fn template(&self) -> [u8; 2] {
        if self.is_get() {
            *b"ge"
        } else {
            *b"se"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn http_templates_are_first_two_bytes() {
        for m in [
            HttpMethod::Get,
            HttpMethod::Head,
            HttpMethod::Post,
            HttpMethod::Put,
        ] {
            let payload = HttpRequest::with_method(m, "/x").to_payload();
            assert_eq!([payload[0], payload[1]], m.template());
        }
    }

    #[test]
    fn get_and_put_differ_in_leading_bytes() {
        assert_ne!(HttpMethod::Get.template(), HttpMethod::Put.template());
    }

    #[test]
    fn http_request_is_wellformed() {
        let p = HttpRequest::get("/index.html").to_payload();
        let text = std::str::from_utf8(&p).unwrap();
        assert!(text.starts_with("GET /index.html HTTP/1.1\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn memcached_get_payload() {
        let r = MemcachedRequest::get("k1");
        assert!(r.is_get());
        assert_eq!(r.template(), *b"ge");
        assert_eq!(&r.to_payload()[..], b"get k1\r\n");
    }

    #[test]
    fn memcached_set_carries_value() {
        let r = MemcachedRequest::set("k1", 8);
        assert!(!r.is_get());
        assert_eq!(r.template(), *b"se");
        let p = r.to_payload();
        assert!(p.starts_with(b"set k1 0 0 8\r\n"));
        assert_eq!(p.len(), b"set k1 0 0 8\r\n".len() + 8 + 2);
    }
}
