//! A small in-tree replacement for the `bytes` crate's `Bytes`.
//!
//! The simulator only needs one thing from a byte container: cheap,
//! shared, immutable views so that segmenting a multi-MTU response into
//! frames ([`crate::tcp::segment_response`]) never copies the body. This
//! type provides exactly that — an `Arc<[u8]>` (or a `&'static [u8]`)
//! plus an `(offset, len)` window — and nothing else, keeping the build
//! hermetic: no registry access, no feature flags, no unsafe.

use core::fmt;
use core::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, sliceable, immutable byte buffer.
///
/// Cloning and [`slice`](Bytes::slice) are `O(1)`: both share the same
/// underlying storage. Dereferences to `&[u8]`, so all slice methods
/// (`starts_with`, indexing, iteration, …) work directly.
///
/// # Example
///
/// ```
/// use netsim::Bytes;
///
/// let body = Bytes::from(vec![1u8, 2, 3, 4, 5]);
/// let tail = body.slice(2..);
/// assert_eq!(&tail[..], &[3, 4, 5]);
/// assert_eq!(body.len(), 5); // original is untouched
/// ```
#[derive(Clone)]
pub struct Bytes {
    storage: Storage,
    offset: usize,
    len: usize,
}

#[derive(Clone)]
enum Storage {
    /// Borrowed from static memory — no allocation, no refcount.
    Static(&'static [u8]),
    /// Shared heap allocation.
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer. Allocation-free.
    #[must_use]
    pub const fn new() -> Self {
        Bytes {
            storage: Storage::Static(&[]),
            offset: 0,
            len: 0,
        }
    }

    /// Wraps a static slice. Allocation-free.
    #[must_use]
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            storage: Storage::Static(bytes),
            offset: 0,
            len: bytes.len(),
        }
    }

    /// Copies a slice into a new shared buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in this view.
    #[must_use]
    pub const fn len(&self) -> usize {
        self.len
    }

    /// `true` when the view holds no bytes.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The viewed bytes as a plain slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        let all = match &self.storage {
            Storage::Static(s) => s,
            Storage::Shared(a) => &a[..],
        };
        &all[self.offset..self.offset + self.len]
    }

    /// A zero-copy sub-view. Shares storage with `self`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted, matching slice
    /// indexing semantics.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end, "slice start {start} beyond end {end}");
        assert!(
            end <= self.len,
            "slice end {end} beyond length {}",
            self.len
        );
        Bytes {
            storage: self.storage.clone(),
            offset: self.offset + start,
            len: end - start,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            storage: Storage::Shared(Arc::from(v)),
            offset: 0,
            len,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            // Matches the bytes crate: printable ASCII shown raw.
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_static_allocate_nothing() {
        assert!(Bytes::new().is_empty());
        let b = Bytes::from_static(b"GET /");
        assert_eq!(b.len(), 5);
        assert!(b.starts_with(b"GET"));
    }

    #[test]
    fn from_vec_and_string() {
        let v = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(v, [1u8, 2, 3]);
        let s = Bytes::from(String::from("abc"));
        assert_eq!(&s[..], b"abc");
    }

    #[test]
    fn slicing_is_zero_copy_and_nested() {
        let b = Bytes::from((0u8..100).collect::<Vec<_>>());
        let mid = b.slice(10..90);
        assert_eq!(mid.len(), 80);
        assert_eq!(mid[0], 10);
        let inner = mid.slice(5..=10);
        assert_eq!(&inner[..], &[15, 16, 17, 18, 19, 20]);
        // Open-ended ranges.
        assert_eq!(b.slice(..3), [0u8, 1, 2]);
        assert_eq!(b.slice(97..).len(), 3);
        assert_eq!(b.slice(..), b);
    }

    #[test]
    fn clones_share_storage() {
        let b = Bytes::from(vec![7u8; 4096]);
        let c = b.clone();
        let (pa, pb) = (b.as_slice().as_ptr(), c.as_slice().as_ptr());
        assert_eq!(pa, pb, "clone must not copy the buffer");
        let tail = b.slice(4000..);
        assert_eq!(tail.as_slice().as_ptr(), unsafe { pa.add(4000) });
    }

    #[test]
    fn equality_across_representations() {
        let heap = Bytes::from(b"hello".to_vec());
        let stat = Bytes::from_static(b"hello");
        assert_eq!(heap, stat);
        assert_eq!(heap, b"hello".to_vec());
        assert_eq!(heap, *b"hello");
        assert_ne!(heap, Bytes::from_static(b"hellO"));
    }

    #[test]
    fn debug_renders_ascii_and_escapes() {
        let b = Bytes::from(vec![b'G', b'E', 0x00]);
        assert_eq!(format!("{b:?}"), "b\"GE\\x00\"");
    }

    #[test]
    #[should_panic(expected = "beyond length")]
    fn out_of_bounds_slice_panics() {
        let _ = Bytes::from_static(b"abc").slice(0..4);
    }

    #[test]
    fn empty_slice_of_empty_is_fine() {
        assert!(Bytes::new().slice(0..0).is_empty());
    }
}
