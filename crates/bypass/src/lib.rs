//! Kernel-bypass poll-mode datapath primitives.
//!
//! NCAP optimizes the *interrupt-driven* kernel stack; the rival stack it has
//! to answer is DPDK/XDP-style kernel bypass, where dedicated cores busy-poll
//! userspace descriptor rings and never sleep. This crate holds the pieces of
//! that model that are independent of the kernel simulator:
//!
//! * [`Datapath`] — the three-way stack selector (`kernel`, `bypass`,
//!   `offload`) threaded through `ExperimentConfig`, `KernelConfig` and the
//!   CLI.
//! * [`BypassConfig`] — the busy-poll budget: how many cores spin, and the
//!   per-frame userspace RX/TX processing cost that replaces the kernel's
//!   ISR + SoftIRQ stack cycles.
//! * [`UserRing`] — a deterministic FIFO descriptor ring with high-water and
//!   throughput accounting, used by the kernel model as the userspace RX/TX
//!   work ring that poll cores drain.
//!
//! The poll-mode semantics themselves (skipping IRQ/NAPI/run-queue stages,
//! pinning poll cores in C0 at max P-state, assert-time NCAP actions for
//! `offload`) live in `oskernel`, which consumes these types.

use std::collections::VecDeque;

use desim::ConfigError;

/// Which network datapath a server runs.
///
/// * `Kernel` — the baseline interrupt-driven path: DMA, interrupt
///   moderation, ISR, NAPI drain, SoftIRQ stack, run queue. This is the
///   default and is observer-effect-free: a kernel-datapath run is
///   bit-identical to one built before the datapath switch existed.
/// * `Bypass` — poll mode. Dedicated cores spin on userspace descriptor
///   rings; no interrupts are armed, no moderation timers fire, no SoftIRQ
///   work is queued, and the poll cores are exempt from C/P-state governance
///   (they are billed at active power continuously). Worker cores spin-wait
///   on the work queue too — with no interrupt path there is nothing to wake
///   a sleeping core — so the whole socket stays in C0.
/// * `Offload` — the kernel datapath with the NCAP decision engine running
///   on-NIC: packet-context actions (wakes, P-state boosts, menu gating)
///   apply at interrupt-assert time instead of inside the host ISR, and the
///   ISR no longer stalls on the PCIe ICR read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Datapath {
    /// Interrupt-driven kernel stack (default).
    #[default]
    Kernel,
    /// Busy-poll userspace rings; no interrupt path at all.
    Bypass,
    /// Kernel stack with the NCAP engine on the NIC.
    Offload,
}

impl Datapath {
    /// Every variant, in CLI/display order.
    pub const ALL: [Datapath; 3] = [Datapath::Kernel, Datapath::Bypass, Datapath::Offload];

    /// The CLI token for this datapath (`kernel` / `bypass` / `offload`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Datapath::Kernel => "kernel",
            Datapath::Bypass => "bypass",
            Datapath::Offload => "offload",
        }
    }

    /// Parses a CLI token. Accepts the exact names from [`Datapath::name`].
    pub fn parse(s: &str) -> Result<Self, ConfigError> {
        match s {
            "kernel" => Ok(Datapath::Kernel),
            "bypass" => Ok(Datapath::Bypass),
            "offload" => Ok(Datapath::Offload),
            other => Err(ConfigError::new(
                "datapath",
                format!("unknown datapath `{other}` (expected kernel|bypass|offload)"),
            )),
        }
    }

    /// `true` when RX/TX skip the kernel interrupt path entirely and are
    /// driven by busy-poll cores instead.
    #[must_use]
    pub fn bypasses_kernel(self) -> bool {
        matches!(self, Datapath::Bypass)
    }

    /// `true` when the NCAP decision engine runs on the NIC and steers the
    /// host at interrupt-assert time.
    #[must_use]
    pub fn offloads_ncap(self) -> bool {
        matches!(self, Datapath::Offload)
    }
}

impl std::fmt::Display for Datapath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Busy-poll budget for [`Datapath::Bypass`].
///
/// The per-frame cycle costs replace the kernel path's ISR + SoftIRQ costs:
/// a poll core that picks a descriptor out of the userspace ring runs the
/// (much thinner) userspace packet processing inline, with no mode switch,
/// no softirq hop and no doorbell MMIO on TX.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BypassConfig {
    /// Cores dedicated to busy-polling (the lowest-numbered cores). They
    /// never sleep, never change P-state, and take no application work.
    pub poll_cores: u8,
    /// Cycles to receive one frame in userspace (ring pickup + protocol
    /// processing). Compare `isr_cycles + rx_stack_cycles` on the kernel
    /// path.
    pub poll_rx_cycles: u64,
    /// Cycles to transmit one response frame in userspace (descriptor
    /// write, no doorbell). Compare `tx_stack_cycles` on the kernel path.
    pub poll_tx_cycles: u64,
    /// Per-mille of the application's kernel-path CPU cycle budget that
    /// the zero-copy service loop still pays (1..=1000). Bypass hands
    /// the payload to the application straight out of the userspace
    /// ring, so the serving loop skips the socket-API copies and
    /// syscall crossings baked into the kernel-path app budget — the
    /// efficiency that pays back the core lost to polling.
    pub app_cycle_permille: u16,
}

impl BypassConfig {
    /// A DPDK-like budget: one poll core, userspace RX/TX costs well
    /// under the kernel's 9k-cycle ISR+stack path (no context switches,
    /// no skb allocation, no softirq scheduling), and a 25% discount on
    /// the application's own cycles from zero-copy, syscall-free
    /// serving — conservative against the 2x+ per-core gains userspace
    /// stacks report for memcached-class workloads.
    #[must_use]
    pub fn dpdk_like() -> Self {
        BypassConfig {
            poll_cores: 1,
            poll_rx_cycles: 1_200,
            poll_tx_cycles: 600,
            app_cycle_permille: 750,
        }
    }

    /// Sets the number of busy-poll cores.
    #[must_use]
    pub fn with_poll_cores(mut self, n: u8) -> Self {
        self.poll_cores = n;
        self
    }

    /// Validates the budget against the server's core count. At least one
    /// core must poll, and at least one core must remain for application
    /// work.
    pub fn validate(&self, total_cores: u8) -> Result<(), ConfigError> {
        if self.poll_cores == 0 {
            return Err(ConfigError::new(
                "poll_cores",
                "bypass datapath needs at least one busy-poll core",
            ));
        }
        if self.poll_cores >= total_cores {
            return Err(ConfigError::new(
                "poll_cores",
                format!(
                    "{} poll cores leave no application cores on a {}-core server",
                    self.poll_cores, total_cores
                ),
            ));
        }
        if self.poll_rx_cycles == 0 || self.poll_tx_cycles == 0 {
            return Err(ConfigError::new(
                "poll_rx_cycles",
                "userspace per-frame costs must be non-zero",
            ));
        }
        if self.app_cycle_permille == 0 || self.app_cycle_permille > 1_000 {
            return Err(ConfigError::new(
                "app_cycle_permille",
                "zero-copy app cycle fraction must be in 1..=1000 per mille",
            ));
        }
        Ok(())
    }
}

impl Default for BypassConfig {
    fn default() -> Self {
        BypassConfig::dpdk_like()
    }
}

/// A deterministic FIFO descriptor ring with occupancy accounting.
///
/// Models the userspace RX/TX ring a poll core spins on: producers (the
/// NIC-facing poll loop, or an application core emitting a response) push
/// descriptors, poll cores pop them in order. Unlike the hardware ring in
/// `nicsim`, this ring is not capacity-bound — backpressure on the bypass
/// path shows up as ring residency (`poll_wait` latency), not drops — but it
/// tracks its high-water mark and total throughput so overload is visible.
#[derive(Debug, Clone, Default)]
pub struct UserRing<T> {
    slots: VecDeque<T>,
    high_water: usize,
    pushed: u64,
    popped: u64,
}

impl<T> UserRing<T> {
    /// An empty ring.
    #[must_use]
    pub fn new() -> Self {
        UserRing {
            slots: VecDeque::new(),
            high_water: 0,
            pushed: 0,
            popped: 0,
        }
    }

    /// Appends a descriptor at the producer end.
    pub fn push(&mut self, item: T) {
        self.slots.push_back(item);
        self.pushed += 1;
        self.high_water = self.high_water.max(self.slots.len());
    }

    /// Pops the oldest descriptor, if any.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.slots.pop_front();
        if item.is_some() {
            self.popped += 1;
        }
        item
    }

    /// Current occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no descriptors are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Maximum occupancy ever observed.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total descriptors ever pushed.
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Total descriptors ever popped.
    #[must_use]
    pub fn popped(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datapath_parse_round_trips() {
        for dp in Datapath::ALL {
            assert_eq!(Datapath::parse(dp.name()).unwrap(), dp);
            assert_eq!(format!("{dp}"), dp.name());
        }
        let err = Datapath::parse("xdp").unwrap_err();
        assert_eq!(err.field, "datapath");
        assert!(
            err.reason.contains("kernel|bypass|offload"),
            "{}",
            err.reason
        );
    }

    #[test]
    fn datapath_default_is_kernel() {
        assert_eq!(Datapath::default(), Datapath::Kernel);
        assert!(!Datapath::Kernel.bypasses_kernel());
        assert!(!Datapath::Kernel.offloads_ncap());
        assert!(Datapath::Bypass.bypasses_kernel());
        assert!(!Datapath::Bypass.offloads_ncap());
        assert!(!Datapath::Offload.bypasses_kernel());
        assert!(Datapath::Offload.offloads_ncap());
    }

    #[test]
    fn bypass_config_validates_core_budget() {
        let cfg = BypassConfig::dpdk_like();
        assert!(cfg.validate(4).is_ok());
        assert!(cfg.with_poll_cores(0).validate(4).is_err());
        assert!(cfg.with_poll_cores(4).validate(4).is_err());
        assert!(cfg.with_poll_cores(3).validate(4).is_ok());
        let zero_rx = BypassConfig {
            poll_rx_cycles: 0,
            ..BypassConfig::dpdk_like()
        };
        assert!(zero_rx.validate(4).is_err());
        for bad in [0, 1_001] {
            let cfg = BypassConfig {
                app_cycle_permille: bad,
                ..BypassConfig::dpdk_like()
            };
            assert!(cfg.validate(4).is_err(), "app_cycle_permille {bad}");
        }
    }

    #[test]
    fn user_ring_is_fifo_with_accounting() {
        let mut ring = UserRing::new();
        assert!(ring.is_empty());
        assert_eq!(ring.pop(), None);
        for i in 0..5 {
            ring.push(i);
        }
        assert_eq!(ring.len(), 5);
        assert_eq!(ring.high_water(), 5);
        assert_eq!(ring.pop(), Some(0));
        assert_eq!(ring.pop(), Some(1));
        ring.push(5);
        assert_eq!(
            ring.high_water(),
            5,
            "high-water keeps the max, not current"
        );
        let rest: Vec<_> = std::iter::from_fn(|| ring.pop()).collect();
        assert_eq!(rest, vec![2, 3, 4, 5]);
        assert_eq!(ring.pushed(), 6);
        assert_eq!(ring.popped(), 6);
    }
}
