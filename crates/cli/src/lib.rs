//! # ncap-cli — argument parsing and command execution
//!
//! The library half of the `ncap` binary: a small, dependency-free
//! command-line parser and the command implementations, kept in a library
//! so they are unit-testable.
//!
//! ```text
//! ncap policies
//! ncap run    --app memcached --policy ncap.cons --load 35000 [flags]
//! ncap sweep  --app apache --policies perf,ncap.cons --loads 20000,40000,60000
//! ncap sla    --app memcached
//! ncap trace  --app memcached --policy ncap.cons --load 35000 --out traces/
//! ncap report --app memcached --policy ond.idle --load 20000 [--tail P]
//! ncap chaos  --seeds 200 --shrink --out repros/
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use cluster::{
    run_experiment, run_experiments_parallel, try_run_experiment, AppKind, CoordinatorConfig,
    Datapath, DispatchPolicy, ExperimentConfig, FailureMode, FailureSchedule, FailureSpec,
    FaultConfig, FleetConfig, HealthConfig, OverloadConfig, Policy, RetxConfig, ShedPolicy,
    TraceConfig, DEFAULT_FAULT_SEED,
};
use desim::{SimDuration, SimTime};
use simstats::{fmt_ns, FleetAggregate, Table};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List the seven policies.
    Policies,
    /// Run one experiment.
    Run(RunArgs),
    /// Run a policy × load grid.
    Sweep(SweepArgs),
    /// Find the SLA via the perf latency-load knee.
    Sla {
        /// The application to sweep.
        app: AppKind,
    },
    /// Run one experiment with event tracing and export Perfetto/CSV.
    Trace(TraceArgs),
    /// Run one experiment and print the per-stage latency attribution.
    Report(ReportArgs),
    /// Run a seeded chaos campaign (or replay one scenario file).
    Chaos(ChaosArgs),
    /// Print usage.
    Help,
}

/// Arguments of `ncap chaos`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosArgs {
    /// Number of seeded scenarios to run (seeds `from..from + seeds`).
    pub seeds: u64,
    /// First seed of the campaign.
    pub from: u64,
    /// Worker threads (0 = one per core).
    pub threads: usize,
    /// Minimize failing seeds to their smallest still-failing repro.
    pub shrink: bool,
    /// Replay one scenario file instead of generating from seeds.
    pub scenario: Option<String>,
    /// Directory receiving shrunken repro `.scenario` files.
    pub out: Option<String>,
    /// Force every generated scenario onto one datapath (the generator
    /// otherwise draws it per seed). Policies incompatible with the
    /// forced datapath are coerced to a compatible pool member.
    pub datapath: Option<Datapath>,
    /// Force the busy-poll core count for bypass scenarios.
    pub poll_cores: Option<u8>,
}

/// Arguments of `ncap run`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Application.
    pub app: AppKind,
    /// Policy.
    pub policy: Policy,
    /// Offered load, requests/second.
    pub load: f64,
    /// Measured window (ms).
    pub measure_ms: u64,
    /// Warmup (ms).
    pub warmup_ms: u64,
    /// Seed.
    pub seed: u64,
    /// Poisson arrivals instead of bursts.
    pub poisson: bool,
    /// RSS queues on the server NIC.
    pub queues: usize,
    /// §7 per-core boost.
    pub per_core: bool,
    /// TOE on the server NIC.
    pub toe: bool,
    /// Per-frame loss probability on every link (0 disables).
    pub loss: f64,
    /// Per-frame corruption probability on every link (0 disables).
    pub corrupt: f64,
    /// Per-frame reorder probability on every link (0 disables).
    pub reorder: f64,
    /// Uniform per-frame latency jitter bound, microseconds (0 disables).
    pub jitter_us: u64,
    /// Seed for the fault-injection RNG streams.
    pub fault_seed: u64,
    /// Server run-queue admission capacity (None keeps shedding off
    /// unless another overload flag turns the server defaults on).
    pub queue_cap: Option<usize>,
    /// Admission policy shedding work when server queues fill.
    pub shed_policy: Option<ShedPolicy>,
    /// End-to-end request deadline stamped by clients, microseconds.
    pub deadline_us: Option<u64>,
    /// Backend servers behind an L4 load-balancer VIP (1 = the paper's
    /// single-server topology, no fleet layer).
    pub servers: usize,
    /// Fleet dispatch policy (meaningful with `--servers` > 1 or
    /// `--coordinator`).
    pub dispatch: DispatchPolicy,
    /// Arm the fleet power coordinator (parks/unparks backends with
    /// load).
    pub coordinator: bool,
    /// Scheduled backend failures: `(backend, at_ms, restart_ms)`.
    /// Non-empty implies a fleet topology.
    pub fail_backends: Vec<(usize, u64, Option<u64>)>,
    /// Failure mode applied to every scheduled failure.
    pub fail_mode: FailureMode,
    /// Health-prober probe period override, microseconds.
    pub health_interval_us: Option<u64>,
    /// Consecutive probe failures before ejection.
    pub health_eject: Option<u32>,
    /// Consecutive probe successes before reinstatement.
    pub health_rejoin: Option<u32>,
    /// Server datapath: the kernel interrupt stack, a poll-mode
    /// kernel-bypass stack, or the kernel stack with NCAP offloaded
    /// onto the NIC.
    pub datapath: Datapath,
    /// Dedicated busy-poll cores per server (bypass datapath only).
    pub poll_cores: u8,
}

/// Arguments of `ncap trace`: an ordinary run plus an output directory.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceArgs {
    /// The experiment to run (same knobs as `ncap run`).
    pub run: RunArgs,
    /// Directory receiving `trace.json` and `trace.csv`.
    pub out: String,
    /// Metrics bin width for the CSV export, microseconds.
    pub window_us: u64,
}

/// Arguments of `ncap report`: an ordinary run plus attribution knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportArgs {
    /// The experiment to run (same knobs as `ncap run`).
    pub run: RunArgs,
    /// Percentile the tail view conditions on.
    pub tail: f64,
    /// Also print the simulator's wall-clock self-profile.
    pub profile: bool,
}

/// Arguments of `ncap sweep`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    /// Application.
    pub app: AppKind,
    /// Policies to run.
    pub policies: Vec<Policy>,
    /// Loads to run.
    pub loads: Vec<f64>,
    /// Measured window (ms).
    pub measure_ms: u64,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

fn parse_app(s: &str) -> Result<AppKind, ParseError> {
    match s {
        "apache" => Ok(AppKind::Apache),
        "memcached" => Ok(AppKind::Memcached),
        other => Err(ParseError(format!(
            "unknown app '{other}' (expected apache|memcached)"
        ))),
    }
}

fn parse_policy(s: &str) -> Result<Policy, ParseError> {
    Policy::ALL
        .iter()
        .copied()
        .find(|p| p.name() == s)
        .ok_or_else(|| {
            let names: Vec<&str> = Policy::ALL.iter().map(|p| p.name()).collect();
            ParseError(format!(
                "unknown policy '{s}' (expected one of {})",
                names.join(", ")
            ))
        })
}

fn take_value<'a>(
    args: &mut impl Iterator<Item = &'a str>,
    flag: &str,
) -> Result<&'a str, ParseError> {
    args.next()
        .ok_or_else(|| ParseError(format!("{flag} requires a value")))
}

fn default_run_args() -> RunArgs {
    RunArgs {
        app: AppKind::Memcached,
        policy: Policy::NcapCons,
        load: 35_000.0,
        measure_ms: 400,
        warmup_ms: 100,
        seed: 0x4E43_4150,
        poisson: false,
        queues: 1,
        per_core: false,
        toe: false,
        loss: 0.0,
        corrupt: 0.0,
        reorder: 0.0,
        jitter_us: 0,
        fault_seed: DEFAULT_FAULT_SEED,
        queue_cap: None,
        shed_policy: None,
        deadline_us: None,
        servers: 1,
        dispatch: DispatchPolicy::RoundRobin,
        coordinator: false,
        fail_backends: Vec::new(),
        fail_mode: FailureMode::Stop,
        health_interval_us: None,
        health_eject: None,
        health_rejoin: None,
        datapath: Datapath::Kernel,
        poll_cores: 1,
    }
}

/// Parses a `--fail-backend` value: `idx@t_ms` or `idx@t_ms:restart_ms`.
fn parse_fail_backend(v: &str) -> Result<(usize, u64, Option<u64>), ParseError> {
    let err = || {
        ParseError(format!(
            "bad --fail-backend '{v}' (expected idx@t_ms[:restart_ms])"
        ))
    };
    let (idx, rest) = v.split_once('@').ok_or_else(err)?;
    let (at, restart) = match rest.split_once(':') {
        Some((at, r)) => (at, Some(r)),
        None => (rest, None),
    };
    let idx = idx.parse().map_err(|_| err())?;
    let at = at.parse().map_err(|_| err())?;
    let restart = match restart {
        Some(r) => Some(r.parse().map_err(|_| err())?),
        None => None,
    };
    Ok((idx, at, restart))
}

fn parse_probability(flag: &str, value: &str) -> Result<f64, ParseError> {
    let p: f64 = value
        .parse()
        .map_err(|_| ParseError(format!("{flag} expects a probability")))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(ParseError(format!("{flag} must be in [0, 1]")));
    }
    Ok(p)
}

/// Applies one `run`-style flag; returns `Ok(false)` if the flag is not
/// one of the shared run/trace flags.
fn apply_run_flag<'a>(
    a: &mut RunArgs,
    flag: &'a str,
    it: &mut impl Iterator<Item = &'a str>,
) -> Result<bool, ParseError> {
    match flag {
        "--app" => a.app = parse_app(take_value(it, flag)?)?,
        "--policy" => a.policy = parse_policy(take_value(it, flag)?)?,
        "--load" => {
            a.load = take_value(it, flag)?
                .parse()
                .map_err(|_| ParseError("--load expects a number".into()))?;
        }
        "--measure-ms" => {
            a.measure_ms = take_value(it, flag)?
                .parse()
                .map_err(|_| ParseError("--measure-ms expects an integer".into()))?;
        }
        "--warmup-ms" => {
            a.warmup_ms = take_value(it, flag)?
                .parse()
                .map_err(|_| ParseError("--warmup-ms expects an integer".into()))?;
        }
        "--seed" => {
            a.seed = take_value(it, flag)?
                .parse()
                .map_err(|_| ParseError("--seed expects an integer".into()))?;
        }
        "--queues" => {
            a.queues = take_value(it, flag)?
                .parse()
                .map_err(|_| ParseError("--queues expects an integer".into()))?;
        }
        "--poisson" => a.poisson = true,
        "--per-core" => a.per_core = true,
        "--toe" => a.toe = true,
        "--loss" => a.loss = parse_probability(flag, take_value(it, flag)?)?,
        "--corrupt" => a.corrupt = parse_probability(flag, take_value(it, flag)?)?,
        "--reorder" => a.reorder = parse_probability(flag, take_value(it, flag)?)?,
        "--jitter-us" => {
            a.jitter_us = take_value(it, flag)?
                .parse()
                .map_err(|_| ParseError("--jitter-us expects an integer".into()))?;
        }
        "--fault-seed" => {
            a.fault_seed = take_value(it, flag)?
                .parse()
                .map_err(|_| ParseError("--fault-seed expects an integer".into()))?;
        }
        "--queue-cap" => {
            a.queue_cap = Some(
                take_value(it, flag)?
                    .parse()
                    .map_err(|_| ParseError("--queue-cap expects an integer".into()))?,
            );
        }
        "--shed-policy" => {
            let v = take_value(it, flag)?;
            a.shed_policy = Some(ShedPolicy::parse(v).ok_or_else(|| {
                ParseError(format!(
                    "unknown shed policy '{v}' (expected none|drop-tail|deadline|codel)"
                ))
            })?);
        }
        "--deadline-us" => {
            a.deadline_us = Some(
                take_value(it, flag)?
                    .parse()
                    .map_err(|_| ParseError("--deadline-us expects an integer".into()))?,
            );
        }
        "--servers" => {
            a.servers = take_value(it, flag)?
                .parse()
                .map_err(|_| ParseError("--servers expects an integer".into()))?;
            if a.servers == 0 {
                return Err(ParseError("--servers must be at least 1".into()));
            }
        }
        "--dispatch" => {
            let v = take_value(it, flag)?;
            a.dispatch = DispatchPolicy::parse(v).ok_or_else(|| {
                ParseError(format!("unknown dispatch '{v}' (expected rr|jsq|pack)"))
            })?;
        }
        "--coordinator" => a.coordinator = true,
        "--fail-backend" => a
            .fail_backends
            .push(parse_fail_backend(take_value(it, flag)?)?),
        "--fail-mode" => {
            let v = take_value(it, flag)?;
            a.fail_mode = FailureMode::parse(v).ok_or_else(|| {
                ParseError(format!("unknown fail mode '{v}' (expected stop|slow|hang)"))
            })?;
        }
        "--health-interval" => {
            let us: u64 = take_value(it, flag)?
                .parse()
                .map_err(|_| ParseError("--health-interval expects microseconds".into()))?;
            if us == 0 {
                return Err(ParseError("--health-interval must be positive".into()));
            }
            a.health_interval_us = Some(us);
        }
        "--health-eject" => {
            a.health_eject = Some(
                take_value(it, flag)?
                    .parse()
                    .map_err(|_| ParseError("--health-eject expects an integer".into()))?,
            );
        }
        "--health-rejoin" => {
            a.health_rejoin = Some(
                take_value(it, flag)?
                    .parse()
                    .map_err(|_| ParseError("--health-rejoin expects an integer".into()))?,
            );
        }
        "--datapath" => {
            a.datapath =
                Datapath::parse(take_value(it, flag)?).map_err(|e| ParseError(e.to_string()))?;
        }
        "--poll-cores" => {
            a.poll_cores = take_value(it, flag)?
                .parse()
                .map_err(|_| ParseError("--poll-cores expects an integer".into()))?;
        }
        _ => return Ok(false),
    }
    Ok(true)
}

/// Cross-flag checks shared by every `run`-style command, applied once
/// the whole line is parsed (so flag order cannot matter).
fn check_run_args(a: &RunArgs) -> Result<(), ParseError> {
    if a.load <= 0.0 {
        return Err(ParseError("--load must be positive".into()));
    }
    match a.datapath {
        Datapath::Bypass => {
            if a.policy.is_ncap() {
                return Err(ParseError(format!(
                    "--datapath bypass removes the interrupt path that policy {} \
                     drives; use --datapath offload for on-NIC NCAP",
                    a.policy
                )));
            }
            if a.poll_cores == 0 || a.poll_cores >= 4 {
                return Err(ParseError(format!(
                    "--poll-cores must be in 1..4 on a 4-core server, got {}",
                    a.poll_cores
                )));
            }
        }
        Datapath::Offload => {
            if !a.policy.uses_ncap_hardware() {
                return Err(ParseError(format!(
                    "--datapath offload needs an NCAP hardware policy \
                     (ncap.cons|ncap.aggr), got {}",
                    a.policy
                )));
            }
        }
        Datapath::Kernel => {}
    }
    for &(backend, _, _) in &a.fail_backends {
        if backend >= a.servers {
            return Err(ParseError(format!(
                "--fail-backend index {backend} is out of range: --servers {} \
                 means valid backends are 0..={}",
                a.servers,
                a.servers - 1
            )));
        }
    }
    Ok(())
}

/// Parses a command line (without the program name).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first problem.
pub fn parse<'a, I: IntoIterator<Item = &'a str>>(args: I) -> Result<Command, ParseError> {
    let mut it = args.into_iter();
    let cmd = match it.next() {
        None | Some("help") | Some("--help") | Some("-h") => return Ok(Command::Help),
        Some(c) => c,
    };
    match cmd {
        "policies" => Ok(Command::Policies),
        "sla" => {
            let mut app = None;
            while let Some(flag) = it.next() {
                match flag {
                    "--app" => app = Some(parse_app(take_value(&mut it, flag)?)?),
                    other => return Err(ParseError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Sla {
                app: app.ok_or_else(|| ParseError("sla requires --app".into()))?,
            })
        }
        "run" => {
            let mut a = default_run_args();
            while let Some(flag) = it.next() {
                if !apply_run_flag(&mut a, flag, &mut it)? {
                    return Err(ParseError(format!("unknown flag '{flag}'")));
                }
            }
            check_run_args(&a)?;
            Ok(Command::Run(a))
        }
        "trace" => {
            // Traced runs default to a short window: the event ring holds
            // the full stream for tens of simulated milliseconds.
            let mut a = default_run_args();
            a.warmup_ms = 10;
            a.measure_ms = 40;
            let mut out = None;
            let mut window_us = 1_000;
            while let Some(flag) = it.next() {
                match flag {
                    "--out" => out = Some(take_value(&mut it, flag)?.to_owned()),
                    "--window-us" => {
                        window_us = take_value(&mut it, flag)?
                            .parse()
                            .map_err(|_| ParseError("--window-us expects an integer".into()))?;
                        if window_us == 0 {
                            return Err(ParseError("--window-us must be positive".into()));
                        }
                    }
                    other => {
                        if !apply_run_flag(&mut a, other, &mut it)? {
                            return Err(ParseError(format!("unknown flag '{other}'")));
                        }
                    }
                }
            }
            check_run_args(&a)?;
            Ok(Command::Trace(TraceArgs {
                run: a,
                out: out.ok_or_else(|| ParseError("trace requires --out".into()))?,
                window_us,
            }))
        }
        "report" => {
            let mut a = default_run_args();
            let mut tail = 99.0;
            let mut profile = false;
            while let Some(flag) = it.next() {
                match flag {
                    "--tail" => {
                        tail = take_value(&mut it, flag)?
                            .parse()
                            .map_err(|_| ParseError("--tail expects a percentile".into()))?;
                        if !(0.0..100.0).contains(&tail) {
                            return Err(ParseError("--tail must be in [0, 100)".into()));
                        }
                    }
                    "--profile" => profile = true,
                    other => {
                        if !apply_run_flag(&mut a, other, &mut it)? {
                            return Err(ParseError(format!("unknown flag '{other}'")));
                        }
                    }
                }
            }
            check_run_args(&a)?;
            Ok(Command::Report(ReportArgs {
                run: a,
                tail,
                profile,
            }))
        }
        "chaos" => {
            let mut a = ChaosArgs {
                seeds: 40,
                from: 1,
                threads: 0,
                shrink: false,
                scenario: None,
                out: None,
                datapath: None,
                poll_cores: None,
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--seeds" => {
                        a.seeds = take_value(&mut it, flag)?
                            .parse()
                            .map_err(|_| ParseError("--seeds expects an integer".into()))?;
                        if a.seeds == 0 {
                            return Err(ParseError("--seeds must be at least 1".into()));
                        }
                    }
                    "--from" => {
                        a.from = take_value(&mut it, flag)?
                            .parse()
                            .map_err(|_| ParseError("--from expects an integer".into()))?;
                    }
                    "--threads" => {
                        a.threads = take_value(&mut it, flag)?
                            .parse()
                            .map_err(|_| ParseError("--threads expects an integer".into()))?;
                    }
                    "--shrink" => a.shrink = true,
                    "--scenario" => a.scenario = Some(take_value(&mut it, flag)?.to_owned()),
                    "--out" => a.out = Some(take_value(&mut it, flag)?.to_owned()),
                    "--datapath" => {
                        a.datapath = Some(
                            Datapath::parse(take_value(&mut it, flag)?)
                                .map_err(|e| ParseError(e.to_string()))?,
                        );
                    }
                    "--poll-cores" => {
                        let n: u8 = take_value(&mut it, flag)?
                            .parse()
                            .map_err(|_| ParseError("--poll-cores expects an integer".into()))?;
                        if n == 0 || n >= 4 {
                            return Err(ParseError(format!(
                                "--poll-cores must be in 1..4 on a 4-core server, got {n}"
                            )));
                        }
                        a.poll_cores = Some(n);
                    }
                    other => return Err(ParseError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Chaos(a))
        }
        "sweep" => {
            let mut app = None;
            let mut policies = Vec::new();
            let mut loads = Vec::new();
            let mut measure_ms = 300;
            while let Some(flag) = it.next() {
                match flag {
                    "--app" => app = Some(parse_app(take_value(&mut it, flag)?)?),
                    "--policies" => {
                        for p in take_value(&mut it, flag)?.split(',') {
                            policies.push(parse_policy(p)?);
                        }
                    }
                    "--loads" => {
                        for l in take_value(&mut it, flag)?.split(',') {
                            loads.push(
                                l.parse().map_err(|_| {
                                    ParseError(format!("bad load '{l}' in --loads"))
                                })?,
                            );
                        }
                    }
                    "--measure-ms" => {
                        measure_ms = take_value(&mut it, flag)?
                            .parse()
                            .map_err(|_| ParseError("--measure-ms expects an integer".into()))?;
                    }
                    other => return Err(ParseError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Sweep(SweepArgs {
                app: app.ok_or_else(|| ParseError("sweep requires --app".into()))?,
                policies: if policies.is_empty() {
                    Policy::ALL.to_vec()
                } else {
                    policies
                },
                loads: if loads.is_empty() {
                    app.map(AppKind::paper_loads)
                        .unwrap_or([24_000.0, 45_000.0, 66_000.0])
                        .to_vec()
                } else {
                    loads
                },
                measure_ms,
            }))
        }
        other => Err(ParseError(format!("unknown command '{other}'"))),
    }
}

/// Usage text.
pub const USAGE: &str = "\
ncap — reproduce and explore NCAP (HPCA 2017) experiments

USAGE:
  ncap policies
  ncap run   --app apache|memcached --policy <name> --load <rps>
             [--measure-ms N] [--warmup-ms N] [--seed N]
             [--poisson] [--queues N] [--per-core] [--toe]
             [--loss P] [--corrupt P] [--reorder P] [--jitter-us N]
             [--fault-seed N]
             [--queue-cap N] [--shed-policy none|drop-tail|deadline|codel]
             [--deadline-us N]
             [--servers N] [--dispatch rr|jsq|pack] [--coordinator]
             [--fail-backend idx@t_ms[:restart_ms]]... [--fail-mode stop|slow|hang]
             [--health-interval US] [--health-eject K] [--health-rejoin K]
             [--datapath kernel|bypass|offload] [--poll-cores N]
             --datapath picks the server network stack: kernel (default,
             interrupt-driven), bypass (DPDK-style poll-mode rings on N
             dedicated busy-poll cores pinned at max P-state; incompatible
             with NCAP policies), or offload (kernel stack with the NCAP
             decision engine on the NIC; needs ncap.cons|ncap.aggr)
             fault flags inject seeded per-link impairments; any nonzero
             impairment also arms the client retransmission layer
             overload flags arm server admission control (bounded queues
             plus the chosen shedding policy; rejected requests receive a
             503-style response); --deadline-us stamps every request and
             implies --shed-policy deadline unless one is given
             fleet flags put N backend servers behind an L4 load balancer
             (--dispatch picks round-robin, least-outstanding, or
             power-aware packing); --coordinator arms the cluster-level
             power coordinator that parks idle backends with load
             failure flags crash backends mid-run (--fail-backend is
             repeatable; stop refuses probes, slow multiplies service
             time, hang admits but never answers) and arm the LB health
             prober plus retransmission failover; health flags tune the
             prober's period and strike thresholds
  ncap sweep --app apache|memcached [--policies a,b,c] [--loads x,y,z]
             [--measure-ms N]
  ncap sla   --app apache|memcached
  ncap trace --out <dir> [run flags] [--window-us N]
             runs one experiment with structured event tracing and writes
             <dir>/trace.json (Perfetto/chrome://tracing) and
             <dir>/trace.csv (windowed metrics)
  ncap chaos [--seeds N] [--from K] [--threads T] [--shrink]
             [--scenario FILE] [--out DIR]
             [--datapath kernel|bypass|offload] [--poll-cores N]
             runs N deterministic fault scenarios (seeds K..K+N-1), each
             composing correlated failure domains (rack partitions,
             brownouts), backend crash/slow/hang events, flash-crowd load
             steps, and coordinator churn — judged by the invariant
             watchdog, conservation ledgers, and an end-of-run quiescence
             oracle; --shrink minimizes each failing seed to its smallest
             still-failing repro and (with --out) writes a replayable
             .scenario file; --scenario replays one such file instead;
             exits nonzero if any scenario fails; the generator draws a
             datapath per seed — --datapath forces one for the whole
             campaign (coercing incompatible drawn policies)
  ncap report [run flags] [--tail P] [--profile]
             runs one experiment and prints the per-stage latency
             attribution: mean/p50/p99 per stage, each stage's share of
             total latency, the tail-conditioned shares (requests at or
             above the --tail percentile of total latency, default 99),
             and a p50/p99 waterfall; --profile adds the simulator's
             wall-clock self-profile (host-dependent, attribution of
             where the simulator itself spends time)
";

/// Builds the [`ExperimentConfig`] for a set of `run`-style arguments.
fn run_config(a: &RunArgs) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(a.app, a.policy, a.load)
        .with_durations(
            SimDuration::from_ms(a.warmup_ms),
            SimDuration::from_ms(a.measure_ms),
        )
        .with_seed(a.seed)
        .with_datapath(a.datapath)
        .with_poll_cores(a.poll_cores);
    if a.poisson {
        cfg = cfg.with_poisson();
    }
    if a.queues > 1 {
        cfg = cfg.with_nic_queues(a.queues);
    }
    if a.per_core {
        cfg = cfg.with_per_core_boost();
    }
    if a.toe {
        cfg = cfg.with_toe(nicsim::ToeConfig::typical());
    }
    let mut faults = FaultConfig::none();
    faults.loss = a.loss;
    faults.corrupt = a.corrupt;
    faults.reorder = a.reorder;
    faults.jitter = SimDuration::from_us(a.jitter_us);
    faults.seed = a.fault_seed;
    if faults.impairs() {
        // Reordered frames are held back by a few switch transits so they
        // actually land behind later traffic.
        faults.reorder_delay = SimDuration::from_us(50);
        faults.retx = RetxConfig::standard();
        cfg = cfg.with_faults(faults);
    }
    if a.queue_cap.is_some() || a.shed_policy.is_some() || a.deadline_us.is_some() {
        let mut ov = OverloadConfig::server_defaults();
        if let Some(cap) = a.queue_cap {
            ov = ov.with_run_queue_cap(cap);
        }
        // A deadline without an explicit policy implies deadline-aware
        // shedding — the other policies never look at the stamp.
        ov = ov.with_policy(match a.shed_policy {
            Some(p) => p,
            None if a.deadline_us.is_some() => ShedPolicy::Deadline,
            None => ov.policy,
        });
        if let Some(us) = a.deadline_us {
            let d = SimDuration::from_us(us);
            ov = ov.with_default_deadline(d);
            cfg = cfg.with_deadline(d);
        }
        cfg = cfg.with_overload(ov);
    }
    if a.servers > 1 || a.coordinator || !a.fail_backends.is_empty() {
        let mut fleet = FleetConfig::new(a.servers, a.dispatch);
        if a.coordinator {
            // Nominal per-backend capacity is the app's knee load (§5);
            // the coordinator sizes the active set against it.
            fleet = fleet.with_coordinator(CoordinatorConfig::new(a.app.paper_loads()[2]));
        }
        if !a.fail_backends.is_empty() {
            let mut sched = FailureSchedule::none();
            for &(backend, at_ms, restart_ms) in &a.fail_backends {
                sched = sched.with_failure(FailureSpec {
                    backend,
                    at: SimTime::from_ms(at_ms),
                    mode: a.fail_mode,
                    restart_after: restart_ms.map(SimDuration::from_ms),
                });
            }
            fleet = fleet.with_faults(sched);
        }
        if a.health_interval_us.is_some() || a.health_eject.is_some() || a.health_rejoin.is_some() {
            let mut h = HealthConfig::standard();
            if let Some(us) = a.health_interval_us {
                h = h.with_interval(SimDuration::from_us(us));
            }
            if let Some(k) = a.health_eject {
                h = h.with_eject_after(k);
            }
            if let Some(k) = a.health_rejoin {
                h = h.with_rejoin_after(k);
            }
            fleet = fleet.with_health(h);
        }
        cfg = cfg.with_fleet(fleet);
    }
    cfg
}

/// Renders an ASCII p50/p99 waterfall of the per-stage attribution: one
/// row per stage that ever contributed, with a solid bar out to the
/// stage's p50 and a light bar on to its p99, all on a shared scale.
fn render_waterfall(b: &simstats::LatencyBreakdown) -> String {
    use std::fmt::Write;
    const WIDTH: f64 = 40.0;
    let max = b
        .stages
        .iter()
        .map(|s| s.hist.percentile(99.0))
        .max()
        .unwrap_or(0);
    let mut out = String::from("waterfall (\u{2588} to p50, \u{2591} on to p99):\n");
    if max == 0 {
        out.push_str("  (no attributed time)\n");
        return out;
    }
    for s in &b.stages {
        let p50 = s.hist.percentile(50.0);
        let p99 = s.hist.percentile(99.0);
        if p99 == 0 {
            continue;
        }
        let cols = |v: u64| ((v as f64 / max as f64) * WIDTH).ceil() as usize;
        let (c50, c99) = (cols(p50), cols(p99).max(cols(p50)));
        let bar = "\u{2588}".repeat(c50) + &"\u{2591}".repeat(c99 - c50);
        let _ = writeln!(
            out,
            "  {:<10} {:<41} p50 {:>8}  p99 {:>8}",
            s.name,
            bar,
            fmt_ns(p50),
            fmt_ns(p99)
        );
    }
    out
}

/// Executes a parsed command, printing to stdout. Returns the process
/// exit code.
#[must_use]
pub fn execute(cmd: Command) -> i32 {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            0
        }
        Command::Policies => {
            let mut t = Table::new(vec!["policy", "cpufreq", "cpuidle", "NCAP"]);
            for p in Policy::ALL {
                t.row(vec![
                    p.name().to_owned(),
                    if p.uses_ondemand() {
                        "ondemand"
                    } else {
                        "performance"
                    }
                    .to_owned(),
                    if p.uses_cstates() {
                        "menu"
                    } else {
                        "poll (disabled)"
                    }
                    .to_owned(),
                    match p {
                        Policy::NcapSw => "software",
                        Policy::NcapCons => "hardware, FCONS=5",
                        Policy::NcapAggr => "hardware, FCONS=1",
                        _ => "-",
                    }
                    .to_owned(),
                ]);
            }
            println!("{t}");
            0
        }
        Command::Run(a) => {
            let r = match try_run_experiment(&run_config(&a)) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("invalid configuration: {e}");
                    return 2;
                }
            };
            println!(
                "{} / {} / {} datapath @ {:.0} rps over {} ms:",
                a.app, a.policy, a.datapath, a.load, a.measure_ms
            );
            println!(
                "  latency  p50 {}  p90 {}  p95 {}  p99 {}  mean {:.1}us",
                fmt_ns(r.latency.p50),
                fmt_ns(r.latency.p90),
                fmt_ns(r.latency.p95),
                fmt_ns(r.latency.p99),
                r.latency.mean / 1e3
            );
            println!(
                "  energy   {:.2} J ({:.1} W average)",
                r.energy_j,
                r.avg_power_w()
            );
            if a.datapath.bypasses_kernel() {
                println!(
                    "  polling  {:.2} J burned on dedicated busy-poll cores",
                    r.poll_energy_j
                );
            }
            println!(
                "  traffic  {}/{} requests completed (goodput {:.3}), {} NCAP interrupts, {} drops",
                r.completed,
                r.offered,
                r.goodput(),
                r.wake_markers,
                r.rx_drops
            );
            if r.faults.issued_total > 0 {
                let f = &r.faults;
                println!(
                    "  faults   {} frames dropped in fabric ({} loss, {} corrupt), \
                     {} retransmits, {} requests lost, {} dups suppressed, {} replays",
                    f.injected_losses + f.injected_corruptions,
                    f.injected_losses,
                    f.injected_corruptions,
                    f.retransmits,
                    f.lost_requests,
                    f.dup_suppressed,
                    f.resp_replays
                );
            }
            println!(
                "  overload {} requests rejected, max queue depth {}",
                r.rejected, r.max_queue_depth
            );
            println!(
                "  watchdog {} checks, {} violations",
                r.watchdog_checks,
                r.invariant_violations.len()
            );
            for v in &r.invariant_violations {
                println!("    {v}");
            }
            if let Some(fleet) = &r.fleet {
                let energy: Vec<f64> = fleet.backends.iter().map(|b| b.energy_j).collect();
                let assigned: Vec<u64> = fleet.backends.iter().map(|b| b.assigned).collect();
                let agg = FleetAggregate::from_backends(&energy, &assigned);
                println!(
                    "  fleet    {} backends ({}), max share {:.2}, fairness {:.2}, \
                     {} parks / {} unparks ({:.3} J transitions)",
                    agg.backends,
                    fleet.dispatch,
                    agg.max_share,
                    agg.fairness,
                    fleet.parks,
                    fleet.unparks,
                    fleet.transition_energy_j
                );
                if fleet.health_probes > 0 || fleet.failovers > 0 {
                    println!(
                        "  health   {} probes ({} failed), {} ejections, {} rejoins, \
                         {} failovers",
                        fleet.health_probes,
                        fleet.probe_failures,
                        fleet.ejections,
                        fleet.rejoins,
                        fleet.failovers
                    );
                }
            }
            0
        }
        Command::Sweep(a) => {
            let configs: Vec<ExperimentConfig> = a
                .loads
                .iter()
                .flat_map(|&l| {
                    a.policies.iter().map(move |&p| {
                        ExperimentConfig::new(a.app, p, l).with_durations(
                            SimDuration::from_ms(100),
                            SimDuration::from_ms(a.measure_ms),
                        )
                    })
                })
                .collect();
            let results = run_experiments_parallel(&configs);
            let mut t = Table::new(vec![
                "load (rps)",
                "policy",
                "p95",
                "p99",
                "energy (J)",
                "goodput",
            ]);
            for r in &results {
                t.row(vec![
                    format!("{:.0}", r.load_rps),
                    r.policy.name().to_owned(),
                    fmt_ns(r.latency.p95),
                    fmt_ns(r.latency.p99),
                    format!("{:.2}", r.energy_j),
                    format!("{:.3}", r.goodput()),
                ]);
            }
            println!("{t}");
            0
        }
        Command::Trace(t) => {
            let a = &t.run;
            let cfg = run_config(a)
                .with_trace(TraceConfig::per_ms())
                .with_event_trace(
                    simtrace::TracerConfig::default().with_window_ns(t.window_us * 1_000),
                );
            let r = run_experiment(&cfg);
            let Some(data) = r.sim_trace else {
                eprintln!("internal error: traced run returned no trace data");
                return 1;
            };
            let horizon_ns = (a.warmup_ms + a.measure_ms) * 1_000_000;
            let dir = std::path::Path::new(&t.out);
            let json_path = dir.join("trace.json");
            let csv_path = dir.join("trace.csv");
            let written = std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(&json_path, data.to_chrome_json()))
                .and_then(|()| std::fs::write(&csv_path, data.to_csv(horizon_ns)));
            if let Err(e) = written {
                eprintln!("cannot write traces under {}: {e}", t.out);
                return 1;
            }
            let comps = data.components_with_spans();
            println!(
                "traced {} / {} @ {:.0} rps over {} ms (+{} ms warmup):",
                a.app, a.policy, a.load, a.measure_ms, a.warmup_ms
            );
            println!(
                "  events   {} recorded, {} dropped (ring capacity {})",
                data.events.len(),
                data.dropped,
                data.config.capacity
            );
            println!(
                "  spans    from {} components: {}",
                comps.len(),
                comps.join(", ")
            );
            println!(
                "  latency  p95 {}  p99 {}",
                fmt_ns(r.latency.p95),
                fmt_ns(r.latency.p99)
            );
            println!("  wrote    {}", json_path.display());
            println!("  wrote    {}", csv_path.display());
            0
        }
        Command::Report(rep) => {
            let a = &rep.run;
            let cfg = {
                let mut cfg = run_config(a).with_breakdown_tail(rep.tail);
                if rep.profile {
                    cfg = cfg.with_profile();
                }
                cfg
            };
            let r = match try_run_experiment(&cfg) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("invalid configuration: {e}");
                    return 2;
                }
            };
            let Some(b) = &r.breakdown else {
                eprintln!("internal error: report run returned no breakdown");
                return 1;
            };
            println!(
                "{} / {} @ {:.0} rps over {} ms — {} requests, mean {}, tail = p{:.0} (\u{2265} {}, {} requests):",
                a.app,
                a.policy,
                a.load,
                a.measure_ms,
                b.count,
                fmt_ns(b.total_mean as u64),
                b.tail_percentile,
                fmt_ns(b.tail_threshold_ns),
                b.tail_count
            );
            let mut t = Table::new(vec!["stage", "mean", "p50", "p99", "share", "tail share"]);
            for s in &b.stages {
                t.row(vec![
                    s.name.to_owned(),
                    fmt_ns(s.mean as u64),
                    fmt_ns(s.hist.percentile(50.0)),
                    fmt_ns(s.hist.percentile(99.0)),
                    format!("{:5.1}%", s.share * 100.0),
                    format!("{:5.1}%", s.tail_share * 100.0),
                ]);
            }
            println!("{t}");
            if let Some(dom) = b.tail_dominant() {
                println!(
                    "tail verdict: '{}' dominates above p{:.0} ({:.1}% of tail latency, vs {:.1}% overall)",
                    dom.name,
                    b.tail_percentile,
                    dom.tail_share * 100.0,
                    dom.share * 100.0
                );
            }
            println!("{}", render_waterfall(b));
            if let Some(p) = &r.self_profile {
                println!("simulator self-profile (wall clock, host-dependent):");
                print!("{}", p.render());
            }
            0
        }
        Command::Chaos(a) => {
            use cluster::chaos::{self, ChaosScenario};
            let threads = if a.threads == 0 {
                std::thread::available_parallelism().map_or(4, std::num::NonZero::get)
            } else {
                a.threads
            };
            let verdicts = if let Some(path) = &a.scenario {
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot read scenario '{path}': {e}");
                        return 2;
                    }
                };
                let sc = match ChaosScenario::from_file_str(&text) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("invalid scenario '{path}': {e}");
                        return 2;
                    }
                };
                println!("replaying scenario {path} (seed {})", sc.seed);
                chaos::run_scenarios(std::slice::from_ref(&sc), 1)
            } else {
                let mut scenarios: Vec<ChaosScenario> = (a.from..a.from + a.seeds)
                    .map(ChaosScenario::generate)
                    .collect();
                if a.datapath.is_some() || a.poll_cores.is_some() {
                    for sc in &mut scenarios {
                        if let Some(dp) = a.datapath {
                            sc.datapath = dp;
                        }
                        if let Some(n) = a.poll_cores {
                            sc.poll_cores = n;
                        }
                        // A forced datapath may contradict the drawn
                        // policy; coerce to a compatible pool member so
                        // every scenario still validates.
                        match sc.datapath {
                            Datapath::Bypass if sc.policy.is_ncap() => {
                                sc.policy = Policy::OndIdle;
                            }
                            Datapath::Offload if !sc.policy.uses_ncap_hardware() => {
                                sc.policy = Policy::NcapCons;
                            }
                            _ => {}
                        }
                    }
                }
                println!(
                    "chaos campaign: seeds {}..={} on {threads} threads",
                    a.from,
                    a.from + a.seeds - 1
                );
                chaos::run_scenarios(&scenarios, threads)
            };
            let mut t = Table::new(vec![
                "seed", "backends", "load", "datapath", "crash", "domain", "flash", "complete",
                "failover", "verdict",
            ]);
            for v in &verdicts {
                let s = &v.scenario;
                t.row(vec![
                    s.seed.to_string(),
                    s.backends.to_string(),
                    format!("{:.0}", s.load_rps),
                    s.datapath.name().to_owned(),
                    s.crashes.len().to_string(),
                    s.domains.len().to_string(),
                    if s.flash_crowd.is_some() { "yes" } else { "-" }.to_owned(),
                    v.completed.to_string(),
                    v.failovers.to_string(),
                    if v.passed() { "ok" } else { "FAIL" }.to_owned(),
                ]);
            }
            println!("{t}");
            let failing: Vec<_> = verdicts.iter().filter(|v| !v.passed()).collect();
            for v in &failing {
                for f in &v.failures {
                    println!("  seed {}: {f}", v.scenario.seed);
                }
            }
            println!(
                "{} scenarios, {} with fault events, {} failed",
                verdicts.len(),
                verdicts
                    .iter()
                    .filter(|v| v.scenario.fault_events() > 0)
                    .count(),
                failing.len()
            );
            if a.shrink {
                for v in &failing {
                    let (shrunk, runs) = chaos::shrink(&v.scenario);
                    println!(
                        "shrunk seed {}: {} -> {} fault events in {runs} runs",
                        v.scenario.seed,
                        v.scenario.fault_events(),
                        shrunk.fault_events()
                    );
                    if let Some(dir) = &a.out {
                        let path = std::path::Path::new(dir)
                            .join(format!("chaos-seed-{}.scenario", v.scenario.seed));
                        let written = std::fs::create_dir_all(dir)
                            .and_then(|()| std::fs::write(&path, shrunk.to_file_string()));
                        match written {
                            Ok(()) => println!("  wrote {}", path.display()),
                            Err(e) => eprintln!("  cannot write {}: {e}", path.display()),
                        }
                    } else {
                        print!("{}", shrunk.to_file_string());
                    }
                }
            }
            i32::from(!failing.is_empty())
        }
        Command::Sla { app } => {
            let loads: Vec<f64> = match app {
                AppKind::Apache => vec![12e3, 24e3, 36e3, 45e3, 54e3, 60e3, 66e3, 72e3],
                AppKind::Memcached => vec![20e3, 40e3, 60e3, 90e3, 110e3, 127e3, 138e3, 150e3],
            };
            let configs: Vec<ExperimentConfig> = loads
                .iter()
                .map(|&l| {
                    ExperimentConfig::new(app, Policy::Perf, l)
                        .with_durations(SimDuration::from_ms(100), SimDuration::from_ms(300))
                })
                .collect();
            let results = run_experiments_parallel(&configs);
            let base = results[0].latency.p95.max(1);
            let mut t = Table::new(vec!["load (rps)", "p95", "note"]);
            let mut knee = (loads[0], results[0].latency.p95);
            for r in &results {
                let within = r.latency.p95 as f64 <= base as f64 * 2.5;
                if within && r.load_rps >= knee.0 {
                    knee = (r.load_rps, r.latency.p95);
                }
                t.row(vec![
                    format!("{:.0}", r.load_rps),
                    fmt_ns(r.latency.p95),
                    if within { "" } else { "past the knee" }.to_owned(),
                ]);
            }
            println!("{t}");
            println!(
                "SLA for {app}: {} (p95 at the {:.0} rps inflection)",
                fmt_ns(knee.1),
                knee.0
            );
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_help_variants() {
        assert_eq!(parse([]).unwrap(), Command::Help);
        assert_eq!(parse(["help"]).unwrap(), Command::Help);
        assert_eq!(parse(["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn parses_run_with_flags() {
        let cmd = parse([
            "run",
            "--app",
            "apache",
            "--policy",
            "ncap.aggr",
            "--load",
            "24000",
            "--poisson",
            "--queues",
            "4",
            "--per-core",
            "--toe",
            "--seed",
            "7",
        ])
        .unwrap();
        let Command::Run(a) = cmd else {
            panic!("expected run");
        };
        assert_eq!(a.app, AppKind::Apache);
        assert_eq!(a.policy, Policy::NcapAggr);
        assert_eq!(a.load, 24_000.0);
        assert!(a.poisson && a.per_core && a.toe);
        assert_eq!(a.queues, 4);
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn parses_datapath_flags() {
        let Command::Run(a) = parse([
            "run",
            "--app",
            "memcached",
            "--policy",
            "perf.idle",
            "--load",
            "30000",
            "--datapath",
            "bypass",
            "--poll-cores",
            "2",
        ])
        .unwrap() else {
            panic!("expected run");
        };
        assert_eq!(a.datapath, Datapath::Bypass);
        assert_eq!(a.poll_cores, 2);
        // Defaults keep the paper's kernel stack.
        let d = default_run_args();
        assert_eq!(d.datapath, Datapath::Kernel);
        assert_eq!(d.poll_cores, 1);
    }

    #[test]
    fn rejects_unknown_datapath() {
        let err = parse(["run", "--datapath", "xdp"]).unwrap_err();
        assert!(err.0.contains("kernel|bypass|offload"), "{err}");
    }

    #[test]
    fn rejects_bypass_with_ncap_policy() {
        let err = parse(["run", "--policy", "ncap.cons", "--datapath", "bypass"]).unwrap_err();
        assert!(err.0.contains("offload"), "{err}");
    }

    #[test]
    fn rejects_bad_poll_core_counts() {
        for n in ["0", "4", "9"] {
            let err = parse([
                "run",
                "--policy",
                "perf",
                "--datapath",
                "bypass",
                "--poll-cores",
                n,
            ])
            .unwrap_err();
            assert!(err.0.contains("1..4"), "{err}");
        }
        // Flag order must not matter: datapath after poll-cores.
        assert!(parse([
            "run",
            "--poll-cores",
            "0",
            "--datapath",
            "bypass",
            "--policy",
            "perf"
        ])
        .is_err());
        // On the kernel datapath the knob is inert, not an error.
        assert!(parse(["run", "--poll-cores", "0"]).is_ok());
    }

    #[test]
    fn rejects_offload_without_ncap_hardware() {
        let err = parse(["run", "--policy", "ond.idle", "--datapath", "offload"]).unwrap_err();
        assert!(err.0.contains("ncap.cons|ncap.aggr"), "{err}");
        // The default policy (ncap.cons) offloads fine.
        assert!(parse(["run", "--datapath", "offload"]).is_ok());
    }

    #[test]
    fn datapath_flags_reach_trace_and_report() {
        let Command::Trace(t) = parse([
            "trace",
            "--out",
            "d",
            "--datapath",
            "bypass",
            "--policy",
            "perf",
        ])
        .unwrap() else {
            panic!("expected trace");
        };
        assert_eq!(t.run.datapath, Datapath::Bypass);
        let Command::Report(r) = parse(["report", "--datapath", "offload"]).unwrap() else {
            panic!("expected report");
        };
        assert_eq!(r.run.datapath, Datapath::Offload);
    }

    #[test]
    fn parses_sweep_lists() {
        let cmd = parse([
            "sweep",
            "--app",
            "memcached",
            "--policies",
            "perf,ncap.cons",
            "--loads",
            "10000,20000",
        ])
        .unwrap();
        let Command::Sweep(a) = cmd else {
            panic!("expected sweep");
        };
        assert_eq!(a.policies, vec![Policy::Perf, Policy::NcapCons]);
        assert_eq!(a.loads, vec![10_000.0, 20_000.0]);
    }

    #[test]
    fn sweep_defaults_to_all_policies_and_paper_loads() {
        let Command::Sweep(a) = parse(["sweep", "--app", "apache"]).unwrap() else {
            panic!("expected sweep");
        };
        assert_eq!(a.policies.len(), 7);
        assert_eq!(a.loads, AppKind::Apache.paper_loads().to_vec());
    }

    #[test]
    fn parses_fault_flags() {
        let Command::Run(a) = parse([
            "run",
            "--app",
            "memcached",
            "--policy",
            "perf",
            "--load",
            "30000",
            "--loss",
            "0.01",
            "--corrupt",
            "0.002",
            "--reorder",
            "0.005",
            "--jitter-us",
            "20",
            "--fault-seed",
            "99",
        ])
        .unwrap() else {
            panic!("expected run");
        };
        assert_eq!(a.loss, 0.01);
        assert_eq!(a.corrupt, 0.002);
        assert_eq!(a.reorder, 0.005);
        assert_eq!(a.jitter_us, 20);
        assert_eq!(a.fault_seed, 99);
        // Defaults keep the fault subsystem fully off.
        let d = default_run_args();
        assert_eq!(d.loss, 0.0);
        assert_eq!(d.fault_seed, DEFAULT_FAULT_SEED);
    }

    #[test]
    fn parses_overload_flags() {
        let Command::Run(a) = parse([
            "run",
            "--app",
            "memcached",
            "--policy",
            "perf",
            "--load",
            "30000",
            "--queue-cap",
            "64",
            "--shed-policy",
            "codel",
            "--deadline-us",
            "500",
        ])
        .unwrap() else {
            panic!("expected run");
        };
        assert_eq!(a.queue_cap, Some(64));
        assert_eq!(a.shed_policy, Some(ShedPolicy::CoDel));
        assert_eq!(a.deadline_us, Some(500));
        // Defaults keep admission control fully off.
        let d = default_run_args();
        assert_eq!(d.queue_cap, None);
        assert_eq!(d.shed_policy, None);
        assert_eq!(d.deadline_us, None);
    }

    #[test]
    fn deadline_flag_implies_deadline_policy() {
        let Command::Run(a) = parse(["run", "--load", "30000", "--deadline-us", "2000"]).unwrap()
        else {
            panic!("expected run");
        };
        let cfg = run_config(&a);
        assert_eq!(cfg.overload.policy, ShedPolicy::Deadline);
        assert_eq!(
            cfg.overload.default_deadline,
            Some(SimDuration::from_us(2_000))
        );
        assert_eq!(cfg.deadline, Some(SimDuration::from_us(2_000)));
        // An explicit policy wins over the implication.
        let Command::Run(b) = parse([
            "run",
            "--load",
            "30000",
            "--deadline-us",
            "2000",
            "--shed-policy",
            "drop-tail",
        ])
        .unwrap() else {
            panic!("expected run");
        };
        assert_eq!(run_config(&b).overload.policy, ShedPolicy::DropTail);
    }

    #[test]
    fn parses_fleet_flags() {
        let Command::Run(a) = parse([
            "run",
            "--app",
            "memcached",
            "--policy",
            "ond.idle",
            "--load",
            "40000",
            "--servers",
            "4",
            "--dispatch",
            "pack",
            "--coordinator",
        ])
        .unwrap() else {
            panic!("expected run");
        };
        assert_eq!(a.servers, 4);
        assert_eq!(a.dispatch, DispatchPolicy::Packing);
        assert!(a.coordinator);
        let cfg = run_config(&a);
        let fleet = cfg.fleet.expect("fleet configured");
        assert_eq!(fleet.backends, 4);
        assert_eq!(fleet.dispatch, DispatchPolicy::Packing);
        assert!(fleet.coordinator.is_some());
        // Defaults keep the single-server topology.
        let d = default_run_args();
        assert_eq!(d.servers, 1);
        assert_eq!(d.dispatch, DispatchPolicy::RoundRobin);
        assert!(!d.coordinator);
        assert!(run_config(&d).fleet.is_none());
    }

    #[test]
    fn parses_failure_flags() {
        let Command::Run(a) = parse([
            "run",
            "--load",
            "40000",
            "--servers",
            "4",
            "--fail-backend",
            "1@50",
            "--fail-backend",
            "2@60:30",
            "--fail-mode",
            "hang",
            "--health-interval",
            "500",
            "--health-eject",
            "2",
            "--health-rejoin",
            "4",
        ])
        .unwrap() else {
            panic!("expected run");
        };
        assert_eq!(a.fail_backends, vec![(1, 50, None), (2, 60, Some(30))]);
        assert_eq!(a.fail_mode, FailureMode::Hang);
        assert_eq!(a.health_interval_us, Some(500));
        assert_eq!(a.health_eject, Some(2));
        assert_eq!(a.health_rejoin, Some(4));
        let cfg = run_config(&a);
        let fleet = cfg.fleet.expect("fleet configured");
        assert_eq!(fleet.faults.specs.len(), 2);
        assert_eq!(fleet.faults.specs[0].at, SimTime::from_ms(50));
        assert_eq!(
            fleet.faults.specs[1].restart_after,
            Some(SimDuration::from_ms(30))
        );
        assert_eq!(fleet.faults.specs[1].mode, FailureMode::Hang);
        let h = fleet.health.expect("health configured");
        assert_eq!(h.interval, SimDuration::from_us(500));
        assert_eq!(h.eject_after, 2);
        assert_eq!(h.rejoin_after, 4);
        // A failure schedule alone implies the fleet topology.
        let Command::Run(solo) =
            parse(["run", "--load", "20000", "--fail-backend", "0@10"]).unwrap()
        else {
            panic!("expected run");
        };
        assert!(run_config(&solo).fleet.is_some());
        // Defaults keep the failure layer fully off.
        let d = default_run_args();
        assert!(d.fail_backends.is_empty());
        assert_eq!(d.fail_mode, FailureMode::Stop);
        assert!(d.health_interval_us.is_none());
    }

    #[test]
    fn fail_backend_index_checked_against_servers() {
        // Out of range fails at parse time, not at runtime.
        let err = parse([
            "run",
            "--load",
            "1000",
            "--servers",
            "2",
            "--fail-backend",
            "2@10",
        ])
        .unwrap_err();
        assert!(err.0.contains("out of range"), "{err}");
        // The check runs after the whole line is parsed, so flag order
        // does not matter.
        assert!(parse([
            "run",
            "--load",
            "1000",
            "--fail-backend",
            "3@10",
            "--servers",
            "4"
        ])
        .is_ok());
        // An in-range index against the default single server is fine.
        assert!(parse(["run", "--load", "1000", "--fail-backend", "0@10"]).is_ok());
        assert!(parse(["run", "--load", "1000", "--fail-backend", "1@10"]).is_err());
        // trace and report share the same cross-flag check.
        assert!(parse([
            "trace",
            "--out",
            "x",
            "--servers",
            "2",
            "--fail-backend",
            "5@10"
        ])
        .is_err());
        assert!(parse(["report", "--servers", "2", "--fail-backend", "5@10"]).is_err());
    }

    #[test]
    fn parses_chaos_flags() {
        let Command::Chaos(a) = parse(["chaos"]).unwrap() else {
            panic!("expected chaos");
        };
        assert_eq!(a.seeds, 40);
        assert_eq!(a.from, 1);
        assert_eq!(a.threads, 0);
        assert!(!a.shrink);
        assert!(a.scenario.is_none() && a.out.is_none());
        let Command::Chaos(a) = parse([
            "chaos",
            "--seeds",
            "200",
            "--from",
            "7",
            "--threads",
            "2",
            "--shrink",
            "--out",
            "repros",
        ])
        .unwrap() else {
            panic!("expected chaos");
        };
        assert_eq!((a.seeds, a.from, a.threads), (200, 7, 2));
        assert!(a.shrink);
        assert_eq!(a.out.as_deref(), Some("repros"));
        let Command::Chaos(a) = parse(["chaos", "--scenario", "repro.scenario"]).unwrap() else {
            panic!("expected chaos");
        };
        assert_eq!(a.scenario.as_deref(), Some("repro.scenario"));
        assert!(parse(["chaos", "--seeds", "0"]).is_err());
        assert!(parse(["chaos", "--seeds", "many"]).is_err());
        assert!(parse(["chaos", "--frob"]).is_err());
        let Command::Chaos(a) =
            parse(["chaos", "--datapath", "bypass", "--poll-cores", "2"]).unwrap()
        else {
            panic!("expected chaos");
        };
        assert_eq!(a.datapath, Some(Datapath::Bypass));
        assert_eq!(a.poll_cores, Some(2));
        assert!(parse(["chaos", "--datapath", "warp"]).is_err());
        assert!(parse(["chaos", "--poll-cores", "0"]).is_err());
        assert!(parse(["chaos", "--poll-cores", "4"]).is_err());
    }

    #[test]
    fn rejects_unknown_inputs() {
        assert!(parse(["frobnicate"]).is_err());
        assert!(parse(["run", "--app", "nginx"]).is_err());
        assert!(parse(["run", "--policy", "turbo"]).is_err());
        assert!(parse(["run", "--load"]).is_err());
        assert!(parse(["run", "--load", "-5"]).is_err());
        assert!(parse(["run", "--loss", "1.5"]).is_err());
        assert!(parse(["run", "--loss", "-0.1"]).is_err());
        assert!(parse(["run", "--corrupt", "nan"]).is_err());
        assert!(parse(["run", "--queue-cap", "lots"]).is_err());
        assert!(parse(["run", "--shed-policy", "yolo"]).is_err());
        assert!(parse(["run", "--deadline-us", "-3"]).is_err());
        assert!(parse(["run", "--servers", "0"]).is_err());
        assert!(parse(["run", "--servers", "many"]).is_err());
        assert!(parse(["run", "--dispatch", "random"]).is_err());
        assert!(parse(["run", "--fail-backend", "1"]).is_err());
        assert!(parse(["run", "--fail-backend", "one@50"]).is_err());
        assert!(parse(["run", "--fail-backend", "1@50:"]).is_err());
        assert!(parse(["run", "--fail-mode", "explode"]).is_err());
        assert!(parse(["run", "--health-interval", "0"]).is_err());
        assert!(parse(["run", "--health-eject", "soon"]).is_err());
        assert!(parse(["sla"]).is_err());
        assert!(parse(["trace"]).is_err(), "trace requires --out");
        assert!(parse(["trace", "--out", "x", "--window-us", "0"]).is_err());
        assert!(parse(["trace", "--out", "x", "--frob"]).is_err());
    }

    #[test]
    fn parses_trace_with_run_flags() {
        let cmd = parse([
            "trace",
            "--out",
            "traces/demo",
            "--app",
            "memcached",
            "--policy",
            "ncap.cons",
            "--load",
            "35000",
            "--seed",
            "3",
            "--window-us",
            "500",
        ])
        .unwrap();
        let Command::Trace(t) = cmd else {
            panic!("expected trace");
        };
        assert_eq!(t.out, "traces/demo");
        assert_eq!(t.window_us, 500);
        assert_eq!(t.run.app, AppKind::Memcached);
        assert_eq!(t.run.policy, Policy::NcapCons);
        assert_eq!(t.run.seed, 3);
        // trace defaults to a short window, overridable with run flags.
        assert_eq!(t.run.warmup_ms, 10);
        assert_eq!(t.run.measure_ms, 40);
    }

    #[test]
    fn tiny_trace_executes_and_writes_exports() {
        let dir = std::env::temp_dir().join(format!("ncap-trace-test-{}", std::process::id()));
        let Command::Trace(mut t) = parse([
            "trace",
            "--out",
            dir.to_str().unwrap(),
            "--app",
            "memcached",
            "--policy",
            "ncap.cons",
            "--load",
            "30000",
        ])
        .unwrap() else {
            panic!("expected trace");
        };
        t.run.warmup_ms = 5;
        t.run.measure_ms = 15;
        assert_eq!(execute(Command::Trace(t)), 0);
        let json = std::fs::read_to_string(dir.join("trace.json")).unwrap();
        assert!(json.starts_with('{') && json.contains("\"traceEvents\""));
        let csv = std::fs::read_to_string(dir.join("trace.csv")).unwrap();
        assert!(csv.starts_with("time_ns,"));
        assert!(csv.lines().next().unwrap().contains("cluster.bw_rx"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parses_report_with_run_flags() {
        let Command::Report(r) = parse([
            "report",
            "--app",
            "memcached",
            "--policy",
            "ond.idle",
            "--load",
            "20000",
            "--tail",
            "95",
            "--profile",
        ])
        .unwrap() else {
            panic!("expected report");
        };
        assert_eq!(r.run.app, AppKind::Memcached);
        assert_eq!(r.run.policy, Policy::OndIdle);
        assert_eq!(r.tail, 95.0);
        assert!(r.profile);
        // Defaults: p99 tail, no self-profile.
        let Command::Report(d) = parse(["report"]).unwrap() else {
            panic!("expected report");
        };
        assert_eq!(d.tail, 99.0);
        assert!(!d.profile);
        assert!(parse(["report", "--tail", "101"]).is_err());
        assert!(parse(["report", "--tail", "wat"]).is_err());
        assert!(parse(["report", "--frob"]).is_err());
    }

    #[test]
    fn tiny_report_executes() {
        let Command::Report(mut r) = parse([
            "report",
            "--app",
            "memcached",
            "--policy",
            "ond.idle",
            "--load",
            "20000",
            "--profile",
        ])
        .unwrap() else {
            panic!("expected report");
        };
        r.run.warmup_ms = 5;
        r.run.measure_ms = 15;
        assert_eq!(execute(Command::Report(r)), 0);
    }

    #[test]
    fn waterfall_renders_contributing_stages() {
        let mut c = simstats::BreakdownCollector::new();
        let mut v = [0u32; simstats::STAGE_COUNT];
        v[simstats::breakdown::stage::CPU] = 10_000;
        v[simstats::breakdown::stage::NET_IN] = 2_000;
        c.record(v, 12_000);
        let b = c.finalize(99.0);
        let w = render_waterfall(&b);
        assert!(w.contains("cpu"));
        assert!(w.contains("net_in"));
        assert!(!w.contains("wake"), "zero stages are omitted:\n{w}");
    }

    #[test]
    fn policies_and_help_execute() {
        assert_eq!(execute(Command::Policies), 0);
        assert_eq!(execute(Command::Help), 0);
    }

    #[test]
    fn tiny_run_executes() {
        let Command::Run(mut a) = parse([
            "run",
            "--app",
            "memcached",
            "--policy",
            "perf",
            "--load",
            "20000",
        ])
        .unwrap() else {
            panic!("expected run");
        };
        a.measure_ms = 30;
        a.warmup_ms = 10;
        assert_eq!(execute(Command::Run(a)), 0);
    }

    #[test]
    fn tiny_overloaded_run_executes() {
        let Command::Run(mut a) = parse([
            "run",
            "--app",
            "memcached",
            "--policy",
            "perf",
            "--load",
            "150000",
            "--queue-cap",
            "4",
            "--shed-policy",
            "drop-tail",
        ])
        .unwrap() else {
            panic!("expected run");
        };
        a.measure_ms = 20;
        a.warmup_ms = 5;
        assert_eq!(execute(Command::Run(a)), 0);
    }

    #[test]
    fn tiny_fleet_run_executes() {
        let Command::Run(mut a) = parse([
            "run",
            "--app",
            "memcached",
            "--policy",
            "ond.idle",
            "--load",
            "30000",
            "--servers",
            "3",
            "--dispatch",
            "jsq",
            "--coordinator",
        ])
        .unwrap() else {
            panic!("expected run");
        };
        a.measure_ms = 20;
        a.warmup_ms = 5;
        assert_eq!(execute(Command::Run(a)), 0);
    }

    #[test]
    fn tiny_failover_run_executes() {
        let Command::Run(mut a) = parse([
            "run",
            "--app",
            "memcached",
            "--policy",
            "perf",
            "--load",
            "30000",
            "--servers",
            "3",
            "--dispatch",
            "jsq",
            "--fail-backend",
            "1@10",
        ])
        .unwrap() else {
            panic!("expected run");
        };
        a.measure_ms = 20;
        a.warmup_ms = 5;
        assert_eq!(execute(Command::Run(a)), 0);
    }

    #[test]
    fn tiny_lossy_run_executes() {
        let Command::Run(mut a) = parse([
            "run",
            "--app",
            "memcached",
            "--policy",
            "perf",
            "--load",
            "20000",
            "--loss",
            "0.01",
            "--fault-seed",
            "7",
        ])
        .unwrap() else {
            panic!("expected run");
        };
        a.measure_ms = 20;
        a.warmup_ms = 5;
        assert_eq!(execute(Command::Run(a)), 0);
    }
}
