//! The `ncap` command-line tool. See [`ncap_cli::USAGE`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
    let code = match ncap_cli::parse(refs) {
        Ok(cmd) => ncap_cli::execute(cmd),
        Err(e) => {
            eprintln!("error: {e}\n\n{}", ncap_cli::USAGE);
            2
        }
    };
    std::process::exit(code);
}
