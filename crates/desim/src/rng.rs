//! A tiny deterministic RNG for the whole simulator.
//!
//! [`SplitMix64`] keeps `desim` — and every layer above it — dependency
//! free: workload generation (burst jitter, key/document choice, service
//! demand, arrival processes) draws from this generator too, so the
//! repository builds with no registry access. SplitMix64 is the standard
//! seeding generator from Steele et al., "Fast Splittable Pseudorandom
//! Number Generators" (OOPSLA 2014): full 2^64 period, excellent
//! avalanche behaviour, trivially reproducible.
//!
//! Beyond uniform integers, the type carries the small set of
//! distribution helpers workload models need: uniform floats over a
//! range, exponential and normal/log-normal variates, Fisher–Yates
//! shuffling and weighted choice.

/// A SplitMix64 pseudorandom generator.
///
/// # Example
///
/// ```
/// use desim::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of entropy.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift mapping; bias is negligible for simulator jitter.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range");
        lo + self.next_below(hi - lo + 1)
    }

    /// Derives an independent child generator (for per-component streams).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn next_f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo <= hi && lo.is_finite() && hi.is_finite(),
            "invalid range"
        );
        lo + self.next_f64() * (hi - lo)
    }

    /// Exponentially distributed variate with the given mean (`1/λ`).
    ///
    /// Inter-arrival gaps of a Poisson process with rate `1/mean`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive.
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "mean must be positive");
        // 1 - next_f64() is in (0, 1]: ln never sees zero.
        -(1.0 - self.next_f64()).ln() * mean
    }

    /// Normally distributed variate (Box–Muller; one variate per call so
    /// the stream stays a pure function of the state).
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn next_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "std_dev must be non-negative");
        let u1 = 1.0 - self.next_f64(); // (0, 1]
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Log-normally distributed variate: `exp(N(mu, sigma))` — heavy-tailed
    /// service demands and flow sizes.
    pub fn next_log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.next_normal(mu, sigma).exp()
    }

    /// Fisher–Yates shuffle, in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.next_below(items.len() as u64) as usize])
        }
    }

    /// The index of a weight drawn proportionally to its value.
    ///
    /// Zero-weight entries are never chosen.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, any weight is negative or non-finite,
    /// or all weights are zero.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f64 = weights
            .iter()
            .inspect(|w| assert!(w.is_finite() && **w >= 0.0, "invalid weight"))
            .sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        // Floating-point tail: fall back to the last nonzero weight.
        weights
            .iter()
            .rposition(|&w| w > 0.0)
            .expect("total > 0 implies a nonzero weight")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = SplitMix64::new(4);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.next_range(2, 4);
            assert!((2..=4).contains(&v));
            saw_lo |= v == 2;
            saw_hi |= v == 4;
        }
        assert!(saw_lo && saw_hi, "range endpoints should both occur");
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = SplitMix64::new(5);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut r = SplitMix64::new(11);
        for _ in 0..10_000 {
            let x = r.next_f64_in(0.95, 1.05);
            assert!((0.95..1.05).contains(&x));
        }
        assert_eq!(r.next_f64_in(3.0, 3.0), 3.0);
    }

    #[test]
    fn exponential_has_the_requested_mean() {
        let mut r = SplitMix64::new(12);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.next_exp(300.0)).sum();
        let mean = sum / f64::from(n);
        assert!((285.0..315.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = SplitMix64::new(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.next_normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((9.95..10.05).contains(&mean), "mean {mean}");
        assert!((3.8..4.2).contains(&var), "var {var}");
    }

    #[test]
    fn log_normal_is_positive_and_skewed() {
        let mut r = SplitMix64::new(14);
        let xs: Vec<f64> = (0..50_000).map(|_| r.next_log_normal(0.0, 1.0)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let median_ref = 1.0; // e^0
        assert!(mean > median_ref, "log-normal mean exceeds median");
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b = a.clone();
        SplitMix64::new(15).shuffle(&mut a);
        SplitMix64::new(15).shuffle(&mut b);
        assert_eq!(a, b, "equal seeds shuffle equally");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(a, sorted, "a 100-element shuffle virtually never sorts");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = SplitMix64::new(16);
        assert_eq!(r.choose::<u8>(&[]), None);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            seen[*r.choose(&items).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn weighted_choice_tracks_weights() {
        let mut r = SplitMix64::new(17);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0u32; 3];
        let n = 40_000;
        for _ in 0..n {
            counts[r.choose_weighted(&weights)] += 1;
        }
        assert_eq!(counts[0], 0, "zero weight must never win");
        let frac2 = f64::from(counts[2]) / f64::from(n);
        assert!((0.72..0.78).contains(&frac2), "weight-3 fraction {frac2}");
    }

    #[test]
    #[should_panic(expected = "weights must not all be zero")]
    fn all_zero_weights_panic() {
        SplitMix64::new(0).choose_weighted(&[0.0, 0.0]);
    }
}
