//! A tiny deterministic RNG for simulator-internal jitter.
//!
//! [`SplitMix64`] keeps `desim` dependency-free; workload generation in
//! higher layers uses seeded `rand` RNGs instead. SplitMix64 is the
//! standard seeding generator from Steele et al., "Fast Splittable
//! Pseudorandom Number Generators" (OOPSLA 2014): full 2^64 period,
//! excellent avalanche behaviour, trivially reproducible.

/// A SplitMix64 pseudorandom generator.
///
/// # Example
///
/// ```
/// use desim::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of entropy.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift mapping; bias is negligible for simulator jitter.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range");
        lo + self.next_below(hi - lo + 1)
    }

    /// Derives an independent child generator (for per-component streams).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = SplitMix64::new(4);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.next_range(2, 4);
            assert!((2..=4).contains(&v));
            saw_lo |= v == 2;
            saw_hi |= v == 4;
        }
        assert!(saw_lo && saw_hi, "range endpoints should both occur");
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = SplitMix64::new(5);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
