//! The time-ordered event queue at the heart of the simulator.
//!
//! [`EventQueue`] is a priority queue keyed by `(SimTime, sequence)`. The
//! sequence number is a monotonically increasing insertion counter, so two
//! events scheduled for the same instant are delivered in scheduling order.
//! This tie-break is what makes whole-simulation runs bit-reproducible.
//!
//! Two interchangeable backends implement that contract (see
//! [`QueueBackend`]):
//!
//! * **Calendar** (the default): an array of time-bucketed lanes covering a
//!   sliding "year" of simulated time, giving O(1) amortized push/pop for
//!   the near horizon, plus an overflow ladder (a small binary heap) for
//!   far-future events. The lane array resizes and the bucket width
//!   re-derives from the observed event spread as occupancy drifts.
//! * **BinaryHeap**: the original `std::collections::BinaryHeap` min-heap.
//!   It is kept verbatim as the differential-test oracle
//!   (`crates/desim/tests/differential.rs`) and as the benchmark baseline
//!   (`crates/bench/benches/sim_throughput.rs`).
//!
//! Both backends deliver the exact same `(time, seq)` stream for the same
//! sequence of operations — the calendar structure is a pure speed change,
//! proven equivalent by the differential tests, never assumed.
//!
//! Counters obey the conservation identity
//! `total_pushed == total_popped + total_cleared + len` at every instant.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which data structure backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueBackend {
    /// Time-bucketed calendar lanes with a far-future overflow ladder.
    #[default]
    Calendar,
    /// The reference `std::collections::BinaryHeap` min-heap (the
    /// pre-calendar implementation): differential oracle and benchmark
    /// baseline.
    BinaryHeap,
}

impl QueueBackend {
    /// Short stable name, used in bench output and recorded JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            QueueBackend::Calendar => "calendar",
            QueueBackend::BinaryHeap => "binaryheap",
        }
    }
}

/// A scheduled entry. The derived comparisons below are *reversed* so a
/// `std::collections::BinaryHeap<Entry<E>>` acts as a min-heap (heap
/// backend); the calendar backend compares keys directly via
/// [`entry_lt`].
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the earliest (time, seq) is the heap maximum.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Direct min-order key comparison for the calendar's manual heaps.
#[inline]
fn entry_lt<E>(a: &Entry<E>, b: &Entry<E>) -> bool {
    (a.time, a.seq) < (b.time, b.seq)
}

/// Index of the lane's `(time, seq)` minimum. Lanes are *unsorted*: a
/// push is a plain append and a pop is this linear scan plus a
/// `swap_remove`. Resize keeps lanes down to a handful of events, where
/// a branch-predictable contiguous scan beats a binary heap's pointer
/// chasing; a same-instant flood concentrating one lane degrades to
/// O(lane) per pop but stays correct (the scan keeps the first —
/// lowest-`seq` — minimum).
#[inline]
fn lane_min_idx<E>(lane: &[Entry<E>]) -> Option<usize> {
    let mut it = lane.iter().enumerate();
    let (_, first) = it.next()?;
    let mut best = 0;
    let mut best_key = (first.time, first.seq);
    for (i, e) in it {
        let key = (e.time, e.seq);
        if key < best_key {
            best = i;
            best_key = key;
        }
    }
    Some(best)
}

/// Removes and returns the lane's minimum plus the *runner-up's* time
/// (the lane's new minimum after removal, `None` when the lane empties).
/// One scan serves both the pop and the `min_time` cache refresh: while
/// the cursor lane stays non-empty its minimum IS the queue minimum —
/// every other lane covers a strictly later day and the overflow ladder
/// sits past the year end.
#[inline]
fn lane_take_min<E>(lane: &mut Vec<Entry<E>>) -> Option<(Entry<E>, Option<SimTime>)> {
    let mut it = lane.iter().enumerate();
    let (_, first) = it.next()?;
    let mut best = 0;
    let mut best_key = (first.time, first.seq);
    let mut next_time: Option<SimTime> = None;
    for (i, e) in it {
        let key = (e.time, e.seq);
        if key < best_key {
            next_time = Some(best_key.0);
            best = i;
            best_key = key;
        } else if next_time.is_none_or(|t| key.0 < t) {
            next_time = Some(key.0);
        }
    }
    Some((lane.swap_remove(best), next_time))
}

/// Pushes onto a `Vec`-backed binary min-heap ordered by `(time, seq)`
/// (used for the overflow ladder, which can hold thousands of far-future
/// events — there the heap's O(log n) wins over a scan).
fn lane_push<E>(lane: &mut Vec<Entry<E>>, entry: Entry<E>) {
    lane.push(entry);
    let mut i = lane.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if entry_lt(&lane[i], &lane[parent]) {
            lane.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

/// Pops the minimum from a `Vec`-backed binary min-heap.
fn lane_pop<E>(lane: &mut Vec<Entry<E>>) -> Option<Entry<E>> {
    let last = lane.len().checked_sub(1)?;
    lane.swap(0, last);
    let out = lane.pop();
    let n = lane.len();
    let mut i = 0;
    loop {
        let left = 2 * i + 1;
        if left >= n {
            break;
        }
        let right = left + 1;
        let mut min = left;
        if right < n && entry_lt(&lane[right], &lane[left]) {
            min = right;
        }
        if entry_lt(&lane[min], &lane[i]) {
            lane.swap(i, min);
            i = min;
        } else {
            break;
        }
    }
    out
}

/// Smallest and largest lane counts the calendar will use. Both are
/// powers of two so bucket indexing is a shift and a mask. The ceiling
/// covers the measured pending population of a 64-backend fleet run
/// (~150 K events: clients pre-schedule the run's arrivals) at about
/// one event per lane.
const MIN_BUCKETS: usize = 16;
const MAX_BUCKETS: usize = 1 << 18;
/// Bucket width is `1 << width_shift` nanoseconds; capped so
/// `MAX_BUCKETS << MAX_WIDTH_SHIFT` cannot overflow a `u64`.
const MAX_WIDTH_SHIFT: u32 = 40;
/// Grow the lane array when near occupancy exceeds `GROW_FACTOR` events
/// per bucket; shrink when it falls below `1 / SHRINK_FACTOR`. The wide
/// gap between the two thresholds is the hysteresis that prevents
/// resize thrash.
const GROW_FACTOR: usize = 4;
const SHRINK_FACTOR: usize = 8;
/// Re-bucket every `REBUCKET_FACTOR * nbuckets` pops even when occupancy
/// sits between the grow/shrink thresholds: a steady-state population
/// (constant pending count) never crosses them, yet its time *spread*
/// drifts, and a stale bucket width degrades the lanes toward heaps.
/// Proportional to `nbuckets`, the rebuild stays O(1) amortized per pop.
const REBUCKET_FACTOR: u64 = 8;

/// The calendar backend: `nbuckets` lanes, each a small *unsorted* vec
/// popped by `(time, seq)` min-scan, covering the sliding year
/// `[day_start, day_start + nbuckets * width)`. The lane at `cursor`
/// owns the earliest window **and** anything scheduled at or before it;
/// far-future events (past the year end) wait in the `overflow` ladder
/// and are pulled forward as the cursor advances.
struct Calendar<E> {
    buckets: Vec<Vec<Entry<E>>>,
    /// One bit per lane (bit set ⇔ lane non-empty): the cursor skips
    /// runs of empty lanes with word-wide bit scans instead of touching
    /// every lane header.
    occupied: Vec<u64>,
    /// Far-future ladder: min-heap of events at or past the year end.
    overflow: Vec<Entry<E>>,
    /// Retired lane allocations, reused across resizes (event pooling:
    /// popped `Entry` storage is recycled, not freed).
    pool: Vec<Vec<Entry<E>>>,
    /// `buckets.len()`, always a power of two.
    nbuckets: usize,
    /// Bucket width is `1 << width_shift` nanoseconds.
    width_shift: u32,
    /// Lower edge (ns) of the cursor bucket's time window.
    day_start: u64,
    /// Index of the bucket whose window starts at `day_start`.
    cursor: usize,
    /// Events currently stored in the lanes (excludes `overflow`).
    near: usize,
    /// Pops since the last rebuild, for the periodic re-bucket.
    pops_since_resize: u64,
    /// Cached earliest pending time. `None` in the cell means *unknown*
    /// (recompute on the next peek), `Some(None)` would be unrepresentable
    /// — an empty queue stores `Some` of `None` via [`MinCache`]. Kept in
    /// a `Cell` so `peek_time` can refresh it lazily on a `&self`
    /// receiver: a pop that no one peeks after (the common case in a
    /// tight drain loop) pays nothing for cache maintenance.
    min_cache: std::cell::Cell<MinCache>,
}

/// State of the lazily maintained `min_time` cache.
#[derive(Clone, Copy)]
enum MinCache {
    /// The earliest pending time is known to be this (`None` = empty).
    Known(Option<SimTime>),
    /// A pop invalidated the cache; recompute on demand.
    Stale,
}

impl<E> Calendar<E> {
    fn new() -> Self {
        Calendar {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: vec![0; MIN_BUCKETS.div_ceil(64)],
            overflow: Vec::new(),
            pool: Vec::new(),
            nbuckets: MIN_BUCKETS,
            // 1.024 us lanes: a reasonable default for the ns-resolution
            // packet/timer mix; the first resize re-derives it anyway.
            width_shift: 10,
            day_start: 0,
            cursor: 0,
            near: 0,
            pops_since_resize: 0,
            min_cache: std::cell::Cell::new(MinCache::Known(None)),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.near + self.overflow.len()
    }

    /// Exclusive upper edge (ns) of the lane-covered year.
    #[inline]
    fn year_end(&self) -> u64 {
        self.day_start
            .saturating_add((self.nbuckets as u64) << self.width_shift)
    }

    fn push(&mut self, entry: Entry<E>) {
        if self.len() == 0 {
            // Empty calendar: re-anchor the year at the new event so a
            // large time jump never forces a long cursor scan.
            self.day_start = entry.time.as_nanos();
        }
        // Keep a known cache exact for free; a stale one stays stale
        // (the push cannot be earlier than a minimum we don't know).
        if let MinCache::Known(m) = self.min_cache.get() {
            if m.is_none_or(|m| entry.time < m) {
                self.min_cache.set(MinCache::Known(Some(entry.time)));
            }
        }
        self.place(entry);
        if self.near > self.nbuckets * GROW_FACTOR && self.nbuckets < MAX_BUCKETS {
            self.resize();
        }
    }

    /// Routes an entry to its lane, or to the overflow ladder when it
    /// falls past the year end. Events at or before `day_start` (the
    /// simulator never schedules in the past, but the API allows it) go
    /// to the cursor bucket, which is always drained first.
    fn place(&mut self, entry: Entry<E>) {
        let t = entry.time.as_nanos();
        let offset = t.saturating_sub(self.day_start) >> self.width_shift;
        if offset >= self.nbuckets as u64 {
            lane_push(&mut self.overflow, entry);
        } else {
            let idx = (self.cursor + offset as usize) & (self.nbuckets - 1);
            self.buckets[idx].push(entry);
            self.occupied[idx / 64] |= 1 << (idx % 64);
            self.near += 1;
        }
    }

    fn pop(&mut self) -> Option<Entry<E>> {
        if self.len() == 0 {
            return None;
        }
        self.seek();
        let (entry, rest_min) =
            lane_take_min(&mut self.buckets[self.cursor]).expect("seek found an event");
        if rest_min.is_none() {
            self.occupied[self.cursor / 64] &= !(1 << (self.cursor % 64));
        }
        self.near -= 1;
        self.pops_since_resize += 1;
        // A rebuild moves events between lanes but never changes the
        // pending *set*, so `rest_min` (when the cursor lane stayed
        // non-empty) survives it.
        if self.nbuckets > MIN_BUCKETS && self.near * SHRINK_FACTOR < self.nbuckets {
            self.resize();
        } else if self.pops_since_resize > REBUCKET_FACTOR * self.nbuckets as u64 {
            self.rebucket();
        }
        self.min_cache.set(if self.len() == 0 {
            MinCache::Known(None)
        } else if rest_min.is_some() {
            // The cursor lane survived, so its runner-up (tracked by the
            // same scan that found the popped minimum) is the new queue
            // minimum — a rebuild above moves events between lanes but
            // never changes the pending *set*, so this survives it.
            MinCache::Known(rest_min)
        } else {
            // The lane drained. Finding the next minimum would mean
            // seeking and scanning another lane — skip it until someone
            // actually peeks.
            MinCache::Stale
        });
        Some(entry)
    }

    /// Advances the cursor to the bucket holding the earliest pending
    /// event. The earliest event is always in the first non-empty bucket
    /// at or after the cursor: lanes ahead only ever receive events from
    /// strictly later windows, and past-scheduled events land in the
    /// cursor bucket itself. Caller guarantees `len() > 0`.
    fn seek(&mut self) {
        if self.near == 0 {
            // Everything pending is far-future: re-anchor the year at
            // the ladder's minimum and pull the near window in, instead
            // of stepping the cursor across an arbitrarily long gap.
            self.day_start = self.overflow[0].time.as_nanos();
            self.refill();
            debug_assert!(self.near > 0, "refill must cover the overflow minimum");
            return;
        }
        let k = self.next_occupied_offset();
        if k > 0 {
            // Jump the cursor straight to the next occupied lane. The
            // year slides by the same k days; one refill then pulls in
            // every overflow event the slide exposed — all of them land
            // in the year's trailing k lanes (their times are at or past
            // the *old* year end), so none can precede the jump target.
            self.day_start = self
                .day_start
                .saturating_add((k as u64) << self.width_shift);
            self.cursor = (self.cursor + k) & (self.nbuckets - 1);
            self.refill();
        }
        debug_assert!(!self.buckets[self.cursor].is_empty(), "seek found an event");
    }

    /// Earliest pending time, refreshing a stale cache. Read-only: the
    /// next occupied lane is located through the bitmap without moving
    /// the cursor, so this works on a `&self` receiver.
    fn min_time(&self) -> Option<SimTime> {
        if let MinCache::Known(m) = self.min_cache.get() {
            return m;
        }
        let min = if self.len() == 0 {
            None
        } else if self.near == 0 {
            // Everything pending sits in the far-future ladder.
            Some(self.overflow[0].time)
        } else {
            // The first occupied lane at or after the cursor holds the
            // queue minimum: later lanes cover strictly later days and
            // the overflow ladder sits past the year end.
            let k = self.next_occupied_offset();
            let lane = &self.buckets[(self.cursor + k) & (self.nbuckets - 1)];
            let idx = lane_min_idx(lane).expect("occupied lane has an event");
            Some(lane[idx].time)
        };
        self.min_cache.set(MinCache::Known(min));
        min
    }

    /// Circular distance (in lanes) from the cursor to the first
    /// occupied lane, zero when the cursor lane itself is occupied.
    /// Caller guarantees `near > 0`, so some bit is set.
    #[inline]
    fn next_occupied_offset(&self) -> usize {
        let nb = self.nbuckets;
        let (w, bit) = (self.cursor / 64, self.cursor % 64);
        let first = self.occupied[w] >> bit;
        if first != 0 {
            return first.trailing_zeros() as usize;
        }
        let nwords = self.occupied.len();
        for step in 1..=nwords {
            let i = (w + step) % nwords;
            let word = self.occupied[i];
            if word != 0 {
                let idx = i * 64 + word.trailing_zeros() as usize;
                return (idx + nb - self.cursor) & (nb - 1);
            }
        }
        unreachable!("near > 0 guarantees an occupied lane")
    }

    /// Moves every overflow event that now falls inside the year into
    /// its lane (called whenever the year slides or re-anchors).
    fn refill(&mut self) {
        let year_end = self.year_end();
        while self
            .overflow
            .first()
            .is_some_and(|e| e.time.as_nanos() < year_end)
        {
            let entry = lane_pop(&mut self.overflow).expect("checked non-empty");
            self.place(entry);
        }
    }

    /// Bucket width ≈ half the average inter-event gap (rounded up to a
    /// power of two), so steady-state occupancy lands around one event
    /// per occupied lane and push/pop degenerate to a vec append/pop —
    /// the calendar sweet spot. The year then covers at least the
    /// observed spread, keeping the overflow ladder for genuine
    /// outliers. A same-instant flood (zero spread) degrades
    /// gracefully: one hot lane, min-scanned.
    fn width_for(lo: u64, hi: u64, n: usize) -> u32 {
        let gap = ((hi - lo) / n as u64).max(1);
        let ceil_log2 = 64 - (gap - 1).leading_zeros().min(63);
        ceil_log2.min(MAX_WIDTH_SHIFT)
    }

    /// The periodic re-bucket, guarded by a read-only probe: scan the
    /// pending population for the geometry a rebuild would derive, and
    /// skip the drain-and-replace when neither the lane count nor the
    /// bucket width would change. The probe reads one `u64` per entry;
    /// the rebuild it avoids moves every entry — payload and all, and
    /// simulation events run to hundreds of bytes — twice. A
    /// steady-state population with a stable time spread (the common
    /// case between load shifts) pays only the probe.
    fn rebucket(&mut self) {
        let n = self.len();
        let target = (n * 2).next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        if n >= 1 && target == self.nbuckets {
            let (mut lo, mut hi) = (u64::MAX, 0u64);
            for e in self.buckets.iter().flatten().chain(&self.overflow) {
                let t = e.time.as_nanos();
                lo = lo.min(t);
                hi = hi.max(t);
            }
            if Self::width_for(lo, hi, n) == self.width_shift {
                self.pops_since_resize = 0;
                return;
            }
        }
        self.resize();
    }

    /// Rebuilds the lane array sized to the current near population and
    /// re-derives the bucket width from the observed event spread. Lane
    /// allocations are recycled through the pool.
    fn resize(&mut self) {
        let mut scratch = self.pool.pop().unwrap_or_default();
        for bucket in &mut self.buckets {
            scratch.append(bucket);
        }
        // The ladder joins the sample: sizing the year from lane events
        // alone under-measures the spread whenever a long timer tail
        // lives in overflow, and the truncation self-reinforces (a short
        // year keeps the tail in overflow, which keeps the year short).
        // Heap order is irrelevant here — `place` re-routes every entry.
        scratch.append(&mut self.overflow);
        let n = scratch.len();
        let target = (n * 2).next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        if n >= 1 {
            let (mut lo, mut hi) = (u64::MAX, 0u64);
            for e in &scratch {
                let t = e.time.as_nanos();
                lo = lo.min(t);
                hi = hi.max(t);
            }
            self.width_shift = Self::width_for(lo, hi, n);
            // Re-anchor the year at the population minimum. Without this,
            // everything earlier than wherever `day_start` happened to sit
            // (it anchors at the *first* push after empty, not the
            // earliest) collapses into the cursor catch-all lane and
            // stays there across rebuilds.
            self.day_start = lo;
        }
        while self.buckets.len() > target {
            let lane = self.buckets.pop().expect("checked len");
            self.pool.push(lane);
        }
        while self.buckets.len() < target {
            self.buckets.push(self.pool.pop().unwrap_or_default());
        }
        self.nbuckets = target;
        self.cursor = 0;
        self.near = 0;
        self.pops_since_resize = 0;
        self.occupied.clear();
        self.occupied.resize(target.div_ceil(64), 0);
        for entry in scratch.drain(..) {
            self.place(entry);
        }
        self.pool.push(scratch);
        // The resized year may reach further than the old one did.
        self.refill();
    }

    fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.occupied.fill(0);
        self.overflow.clear();
        self.near = 0;
        self.min_cache.set(MinCache::Known(None));
    }
}

enum Backend<E> {
    Calendar(Calendar<E>),
    Heap(BinaryHeap<Entry<E>>),
}

/// A deterministic future-event list.
///
/// Events of type `E` are scheduled at absolute [`SimTime`] instants and
/// popped in non-decreasing time order, with FIFO delivery among events at
/// the same instant.
///
/// # Example
///
/// ```
/// use desim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_us(1), 'b');
/// q.push(SimTime::from_us(1), 'c'); // same time: FIFO after 'b'
/// q.push(SimTime::ZERO, 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
pub struct EventQueue<E> {
    backend: Backend<E>,
    next_seq: u64,
    pushed: u64,
    popped: u64,
    cleared: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue on the default (calendar) backend.
    #[must_use]
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::Calendar)
    }

    /// Creates an empty queue on an explicit backend. Delivery order is
    /// identical across backends; only the cost profile differs.
    #[must_use]
    pub fn with_backend(backend: QueueBackend) -> Self {
        EventQueue {
            backend: match backend {
                QueueBackend::Calendar => Backend::Calendar(Calendar::new()),
                QueueBackend::BinaryHeap => Backend::Heap(BinaryHeap::new()),
            },
            next_seq: 0,
            pushed: 0,
            popped: 0,
            cleared: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = Self::new();
        if let Backend::Calendar(c) = &mut q.backend {
            c.overflow.reserve(capacity / 2);
        }
        q
    }

    /// The backend this queue runs on.
    #[must_use]
    pub fn backend(&self) -> QueueBackend {
        match &self.backend {
            Backend::Calendar(_) => QueueBackend::Calendar,
            Backend::Heap(_) => QueueBackend::BinaryHeap,
        }
    }

    /// Schedules `event` at absolute instant `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        let entry = Entry { time, seq, event };
        match &mut self.backend {
            Backend::Calendar(c) => c.push(entry),
            Backend::Heap(h) => h.push(entry),
        }
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = match &mut self.backend {
            Backend::Calendar(c) => c.pop(),
            Backend::Heap(h) => h.pop(),
        }?;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// Pops every event scheduled at or before `bound` — at most `max`
    /// of them — appending `(time, event)` pairs to `out`. Returns the
    /// number of events popped. Used by the simulation driver to drain
    /// same-instant batches with one queue traversal.
    pub fn pop_batch_until(
        &mut self,
        bound: SimTime,
        max: usize,
        out: &mut Vec<(SimTime, E)>,
    ) -> usize {
        let mut n = 0;
        while n < max {
            match self.peek_time() {
                Some(t) if t <= bound => {}
                _ => break,
            }
            let item = self.pop().expect("peeked entry vanished");
            out.push(item);
            n += 1;
        }
        n
    }

    /// The instant of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Calendar(c) => c.min_time(),
            Backend::Heap(h) => h.peek().map(|e| e.time),
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Calendar(c) => c.len(),
            Backend::Heap(h) => h.len(),
        }
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever scheduled on this queue.
    #[must_use]
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events ever delivered from this queue.
    #[must_use]
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Total events ever dropped by [`clear`](Self::clear). Together with
    /// the other counters this closes the conservation identity
    /// `total_pushed == total_popped + total_cleared + len`.
    #[must_use]
    pub fn total_cleared(&self) -> u64 {
        self.cleared
    }

    /// Audits the queue's conservation identity
    /// `total_pushed == total_popped + total_cleared + len`. A pure
    /// observation — safe to call at any instant, including mid-run.
    ///
    /// # Errors
    ///
    /// Returns a description of the imbalance if the identity is broken
    /// (which would indicate a bug in the queue itself, not the model).
    pub fn audit(&self) -> Result<(), String> {
        let resolved = self.popped + self.cleared + self.len() as u64;
        if self.pushed == resolved {
            Ok(())
        } else {
            Err(format!(
                "event-queue ledger broken: pushed {} != popped {} + cleared {} + pending {}",
                self.pushed,
                self.popped,
                self.cleared,
                self.len()
            ))
        }
    }

    /// Drops all pending events. The dropped count moves to
    /// [`total_cleared`](Self::total_cleared), so the conservation
    /// identity keeps holding; the sequence counter is untouched (FIFO
    /// ordering stays globally monotonic across a clear).
    pub fn clear(&mut self) {
        self.cleared += self.len() as u64;
        match &mut self.backend {
            Backend::Calendar(c) => c.clear(),
            Backend::Heap(h) => h.clear(),
        }
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("backend", &self.backend().name())
            .field("pending", &self.len())
            .field("pushed", &self.pushed)
            .field("popped", &self.popped)
            .field("cleared", &self.cleared)
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use check::{ensure, gen, Check};

    /// Every unit property below runs against both backends: the calendar
    /// must be indistinguishable from the reference heap.
    fn both(mut f: impl FnMut(EventQueue<u64>)) {
        f(EventQueue::with_backend(QueueBackend::Calendar));
        f(EventQueue::with_backend(QueueBackend::BinaryHeap));
    }

    #[test]
    fn pops_in_time_order() {
        both(|mut q| {
            q.push(SimTime::from_us(30), 3);
            q.push(SimTime::from_us(10), 1);
            q.push(SimTime::from_us(20), 2);
            assert_eq!(q.pop(), Some((SimTime::from_us(10), 1)));
            assert_eq!(q.pop(), Some((SimTime::from_us(20), 2)));
            assert_eq!(q.pop(), Some((SimTime::from_us(30), 3)));
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn fifo_among_simultaneous_events() {
        both(|mut q| {
            for i in 0..100 {
                q.push(SimTime::from_us(5), i);
            }
            for i in 0..100 {
                assert_eq!(q.pop().map(|(_, e)| e), Some(i));
            }
        });
    }

    #[test]
    fn counters_track_traffic() {
        both(|mut q| {
            q.push(SimTime::ZERO, 0);
            q.push(SimTime::ZERO, 1);
            let _ = q.pop();
            assert_eq!(q.total_pushed(), 2);
            assert_eq!(q.total_popped(), 1);
            assert_eq!(q.len(), 1);
            q.clear();
            assert!(q.is_empty());
            assert_eq!(q.total_pushed(), 2);
        });
    }

    /// The PR-3/4-style ledger for the queue itself:
    /// `pushed == popped + cleared + pending`, including across `clear`
    /// (which used to leave `len()` and the push/pop counters telling
    /// different stories).
    #[test]
    fn clear_preserves_conservation_identity() {
        both(|mut q| {
            let identity = |q: &EventQueue<u64>| {
                assert_eq!(
                    q.total_pushed(),
                    q.total_popped() + q.total_cleared() + q.len() as u64,
                    "conservation identity violated: {q:?}"
                );
            };
            for i in 0..10 {
                q.push(SimTime::from_us(i), i);
            }
            identity(&q);
            let _ = q.pop();
            let _ = q.pop();
            identity(&q);
            q.clear();
            assert_eq!(q.total_cleared(), 8);
            identity(&q);
            // The queue stays usable after a clear, and the sequence
            // counter keeps FIFO monotonic across it.
            q.push(SimTime::from_us(1), 100);
            q.push(SimTime::from_us(1), 101);
            identity(&q);
            assert_eq!(q.pop(), Some((SimTime::from_us(1), 100)));
            assert_eq!(q.pop(), Some((SimTime::from_us(1), 101)));
            identity(&q);
            q.clear();
            identity(&q);
            assert_eq!(q.total_cleared(), 8);
        });
    }

    #[test]
    fn peek_does_not_consume() {
        both(|mut q| {
            q.push(SimTime::from_ms(1), 7);
            assert_eq!(q.peek_time(), Some(SimTime::from_ms(1)));
            assert_eq!(q.len(), 1);
        });
    }

    #[test]
    fn pop_batch_until_respects_bound_and_cap() {
        both(|mut q| {
            for i in 0..6 {
                q.push(SimTime::from_us(10), i);
            }
            q.push(SimTime::from_us(20), 100);
            let mut out = Vec::new();
            // Cap smaller than the batch: exactly `max` events come out.
            assert_eq!(q.pop_batch_until(SimTime::from_us(10), 4, &mut out), 4);
            assert_eq!(out.len(), 4);
            // Remainder of the same instant, bound excludes the 20us event.
            assert_eq!(q.pop_batch_until(SimTime::from_us(10), 100, &mut out), 2);
            let ids: Vec<u64> = out.iter().map(|&(_, e)| e).collect();
            assert_eq!(ids, [0, 1, 2, 3, 4, 5], "FIFO preserved through batches");
            assert_eq!(q.len(), 1);
            assert_eq!(q.peek_time(), Some(SimTime::from_us(20)));
        });
    }

    #[test]
    fn far_future_outliers_take_the_overflow_ladder() {
        let mut q: EventQueue<u64> = EventQueue::new();
        // A dense near-term population plus outliers half a year out.
        for i in 0..100 {
            q.push(SimTime::from_nanos(i * 100), i);
        }
        for i in 0..10 {
            q.push(SimTime::from_ms(10_000 + i), 1_000 + i);
        }
        let mut last = SimTime::ZERO;
        let mut seen = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last, "time went backwards at {t}");
            last = t;
            seen += 1;
        }
        assert_eq!(seen, 110);
    }

    #[test]
    fn same_instant_flood_is_fifo() {
        both(|mut q| {
            // Adversarial: a flood large enough to cross several resize
            // boundaries, all at one instant.
            for i in 0..5_000u64 {
                q.push(SimTime::from_us(3), i);
            }
            for i in 0..5_000u64 {
                assert_eq!(q.pop().map(|(_, e)| e), Some(i));
            }
        });
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<u8> = EventQueue::new();
        let rendered = format!("{q:?}");
        assert!(rendered.contains("calendar"));
        assert!(rendered.contains("cleared"));
    }

    #[test]
    fn backend_is_reported() {
        let q: EventQueue<u8> = EventQueue::with_backend(QueueBackend::BinaryHeap);
        assert_eq!(q.backend(), QueueBackend::BinaryHeap);
        assert_eq!(q.backend().name(), "binaryheap");
        let q: EventQueue<u8> = EventQueue::new();
        assert_eq!(q.backend(), QueueBackend::Calendar);
    }

    /// Invariant `event-queue FIFO-tie ordering`: delivery is
    /// non-decreasing in time, and FIFO among events at equal times.
    #[test]
    fn prop_delivery_order() {
        Check::new("event_queue_fifo_tie_ordering").run(
            |rng, size| gen::vec_with(rng, size, 1, 200, |r| r.next_below(1_000)),
            |times| {
                let mut q = EventQueue::new();
                for (idx, &t) in times.iter().enumerate() {
                    q.push(SimTime::ZERO + SimDuration::from_nanos(t), idx);
                }
                let mut last: Option<(SimTime, usize)> = None;
                while let Some((t, idx)) = q.pop() {
                    if let Some((lt, lidx)) = last {
                        ensure!(t >= lt, "time went backwards");
                        if t == lt {
                            ensure!(idx > lidx, "FIFO violated at equal times");
                        }
                    }
                    last = Some((t, idx));
                }
                Ok(())
            },
        );
    }

    /// Interleaved push/pop still respects ordering for pops.
    #[test]
    fn prop_interleaved() {
        Check::new("event_queue_interleaved_ordering")
            .max_size(300)
            .run(
                |rng, size| {
                    gen::vec_with(rng, size, 1, 300, |r| (r.next_below(1_000), gen::bool(r)))
                },
                |ops| {
                    let mut q = EventQueue::new();
                    let mut clock = SimTime::ZERO;
                    for &(t, do_pop) in ops {
                        if do_pop {
                            if let Some((popped_at, ())) = q.pop() {
                                ensure!(
                                    popped_at >= clock
                                        || q.is_empty()
                                        || popped_at <= clock + SimDuration::from_nanos(1_000),
                                    "pop at {popped_at} after clock {clock}"
                                );
                                clock = popped_at.max(clock);
                            }
                        } else {
                            // Schedule only in the present or future of the
                            // popped clock, as a real simulation does.
                            q.push(clock + SimDuration::from_nanos(t), ());
                        }
                    }
                    Ok(())
                },
            );
    }
}
