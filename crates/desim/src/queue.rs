//! The time-ordered event queue at the heart of the simulator.
//!
//! [`EventQueue`] is a priority queue keyed by `(SimTime, sequence)`. The
//! sequence number is a monotonically increasing insertion counter, so two
//! events scheduled for the same instant are delivered in scheduling order.
//! This tie-break is what makes whole-simulation runs bit-reproducible.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry: reversed ordering so `BinaryHeap` becomes a min-heap.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the earliest (time, seq) is the heap maximum.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic future-event list.
///
/// Events of type `E` are scheduled at absolute [`SimTime`] instants and
/// popped in non-decreasing time order, with FIFO delivery among events at
/// the same instant.
///
/// # Example
///
/// ```
/// use desim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_us(1), 'b');
/// q.push(SimTime::from_us(1), 'c'); // same time: FIFO after 'b'
/// q.push(SimTime::ZERO, 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    pushed: u64,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pushed: 0,
            popped: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            pushed: 0,
            popped: 0,
        }
    }

    /// Schedules `event` at absolute instant `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// The instant of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled on this queue.
    #[must_use]
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events ever delivered from this queue.
    #[must_use]
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Drops all pending events, keeping counters.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("pushed", &self.pushed)
            .field("popped", &self.popped)
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use check::{ensure, gen, Check};

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(30), 3);
        q.push(SimTime::from_us(10), 1);
        q.push(SimTime::from_us(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_us(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_us(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_us(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_among_simultaneous_events() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_us(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().map(|(_, e)| e), Some(i));
        }
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        let _ = q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.total_pushed(), 2);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(1), 'x');
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(1)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<u8> = EventQueue::new();
        assert!(!format!("{q:?}").is_empty());
    }

    /// Invariant `event-queue FIFO-tie ordering`: delivery is
    /// non-decreasing in time, and FIFO among events at equal times.
    #[test]
    fn prop_delivery_order() {
        Check::new("event_queue_fifo_tie_ordering").run(
            |rng, size| gen::vec_with(rng, size, 1, 200, |r| r.next_below(1_000)),
            |times| {
                let mut q = EventQueue::new();
                for (idx, &t) in times.iter().enumerate() {
                    q.push(SimTime::ZERO + SimDuration::from_nanos(t), idx);
                }
                let mut last: Option<(SimTime, usize)> = None;
                while let Some((t, idx)) = q.pop() {
                    if let Some((lt, lidx)) = last {
                        ensure!(t >= lt, "time went backwards");
                        if t == lt {
                            ensure!(idx > lidx, "FIFO violated at equal times");
                        }
                    }
                    last = Some((t, idx));
                }
                Ok(())
            },
        );
    }

    /// Interleaved push/pop still respects ordering for pops.
    #[test]
    fn prop_interleaved() {
        Check::new("event_queue_interleaved_ordering")
            .max_size(300)
            .run(
                |rng, size| {
                    gen::vec_with(rng, size, 1, 300, |r| (r.next_below(1_000), gen::bool(r)))
                },
                |ops| {
                    let mut q = EventQueue::new();
                    let mut clock = SimTime::ZERO;
                    for &(t, do_pop) in ops {
                        if do_pop {
                            if let Some((popped_at, ())) = q.pop() {
                                ensure!(
                                    popped_at >= clock
                                        || q.is_empty()
                                        || popped_at <= clock + SimDuration::from_nanos(1_000),
                                    "pop at {popped_at} after clock {clock}"
                                );
                                clock = popped_at.max(clock);
                            }
                        } else {
                            // Schedule only in the present or future of the
                            // popped clock, as a real simulation does.
                            q.push(clock + SimDuration::from_nanos(t), ());
                        }
                    }
                    Ok(())
                },
            );
    }
}
