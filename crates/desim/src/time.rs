//! Simulation time: nanosecond-resolution instants and durations.
//!
//! [`SimTime`] is an absolute instant since the start of the simulation and
//! [`SimDuration`] is a span between instants. Both wrap a `u64` nanosecond
//! count, which comfortably covers > 580 years of simulated time — far more
//! than the hundreds of milliseconds to seconds the NCAP experiments need.
//!
//! The two types are kept distinct ([C-NEWTYPE]) so that instants and spans
//! cannot be confused: `SimTime + SimDuration = SimTime`,
//! `SimTime - SimTime = SimDuration`, and adding two instants does not
//! compile.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time, in nanoseconds since time zero.
///
/// # Example
///
/// ```
/// use desim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_ms(2);
/// assert_eq!(t.as_nanos(), 2_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use desim::SimDuration;
/// assert_eq!(SimDuration::from_us(3).as_nanos(), 3_000);
/// assert_eq!(SimDuration::from_ms(1) / 4, SimDuration::from_us(250));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from a raw nanosecond count.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant `us` microseconds after time zero.
    #[must_use]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant `ms` milliseconds after time zero.
    #[must_use]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Raw nanosecond count since time zero.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time since zero expressed in (possibly fractional) microseconds.
    #[must_use]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time since zero expressed in (possibly fractional) milliseconds.
    #[must_use]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time since zero expressed in (possibly fractional) seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration elapsed since `earlier`, or [`SimDuration::ZERO`] if
    /// `earlier` is in the future (saturating, never panics).
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from a raw nanosecond count.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span of `us` microseconds.
    #[must_use]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span of `ms` milliseconds.
    #[must_use]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span of `s` seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, rounding to nanoseconds.
    ///
    /// Negative and non-finite inputs clamp to zero; this keeps workload
    /// arithmetic (e.g. `1.0 / rate`) panic-free.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = (s * 1e9).round();
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Raw nanosecond count.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Span in (possibly fractional) microseconds.
    #[must_use]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Span in (possibly fractional) milliseconds.
    #[must_use]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Span in (possibly fractional) seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// `true` if the span is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a fractional factor, rounding to nanoseconds.
    /// Negative or non-finite factors clamp to zero.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// The larger of two spans.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two spans.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Elapsed time between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_us(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_nanos(1_000_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_ms(1_000));
    }

    #[test]
    fn instant_duration_arithmetic() {
        let t = SimTime::from_us(10);
        let d = SimDuration::from_us(4);
        assert_eq!(t + d, SimTime::from_us(14));
        assert_eq!((t + d) - t, d);
        assert_eq!(t - d, SimTime::from_us(6));
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimTime::from_us(1);
        let late = SimTime::from_us(9);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_us(8));
    }

    #[test]
    fn from_secs_f64_clamps_bad_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.5), SimDuration::from_ms(500));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_us(100);
        assert_eq!(d * 3, SimDuration::from_us(300));
        assert_eq!(d / 2, SimDuration::from_us(50));
        assert_eq!(d.mul_f64(0.25), SimDuration::from_us(25));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_us(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_ms(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn conversions_to_float() {
        assert_eq!(SimDuration::from_ms(1).as_us_f64(), 1_000.0);
        assert_eq!(SimTime::from_ms(250).as_secs_f64(), 0.25);
    }

    #[test]
    fn sum_and_minmax() {
        let total: SimDuration = [1, 2, 3].iter().map(|&u| SimDuration::from_us(u)).sum();
        assert_eq!(total, SimDuration::from_us(6));
        assert_eq!(
            SimDuration::from_us(1).max(SimDuration::from_us(2)),
            SimDuration::from_us(2)
        );
        assert_eq!(
            SimDuration::from_us(1).min(SimDuration::from_us(2)),
            SimDuration::from_us(1)
        );
    }
}
