//! Typed configuration-validation errors.
//!
//! Every crate in the workspace exposes a `Config` type with builder
//! methods; validation used to be scattered `assert!`s inside those
//! builders. [`ConfigError`] is the shared error type for the
//! `validate() -> Result<(), ConfigError>` pattern instead: builders stay
//! infallible and ergonomic, and a single validation pass reports *which*
//! field is wrong and why, without panicking in library code.

use core::fmt;

/// A configuration field failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending field (e.g. `"cores"`, `"loss"`).
    pub field: &'static str,
    /// Human-readable explanation of the constraint that was violated.
    pub reason: String,
}

impl ConfigError {
    /// Builds an error for `field` with the given `reason`.
    #[must_use]
    pub fn new(field: &'static str, reason: impl Into<String>) -> Self {
        ConfigError {
            field,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config field `{}`: {}", self.field, self.reason)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let e = ConfigError::new("cores", "a node needs at least one core");
        let s = e.to_string();
        assert!(s.contains("cores"));
        assert!(s.contains("at least one core"));
    }
}
