//! The simulation driver loop.
//!
//! A [`Simulation`] owns an [`EventQueue`] and a user-supplied
//! [`EventHandler`]; it repeatedly pops the earliest event, advances the
//! clock, and lets the handler react (usually by scheduling further events).

use crate::profiler::{Profile, Profiler};
use crate::queue::{EventQueue, QueueBackend};
use crate::time::SimTime;

/// Upper bound on events delivered per queue traversal in
/// [`Simulation::run_until`]. Bounds the scratch buffer while still
/// amortizing dispatch overhead across same-instant bursts.
const DISPATCH_BATCH_MAX: usize = 128;

/// The reaction logic of a simulation: consumes events, schedules new ones.
///
/// Implementors are the "world" being simulated. The handler receives the
/// queue so it can schedule follow-up events; it must only schedule at
/// `now` or later (enforced by a debug assertion in the driver).
pub trait EventHandler {
    /// The event alphabet of this world.
    type Event;

    /// Reacts to `event` occurring at instant `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);

    /// Coarse label for `event`, used only by the opt-in wall-clock
    /// self-profiler to group dispatch costs (e.g. by enum variant).
    /// Simulated results never depend on this; the default lumps
    /// everything into one class.
    fn classify(&self, _event: &Self::Event) -> &'static str {
        "event"
    }
}

/// Why a [`Simulation::run_until`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained before the horizon was reached.
    QueueExhausted,
    /// The time horizon was reached with events still pending.
    HorizonReached,
    /// The event budget was exhausted (runaway protection).
    EventBudgetExhausted,
}

/// A discrete-event simulation: clock + queue + handler.
///
/// # Example
///
/// ```
/// use desim::{EventHandler, EventQueue, Simulation, SimTime, SimDuration};
///
/// struct Counter { fired: u32 }
/// impl EventHandler for Counter {
///     type Event = ();
///     fn handle(&mut self, now: SimTime, _e: (), q: &mut EventQueue<()>) {
///         self.fired += 1;
///         if self.fired < 3 {
///             q.push(now + SimDuration::from_us(10), ());
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(Counter { fired: 0 });
/// sim.queue_mut().push(SimTime::ZERO, ());
/// sim.run_until(SimTime::from_ms(1));
/// assert_eq!(sim.handler().fired, 3);
/// assert_eq!(sim.now(), SimTime::from_us(20));
/// ```
pub struct Simulation<H: EventHandler> {
    queue: EventQueue<H::Event>,
    handler: H,
    now: SimTime,
    processed: u64,
    event_budget: u64,
    peak_pending: usize,
    /// Reused scratch buffer for batched same-instant dispatch.
    batch: Vec<(SimTime, H::Event)>,
    /// Opt-in wall-clock self-profiler (outside the determinism contract).
    profiler: Option<Profiler>,
}

impl<H: EventHandler> Simulation<H> {
    /// Default cap on events per run, guarding against schedule loops.
    pub const DEFAULT_EVENT_BUDGET: u64 = 10_000_000_000;

    /// Creates a simulation at time zero with an empty queue.
    pub fn new(handler: H) -> Self {
        Self::with_backend(handler, QueueBackend::default())
    }

    /// Creates a simulation whose event queue runs on an explicit
    /// backend. Delivery order — and therefore every simulation result —
    /// is identical across backends; this exists for differential tests
    /// and benchmark baselines.
    pub fn with_backend(handler: H, backend: QueueBackend) -> Self {
        Simulation {
            queue: EventQueue::with_backend(backend),
            handler,
            now: SimTime::ZERO,
            processed: 0,
            event_budget: Self::DEFAULT_EVENT_BUDGET,
            peak_pending: 0,
            batch: Vec::new(),
            profiler: None,
        }
    }

    /// Turns on the wall-clock self-profiler. Profiling attributes *host*
    /// time to event classes (see [`EventHandler::classify`]) and the
    /// queue's pop path; it reads only `std::time::Instant` and never
    /// changes a simulated result. Readings are host-dependent and
    /// explicitly outside the determinism contract.
    pub fn enable_profiling(&mut self) {
        if self.profiler.is_none() {
            self.profiler = Some(Profiler::new());
        }
    }

    /// A snapshot of the self-profile, if profiling is enabled.
    #[must_use]
    pub fn profile(&self) -> Option<Profile> {
        self.profiler.as_ref().map(Profiler::snapshot)
    }

    /// Replaces the runaway-protection event budget.
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = budget;
    }

    /// Current simulated instant (time of the last delivered event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// High-water mark of the pending-event population, sampled once per
    /// dispatch batch. Sizes the queue's working set (and the
    /// sim-throughput bench's hold-model operating point).
    #[must_use]
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Shared access to the world.
    #[must_use]
    pub fn handler(&self) -> &H {
        &self.handler
    }

    /// Exclusive access to the world (e.g. to extract results).
    pub fn handler_mut(&mut self) -> &mut H {
        &mut self.handler
    }

    /// Consumes the simulation, returning the world.
    #[must_use]
    pub fn into_handler(self) -> H {
        self.handler
    }

    /// Exclusive access to the queue, e.g. to seed initial events.
    pub fn queue_mut(&mut self) -> &mut EventQueue<H::Event> {
        &mut self.queue
    }

    /// Shared access to the queue.
    #[must_use]
    pub fn queue(&self) -> &EventQueue<H::Event> {
        &self.queue
    }

    /// Runs until the queue drains, the budget is spent, or the next event
    /// would occur strictly after `horizon`. Events **at** the horizon are
    /// delivered. The clock never exceeds the horizon.
    ///
    /// Dispatch is batched: each queue traversal drains the full run of
    /// events at the current earliest instant (bounded by the remaining
    /// budget and [`DISPATCH_BATCH_MAX`]) before handlers run. Batching
    /// only ever spans a single instant, so an event a handler schedules
    /// *at that same instant* still runs after every already-scheduled
    /// peer — its sequence number is higher than all batch members' —
    /// and delivery order is identical to one-at-a-time dispatch.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            if self.processed >= self.event_budget {
                return RunOutcome::EventBudgetExhausted;
            }
            let next = match self.queue.peek_time() {
                None => return RunOutcome::QueueExhausted,
                Some(t) if t > horizon => {
                    self.now = horizon;
                    return RunOutcome::HorizonReached;
                }
                Some(t) => t,
            };
            self.peak_pending = self.peak_pending.max(self.queue.len());
            let cap = (self.event_budget - self.processed).min(DISPATCH_BATCH_MAX as u64) as usize;
            let mut batch = std::mem::take(&mut self.batch);
            let pop_start = self.profiler.as_ref().map(|_| std::time::Instant::now());
            self.queue.pop_batch_until(next, cap, &mut batch);
            if let (Some(p), Some(t0)) = (self.profiler.as_mut(), pop_start) {
                p.queue_ns += t0.elapsed().as_nanos() as u64;
            }
            for (time, event) in batch.drain(..) {
                debug_assert!(time >= self.now, "event scheduled in the past");
                self.now = time;
                self.processed += 1;
                if self.profiler.is_some() {
                    let class = self.handler.classify(&event);
                    let t0 = std::time::Instant::now();
                    self.handler.handle(time, event, &mut self.queue);
                    let ns = t0.elapsed().as_nanos() as u64;
                    if let Some(p) = self.profiler.as_mut() {
                        p.record(class, ns);
                    }
                } else {
                    self.handler.handle(time, event, &mut self.queue);
                }
                Self::trace_dispatch(time);
            }
            self.batch = batch;
        }
    }

    /// Runs until the queue is empty (or budget spent).
    pub fn run_to_completion(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Delivers exactly one event, if any is pending. Returns its time.
    pub fn step(&mut self) -> Option<SimTime> {
        let (time, event) = self.queue.pop()?;
        debug_assert!(time >= self.now, "event scheduled in the past");
        self.now = time;
        self.processed += 1;
        if self.profiler.is_some() {
            let class = self.handler.classify(&event);
            let t0 = std::time::Instant::now();
            self.handler.handle(time, event, &mut self.queue);
            let ns = t0.elapsed().as_nanos() as u64;
            if let Some(p) = self.profiler.as_mut() {
                p.record(class, ns);
            }
        } else {
            self.handler.handle(time, event, &mut self.queue);
        }
        Self::trace_dispatch(time);
        Some(time)
    }

    /// Records one event dispatch on the installed tracer (no-op when
    /// tracing is disabled). The handler runs in zero simulated time, so
    /// the dispatch is a zero-duration complete-span at `time`.
    #[inline]
    fn trace_dispatch(time: SimTime) {
        if simtrace::is_enabled() {
            let t = time.as_nanos();
            simtrace::complete("desim", "dispatch", t, 0, &[]);
            simtrace::metric_add("desim", "events_dispatched", t, 1.0);
        }
    }
}

impl<H: EventHandler + std::fmt::Debug> std::fmt::Debug for Simulation<H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("processed", &self.processed)
            .field("pending", &self.queue.len())
            .field("handler", &self.handler)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[derive(Debug)]
    struct Ticker {
        period: SimDuration,
        ticks: Vec<SimTime>,
        limit: usize,
    }

    impl EventHandler for Ticker {
        type Event = ();
        fn handle(&mut self, now: SimTime, _e: (), q: &mut EventQueue<()>) {
            self.ticks.push(now);
            if self.ticks.len() < self.limit {
                q.push(now + self.period, ());
            }
        }
    }

    fn ticker(limit: usize) -> Simulation<Ticker> {
        let mut sim = Simulation::new(Ticker {
            period: SimDuration::from_us(100),
            ticks: Vec::new(),
            limit,
        });
        sim.queue_mut().push(SimTime::ZERO, ());
        sim
    }

    #[test]
    fn runs_to_completion() {
        let mut sim = ticker(5);
        assert_eq!(sim.run_to_completion(), RunOutcome::QueueExhausted);
        assert_eq!(sim.handler().ticks.len(), 5);
        assert_eq!(sim.now(), SimTime::from_us(400));
        assert_eq!(sim.events_processed(), 5);
    }

    #[test]
    fn horizon_is_inclusive_and_clamps_clock() {
        let mut sim = ticker(100);
        let outcome = sim.run_until(SimTime::from_us(250));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        // Ticks at 0, 100, 200 delivered; 300 withheld.
        assert_eq!(sim.handler().ticks.len(), 3);
        assert_eq!(sim.now(), SimTime::from_us(250));
        // Continuing picks up where we left off.
        sim.run_until(SimTime::from_us(300));
        assert_eq!(sim.handler().ticks.len(), 4);
    }

    #[test]
    fn event_budget_stops_runaway() {
        let mut sim = ticker(usize::MAX);
        sim.set_event_budget(10);
        assert_eq!(sim.run_to_completion(), RunOutcome::EventBudgetExhausted);
        assert_eq!(sim.events_processed(), 10);
    }

    #[test]
    fn step_delivers_single_event() {
        let mut sim = ticker(3);
        assert_eq!(sim.step(), Some(SimTime::ZERO));
        assert_eq!(sim.step(), Some(SimTime::from_us(100)));
        assert_eq!(sim.handler().ticks.len(), 2);
    }

    /// A handler that, for each seed event, schedules a follow-up at the
    /// *same* instant. Batched dispatch must still run every follow-up
    /// after all originally scheduled peers (FIFO by sequence number).
    #[derive(Debug, Default)]
    struct SameInstant {
        order: Vec<u32>,
    }

    impl EventHandler for SameInstant {
        type Event = u32;
        fn handle(&mut self, now: SimTime, e: u32, q: &mut EventQueue<u32>) {
            self.order.push(e);
            if e < 1_000 {
                q.push(now, e + 1_000);
            }
        }
    }

    #[test]
    fn same_instant_batching_preserves_fifo() {
        // 300 seeds at one instant exceeds DISPATCH_BATCH_MAX, so the
        // run crosses several batch boundaries.
        let mut sim = Simulation::new(SameInstant::default());
        for i in 0..300 {
            sim.queue_mut().push(SimTime::from_us(7), i);
        }
        assert_eq!(sim.run_to_completion(), RunOutcome::QueueExhausted);
        let want: Vec<u32> = (0..300).chain(1_000..1_300).collect();
        assert_eq!(sim.handler().order, want);
        assert_eq!(sim.now(), SimTime::from_us(7));
        assert_eq!(sim.events_processed(), 600);
    }

    #[test]
    fn backend_choice_does_not_change_results() {
        let run = |backend| {
            let mut sim = Simulation::with_backend(
                Ticker {
                    period: SimDuration::from_us(100),
                    ticks: Vec::new(),
                    limit: 50,
                },
                backend,
            );
            sim.queue_mut().push(SimTime::ZERO, ());
            sim.run_until(SimTime::from_ms(3));
            (sim.now(), sim.events_processed(), sim.into_handler().ticks)
        };
        assert_eq!(
            run(crate::queue::QueueBackend::Calendar),
            run(crate::queue::QueueBackend::BinaryHeap)
        );
    }

    #[test]
    fn profiling_is_observer_free_and_attributes_events() {
        let run = |profile: bool| {
            let mut sim = ticker(50);
            if profile {
                sim.enable_profiling();
            }
            sim.run_until(SimTime::from_ms(3));
            let p = sim.profile();
            (
                sim.now(),
                sim.events_processed(),
                sim.into_handler().ticks,
                p,
            )
        };
        let (now_on, n_on, ticks_on, profile) = run(true);
        let (now_off, n_off, ticks_off, no_profile) = run(false);
        assert_eq!((now_on, n_on, &ticks_on), (now_off, n_off, &ticks_off));
        assert!(no_profile.is_none());
        let profile = profile.expect("profiling enabled");
        assert_eq!(profile.events, n_on);
        assert_eq!(profile.classes.len(), 1); // default classify
        assert_eq!(profile.classes[0].count, n_on);
        assert!(profile.wall_ns > 0);
    }

    #[test]
    fn into_handler_returns_world() {
        let mut sim = ticker(2);
        sim.run_to_completion();
        let world = sim.into_handler();
        assert_eq!(world.ticks.len(), 2);
    }
}
