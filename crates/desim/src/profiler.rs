//! Wall-clock self-profiling for the simulation driver.
//!
//! The profiler attributes *host* time — where the simulator itself
//! spends its wall clock — to event classes supplied by
//! [`EventHandler::classify`](crate::EventHandler::classify), plus the
//! event queue's pop path. It exists to answer questions like "why is
//! the end-to-end events/second lower on backend X" that simulated-time
//! instrumentation cannot see.
//!
//! It is explicitly **outside** the determinism contract: readings vary
//! run to run with host load, and enabling it never changes any
//! simulated result (it only reads `std::time::Instant` around the
//! dispatch loop). Handler time includes the cost of events the handler
//! pushes while reacting (the queue's insert path); the pop/peek path is
//! accounted separately in [`Profile::queue_ns`]. Differential runs —
//! same workload, two queue backends — therefore attribute pop-side
//! differences to `queue_ns` and push-side differences to handler time.

use std::collections::HashMap;
use std::time::Instant;

/// Number of power-of-two elapsed-time buckets per class.
pub const PROFILE_BUCKETS: usize = 24;

/// Wall-clock statistics for one event class.
#[derive(Debug, Clone)]
pub struct ClassStats {
    /// Class label (from `EventHandler::classify`).
    pub name: &'static str,
    /// Events dispatched.
    pub count: u64,
    /// Total wall time spent in the handler for this class (ns).
    pub elapsed_ns: u64,
    /// Slowest single dispatch (ns).
    pub max_ns: u64,
    /// Power-of-two elapsed-time histogram: bucket `k` counts dispatches
    /// with `elapsed < 2^k` ns (the last bucket absorbs the rest).
    pub buckets: [u64; PROFILE_BUCKETS],
}

impl ClassStats {
    fn new(name: &'static str) -> Self {
        ClassStats {
            name,
            count: 0,
            elapsed_ns: 0,
            max_ns: 0,
            buckets: [0; PROFILE_BUCKETS],
        }
    }

    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.elapsed_ns += ns;
        self.max_ns = self.max_ns.max(ns);
        let bucket = (64 - u64::leading_zeros(ns | 1) as usize).min(PROFILE_BUCKETS - 1);
        self.buckets[bucket] += 1;
    }

    /// Mean wall time per dispatch (ns).
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.elapsed_ns as f64 / self.count as f64
        }
    }
}

/// The profiler attached to a running [`Simulation`](crate::Simulation).
#[derive(Debug, Default)]
pub(crate) struct Profiler {
    classes: Vec<ClassStats>,
    index: HashMap<&'static str, usize>,
    pub(crate) queue_ns: u64,
    events: u64,
    started: Option<Instant>,
}

impl Profiler {
    pub(crate) fn new() -> Self {
        Profiler {
            started: Some(Instant::now()),
            ..Profiler::default()
        }
    }

    pub(crate) fn record(&mut self, class: &'static str, ns: u64) {
        self.events += 1;
        let i = *self.index.entry(class).or_insert_with(|| {
            self.classes.push(ClassStats::new(class));
            self.classes.len() - 1
        });
        self.classes[i].record(ns);
    }

    pub(crate) fn snapshot(&self) -> Profile {
        let mut classes = self.classes.clone();
        classes.sort_by_key(|c| std::cmp::Reverse(c.elapsed_ns));
        Profile {
            handler_ns: classes.iter().map(|c| c.elapsed_ns).sum(),
            queue_ns: self.queue_ns,
            events: self.events,
            wall_ns: self.started.map_or(0, |t| {
                t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
            }),
            classes,
        }
    }
}

/// A finished self-profile: per-class handler time plus the queue's
/// pop-path time, sorted by total elapsed descending.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Per-class statistics, heaviest first.
    pub classes: Vec<ClassStats>,
    /// Total wall time inside event handlers (ns).
    pub handler_ns: u64,
    /// Total wall time in the queue's peek/pop path (ns). Push time is
    /// part of the scheduling handler's time.
    pub queue_ns: u64,
    /// Events dispatched while profiling.
    pub events: u64,
    /// Wall time since the profiler was enabled (ns).
    pub wall_ns: u64,
}

impl Profile {
    /// Events per wall-clock second over the profiled span.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.events as f64 * 1e9 / self.wall_ns as f64
        }
    }

    /// Renders a fixed-width table of the profile (heaviest class first).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>12} {:>12} {:>10} {:>10}",
            "class", "count", "elapsed_ms", "mean_ns", "max_ns"
        );
        for c in &self.classes {
            let _ = writeln!(
                out,
                "{:<24} {:>12} {:>12.3} {:>10.1} {:>10}",
                c.name,
                c.count,
                c.elapsed_ns as f64 / 1e6,
                c.mean_ns(),
                c.max_ns
            );
        }
        let _ = writeln!(
            out,
            "{:<24} {:>12} {:>12.3}",
            "queue(pop/peek)",
            "-",
            self.queue_ns as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "total: {} events, handler {:.3} ms, queue {:.3} ms, wall {:.3} ms ({:.0} ev/s)",
            self.events,
            self.handler_ns as f64 / 1e6,
            self.queue_ns as f64 / 1e6,
            self.wall_ns as f64 / 1e6,
            self.events_per_sec()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_class() {
        let mut p = Profiler::new();
        p.record("a", 100);
        p.record("a", 300);
        p.record("b", 50);
        let s = p.snapshot();
        assert_eq!(s.events, 3);
        assert_eq!(s.handler_ns, 450);
        assert_eq!(s.classes[0].name, "a"); // heaviest first
        assert_eq!(s.classes[0].count, 2);
        assert_eq!(s.classes[0].max_ns, 300);
        assert!((s.classes[0].mean_ns() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn buckets_are_log_spaced() {
        let mut c = ClassStats::new("x");
        c.record(0); // bucket 0 (ns|1 == 1)
        c.record(1); // bucket 1? 64-lz(1)=1
        c.record(1024); // 64-lz(1024)=11
        assert_eq!(c.buckets.iter().sum::<u64>(), 3);
        assert_eq!(c.buckets[11], 1);
    }

    #[test]
    fn render_mentions_classes_and_totals() {
        let mut p = Profiler::new();
        p.record("deliver", 1000);
        p.queue_ns = 500;
        let text = p.snapshot().render();
        assert!(text.contains("deliver"));
        assert!(text.contains("queue(pop/peek)"));
        assert!(text.contains("total: 1 events"));
    }
}
