//! Cancellable/re-armable timers on top of the append-only event queue.
//!
//! The [`EventQueue`](crate::EventQueue) cannot remove scheduled entries, so
//! components that re-arm timers (interrupt throttling timers, governor
//! ticks with disable windows, low-activity watchdogs) use a generation
//! token: each arm increments the generation, the scheduled event carries
//! the generation it was armed with, and stale firings are ignored.

use crate::time::SimTime;

/// A logical timer slot with generation-based cancellation.
///
/// # Example
///
/// ```
/// use desim::{TimerSlot, SimTime};
///
/// let mut t = TimerSlot::new();
/// let g1 = t.arm(SimTime::from_us(10));
/// let g2 = t.arm(SimTime::from_us(20)); // re-arm supersedes g1
/// assert!(!t.fires(g1)); // stale
/// assert!(t.fires(g2));
/// t.disarm();
/// assert!(!t.fires(g2));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct TimerSlot {
    generation: u64,
    armed: bool,
    deadline: SimTime,
}

impl TimerSlot {
    /// Creates a disarmed timer.
    #[must_use]
    pub fn new() -> Self {
        TimerSlot::default()
    }

    /// Arms (or re-arms) the timer for `deadline`, invalidating any earlier
    /// arm. Returns the generation token to embed in the scheduled event.
    pub fn arm(&mut self, deadline: SimTime) -> u64 {
        self.generation += 1;
        self.armed = true;
        self.deadline = deadline;
        self.generation
    }

    /// Cancels the timer; all outstanding generations become stale.
    pub fn disarm(&mut self) {
        self.generation += 1;
        self.armed = false;
    }

    /// `true` if an event carrying `generation` is the live arming and the
    /// timer should fire. The timer disarms itself on a positive answer, so
    /// periodic timers must re-[`arm`](Self::arm).
    pub fn fires(&mut self, generation: u64) -> bool {
        if self.armed && generation == self.generation {
            self.armed = false;
            true
        } else {
            false
        }
    }

    /// `true` while an arming is outstanding.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Deadline of the live arming. Meaningless when disarmed.
    #[must_use]
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_only_current_generation() {
        let mut t = TimerSlot::new();
        let g1 = t.arm(SimTime::from_us(1));
        let g2 = t.arm(SimTime::from_us(2));
        assert!(!t.fires(g1));
        assert!(t.is_armed());
        assert!(t.fires(g2));
        assert!(!t.is_armed());
        // A fired generation cannot fire twice.
        assert!(!t.fires(g2));
    }

    #[test]
    fn disarm_invalidates() {
        let mut t = TimerSlot::new();
        let g = t.arm(SimTime::from_us(5));
        t.disarm();
        assert!(!t.fires(g));
        assert!(!t.is_armed());
    }

    #[test]
    fn deadline_tracks_live_arm() {
        let mut t = TimerSlot::new();
        t.arm(SimTime::from_us(7));
        assert_eq!(t.deadline(), SimTime::from_us(7));
        t.arm(SimTime::from_us(9));
        assert_eq!(t.deadline(), SimTime::from_us(9));
    }

    #[test]
    fn rearm_after_fire_works() {
        let mut t = TimerSlot::new();
        let g1 = t.arm(SimTime::from_us(1));
        assert!(t.fires(g1));
        let g2 = t.arm(SimTime::from_us(2));
        assert!(t.fires(g2));
    }
}
