//! # desim — deterministic discrete-event simulation engine
//!
//! This crate is the foundation of the NCAP reproduction: a minimal,
//! fully deterministic discrete-event simulation (DES) kernel. Every other
//! crate in the workspace (CPU, NIC, network, kernel, applications) is a
//! passive state machine driven by events scheduled through this engine.
//!
//! Determinism is a hard requirement: a simulation run must be a pure
//! function of its configuration and seed so experiments are reproducible
//! and debuggable. Two mechanisms guarantee it:
//!
//! * [`EventQueue`] orders events by `(time, insertion sequence)`, so
//!   simultaneous events always fire in the order they were scheduled.
//!   The default backend is a calendar queue (O(1) amortized push/pop);
//!   a reference `BinaryHeap` backend remains selectable via
//!   [`QueueBackend`] as a differential-test oracle, and both deliver
//!   identical streams.
//! * [`SplitMix64`] provides a tiny, dependency-free deterministic RNG for
//!   internal jitter; workload-level randomness uses seeded `rand` RNGs in
//!   higher layers.
//!
//! ## Example
//!
//! ```
//! use desim::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(SimTime::ZERO + SimDuration::from_us(5), "second");
//! q.push(SimTime::ZERO, "first");
//! assert_eq!(q.pop().map(|(_, e)| e), Some("first"));
//! assert_eq!(q.pop().map(|(_, e)| e), Some("second"));
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod config;
pub mod profiler;
pub mod queue;
pub mod rng;
pub mod runner;
pub mod time;
pub mod timer;

pub use config::ConfigError;
pub use profiler::{ClassStats, Profile, PROFILE_BUCKETS};
pub use queue::{EventQueue, QueueBackend};
pub use rng::SplitMix64;
pub use runner::{EventHandler, RunOutcome, Simulation};
pub use time::{SimDuration, SimTime};
pub use timer::TimerSlot;
