//! Differential oracle for the calendar event queue.
//!
//! The calendar backend replaced the `BinaryHeap` on the simulator's hot
//! path, and the queue is the determinism keystone: every bit of every
//! experiment result depends on its `(time, seq)` delivery order. These
//! tests *prove* the swap is invisible rather than assuming it — the same
//! randomized operation stream drives both backends and every observable
//! (popped `(time, event)` pairs, `peek_time`, `len`, all four counters)
//! must match exactly, operation by operation.
//!
//! Coverage includes the adversarial shapes named in the issue:
//! all-same-instant floods (one hot bucket, FIFO by seq), far-future
//! outliers (the overflow ladder and year re-anchoring), dense ramps that
//! cross grow-resize boundaries, and drain phases that cross
//! shrink-resize boundaries, plus `clear` and `pop_batch_until`
//! interleavings.

use check::{ensure, Check, Rng};
use desim::{EventQueue, QueueBackend, SimTime};

/// One queue operation, generated from a seeded RNG.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    /// Push at `base_hint + offset` ns; the event payload is the push
    /// ordinal so FIFO violations are visible in the output stream.
    Push(u64),
    Pop,
    /// Pop everything at or before the current minimum plus the given
    /// slack, capped at the given batch size.
    PopBatch(u64, usize),
    Clear,
    Peek,
}

/// Drives both backends through `ops`, asserting identical observables
/// after every single operation. Returns the number of events popped
/// (for coverage accounting).
fn run_differential(ops: &[Op]) -> Result<u64, String> {
    let mut calendar: EventQueue<u64> = EventQueue::with_backend(QueueBackend::Calendar);
    let mut oracle: EventQueue<u64> = EventQueue::with_backend(QueueBackend::BinaryHeap);
    let mut ordinal = 0u64;
    let mut popped = 0u64;
    let mut batch_a = Vec::new();
    let mut batch_b = Vec::new();
    for (step, &op) in ops.iter().enumerate() {
        match op {
            Op::Push(t) => {
                let at = SimTime::from_nanos(t);
                calendar.push(at, ordinal);
                oracle.push(at, ordinal);
                ordinal += 1;
            }
            Op::Pop => {
                let a = calendar.pop();
                let b = oracle.pop();
                ensure!(a == b, "step {step}: pop mismatch {a:?} vs {b:?}");
                popped += u64::from(a.is_some());
            }
            Op::PopBatch(slack, max) => {
                let bound = match oracle.peek_time() {
                    Some(t) => SimTime::from_nanos(t.as_nanos().saturating_add(slack)),
                    None => SimTime::from_nanos(slack),
                };
                batch_a.clear();
                batch_b.clear();
                let na = calendar.pop_batch_until(bound, max, &mut batch_a);
                let nb = oracle.pop_batch_until(bound, max, &mut batch_b);
                ensure!(
                    na == nb && batch_a == batch_b,
                    "step {step}: batch mismatch ({na} events) {batch_a:?} vs {batch_b:?}"
                );
                popped += na as u64;
            }
            Op::Clear => {
                calendar.clear();
                oracle.clear();
            }
            Op::Peek => {}
        }
        ensure!(
            calendar.peek_time() == oracle.peek_time(),
            "step {step} ({op:?}): peek {:?} vs {:?}",
            calendar.peek_time(),
            oracle.peek_time()
        );
        ensure!(
            calendar.len() == oracle.len(),
            "step {step}: len {} vs {}",
            calendar.len(),
            oracle.len()
        );
        let counters =
            |q: &EventQueue<u64>| (q.total_pushed(), q.total_popped(), q.total_cleared());
        ensure!(
            counters(&calendar) == counters(&oracle),
            "step {step}: counters {:?} vs {:?}",
            counters(&calendar),
            counters(&oracle)
        );
        ensure!(
            calendar.total_pushed()
                == calendar.total_popped() + calendar.total_cleared() + calendar.len() as u64,
            "step {step}: conservation identity broken: {calendar:?}"
        );
    }
    Ok(popped)
}

/// Generates a mixed op stream biased toward a regime, with a sliding
/// time base so pushed times generally advance like a real simulation.
fn gen_ops(rng: &mut Rng, n: usize, regime: u64) -> Vec<Op> {
    let mut ops = Vec::with_capacity(n);
    let mut base = 0u64;
    for _ in 0..n {
        let roll = rng.next_below(100);
        let op = match regime {
            // Same-instant floods: long runs at one time point.
            0 if roll < 70 => Op::Push(base),
            // Far-future outliers: occasionally fling an event ~hours out.
            1 if roll < 15 => Op::Push(base + 3_600_000_000_000 + rng.next_below(1 << 30)),
            // Dense ramp: mostly pushes with small strides (grow resizes).
            2 if roll < 80 => {
                base += rng.next_below(200);
                Op::Push(base + rng.next_below(10_000))
            }
            _ if roll < 55 => {
                base += rng.next_below(2_000);
                Op::Push(base + rng.next_below(1_000_000))
            }
            _ if roll < 80 => Op::Pop,
            _ if roll < 90 => Op::PopBatch(rng.next_below(2), 1 + rng.next_below(64) as usize),
            _ if roll < 93 => Op::Clear,
            _ => Op::Peek,
        };
        ops.push(op);
    }
    // Drain fully so shrink resizes and the final tail are exercised.
    for _ in 0..n {
        ops.push(Op::Pop);
    }
    ops
}

/// The acceptance-criteria run: ≥ 10^5 randomized operations per seed,
/// several explicit seeds, three regimes each.
#[test]
fn calendar_matches_heap_oracle_at_scale() {
    let mut total_ops = 0u64;
    for seed in [1, 0x4E43_4150, 0xDEAD_BEEF, 42] {
        for regime in 0..3 {
            let mut rng = Rng::new(seed ^ (regime << 32));
            let ops = gen_ops(&mut rng, 60_000, regime);
            total_ops += ops.len() as u64;
            if let Err(f) = run_differential(&ops) {
                panic!("seed {seed:#x} regime {regime}: {f}");
            }
        }
    }
    assert!(
        total_ops >= 100_000 * 4,
        "acceptance floor: 10^5 ops per seed, got {total_ops} across 4 seeds"
    );
}

/// Shrinking property-test variant: smaller cases, but when a mismatch
/// ever appears the harness binary-searches a minimal op stream.
#[test]
fn prop_calendar_equals_heap() {
    Check::new("calendar_queue_differential").max_size(400).run(
        |rng, size| {
            let regime = rng.next_below(3);
            gen_ops(rng, size.max(1), regime)
        },
        |ops| run_differential(ops).map(|_| ()),
    );
}

/// All-same-instant flood big enough to cross several grow resizes,
/// drained with batch pops: delivery must stay FIFO and identical.
#[test]
fn same_instant_flood_differential() {
    let mut ops: Vec<Op> = (0..20_000).map(|_| Op::Push(12_345)).collect();
    ops.extend((0..400).map(|_| Op::PopBatch(0, 64)));
    ops.extend((0..20_000).map(|_| Op::Pop));
    run_differential(&ops).expect("flood must match oracle");
}

/// Alternating near/far pushes with full drains in between forces the
/// overflow ladder to spill into the lanes repeatedly (year re-anchors
/// on every drain-then-push-far cycle).
#[test]
fn overflow_ladder_churn_differential() {
    let mut ops = Vec::new();
    let mut rng = Rng::new(7);
    for cycle in 0u64..50 {
        let day = cycle * 86_400_000_000_000; // one simulated day apart
        for _ in 0..200 {
            ops.push(Op::Push(day + rng.next_below(1_000_000)));
        }
        for _ in 0..10 {
            ops.push(Op::Push(day + 3_600_000_000_000 + rng.next_below(1_000)));
        }
        for _ in 0..210 {
            ops.push(Op::Pop);
        }
    }
    run_differential(&ops).expect("ladder churn must match oracle");
}

/// Clear in the middle of deep structures: counters and subsequent FIFO
/// order (seq not reset) must agree with the oracle.
#[test]
fn clear_interleaving_differential() {
    let mut ops = Vec::new();
    let mut rng = Rng::new(99);
    for round in 0u64..30 {
        for _ in 0..500 {
            ops.push(Op::Push(round * 1_000_000 + rng.next_below(500_000)));
        }
        ops.push(Op::Clear);
        for _ in 0..50 {
            ops.push(Op::Push(round * 1_000_000 + rng.next_below(500_000)));
        }
        for _ in 0..50 {
            ops.push(Op::Pop);
        }
    }
    run_differential(&ops).expect("clear interleaving must match oracle");
}
