//! cpuidle governors: choosing sleep states for idle cores.
//!
//! The paper describes Linux's two policies (§2.1, citing Pallipadi, Li &
//! Belay's "cpuidle: Do nothing, efficiently"):
//!
//! * **ladder** — walk one state deeper each time the core slept "long
//!   enough" in the current state, back off after short sleeps;
//! * **menu** — predict the coming idle duration from recent history and
//!   jump directly to the most efficient state whose target residency
//!   fits the prediction (the Linux default, and what the paper's `idle`
//!   policies use).
//!
//! A third, [`PollIdle`], models C-states being disabled (`perf`/`ond`
//! policies): the core stays in the C0 polling loop.

use cpusim::CState;
use desim::{SimDuration, SimTime};

/// A sleep-state selection policy, invoked from the kernel idle loop.
pub trait CpuidleGovernor {
    /// Chooses a sleep state for `core` going idle at `now`. `None` means
    /// "stay in the C0 polling loop".
    fn select(&mut self, core: usize, now: SimTime) -> Option<CState>;

    /// Reports the idle period that just ended, so predictive governors
    /// can learn. `slept` is the time between idle entry and wake-up.
    fn note_idle_end(&mut self, core: usize, now: SimTime, slept: SimDuration);

    /// Governor name, as in `/sys/devices/system/cpu/cpuidle/current_governor`.
    fn name(&self) -> &'static str;
}

/// C-states disabled: never sleeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PollIdle;

impl CpuidleGovernor for PollIdle {
    fn select(&mut self, _: usize, _: SimTime) -> Option<CState> {
        None
    }

    fn note_idle_end(&mut self, _: usize, _: SimTime, _: SimDuration) {}

    fn name(&self) -> &'static str {
        "poll"
    }
}

/// The ladder governor: stepwise promotion/demotion.
#[derive(Debug, Clone)]
pub struct Ladder {
    /// Per-core current rung into [`CState::SLEEP_STATES`].
    rung: Vec<usize>,
}

impl Ladder {
    /// Creates a ladder governor for `cores` cores, all starting at C1.
    #[must_use]
    pub fn new(cores: usize) -> Self {
        Ladder {
            rung: vec![0; cores],
        }
    }
}

impl CpuidleGovernor for Ladder {
    fn select(&mut self, core: usize, _: SimTime) -> Option<CState> {
        Some(CState::SLEEP_STATES[self.rung[core]])
    }

    fn note_idle_end(&mut self, core: usize, _: SimTime, slept: SimDuration) {
        let rung = &mut self.rung[core];
        let current = CState::SLEEP_STATES[*rung];
        if slept >= current.target_residency() {
            // Slept long enough: promote one state deeper next time.
            *rung = (*rung + 1).min(CState::SLEEP_STATES.len() - 1);
        } else if slept < current.exit_latency() * 2 {
            // Very short sleep: demote.
            *rung = rung.saturating_sub(1);
        }
    }

    fn name(&self) -> &'static str {
        "ladder"
    }
}

/// Number of recent idle intervals the menu governor remembers per core
/// (Linux uses the same constant, `INTERVALS = 8`).
pub const MENU_INTERVALS: usize = 8;

/// The menu governor: history-based idle-duration prediction.
///
/// Faithful-in-spirit simplification of Linux's menu governor: per core it
/// keeps the last [`MENU_INTERVALS`] observed idle durations. When the
/// intervals are *stable* (low coefficient of variation) the prediction is
/// their average, shrunk by a correction factor (EWMA of
/// observed/predicted — the role of Linux's `correction_factor` buckets).
/// When the intervals are *bimodal or erratic* — short in-burst gaps mixed
/// with long inter-burst gaps — Linux's menu falls back to the
/// next-timer-event estimate, which on a quiescent server is long; the
/// model mirrors that with a long fallback prediction. This reproduces the
/// pathology the paper measures in §3/Figure 4(b): during request surges
/// the menu governor still drops cores into C3/C6 for ~30 µs dips, paying
/// wake latency on the critical path — precisely what NCAP's
/// burst-scoped menu disable prevents.
#[derive(Debug, Clone)]
pub struct Menu {
    history: Vec<[u64; MENU_INTERVALS]>,
    cursor: Vec<usize>,
    filled: Vec<usize>,
    /// EWMA of (actual / predicted), clamped to [0.1, 1.0].
    correction: Vec<f64>,
    last_prediction_ns: Vec<u64>,
}

impl Menu {
    /// Creates a menu governor for `cores` cores.
    #[must_use]
    pub fn new(cores: usize) -> Self {
        Menu {
            history: vec![[0; MENU_INTERVALS]; cores],
            cursor: vec![0; cores],
            filled: vec![0; cores],
            correction: vec![1.0; cores],
            last_prediction_ns: vec![0; cores],
        }
    }

    /// The long-fallback prediction used when interval history is erratic
    /// (Linux would consult the next timer event; on a mostly-idle server
    /// that is milliseconds away).
    pub const TIMER_FALLBACK: SimDuration = SimDuration::from_ms(1);

    /// The governor's current idle-duration prediction for `core`.
    #[must_use]
    pub fn predict(&self, core: usize) -> SimDuration {
        let filled = self.filled[core];
        if filled == 0 {
            // No history: fall back to the next-timer estimate.
            return Self::TIMER_FALLBACK;
        }
        let vals = &self.history[core][..filled];
        let avg = vals.iter().sum::<u64>() as f64 / filled as f64;
        let var = vals
            .iter()
            .map(|&v| {
                let d = v as f64 - avg;
                d * d
            })
            .sum::<f64>()
            / filled as f64;
        let cv = if avg > 0.0 { var.sqrt() / avg } else { 0.0 };
        if cv > 0.5 {
            // Erratic/bimodal intervals: Linux menu distrusts the history
            // and uses the (long) next-timer estimate — the over-prediction
            // that causes mid-burst C6 dips.
            Self::TIMER_FALLBACK
        } else {
            SimDuration::from_nanos((avg * self.correction[core]) as u64)
        }
    }
}

impl CpuidleGovernor for Menu {
    fn select(&mut self, core: usize, now: SimTime) -> Option<CState> {
        let predicted = self.predict(core);
        self.last_prediction_ns[core] = predicted.as_nanos();
        // Deepest state whose residency fits the predicted idle period.
        let chosen = CState::SLEEP_STATES
            .iter()
            .rev()
            .copied()
            .find(|s| s.target_residency() <= predicted)
            .or(Some(CState::C1));
        if simtrace::is_enabled() {
            let t = now.as_nanos();
            simtrace::complete(
                "governors",
                "menu_select",
                t,
                0,
                &[
                    simtrace::arg("core", core),
                    simtrace::arg("predicted_ns", predicted.as_nanos()),
                    simtrace::arg("cstate", chosen.map_or(0, |c| c.index() as u64 + 1)),
                ],
            );
            simtrace::metric_add("governors", "menu_selects", t, 1.0);
        }
        chosen
    }

    fn note_idle_end(&mut self, core: usize, now: SimTime, slept: SimDuration) {
        simtrace::instant_args(
            "governors",
            "menu_idle_end",
            now.as_nanos(),
            &[
                simtrace::arg("core", core),
                simtrace::arg("slept_ns", slept.as_nanos()),
            ],
        );
        let cur = self.cursor[core];
        self.history[core][cur] = slept.as_nanos();
        self.cursor[core] = (cur + 1) % MENU_INTERVALS;
        self.filled[core] = (self.filled[core] + 1).min(MENU_INTERVALS);
        let predicted = self.last_prediction_ns[core];
        if predicted > 0 {
            let ratio = (slept.as_nanos() as f64 / predicted as f64).clamp(0.1, 1.0);
            self.correction[core] = 0.8 * self.correction[core] + 0.2 * ratio;
        }
    }

    fn name(&self) -> &'static str {
        "menu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::{ensure, gen, Check};

    #[test]
    fn poll_never_sleeps() {
        let mut g = PollIdle;
        assert_eq!(g.select(0, SimTime::ZERO), None);
        g.note_idle_end(0, SimTime::ZERO, SimDuration::from_ms(1));
        assert_eq!(g.select(0, SimTime::ZERO), None);
        assert_eq!(g.name(), "poll");
    }

    #[test]
    fn ladder_promotes_on_long_sleeps() {
        let mut g = Ladder::new(1);
        assert_eq!(g.select(0, SimTime::ZERO), Some(CState::C1));
        g.note_idle_end(0, SimTime::ZERO, SimDuration::from_ms(1));
        assert_eq!(g.select(0, SimTime::ZERO), Some(CState::C3));
        g.note_idle_end(0, SimTime::ZERO, SimDuration::from_ms(1));
        assert_eq!(g.select(0, SimTime::ZERO), Some(CState::C6));
        // Saturates at the deepest state.
        g.note_idle_end(0, SimTime::ZERO, SimDuration::from_ms(1));
        assert_eq!(g.select(0, SimTime::ZERO), Some(CState::C6));
    }

    #[test]
    fn ladder_demotes_on_short_sleeps() {
        let mut g = Ladder::new(1);
        g.note_idle_end(0, SimTime::ZERO, SimDuration::from_ms(1)); // → C3
        g.note_idle_end(0, SimTime::ZERO, SimDuration::from_nanos(100)); // short → C1
        assert_eq!(g.select(0, SimTime::ZERO), Some(CState::C1));
    }

    #[test]
    fn ladder_cores_are_independent() {
        let mut g = Ladder::new(2);
        g.note_idle_end(0, SimTime::ZERO, SimDuration::from_ms(1));
        assert_eq!(g.select(0, SimTime::ZERO), Some(CState::C3));
        assert_eq!(g.select(1, SimTime::ZERO), Some(CState::C1));
    }

    #[test]
    fn menu_with_long_history_goes_deep() {
        let mut g = Menu::new(1);
        for _ in 0..8 {
            g.select(0, SimTime::ZERO);
            g.note_idle_end(0, SimTime::ZERO, SimDuration::from_ms(2));
        }
        assert_eq!(g.select(0, SimTime::ZERO), Some(CState::C6));
    }

    #[test]
    fn menu_with_short_history_stays_shallow() {
        let mut g = Menu::new(1);
        for _ in 0..8 {
            g.select(0, SimTime::ZERO);
            g.note_idle_end(0, SimTime::ZERO, SimDuration::from_us(15));
        }
        // Average ≈ 15 us fits C1 (10 us) but not C3 (40 us).
        assert_eq!(g.select(0, SimTime::ZERO), Some(CState::C1));
    }

    #[test]
    fn menu_learns_overprediction_on_stable_history() {
        let mut g = Menu::new(1);
        // Seed with long idles, then observe consistently short ones:
        // once the history is uniformly short (low variance), the
        // correction factor pulls the prediction down.
        for _ in 0..8 {
            g.select(0, SimTime::ZERO);
            g.note_idle_end(0, SimTime::ZERO, SimDuration::from_ms(5));
        }
        assert_eq!(g.select(0, SimTime::ZERO), Some(CState::C6));
        for _ in 0..20 {
            g.select(0, SimTime::ZERO);
            g.note_idle_end(0, SimTime::ZERO, SimDuration::from_us(20));
        }
        let s = g.select(0, SimTime::ZERO);
        assert!(s == Some(CState::C1) || s == Some(CState::C3), "got {s:?}");
    }

    #[test]
    fn menu_overpredicts_on_bimodal_history() {
        // The paper's §3 observation: mixing long inter-burst idles with
        // short in-burst gaps makes menu keep choosing deep states, so
        // cores take ~30 us C6 dips during surges.
        let mut g = Menu::new(1);
        for i in 0..8 {
            g.select(0, SimTime::ZERO);
            let d = if i % 2 == 0 {
                SimDuration::from_ms(8)
            } else {
                SimDuration::from_us(30)
            };
            g.note_idle_end(0, SimTime::ZERO, d);
        }
        assert_eq!(g.select(0, SimTime::ZERO), Some(CState::C6));
    }

    #[test]
    fn menu_prediction_is_bounded_by_history() {
        let mut g = Menu::new(1);
        g.select(0, SimTime::ZERO);
        g.note_idle_end(0, SimTime::ZERO, SimDuration::from_us(100));
        let p = g.predict(0);
        assert!(p <= SimDuration::from_us(100));
        assert!(p >= SimDuration::from_us(10));
    }

    /// Invariant `menu governor residency guard`: whatever the history,
    /// menu never selects a state whose target residency exceeds its own
    /// prediction (except the C1 floor).
    #[test]
    fn prop_menu_selection_fits_prediction() {
        Check::new("menu_selection_fits_prediction").run(
            |rng, size| gen::vec_with(rng, size, 1, 30, |r| gen::u64_in(r, 1, 20_000_000)),
            |idles| {
                let mut g = Menu::new(1);
                for &ns in idles {
                    g.select(0, SimTime::ZERO);
                    g.note_idle_end(0, SimTime::ZERO, SimDuration::from_nanos(ns));
                }
                let predicted = g.predict(0);
                let chosen = g.select(0, SimTime::ZERO).expect("menu always sleeps");
                if chosen != CState::C1 {
                    ensure!(
                        chosen.target_residency() <= predicted,
                        "{chosen} residency exceeds prediction {predicted}"
                    );
                }
                Ok(())
            },
        );
    }

    /// The ladder moves at most one rung per observation and stays in
    /// bounds.
    #[test]
    fn prop_ladder_moves_one_rung() {
        Check::new("ladder_moves_one_rung").run(
            |rng, size| gen::vec_with(rng, size, 1, 50, |r| gen::u64_in(r, 1, 10_000_000)),
            |idles| {
                let mut g = Ladder::new(1);
                let mut last = g.select(0, SimTime::ZERO).unwrap().index();
                for &ns in idles {
                    g.note_idle_end(0, SimTime::ZERO, SimDuration::from_nanos(ns));
                    let cur = g.select(0, SimTime::ZERO).unwrap().index();
                    ensure!(cur.abs_diff(last) <= 1, "jumped {last} -> {cur}");
                    last = cur;
                }
                Ok(())
            },
        );
    }

    #[test]
    fn menu_never_returns_none() {
        let mut g = Menu::new(1);
        // Even with tiny history, menu picks at least C1 (Linux's menu
        // always returns a state; disabling C-states is a separate knob).
        g.select(0, SimTime::ZERO);
        g.note_idle_end(0, SimTime::ZERO, SimDuration::from_nanos(10));
        assert!(g.select(0, SimTime::ZERO).is_some());
    }
}
