//! # governors — Linux-like cpufreq and cpuidle policies
//!
//! Re-implementations of the power-management policies the paper evaluates
//! (§2.1): the static **performance**, **powersave** and **userspace**
//! cpufreq governors, the dynamic **ondemand** governor with its
//! utilization sampling and configurable invocation period, and the
//! **menu** and **ladder** cpuidle governors that pick sleep states for
//! idle cores.
//!
//! The governors are pure decision logic: the OS layer (`oskernel`)
//! samples utilization, invokes them on their schedule, charges their
//! invocation overhead to a core, and applies their decisions through the
//! cpufreq/cpuidle driver models.
//!
//! ## Example
//!
//! ```
//! use governors::{CpufreqGovernor, Ondemand};
//! use cpusim::PStateTable;
//! use desim::{SimDuration, SimTime};
//!
//! let table = PStateTable::i7_like();
//! let mut ond = Ondemand::with_period(SimDuration::from_ms(10));
//! // 90 % utilization exceeds the up-threshold: jump to P0.
//! let t = ond.target(SimTime::ZERO, 0.9, table.deepest(), &table);
//! assert_eq!(t, table.fastest());
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod cpufreq;
pub mod cpuidle;

pub use cpufreq::{Conservative, CpufreqGovernor, Ondemand, Performance, Powersave, Userspace};
pub use cpuidle::{CpuidleGovernor, Ladder, Menu, PollIdle};
