//! cpufreq governors: mapping utilization to P-states.
//!
//! Linux offers three static policies (performance, powersave, userspace)
//! and the dynamic ondemand policy (paper §2.1, citing Pallipadi &
//! Starikovskiy). Ondemand samples utilization every invocation period —
//! hard-coded to a 10 ms minimum in mainline Linux; the paper recompiled
//! the kernel to explore 1 ms periods (Figure 2), so the period here is a
//! constructor parameter.

use cpusim::{PStateId, PStateTable};
use desim::{SimDuration, SimTime};

/// A P-state selection policy, invoked by the kernel's cpufreq core.
pub trait CpufreqGovernor {
    /// Chooses the target P-state given the utilization observed over the
    /// last sampling window (`0.0..=1.0`, the max across cores of the
    /// shared frequency domain).
    fn target(
        &mut self,
        now: SimTime,
        utilization: f64,
        current: PStateId,
        table: &PStateTable,
    ) -> PStateId;

    /// Invocation period for dynamic governors; `None` for static ones
    /// (the kernel then applies them once and never ticks them).
    fn period(&self) -> Option<SimDuration> {
        None
    }

    /// Governor name, as it would appear in
    /// `/sys/devices/system/cpu/cpufreq/scaling_governor`.
    fn name(&self) -> &'static str;
}

/// Always runs at P0 — the paper's `perf` baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Performance;

impl CpufreqGovernor for Performance {
    fn target(&mut self, _: SimTime, _: f64, _: PStateId, table: &PStateTable) -> PStateId {
        table.fastest()
    }

    fn name(&self) -> &'static str {
        "performance"
    }
}

/// Always runs at the deepest P-state (lowest V/F).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Powersave;

impl CpufreqGovernor for Powersave {
    fn target(&mut self, _: SimTime, _: f64, _: PStateId, table: &PStateTable) -> PStateId {
        table.deepest()
    }

    fn name(&self) -> &'static str {
        "powersave"
    }
}

/// Pins the frequency to a user-chosen P-state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Userspace {
    target: PStateId,
}

impl Userspace {
    /// Creates a governor pinned to `target`.
    #[must_use]
    pub fn new(target: PStateId) -> Self {
        Userspace { target }
    }

    /// Repins the frequency (the sysfs `scaling_setspeed` write).
    pub fn set_target(&mut self, target: PStateId) {
        self.target = target;
    }
}

impl CpufreqGovernor for Userspace {
    fn target(&mut self, _: SimTime, _: f64, _: PStateId, _: &PStateTable) -> PStateId {
        self.target
    }

    fn name(&self) -> &'static str {
        "userspace"
    }
}

/// The dynamic ondemand governor.
///
/// Algorithm (per the Linux implementation the paper describes): every
/// sampling period, look at the utilization of the busiest core in the
/// frequency domain. If it exceeds `up_threshold` (80 %), jump straight
/// to the maximum frequency. Otherwise pick the lowest frequency that
/// would have kept utilization at the threshold:
/// `f_next = f_max × load / up_threshold`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ondemand {
    period: SimDuration,
    up_threshold: f64,
    invocations: u64,
}

impl Ondemand {
    /// Linux's hard-coded minimum sampling period (paper §2.1).
    pub const LINUX_MIN_PERIOD: SimDuration = SimDuration::from_ms(10);
    /// Default up-threshold (Linux default is 80 %).
    pub const DEFAULT_UP_THRESHOLD: f64 = 0.80;

    /// Ondemand at the Linux-default 10 ms period.
    #[must_use]
    pub fn new() -> Self {
        Ondemand::with_period(Self::LINUX_MIN_PERIOD)
    }

    /// Ondemand with a custom invocation period (the paper recompiled the
    /// kernel to try 1 ms — Figure 2).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn with_period(period: SimDuration) -> Self {
        assert!(!period.is_zero(), "invocation period must be positive");
        Ondemand {
            period,
            up_threshold: Self::DEFAULT_UP_THRESHOLD,
            invocations: 0,
        }
    }

    /// Overrides the up-threshold (fraction in `(0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if outside `(0, 1]`.
    #[must_use]
    pub fn up_threshold(mut self, t: f64) -> Self {
        assert!(t > 0.0 && t <= 1.0, "threshold must be in (0, 1]");
        self.up_threshold = t;
        self
    }

    /// Times the governor has been invoked.
    #[must_use]
    pub fn invocations(&self) -> u64 {
        self.invocations
    }
}

impl Default for Ondemand {
    fn default() -> Self {
        Ondemand::new()
    }
}

impl CpufreqGovernor for Ondemand {
    fn target(
        &mut self,
        now: SimTime,
        utilization: f64,
        _current: PStateId,
        table: &PStateTable,
    ) -> PStateId {
        self.invocations += 1;
        let u = utilization.clamp(0.0, 1.0);
        let target = if u > self.up_threshold {
            table.fastest()
        } else {
            table.for_freq_fraction(u / self.up_threshold)
        };
        if simtrace::is_enabled() {
            let t = now.as_nanos();
            simtrace::complete(
                "governors",
                "ondemand_decision",
                t,
                0,
                &[simtrace::arg("util", u), simtrace::arg("pstate", target.0)],
            );
            simtrace::metric_add("governors", "ondemand_decisions", t, 1.0);
        }
        target
    }

    fn period(&self) -> Option<SimDuration> {
        Some(self.period)
    }

    fn name(&self) -> &'static str {
        "ondemand"
    }
}

/// The conservative governor: Linux's other in-tree dynamic policy.
///
/// Unlike ondemand's jump-to-max, conservative walks the frequency up and
/// down in steps — gentler on power, slower to react. Provided for
/// completeness of the Linux cpufreq suite (the paper evaluates ondemand;
/// conservative makes the burst-reaction gap even wider, which the
/// `ablation_burstiness` bench exploits as a worst-case anchor).
#[derive(Debug, Clone, PartialEq)]
pub struct Conservative {
    period: SimDuration,
    up_threshold: f64,
    down_threshold: f64,
    /// Ladder steps taken per decision.
    step: u8,
    invocations: u64,
}

impl Conservative {
    /// Linux defaults: 80 % up, 20 % down, one frequency step per tick.
    #[must_use]
    pub fn new() -> Self {
        Conservative {
            period: SimDuration::from_ms(10),
            up_threshold: 0.80,
            down_threshold: 0.20,
            step: 1,
            invocations: 0,
        }
    }

    /// Overrides the invocation period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn with_period(mut self, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "invocation period must be positive");
        self.period = period;
        self
    }

    /// Times the governor has been invoked.
    #[must_use]
    pub fn invocations(&self) -> u64 {
        self.invocations
    }
}

impl Default for Conservative {
    fn default() -> Self {
        Conservative::new()
    }
}

impl CpufreqGovernor for Conservative {
    fn target(
        &mut self,
        now: SimTime,
        utilization: f64,
        current: PStateId,
        table: &PStateTable,
    ) -> PStateId {
        self.invocations += 1;
        let u = utilization.clamp(0.0, 1.0);
        let target = if u > self.up_threshold {
            table.step_up(current, self.step)
        } else if u < self.down_threshold {
            table.step_down(current, self.step)
        } else {
            current
        };
        if simtrace::is_enabled() {
            simtrace::complete(
                "governors",
                "conservative_decision",
                now.as_nanos(),
                0,
                &[simtrace::arg("util", u), simtrace::arg("pstate", target.0)],
            );
        }
        target
    }

    fn period(&self) -> Option<SimDuration> {
        Some(self.period)
    }

    fn name(&self) -> &'static str {
        "conservative"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PStateTable {
        PStateTable::i7_like()
    }

    #[test]
    fn performance_always_p0() {
        let t = table();
        let mut g = Performance;
        for u in [0.0, 0.5, 1.0] {
            assert_eq!(g.target(SimTime::ZERO, u, t.deepest(), &t), t.fastest());
        }
        assert_eq!(g.period(), None);
        assert_eq!(g.name(), "performance");
    }

    #[test]
    fn powersave_always_deepest() {
        let t = table();
        let mut g = Powersave;
        assert_eq!(g.target(SimTime::ZERO, 1.0, t.fastest(), &t), t.deepest());
        assert_eq!(g.name(), "powersave");
    }

    #[test]
    fn userspace_pins_and_repins() {
        let t = table();
        let mut g = Userspace::new(PStateId(7));
        assert_eq!(g.target(SimTime::ZERO, 1.0, t.fastest(), &t), PStateId(7));
        g.set_target(PStateId(2));
        assert_eq!(g.target(SimTime::ZERO, 0.0, t.fastest(), &t), PStateId(2));
        assert_eq!(g.name(), "userspace");
    }

    #[test]
    fn ondemand_jumps_to_max_above_threshold() {
        let t = table();
        let mut g = Ondemand::new();
        assert_eq!(g.target(SimTime::ZERO, 0.81, t.deepest(), &t), t.fastest());
        assert_eq!(g.target(SimTime::ZERO, 1.0, t.deepest(), &t), t.fastest());
    }

    #[test]
    fn ondemand_scales_proportionally_below_threshold() {
        let t = table();
        let mut g = Ondemand::new();
        // At 40 % load with an 80 % threshold, target f = f_max / 2.
        let p = g.target(SimTime::ZERO, 0.4, t.fastest(), &t);
        assert!(t.freq_hz(p) >= 1_550_000_000);
        assert!(p > t.fastest(), "should not stay at max");
        // Zero load goes to the deepest state.
        assert_eq!(g.target(SimTime::ZERO, 0.0, t.fastest(), &t), t.deepest());
    }

    #[test]
    fn ondemand_default_period_is_10ms() {
        let g = Ondemand::new();
        assert_eq!(g.period(), Some(SimDuration::from_ms(10)));
        assert_eq!(g.name(), "ondemand");
    }

    #[test]
    fn ondemand_counts_invocations() {
        let t = table();
        let mut g = Ondemand::with_period(SimDuration::from_ms(1));
        for _ in 0..5 {
            g.target(SimTime::ZERO, 0.5, t.fastest(), &t);
        }
        assert_eq!(g.invocations(), 5);
    }

    #[test]
    fn ondemand_monotone_in_utilization() {
        let t = table();
        let mut g = Ondemand::new();
        let mut last = t.deepest();
        for i in 0..=20 {
            let u = i as f64 / 20.0;
            let p = g.target(SimTime::ZERO, u, t.fastest(), &t);
            assert!(p <= last, "higher load must not pick deeper state");
            last = p;
        }
    }

    #[test]
    #[should_panic(expected = "invocation period must be positive")]
    fn zero_period_rejected() {
        let _ = Ondemand::with_period(SimDuration::ZERO);
    }

    #[test]
    fn conservative_steps_up_and_down() {
        let t = table();
        let mut g = Conservative::new();
        // High load: one step up per tick, never a jump.
        let p1 = g.target(SimTime::ZERO, 0.95, t.deepest(), &t);
        assert_eq!(p1, PStateId(t.deepest().0 - 1));
        let p2 = g.target(SimTime::ZERO, 0.95, p1, &t);
        assert_eq!(p2, PStateId(p1.0 - 1));
        // Mid load: hold.
        assert_eq!(g.target(SimTime::ZERO, 0.5, p2, &t), p2);
        // Low load: step back down.
        assert_eq!(g.target(SimTime::ZERO, 0.1, p2, &t), PStateId(p2.0 + 1));
        assert_eq!(g.name(), "conservative");
        assert_eq!(g.invocations(), 4);
        assert_eq!(g.period(), Some(SimDuration::from_ms(10)));
    }

    #[test]
    fn conservative_saturates_at_ladder_ends() {
        let t = table();
        let mut g = Conservative::new();
        assert_eq!(g.target(SimTime::ZERO, 1.0, t.fastest(), &t), t.fastest());
        assert_eq!(g.target(SimTime::ZERO, 0.0, t.deepest(), &t), t.deepest());
    }
}
