//! # ncap-bench — the experiment harness
//!
//! One bench target per table/figure of the paper (see DESIGN.md §5 for
//! the index). Each target is a `harness = false` binary run by
//! `cargo bench -p ncap-bench --bench <id>`, printing the same rows or
//! series the paper reports. This library holds the shared plumbing:
//! standard experiment construction, the SLA-finding sweep (the paper
//! sets the SLA at the 95th-percentile latency of the `perf` baseline at
//! the latency–load curve's inflection point, §6), and result-table
//! rendering.
//!
//! Set `NCAP_BENCH_FAST=1` to shrink simulated durations (~4× faster,
//! noisier percentiles). Set `NCAP_BENCH_SMOKE=1` to shrink them much
//! further still: every target becomes a seconds-long compile-and-run
//! sanity check (see `scripts/bench_smoke.sh`), not a measurement.

use cluster::ExperimentResult;
use cluster::{run_experiment, run_experiments_parallel, AppKind, ExperimentConfig, Policy};
use desim::SimDuration;
use simstats::{fmt_ns, Table};

pub use simstats::pct;

/// `true` when fast mode is requested via `NCAP_BENCH_FAST` (or implied
/// by smoke mode).
#[must_use]
pub fn fast_mode() -> bool {
    smoke_mode() || std::env::var_os("NCAP_BENCH_FAST").is_some_and(|v| v != "0")
}

/// `true` when tiny smoke mode is requested via `NCAP_BENCH_SMOKE`:
/// every target shrinks to a seconds-long compile-and-run sanity check,
/// not a measurement. Numbers printed under smoke mode are meaningless.
#[must_use]
pub fn smoke_mode() -> bool {
    std::env::var_os("NCAP_BENCH_SMOKE").is_some_and(|v| v != "0")
}

/// The standard measurement window pair (warmup, measure).
#[must_use]
pub fn durations() -> (SimDuration, SimDuration) {
    if smoke_mode() {
        (SimDuration::from_ms(5), SimDuration::from_ms(20))
    } else if fast_mode() {
        (SimDuration::from_ms(50), SimDuration::from_ms(150))
    } else {
        (SimDuration::from_ms(100), SimDuration::from_ms(400))
    }
}

/// A standard paper-setup experiment configuration.
#[must_use]
pub fn standard(app: AppKind, policy: Policy, load_rps: f64) -> ExperimentConfig {
    let (warmup, measure) = durations();
    ExperimentConfig::new(app, policy, load_rps).with_durations(warmup, measure)
}

/// The SLA derived from a latency–load sweep of the `perf` baseline.
#[derive(Debug, Clone)]
pub struct SlaResult {
    /// The SLA in nanoseconds (p95 at the inflection load).
    pub sla_ns: u64,
    /// The inflection (knee) load in requests/second.
    pub knee_rps: f64,
    /// The full `(load_rps, p95_ns)` curve.
    pub curve: Vec<(f64, u64)>,
}

/// Load points for the latency–load sweep of each application.
#[must_use]
pub fn sweep_loads(app: AppKind) -> Vec<f64> {
    match app {
        AppKind::Apache => vec![
            12_000.0, 24_000.0, 36_000.0, 45_000.0, 54_000.0, 60_000.0, 66_000.0, 72_000.0,
            78_000.0,
        ],
        AppKind::Memcached => vec![
            20_000.0, 35_000.0, 60_000.0, 90_000.0, 110_000.0, 127_000.0, 138_000.0, 150_000.0,
            165_000.0,
        ],
    }
}

/// Sweeps the `perf` baseline over [`sweep_loads`] and locates the
/// latency–load inflection: the last load whose p95 stays within 2.5× of
/// the low-load baseline (past the knee, queueing makes p95 blow up by
/// integer factors per step). The SLA is the p95 at that knee — the
/// paper's §6 procedure ("the SLA is typically set near the inflexion
/// point of the latency-load curve"). On this substrate the knees land at
/// ~54 K rps (Apache) and ~110 K rps (Memcached) — a 2.0× ratio against
/// the paper's 2.1×.
#[must_use]
pub fn find_sla(app: AppKind) -> SlaResult {
    let loads = sweep_loads(app);
    let configs: Vec<ExperimentConfig> = loads
        .iter()
        .map(|&l| standard(app, Policy::Perf, l))
        .collect();
    let results = run_experiments_parallel(&configs);
    let curve: Vec<(f64, u64)> = loads
        .iter()
        .zip(results.iter())
        .map(|(&l, r)| (l, r.latency.p95))
        .collect();
    let base = curve.first().map_or(1, |&(_, p)| p.max(1));
    let mut knee = curve[0];
    for &(l, p) in &curve {
        if p as f64 <= base as f64 * 2.5 {
            knee = (l, p);
        } else {
            break;
        }
    }
    SlaResult {
        sla_ns: knee.1,
        knee_rps: knee.0,
        curve,
    }
}

/// The three studied load levels, placed relative to this substrate's
/// own capacity the way the paper placed 24/45/66 K rps against its 68 K
/// Apache ceiling: high = the SLA anchor (the inflection load), medium ≈
/// 68 % of it, low ≈ 36 % of it.
#[must_use]
pub fn study_loads(app: AppKind, sla: &SlaResult) -> [f64; 3] {
    let _ = app;
    let knee = sla.knee_rps;
    [(0.36 * knee).round(), (0.68 * knee).round(), knee]
}

/// Runs all seven policies at one (app, load) point, in parallel.
#[must_use]
pub fn run_all_policies(app: AppKind, load: f64) -> Vec<ExperimentResult> {
    let configs: Vec<ExperimentConfig> = Policy::ALL
        .iter()
        .map(|&p| standard(app, p, load))
        .collect();
    run_experiments_parallel(&configs)
}

/// Renders the Figures 8/9 style policy table for one load level:
/// normalized response-time percentiles, SLA verdict, normalized energy.
#[must_use]
pub fn policy_table(results: &[ExperimentResult], sla_ns: u64) -> Table {
    let perf_energy = results
        .iter()
        .find(|r| r.policy == Policy::Perf)
        .map_or(1.0, |r| r.energy_j);
    let mut t = Table::new(vec![
        "policy", "p50/SLA", "p90/SLA", "p95/SLA", "p99/SLA", "SLA", "E/perf", "E (J)", "power",
    ]);
    for r in results {
        let [n50, n90, n95, n99] = r.latency.normalized(sla_ns);
        t.row(vec![
            r.policy.name().to_owned(),
            format!("{n50:.3}"),
            format!("{n90:.3}"),
            format!("{n95:.3}"),
            format!("{n99:.3}"),
            if r.latency.meets_sla(sla_ns) {
                "ok"
            } else {
                "VIOLATED"
            }
            .to_owned(),
            format!("{:.3}", r.energy_j / perf_energy),
            format!("{:.2}", r.energy_j),
            format!("{:.1}W", r.avg_power_w()),
        ]);
    }
    t
}

/// Renders one experiment result as a single summary line.
#[must_use]
pub fn summary_line(r: &ExperimentResult) -> String {
    format!(
        "{:10} load={:>7.0} p95={:>9} energy={:>7.2}J goodput={:.3} wakes={}",
        r.policy.name(),
        r.load_rps,
        fmt_ns(r.latency.p95),
        r.energy_j,
        r.goodput(),
        r.wake_markers
    )
}

/// Runs a single experiment with the standard durations (serial).
#[must_use]
pub fn run_one(app: AppKind, policy: Policy, load: f64) -> ExperimentResult {
    run_experiment(&standard(app, policy, load))
}

/// The full Figures 8/9 reproduction for one application: per-load policy
/// tables (normalized latency distribution + energy), plus the 200 ms
/// BW(Rx)-vs-frequency snapshots for `ond.idle` and `ncap.cons` with the
/// `INT (wake)` markers.
pub fn run_fig89(app: AppKind) {
    let sla = find_sla(app);
    println!(
        "SLA for {app}: p95 = {} at the {:.0} rps inflection (perf baseline)\n",
        fmt_ns(sla.sla_ns),
        sla.knee_rps
    );
    let labels = ["(a) low", "(b) medium", "(c) high"];
    for (label, &load) in labels.iter().zip(study_loads(app, &sla).iter()) {
        println!("--- {label} load: {load:.0} rps ---");
        let results = run_all_policies(app, load);
        println!("{}", policy_table(&results, sla.sla_ns));
    }

    println!("--- 200 ms BW(Rx) vs F snapshots at the low load ---");
    for policy in [Policy::OndIdle, Policy::NcapCons] {
        let cfg =
            standard(app, policy, app.paper_loads()[0]).with_trace(cluster::TraceConfig::per_ms());
        let r = run_experiment(&cfg);
        let traces = r.traces.as_ref().expect("tracing enabled");
        let start_ms = 100u64;
        let window = 200usize;
        let end_ns = (start_ms + window as u64) * 1_000_000;
        let rx = traces.rx.finish_normalized(end_ns);
        let freq = traces.freq.rebin(start_ms * 1_000_000, end_ns, window);
        println!(
            "{policy} (INT(wake) markers: {} in run):",
            traces.wake_markers.len()
        );
        let mut t = Table::new(vec!["t (ms)", "BW(Rx)", "F (GHz)", "INT(wake)"]);
        for i in (0..window).step_by(5) {
            let bin_start = (start_ms + i as u64) * 1_000_000;
            let bin_end = bin_start + 5_000_000;
            let marks = traces
                .wake_markers
                .iter()
                .filter(|m| (bin_start..bin_end).contains(&m.as_nanos()))
                .count();
            t.row(vec![
                format!("{}", start_ms + i as u64),
                format!(
                    "{:.2}",
                    rx.get(start_ms as usize + i).copied().unwrap_or(0.0)
                ),
                format!("{:.2}", freq[i]),
                if marks > 0 {
                    "*".repeat(marks.min(8))
                } else {
                    String::new()
                },
            ]);
        }
        println!("{t}");
    }
}

/// Writes a TSV data file when `NCAP_BENCH_DATA` names a directory —
/// the plot-friendly twin of the printed tables. Silently does nothing
/// when the variable is unset; IO errors are reported, not fatal.
pub fn dump_tsv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let Some(dir) = std::env::var_os("NCAP_BENCH_DATA") else {
        return;
    };
    let mut path = std::path::PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&path) {
        eprintln!("NCAP_BENCH_DATA: cannot create dir: {e}");
        return;
    }
    path.push(format!("{name}.tsv"));
    let mut text = headers.join("\t");
    text.push('\n');
    for row in rows {
        text.push_str(&row.join("\t"));
        text.push('\n');
    }
    if let Err(e) = std::fs::write(&path, text) {
        eprintln!("NCAP_BENCH_DATA: cannot write {}: {e}", path.display());
    } else {
        println!("(data written to {})", path.display());
    }
}

/// Prints the standard bench header.
pub fn header(id: &str, paper_ref: &str) {
    println!("================================================================");
    println!("{id} — reproduces {paper_ref}");
    println!("================================================================");
    if smoke_mode() {
        println!("(NCAP_BENCH_SMOKE: tiny sanity run, numbers are meaningless)");
    } else if fast_mode() {
        println!("(NCAP_BENCH_FAST: shortened measurement window)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_loads_cover_paper_points() {
        let a = sweep_loads(AppKind::Apache);
        for p in AppKind::Apache.paper_loads() {
            assert!(a.contains(&p), "missing apache paper load {p}");
        }
        let m = sweep_loads(AppKind::Memcached);
        for p in AppKind::Memcached.paper_loads() {
            assert!(m.contains(&p), "missing memcached paper load {p}");
        }
    }

    #[test]
    fn standard_config_uses_paper_setup() {
        let c = standard(AppKind::Apache, Policy::NcapCons, 24_000.0);
        assert_eq!(c.clients, 3);
        assert_eq!(c.burst_size, 200);
    }

    #[test]
    fn policy_table_renders_all_policies() {
        // Use a tiny run so the unit test stays fast.
        let cfg = ExperimentConfig::new(AppKind::Memcached, Policy::Perf, 30_000.0)
            .with_durations(SimDuration::from_ms(10), SimDuration::from_ms(30));
        let r = run_experiment(&cfg);
        let t = policy_table(std::slice::from_ref(&r), r.latency.p95.max(1));
        let text = t.to_string();
        assert!(text.contains("perf"));
        assert!(text.contains("ok"));
    }
}

#[cfg(test)]
mod dump_tests {
    use super::*;

    #[test]
    fn dump_is_noop_without_env() {
        // Must never error or write when the variable is unset.
        std::env::remove_var("NCAP_BENCH_DATA");
        dump_tsv("unit_test", &["a", "b"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn dump_writes_tsv_when_enabled() {
        let dir = std::env::temp_dir().join("ncap_bench_data_test");
        std::env::set_var("NCAP_BENCH_DATA", &dir);
        dump_tsv("unit_test", &["a", "b"], &[vec!["1".into(), "2".into()]]);
        std::env::remove_var("NCAP_BENCH_DATA");
        let text = std::fs::read_to_string(dir.join("unit_test.tsv")).unwrap();
        assert_eq!(text, "a\tb\n1\t2\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
