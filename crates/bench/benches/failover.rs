//! failover — cost of the backend-failure layer (DESIGN.md §14), not a
//! paper figure.
//!
//! The health prober is armed automatically whenever a failure schedule
//! is present, so its cost rides on every failure experiment — and an
//! *explicitly* armed prober on a fault-free fleet is the overhead a
//! cautious deployment would pay to keep detection always on. This
//! bench holds that acceptance number: wall time with the prober off vs
//! armed on the identical fault-free workload (the ≤5% budget), plus an
//! informational row with two backends actually crashing mid-run. The
//! fault-free variants must agree on every client-visible result — the
//! prober observes, it must not perturb.
//!
//! `scripts/bench_record.sh` records the JSON emitted when
//! `NCAP_BENCH_JSON=<path>` is set as `BENCH_8.json`.
//!
//! Run with: `cargo bench -p ncap-bench --bench failover`

use cluster::{
    run_experiment, AppKind, CoordinatorConfig, DispatchPolicy, ExperimentConfig, FailureSchedule,
    FleetConfig, HealthConfig, Policy, DEFAULT_FLEET_FAULT_SEED,
};
use desim::{SimDuration, SimTime};
use ncap_bench::{fast_mode, smoke_mode};
use simstats::Table;
use std::time::Instant;

/// Same operating point as `sim_throughput`/`attribution`: half the
/// memcached knee per backend, so the event stream the prober must
/// share the queue with is dense.
const PER_BACKEND_RPS: f64 = 120_000.0;
const PER_BACKEND_LOAD_RPS: f64 = 60_000.0;
const BACKENDS: usize = 8;

fn durations() -> (SimDuration, SimDuration) {
    if smoke_mode() {
        (SimDuration::from_ms(2), SimDuration::from_ms(5))
    } else if fast_mode() {
        (SimDuration::from_ms(10), SimDuration::from_ms(20))
    } else {
        // Longer than the sibling benches: the budget assertion divides
        // two wall times, so each must be long enough that scheduler
        // jitter cannot fake a busted budget.
        (SimDuration::from_ms(20), SimDuration::from_ms(100))
    }
}

fn cfg(fleet: FleetConfig) -> ExperimentConfig {
    let (warmup, measure) = durations();
    ExperimentConfig::new(
        AppKind::Memcached,
        Policy::NcapCons,
        PER_BACKEND_LOAD_RPS * BACKENDS as f64,
    )
    .with_durations(warmup, measure)
    .with_poisson()
    .with_fleet(fleet)
}

fn fleet() -> FleetConfig {
    FleetConfig::new(BACKENDS, DispatchPolicy::LeastOutstanding)
        .with_coordinator(CoordinatorConfig::new(PER_BACKEND_RPS).with_util_target(0.5))
}

struct Point {
    name: &'static str,
    events: u64,
    /// Best-of-reps wall seconds (min is the standard noise filter for
    /// a deterministic workload).
    wall_s: f64,
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

fn main() {
    ncap_bench::header(
        "failover",
        "cost of the backend-failure layer (DESIGN.md \u{a7}14), not a paper figure",
    );
    let mode = if smoke_mode() {
        "smoke"
    } else if fast_mode() {
        "fast"
    } else {
        "full"
    };
    let reps = if smoke_mode() {
        1
    } else if fast_mode() {
        2
    } else {
        5
    };
    println!("(mode: {mode}, {BACKENDS} memcached backends at half-knee, best of {reps} reps)\n");

    let (warmup, measure_d) = durations();
    let crash_at = warmup + measure_d / 4;
    let variants = [
        ("prober off (baseline)", cfg(fleet())),
        (
            "prober armed, no faults",
            cfg(fleet().with_health(HealthConfig::standard())),
        ),
        (
            "2 of 8 crashed mid-run",
            cfg(fleet().with_faults(FailureSchedule::seeded_stops(
                DEFAULT_FLEET_FAULT_SEED,
                BACKENDS,
                2,
                SimTime::ZERO + crash_at,
                SimTime::ZERO + crash_at + measure_d / 4,
                None,
            ))),
        ),
    ];

    // Interleave repetitions (round 1 of each, round 2 of each, …) so a
    // host-load drift mid-bench penalizes all variants alike.
    let mut points: Vec<Point> = variants
        .iter()
        .map(|(name, _)| Point {
            name,
            events: 0,
            wall_s: f64::INFINITY,
        })
        .collect();
    let mut results = Vec::new();
    for rep in 0..reps {
        for ((name, c), point) in variants.iter().zip(&mut points) {
            let t0 = Instant::now();
            let r = run_experiment(c);
            let wall = t0.elapsed().as_secs_f64();
            assert!(
                point.events == 0 || point.events == r.events_processed,
                "{name}: event count drifted across repetitions"
            );
            point.events = r.events_processed;
            point.wall_s = point.wall_s.min(wall);
            if rep == 0 {
                results.push(r);
            }
        }
    }
    let (off, armed, crashed) = (&points[0], &points[1], &points[2]);

    // Observer-effect cross-check: the armed prober adds its own events
    // to the queue but must not change a single client-visible result.
    let (r_off, r_armed, r_crashed) = (&results[0], &results[1], &results[2]);
    assert!(
        armed.events > off.events,
        "armed prober recorded no probe events"
    );
    assert_eq!(r_off.completed, r_armed.completed, "prober changed results");
    assert_eq!(r_off.latency.p99, r_armed.latency.p99, "prober moved p99");
    assert_eq!(
        r_off.energy_j.to_bits(),
        r_armed.energy_j.to_bits(),
        "prober changed energy"
    );
    let f = r_crashed.fleet.as_ref().expect("fleet summary");
    assert!(f.ejections >= 2, "crashes must eject: {f:?}");
    assert_eq!(
        r_crashed.faults.lost_requests, 0,
        "crashes must not lose requests silently"
    );

    // Same simulated workload, extra wall time: the honest overhead
    // measure (events/sec would credit the prober for its own events).
    let overhead = |p: &Point| (p.wall_s / off.wall_s - 1.0) * 100.0;
    let mut table = Table::new(vec!["variant", "events", "wall (s)", "overhead"]);
    for p in [off, armed, crashed] {
        table.row(vec![
            p.name.to_string(),
            p.events.to_string(),
            format!("{:.3}", p.wall_s),
            if std::ptr::eq(p, off) {
                "—".to_string()
            } else {
                format!("{:+.1}%", overhead(p))
            },
        ]);
    }
    print!("{table}");

    let prober_overhead = overhead(armed);
    let crash_overhead = overhead(crashed);
    println!(
        "\nprober overhead {prober_overhead:+.1}% (budget \u{2264} 5%), \
         crash scenario on top of baseline {crash_overhead:+.1}%"
    );
    // The acceptance budget, enforced only in the full recorded run:
    // smoke/fast windows are short enough that scheduler noise can
    // exceed the entire budget.
    if !smoke_mode() && !fast_mode() {
        assert!(
            prober_overhead <= 5.0,
            "prober overhead {prober_overhead:.1}% exceeds the 5% budget"
        );
    }

    // JSON record for scripts/bench_record.sh → BENCH_8.json.
    if let Some(path) = std::env::var_os("NCAP_BENCH_JSON") {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"bench\": \"failover\",\n");
        json.push_str("  \"issue\": 8,\n");
        json.push_str(&format!("  \"mode\": {},\n", json_str(mode)));
        json.push_str(&format!(
            "  \"config\": {{\"app\": \"memcached\", \"policy\": \"ncap.cons\", \
             \"backends\": {BACKENDS}, \"load_rps\": {:.0}, \"reps\": {reps}}},\n",
            PER_BACKEND_LOAD_RPS * BACKENDS as f64
        ));
        json.push_str(&format!("  \"baseline_events\": {},\n", off.events));
        json.push_str(&format!("  \"armed_events\": {},\n", armed.events));
        json.push_str(&format!("  \"baseline_wall_s\": {:.4},\n", off.wall_s));
        json.push_str(&format!("  \"armed_wall_s\": {:.4},\n", armed.wall_s));
        json.push_str(&format!("  \"crashed_wall_s\": {:.4},\n", crashed.wall_s));
        json.push_str(&format!(
            "  \"prober_overhead_pct\": {prober_overhead:.2},\n"
        ));
        json.push_str(&format!("  \"crash_overhead_pct\": {crash_overhead:.2},\n"));
        json.push_str(&format!("  \"crash_ejections\": {},\n", f.ejections));
        json.push_str(&format!("  \"crash_failovers\": {},\n", f.failovers));
        json.push_str("  \"budget_pct\": 5.0\n");
        json.push_str("}\n");
        match std::fs::write(&path, &json) {
            Ok(()) => println!(
                "(json written to {})",
                std::path::Path::new(&path).display()
            ),
            Err(e) => {
                eprintln!("NCAP_BENCH_JSON: cannot write: {e}");
                std::process::exit(1);
            }
        }
    }
}
