//! Table 1 — processor configuration.
//!
//! Prints the simulated platform's configuration next to the paper's
//! Table 1 values and sanity-checks the derived power curve endpoints.

use cpusim::{CState, PStateTable, PowerModel};
use ncap_bench::header;
use simstats::Table;

fn main() {
    header("table1_config", "Table 1 (processor configurations)");
    let table = PStateTable::i7_like();
    let power = PowerModel::i7_like();

    let mut t = Table::new(vec!["parameter", "paper (Table 1)", "this model"]);
    t.row(vec!["cores".into(), "4".into(), "4".into()]);
    t.row(vec![
        "P states".into(),
        "15".into(),
        table.len().to_string(),
    ]);
    t.row(vec![
        "V/F range".into(),
        "0.65V/0.8GHz – 1.2V/3.1GHz".into(),
        format!(
            "{:.2}V/{:.1}GHz – {:.2}V/{:.1}GHz",
            table.voltage(table.deepest()),
            table.freq_hz(table.deepest()) as f64 / 1e9,
            table.voltage(table.fastest()),
            table.freq_hz(table.fastest()) as f64 / 1e9
        ),
    ]);
    let chip_max = 4.0 * power.busy_power(&table, table.fastest()) + power.uncore_active();
    let chip_min = 4.0 * power.busy_power(&table, table.deepest()) + power.uncore_active();
    t.row(vec![
        "processor power at P states".into(),
        "12 – 80 W".into(),
        format!("{chip_min:.1} – {chip_max:.1} W"),
    ]);
    t.row(vec![
        "C-state transition latencies".into(),
        "2, 10, 22 us".into(),
        format!(
            "{}, {}, {}",
            CState::C1.exit_latency(),
            CState::C3.exit_latency(),
            CState::C6.exit_latency()
        ),
    ]);
    t.row(vec![
        "C1 static power".into(),
        "1.92 – 7.11 W".into(),
        format!(
            "{:.2} – {:.2} W",
            power.sleep_power(&table, table.deepest(), CState::C1),
            power.sleep_power(&table, table.fastest(), CState::C1)
        ),
    ]);
    t.row(vec![
        "C3 static power".into(),
        "1.64 W".into(),
        format!(
            "{:.2} W",
            power.sleep_power(&table, table.fastest(), CState::C3)
        ),
    ]);
    t.row(vec![
        "NIC".into(),
        "Intel 82574GI Gigabit".into(),
        "82574-like single queue model".into(),
    ]);
    t.row(vec![
        "link".into(),
        "10 Gbps, 1 us latency".into(),
        "10 Gbps, 1 us latency".into(),
    ]);
    println!("{t}");

    println!("Full P-state ladder:");
    let mut ladder = Table::new(vec![
        "state",
        "freq (GHz)",
        "V",
        "core busy (W)",
        "core C0-poll (W)",
    ]);
    for (id, p) in table.iter() {
        ladder.row(vec![
            id.to_string(),
            format!("{:.3}", p.freq_hz as f64 / 1e9),
            format!("{:.3}", p.voltage),
            format!("{:.2}", power.busy_power(&table, id)),
            format!("{:.2}", power.c0_idle_power(&table, id)),
        ]);
    }
    println!("{ladder}");
}
