//! Ablation: the MITT period (paper §4.3: 40–100 µs).
//!
//! The MITT is both the interrupt moderation gate and NCAP's decision
//! cadence: shorter periods detect bursts sooner but interrupt the
//! processor more; longer periods save interrupts but delay IT_HIGH.

use cluster::{run_experiments_parallel, AppKind, Policy};
use desim::SimDuration;
use ncap::NcapConfig;
use ncap_bench::{header, standard};
use simstats::{fmt_ns, Table};

fn main() {
    header("ablation_mitt", "MITT period sweep (§4.3: 40-100 us)");
    let load = AppKind::Apache.paper_loads()[1];
    let periods = [40u64, 50, 70, 100, 200];
    let configs: Vec<_> = periods
        .iter()
        .map(|&us| {
            standard(AppKind::Apache, Policy::NcapCons, load).with_ncap_override(
                NcapConfig::paper_defaults().with_mitt_period(SimDuration::from_us(us)),
            )
        })
        .collect();
    let results = run_experiments_parallel(&configs);
    let mut t = Table::new(vec!["MITT", "p95", "energy (J)", "NCAP interrupts"]);
    for (us, r) in periods.iter().zip(results.iter()) {
        t.row(vec![
            format!("{us}us"),
            fmt_ns(r.latency.p95),
            format!("{:.2}", r.energy_j),
            r.wake_markers.to_string(),
        ]);
    }
    println!("Apache @ {load:.0} rps, ncap.cons:");
    println!("{t}");
    println!("expected: mild latency degradation as the period stretches past 100 us");
    println!("(bursts detected later), with fewer decision evaluations.");
}
