//! Figure 4 — correlation between network activity and power management.
//!
//! Runs Apache under `ond.idle` with tracing enabled and prints (a) the
//! normalized BW(Rx)/BW(Tx), core utilization and frequency over a 200 ms
//! window, and (b) the per-C-state residency shares — the paper's
//! demonstration that request bursts drive utilization, frequency and
//! sleep-state behaviour, with the ondemand governor reacting late.

use cluster::{run_experiment, AppKind, Policy, TraceConfig};
use ncap_bench::{header, standard};
use simstats::Table;

fn main() {
    header(
        "fig4_correlation",
        "Figure 4 (BW/U/F correlation + C-state residency)",
    );
    let cfg =
        standard(AppKind::Apache, Policy::OndIdle, 24_000.0).with_trace(TraceConfig::per_ms());
    let result = run_experiment(&cfg);
    let traces = result.traces.as_ref().expect("tracing was enabled");

    let start_ms = 100u64;
    let window_ms = 200u64;
    let end_ns = (start_ms + window_ms) * 1_000_000;
    let rx = traces.rx.finish_normalized(end_ns);
    let tx = traces.tx.finish_normalized(end_ns);
    let util = traces
        .util
        .rebin(start_ms * 1_000_000, end_ns, window_ms as usize);
    let freq = traces
        .freq
        .rebin(start_ms * 1_000_000, end_ns, window_ms as usize);

    println!("(a) 200 ms snapshot, 1 ms bins printed as 4 ms maxima — BW normalized:");
    let maxw = |v: &[f64], from: usize, n: usize| -> f64 {
        v.iter().skip(from).take(n).copied().fold(0.0, f64::max)
    };
    let mut t = Table::new(vec!["t (ms)", "BW(Rx)", "BW(Tx)", "U", "F (GHz)"]);
    for i in (0..window_ms as usize).step_by(4) {
        let bin = start_ms as usize + i;
        t.row(vec![
            format!("{}", bin),
            format!("{:.2}", maxw(&rx, bin, 4)),
            format!("{:.2}", maxw(&tx, bin, 4)),
            format!("{:.2}", maxw(&util, i, 4)),
            format!("{:.2}", freq[i]),
        ]);
    }
    println!("{t}");

    println!("(b) C-state residency shares over the same window:");
    let mut t = Table::new(vec!["t (ms)", "T(C1)", "T(C3)", "T(C6)"]);
    let c1 = traces.cstate_share[0].rebin(start_ms * 1_000_000, end_ns, window_ms as usize);
    let c3 = traces.cstate_share[1].rebin(start_ms * 1_000_000, end_ns, window_ms as usize);
    let c6 = traces.cstate_share[2].rebin(start_ms * 1_000_000, end_ns, window_ms as usize);
    for i in (0..window_ms as usize).step_by(8) {
        t.row(vec![
            format!("{}", start_ms as usize + i),
            format!("{:.2}", c1[i]),
            format!("{:.2}", c3[i]),
            format!("{:.2}", c6[i]),
        ]);
    }
    println!("{t}");

    // The paper's summary statistics for the boxed surge.
    let peak_u = util.iter().copied().fold(0.0, f64::max);
    let min_f = freq.iter().copied().fold(f64::MAX, f64::min);
    let max_f = freq.iter().copied().fold(0.0, f64::max);
    println!(
        "window stats: peak utilization {:.0}%, frequency range {:.1}-{:.1} GHz, \
         p95 latency {:.2} ms",
        peak_u * 100.0,
        min_f,
        max_f,
        result.latency.p95 as f64 / 1e6
    );
    println!(
        "paper's observations to check: BW(Rx) surges precede U rises, which\n\
         precede BW(Tx) surges; F rises lag the surge by up to one ondemand\n\
         period (10 ms); cores visit deep C-states between bursts."
    );
}
