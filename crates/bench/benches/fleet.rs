//! Fleet: the cluster-level power story beyond the paper's single
//! server (DESIGN.md §11).
//!
//! The paper manages one server's power from its own NIC; a fleet adds
//! a second lever: the dispatch policy decides *which* backends see
//! packets at all, and the coordinator parks the ones that see none.
//! This target sweeps a 4-backend Memcached fleet at low load (0.15x of
//! fleet capacity) across the three dispatch policies, coordinator on
//! and off, and reports joint energy, admitted percentiles, dispatch
//! concentration, and park activity — the claim under test being that
//! power-aware packing plus the coordinator beats load-balanced
//! dispatch on energy without breaking the tail.

use cluster::{
    run_experiments_parallel, AppKind, CoordinatorConfig, DispatchPolicy, ExperimentConfig,
    FleetConfig, Policy,
};
use ncap_bench::{durations, header};
use simstats::{fmt_ns, FleetAggregate, Table};

const BACKENDS: usize = 4;
const PER_BACKEND_RPS: f64 = 120_000.0;

fn config(dispatch: DispatchPolicy, coordinator: bool) -> ExperimentConfig {
    let (warmup, measure) = durations();
    let mut fleet = FleetConfig::new(BACKENDS, dispatch);
    if coordinator {
        fleet =
            fleet.with_coordinator(CoordinatorConfig::new(PER_BACKEND_RPS).with_util_target(0.5));
    }
    ExperimentConfig::new(AppKind::Memcached, Policy::OndIdle, 72_000.0)
        .with_durations(warmup, measure)
        .with_poisson()
        .with_fleet(fleet)
}

fn main() {
    header(
        "fleet",
        "cluster-level packing + coordinator (beyond the paper, DESIGN.md §11)",
    );
    println!(
        "{BACKENDS}-backend Memcached fleet under ond.idle at 72 krps \
         (0.15x fleet capacity), L4 LB in NAT mode.\n"
    );
    let mut configs = Vec::new();
    let mut coordinated = Vec::new();
    for coordinator in [false, true] {
        for dispatch in DispatchPolicy::ALL {
            configs.push(config(dispatch, coordinator));
            coordinated.push(coordinator);
        }
    }
    let results = run_experiments_parallel(&configs);

    let mut t = Table::new(vec![
        "dispatch",
        "coord",
        "energy (J)",
        "p50",
        "p99",
        "max share",
        "parks",
        "goodput",
    ]);
    for (r, &coord) in results.iter().zip(coordinated.iter()) {
        let fleet = r.fleet.as_ref().expect("fleet topology");
        let energy: Vec<f64> = fleet.backends.iter().map(|b| b.energy_j).collect();
        let assigned: Vec<u64> = fleet.backends.iter().map(|b| b.assigned).collect();
        let agg = FleetAggregate::from_backends(&energy, &assigned);
        t.row(vec![
            fleet.dispatch.to_string(),
            if coord { "on" } else { "off" }.to_owned(),
            format!("{:.2}", r.energy_j),
            fmt_ns(r.latency.p50),
            fmt_ns(r.latency.p99),
            format!("{:.2}", agg.max_share),
            format!("{}", fleet.parks),
            format!("{:.3}", r.goodput()),
        ]);
    }
    println!("{t}");
}
