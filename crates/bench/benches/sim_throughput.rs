//! sim-throughput — simulator event throughput (the ROADMAP's tracked
//! perf trajectory, not a paper figure).
//!
//! Three measurements:
//!
//! 1. **End-to-end fleet throughput**: simulated-seconds per wall-second
//!    and events/second for full experiment runs at 1/8/32/64 backends ×
//!    rr/jsq/pack — the number that decides how big a fleet the suite
//!    can afford to sweep.
//! 2. **Backend comparison at 64 backends**: the same 64-backend run on
//!    the calendar queue (default) vs the reference `BinaryHeap`,
//!    end to end. The queue is only part of a run's cost, so this gap is
//!    diluted by model code.
//! 3. **Queue-level hold model**: the classic calendar-queue hold
//!    benchmark (steady-state pop → push at `popped + increment`) with a
//!    pending population and increment mix approximating the 64-backend
//!    fleet scenario — thousands of in-flight events, a blend of
//!    same-instant NIC/kernel cascades, microsecond-scale service
//!    events, and long governor/coordinator timers. Both backends see
//!    the byte-identical schedule (same RNG seed). This isolates the
//!    structure the tentpole replaced and carries the ≥2× acceptance
//!    number.
//!
//! `scripts/bench_record.sh` runs this target and records the JSON
//! emitted when `NCAP_BENCH_JSON=<path>` is set as `BENCH_6.json`.
//!
//! Run with: `cargo bench -p ncap-bench --bench sim_throughput`

use cluster::{
    run_experiment, AppKind, CoordinatorConfig, DispatchPolicy, ExperimentConfig, FleetConfig,
    Policy,
};
use desim::{EventQueue, QueueBackend, SimDuration, SimTime, SplitMix64};
use ncap_bench::{fast_mode, smoke_mode};
use simstats::Table;
use std::time::Instant;

/// Memcached's single-server knee (§5), as in `examples/fleet_sweep.rs`.
const PER_BACKEND_RPS: f64 = 120_000.0;
/// Offered load per backend: half the knee, so every backend stays
/// active (the coordinator has nothing to park) and simulated work
/// scales with fleet size — the throughput bench measures the cost of
/// *simulating N busy backends*, not of an idle parked fleet.
const PER_BACKEND_LOAD_RPS: f64 = 60_000.0;

/// Steady-state pending population for the hold model: the measured
/// peak of the 64-backend full-mode fleet run (`Simulation::
/// peak_pending` reports ~287 K over its 60 ms horizon — open-loop
/// clients pre-schedule the whole run's arrivals, plus per-backend
/// NIC/kernel/governor timers and request cascades), rounded to the
/// nearest power of two.
const HOLD_PENDING: usize = 1 << 18;

fn fleet_cfg(backends: usize, dispatch: DispatchPolicy) -> ExperimentConfig {
    let (warmup, measure) = if smoke_mode() {
        (SimDuration::from_ms(2), SimDuration::from_ms(5))
    } else if fast_mode() {
        (SimDuration::from_ms(10), SimDuration::from_ms(20))
    } else {
        (SimDuration::from_ms(20), SimDuration::from_ms(40))
    };
    ExperimentConfig::new(
        AppKind::Memcached,
        Policy::NcapCons,
        PER_BACKEND_LOAD_RPS * backends as f64,
    )
    .with_durations(warmup, measure)
    .with_poisson()
    .with_fleet(
        FleetConfig::new(backends, dispatch)
            .with_coordinator(CoordinatorConfig::new(PER_BACKEND_RPS).with_util_target(0.5)),
    )
}

struct EndToEnd {
    backends: usize,
    dispatch: DispatchPolicy,
    events: u64,
    wall_s: f64,
    sim_s: f64,
}

impl EndToEnd {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s
    }
    fn sim_per_wall(&self) -> f64 {
        self.sim_s / self.wall_s
    }
}

/// Runs one experiment, returning its event count and wall time.
fn timed_run(cfg: &ExperimentConfig) -> (u64, f64) {
    let start = Instant::now();
    let r = run_experiment(cfg);
    let wall = start.elapsed().as_secs_f64();
    (r.events_processed, wall)
}

/// The hold model: pre-fill `pending` events, then `ops` iterations of
/// pop-and-reschedule. The increment mix mirrors the fleet event blend:
/// 30% same-instant (LB forward hops, softirq/NIC cascades), 50% short
/// µs-scale events (wire latency, DMA, service stages), 15% ~1 ms
/// timers (watchdog, coordinator, NCAP CIT), 5% ~10 ms timers (the
/// ondemand governor period) — so the pending population, like the real
/// 64-backend run's, is a dense cursor-side cluster plus a long sparse
/// timer tail. Returns events/second (one hold op = one pop + one
/// push = counted as one event).
fn hold_model(backend: QueueBackend, pending: usize, ops: usize, seed: u64) -> f64 {
    let mut rng = SplitMix64::new(seed);
    let mut q: EventQueue<u64> = EventQueue::with_backend(backend);
    for i in 0..pending {
        q.push(SimTime::from_nanos(rng.next_below(1_000_000)), i as u64);
    }
    let start = Instant::now();
    for i in 0..ops {
        let (t, _) = q.pop().expect("queue stays populated");
        let roll = rng.next_below(100);
        let inc = if roll < 30 {
            0
        } else if roll < 80 {
            1 + rng.next_below(4_000)
        } else if roll < 95 {
            500_000 + rng.next_below(1_000_000)
        } else {
            10_000_000 + rng.next_below(1_000_000)
        };
        q.push(SimTime::from_nanos(t.as_nanos() + inc), i as u64);
    }
    let wall = start.elapsed().as_secs_f64();
    std::hint::black_box(&q);
    ops as f64 / wall
}

/// Best-of-`rounds` hold-model throughput (wall-clock noise control; the
/// schedule is identical every round).
fn hold_best(backend: QueueBackend, pending: usize, ops: usize, rounds: usize) -> f64 {
    (0..rounds)
        .map(|_| hold_model(backend, pending, ops, 0x4E43_4150))
        .fold(0.0f64, f64::max)
}

/// Minimal JSON string escaping (names here are all plain ASCII, but
/// stay safe).
fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

fn main() {
    ncap_bench::header(
        "sim-throughput",
        "the ROADMAP sim-scale trajectory (BENCH_*.json), not a paper figure",
    );
    let mode = if smoke_mode() {
        "smoke"
    } else if fast_mode() {
        "fast"
    } else {
        "full"
    };

    // Diagnosis mode (`NCAP_BENCH_PROFILE=1`): skip the sweep and
    // self-profile the backend comparison only — per-event-class wall
    // time on the calendar queue vs the reference heap. The profiler
    // splits pop/peek cost (`queue`) from handler cost (which includes
    // the push path), so a calendar-vs-heap delta localizes to one side.
    if std::env::var_os("NCAP_BENCH_PROFILE").is_some() {
        let cfg = fleet_cfg(64, DispatchPolicy::LeastOutstanding).with_profile();
        for backend in [QueueBackend::Calendar, QueueBackend::BinaryHeap] {
            let r = run_experiment(&cfg.clone().with_queue_backend(backend));
            let p = r.self_profile.expect("profiling enabled");
            println!(
                "--- {backend:?}: {} events, {:.0} ev/s profiled ---",
                r.events_processed,
                p.events_per_sec()
            );
            print!("{}", p.render());
        }
        return;
    }

    // 1. End-to-end fleet throughput.
    let sizes: &[usize] = if smoke_mode() {
        &[1, 8]
    } else {
        &[1, 8, 32, 64]
    };
    let mut rows = Vec::new();
    for &backends in sizes {
        for dispatch in DispatchPolicy::ALL {
            let cfg = fleet_cfg(backends, dispatch);
            let sim_s = cfg.horizon().as_secs_f64();
            let (events, wall_s) = timed_run(&cfg);
            rows.push(EndToEnd {
                backends,
                dispatch,
                events,
                wall_s,
                sim_s,
            });
        }
    }
    let mut t = Table::new(vec![
        "backends",
        "dispatch",
        "events",
        "wall (s)",
        "sim-s/wall-s",
        "events/s",
    ]);
    for r in &rows {
        t.row(vec![
            format!("{}", r.backends),
            r.dispatch.to_string(),
            format!("{}", r.events),
            format!("{:.3}", r.wall_s),
            format!("{:.4}", r.sim_per_wall()),
            format!("{:.0}", r.events_per_sec()),
        ]);
    }
    println!("{t}");

    // 2. Calendar vs BinaryHeap, end to end at the largest fleet.
    let cmp_backends = *sizes.last().expect("non-empty");
    let cmp_cfg = fleet_cfg(cmp_backends, DispatchPolicy::LeastOutstanding);
    let (cal_events, cal_wall) = timed_run(&cmp_cfg);
    let (heap_events, heap_wall) =
        timed_run(&cmp_cfg.clone().with_queue_backend(QueueBackend::BinaryHeap));
    assert_eq!(
        cal_events, heap_events,
        "backends must process identical event streams"
    );
    let e2e_cal = cal_events as f64 / cal_wall;
    let e2e_heap = heap_events as f64 / heap_wall;
    println!(
        "end-to-end {cmp_backends}-backend jsq: calendar {e2e_cal:.0} ev/s vs \
         binaryheap {e2e_heap:.0} ev/s ({:.2}x, queue cost diluted by model code)",
        e2e_cal / e2e_heap
    );

    // 3. Queue-level hold model at the 64-backend operating point.
    let (ops, rounds) = if smoke_mode() {
        (50_000, 1)
    } else if fast_mode() {
        (1_000_000, 3)
    } else {
        (4_000_000, 5)
    };
    let pending = if smoke_mode() { 512 } else { HOLD_PENDING };
    let hold_cal = hold_best(QueueBackend::Calendar, pending, ops, rounds);
    let hold_heap = hold_best(QueueBackend::BinaryHeap, pending, ops, rounds);
    let speedup = hold_cal / hold_heap;
    println!(
        "queue hold model ({pending} pending, {ops} ops): calendar {hold_cal:.0} ev/s vs \
         binaryheap {hold_heap:.0} ev/s — {speedup:.2}x"
    );

    // JSON record for scripts/bench_record.sh → BENCH_6.json.
    if let Some(path) = std::env::var_os("NCAP_BENCH_JSON") {
        let mut e2e_rows = Vec::new();
        for r in &rows {
            e2e_rows.push(format!(
                "    {{\"backends\": {}, \"dispatch\": {}, \"events\": {}, \"wall_s\": {:.4}, \
                 \"sim_s_per_wall_s\": {:.4}, \"events_per_sec\": {:.0}}}",
                r.backends,
                json_str(r.dispatch.name()),
                r.events,
                r.wall_s,
                r.sim_per_wall(),
                r.events_per_sec()
            ));
        }
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"bench\": \"sim_throughput\",\n");
        json.push_str("  \"issue\": 6,\n");
        json.push_str(&format!("  \"mode\": {},\n", json_str(mode)));
        json.push_str("  \"end_to_end\": [\n");
        json.push_str(&e2e_rows.join(",\n"));
        json.push_str("\n  ],\n");
        json.push_str(&format!(
            "  \"end_to_end_backend_comparison\": {{\"backends\": {cmp_backends}, \
             \"dispatch\": \"jsq\", \"calendar_events_per_sec\": {e2e_cal:.0}, \
             \"binaryheap_events_per_sec\": {e2e_heap:.0}, \"speedup\": {:.3}}},\n",
            e2e_cal / e2e_heap
        ));
        json.push_str(&format!(
            "  \"queue_hold_64_backend_point\": {{\"pending\": {pending}, \"ops\": {ops}, \
             \"calendar_events_per_sec\": {hold_cal:.0}, \
             \"binaryheap_events_per_sec\": {hold_heap:.0}, \"speedup\": {speedup:.3}}}\n"
        ));
        json.push_str("}\n");
        match std::fs::write(&path, &json) {
            Ok(()) => println!(
                "(json written to {})",
                std::path::Path::new(&path).display()
            ),
            Err(e) => {
                eprintln!("NCAP_BENCH_JSON: cannot write: {e}");
                std::process::exit(1);
            }
        }
    }
}
