//! datapath — simulator throughput of the rival datapaths (ISSUE 10),
//! not a paper figure.
//!
//! Two questions, one record (`BENCH_10.json`):
//!
//! 1. **Bypass vs kernel sim-throughput at 64 backends**: the poll-mode
//!    datapath replaces per-frame IRQ/softirq cascades with poll events
//!    and ring pushes — how does that trade in *simulator* events per
//!    wall-second? Informational: it sizes how big a bypass fleet the
//!    suite can afford to sweep.
//! 2. **Kernel-path cost of the datapath dispatch hook (≤5% budget)**:
//!    the `Datapath` switch added branches to the kernel hot path
//!    (frame delivery, response emission, scheduler floors, governor
//!    sampling). The default-datapath run here uses the exact
//!    64-backend/jsq configuration `sim_throughput` records, so it is
//!    directly comparable to the `BENCH_6.json` baseline captured
//!    immediately before the hook existed. The deterministic half of
//!    the claim — identical event count, i.e. the hook never perturbs
//!    what gets simulated — is asserted unconditionally in full mode.
//!    The wall-clock half is recorded but only asserted under
//!    `NCAP_BENCH_ENFORCE_WALL=1`: cross-recording wall comparisons
//!    carry the host's load noise (interleaved A/B runs of the pre- and
//!    post-hook trees measured the true hook cost at ≈0%, inside a
//!    ±7% noise band), so the gate is opt-in for quiet-host A/B use.
//!
//! `scripts/bench_record.sh` records the JSON emitted when
//! `NCAP_BENCH_JSON=<path>` is set as `BENCH_10.json`.
//!
//! Run with: `cargo bench -p ncap-bench --bench datapath`

use cluster::{
    run_experiment, AppKind, CoordinatorConfig, Datapath, DispatchPolicy, ExperimentConfig,
    FleetConfig, Policy,
};
use desim::SimDuration;
use ncap_bench::{fast_mode, smoke_mode};
use simstats::Table;
use std::time::Instant;

/// Same operating point as `sim_throughput`: half the memcached knee
/// per backend, so every backend stays busy and the event stream is
/// dominated by the per-frame cascades the datapath switch reroutes.
const PER_BACKEND_RPS: f64 = 120_000.0;
const PER_BACKEND_LOAD_RPS: f64 = 60_000.0;
const BACKENDS: usize = 64;

fn cfg(policy: Policy, datapath: Datapath) -> ExperimentConfig {
    let (warmup, measure) = if smoke_mode() {
        (SimDuration::from_ms(2), SimDuration::from_ms(5))
    } else if fast_mode() {
        (SimDuration::from_ms(10), SimDuration::from_ms(20))
    } else {
        (SimDuration::from_ms(20), SimDuration::from_ms(40))
    };
    ExperimentConfig::new(
        AppKind::Memcached,
        policy,
        PER_BACKEND_LOAD_RPS * BACKENDS as f64,
    )
    .with_durations(warmup, measure)
    .with_poisson()
    .with_datapath(datapath)
    .with_fleet(
        FleetConfig::new(BACKENDS, DispatchPolicy::LeastOutstanding)
            .with_coordinator(CoordinatorConfig::new(PER_BACKEND_RPS).with_util_target(0.5)),
    )
}

struct Point {
    name: &'static str,
    events: u64,
    /// Best-of-reps wall seconds (min is the standard noise filter for
    /// a deterministic workload).
    wall_s: f64,
}

impl Point {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s
    }
}

/// Interleaved repetitions (round 1 of each variant, round 2, …) with
/// the per-variant minimum, so host-load drift penalizes all variants
/// alike.
fn measure(variants: Vec<(&'static str, ExperimentConfig)>, reps: usize) -> Vec<Point> {
    let mut points: Vec<Point> = variants
        .iter()
        .map(|(name, _)| Point {
            name,
            events: 0,
            wall_s: f64::INFINITY,
        })
        .collect();
    for _ in 0..reps {
        for ((name, cfg), point) in variants.iter().zip(&mut points) {
            let t0 = Instant::now();
            let r = run_experiment(cfg);
            let wall = t0.elapsed().as_secs_f64();
            assert!(
                point.events == 0 || point.events == r.events_processed,
                "{name}: event count drifted across repetitions"
            );
            point.events = r.events_processed;
            point.wall_s = point.wall_s.min(wall);
        }
    }
    points
}

/// Pulls the 64-backend/jsq `(events, events_per_sec)` out of the
/// committed `BENCH_6.json` (recorded just before the datapath hook
/// landed) with a plain string scan — the record is machine-written,
/// two levels up from the bench package `cargo bench` runs in.
fn bench6_baseline() -> Option<(u64, f64)> {
    let text = std::fs::read_to_string("../../BENCH_6.json").ok()?;
    let at = text.find("\"backends\": 64,\n      \"dispatch\": \"jsq\"")?;
    let rest = &text[at..];
    let field = |key: &str| {
        let v = &rest[rest.find(key)? + key.len()..];
        v[..v.find(|c: char| !c.is_ascii_digit() && c != '.')?]
            .parse::<f64>()
            .ok()
    };
    Some((
        field("\"events\": ")? as u64,
        field("\"events_per_sec\": ")?,
    ))
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

fn main() {
    ncap_bench::header(
        "datapath",
        "bypass vs kernel sim-throughput and the datapath dispatch-hook budget (ISSUE 10)",
    );
    let mode = if smoke_mode() {
        "smoke"
    } else if fast_mode() {
        "fast"
    } else {
        "full"
    };
    let reps = if smoke_mode() {
        1
    } else if fast_mode() {
        2
    } else {
        3
    };
    println!("(mode: {mode}, {BACKENDS} memcached backends at half-knee, best of {reps} reps)\n");

    // The kernel/ncap.cons point reproduces sim_throughput's recorded
    // configuration; kernel vs bypass compare at the same (non-NCAP)
    // policy so only the datapath differs.
    let points = measure(
        vec![
            (
                "kernel (ncap.cons)",
                cfg(Policy::NcapCons, Datapath::Kernel),
            ),
            ("kernel (ond.idle)", cfg(Policy::OndIdle, Datapath::Kernel)),
            (
                "bypass (ond.idle)",
                cfg(Policy::OndIdle, Datapath::Bypass).with_poll_cores(1),
            ),
            (
                "offload (ncap.cons)",
                cfg(Policy::NcapCons, Datapath::Offload),
            ),
        ],
        reps,
    );
    let (hook, kernel, bypass) = (&points[0], &points[1], &points[2]);

    let mut table = Table::new(vec!["variant", "events", "wall (s)", "events/s"]);
    for p in &points {
        table.row(vec![
            p.name.to_string(),
            p.events.to_string(),
            format!("{:.3}", p.wall_s),
            format!("{:.0}", p.events_per_sec()),
        ]);
    }
    print!("{table}");

    let ratio = bypass.events_per_sec() / kernel.events_per_sec();
    println!(
        "\nbypass runs at {ratio:.2}x kernel sim-throughput \
         ({} vs {} events simulated)",
        bypass.events, kernel.events
    );

    // Dispatch-hook budget against the pre-hook BENCH_6 baseline. The
    // event-count match is deterministic and asserted in any full run
    // (it proves the hook never changes what gets simulated); the
    // wall-clock ratio is host-noise-bound, so its 5% gate is opt-in.
    let baseline = bench6_baseline();
    let hook_overhead = baseline.map(|(_, b)| (1.0 - hook.events_per_sec() / b) * 100.0);
    match hook_overhead {
        Some(o) => println!(
            "dispatch-hook overhead vs BENCH_6 64/jsq baseline: {o:+.1}% (budget \u{2264} 5%)"
        ),
        None => println!("dispatch-hook overhead: no BENCH_6 baseline found (skipped)"),
    }
    if !smoke_mode() && !fast_mode() {
        if let Some((base_events, _)) = baseline {
            assert_eq!(
                hook.events, base_events,
                "datapath hook changed the kernel-path event stream"
            );
        }
        if std::env::var_os("NCAP_BENCH_ENFORCE_WALL").is_some() {
            if let Some(o) = hook_overhead {
                assert!(
                    o <= 5.0,
                    "datapath dispatch hook costs {o:.1}% on the kernel path — \
                     over the 5% budget"
                );
            }
        }
    }

    // JSON record for scripts/bench_record.sh → BENCH_10.json.
    if let Some(path) = std::env::var_os("NCAP_BENCH_JSON") {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"bench\": \"datapath\",\n");
        json.push_str("  \"issue\": 10,\n");
        json.push_str(&format!("  \"mode\": {},\n", json_str(mode)));
        json.push_str(&format!(
            "  \"config\": {{\"app\": \"memcached\", \"backends\": {BACKENDS}, \
             \"load_rps\": {:.0}, \"dispatch\": \"jsq\", \"reps\": {reps}}},\n",
            PER_BACKEND_LOAD_RPS * BACKENDS as f64
        ));
        json.push_str("  \"points\": [\n");
        for (i, (p, dp)) in points
            .iter()
            .zip(["kernel", "kernel", "bypass", "offload"])
            .enumerate()
        {
            json.push_str(&format!(
                "    {{\"name\": {}, \"datapath\": {}, \"events\": {}, \
                 \"wall_s\": {:.4}, \"events_per_sec\": {:.0}}}{}\n",
                json_str(p.name),
                json_str(dp),
                p.events,
                p.wall_s,
                p.events_per_sec(),
                if i + 1 < points.len() { "," } else { "" }
            ));
        }
        json.push_str("  ],\n");
        json.push_str(&format!("  \"bypass_vs_kernel_ratio\": {ratio:.3},\n"));
        json.push_str(&format!(
            "  \"bench6_baseline_events_per_sec\": {},\n",
            baseline.map_or("null".to_string(), |(_, b)| format!("{b:.0}"))
        ));
        json.push_str(&format!(
            "  \"dispatch_hook_overhead_pct\": {},\n",
            hook_overhead.map_or("null".to_string(), |o| format!("{o:.2}"))
        ));
        json.push_str("  \"budget_pct\": 5.0\n");
        json.push_str("}\n");
        match std::fs::write(&path, &json) {
            Ok(()) => println!(
                "(json written to {})",
                std::path::Path::new(&path).display()
            ),
            Err(e) => {
                eprintln!("NCAP_BENCH_JSON: cannot write: {e}");
                std::process::exit(1);
            }
        }
    }
}
