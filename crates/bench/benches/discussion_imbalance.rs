//! §7 discussion — load imbalance across a multi-server cluster.
//!
//! "A production datacenter consists of hundreds or thousands of servers
//! … there is a significant fraction of underutilized servers even at a
//! high overall load level, and NCAP can achieve energy reduction for
//! such underutilized servers." Four Memcached servers run at 20/40/60/90 %
//! of the single-server knee; the cluster-wide overall load is ~52 %.

use cluster::{run_imbalanced, AppKind, Policy};
use desim::SimDuration;
use ncap_bench::{durations, header};
use simstats::Table;

fn main() {
    header(
        "discussion_imbalance",
        "§7 (underutilized servers in a datacenter)",
    );
    let knee = 110_000.0; // the Memcached inflection from fig7
    let loads: Vec<f64> = [0.2, 0.4, 0.6, 0.9].iter().map(|f| f * knee).collect();
    let (warmup, measure) = durations();
    let _ = SimDuration::ZERO;

    let mut t = Table::new(vec![
        "policy",
        "p95 (ms)",
        "srv0 (20%)",
        "srv1 (40%)",
        "srv2 (60%)",
        "srv3 (90%)",
        "total (J)",
    ]);
    let mut perf_total = 0.0;
    for policy in [
        Policy::Perf,
        Policy::PerfIdle,
        Policy::NcapCons,
        Policy::NcapAggr,
    ] {
        let r = run_imbalanced(AppKind::Memcached, policy, &loads, warmup, measure, 42);
        if policy == Policy::Perf {
            perf_total = r.total_energy_j;
        }
        let mut cells = vec![
            policy.name().to_owned(),
            format!("{:.2}", r.latency.p95 as f64 / 1e6),
        ];
        cells.extend(r.per_server_energy_j.iter().map(|e| format!("{e:.2} J")));
        cells.push(format!(
            "{:.2} ({:.2}x perf)",
            r.total_energy_j,
            r.total_energy_j / perf_total
        ));
        t.row(cells);
        assert!(r.completed > 0, "cluster must serve traffic");
    }
    println!("4 Memcached servers at 20/40/60/90% of the knee (overall ~52%):");
    println!("{t}");
    println!("expected: NCAP's saving concentrates on the underutilized servers");
    println!("(srv0/srv1) while the 90% server converges toward perf — the §7");
    println!("argument for deploying NCAP fleet-wide despite high overall load.");
}
