//! Ablation: the low-activity window before the first IT_LOW (paper: 1 ms).
//!
//! The window is the time cores spend in the C0 polling loop after a
//! burst before NCAP re-enables the menu governor and starts the
//! frequency descent. It is NCAP's main energy cost and its insurance
//! against reacting to a pause inside an ongoing burst.

use cluster::{run_experiments_parallel, AppKind, Policy};
use desim::SimDuration;
use ncap::NcapConfig;
use ncap_bench::{header, standard};
use simstats::{fmt_ns, Table};

fn main() {
    header(
        "ablation_low_window",
        "low-activity window sweep (design choice, 1 ms)",
    );
    let load = AppKind::Memcached.paper_loads()[0];
    let windows = [250u64, 500, 1_000, 2_000, 4_000];
    let configs: Vec<_> = windows
        .iter()
        .map(|&us| {
            let mut c = NcapConfig::paper_defaults();
            c.low_activity_window = SimDuration::from_us(us);
            standard(AppKind::Memcached, Policy::NcapAggr, load).with_ncap_override(c)
        })
        .collect();
    let results = run_experiments_parallel(&configs);
    let mut t = Table::new(vec!["window", "p95", "p99", "energy (J)"]);
    for (us, r) in windows.iter().zip(results.iter()) {
        t.row(vec![
            format!("{}us", us),
            fmt_ns(r.latency.p95),
            fmt_ns(r.latency.p99),
            format!("{:.2}", r.energy_j),
        ]);
    }
    println!("Memcached @ {load:.0} rps, ncap.aggr:");
    println!("{t}");
    println!("expected: shorter windows save C0-poll energy but risk descending");
    println!("mid-burst (tail latency grows); 1 ms is the paper's compromise.");
}
