//! attribution — overhead of the latency-attribution layer (DESIGN.md
//! §13), not a paper figure.
//!
//! The per-stage request breakdown is on by default, so its cost is the
//! cost of *every* run in the suite. This bench holds the acceptance
//! number: events/second with breakdown collection off vs on (the ≤5%
//! budget), plus the self-profiler's own overhead as an informational
//! row. Determinism is cross-checked en passant: all variants of the
//! same configuration must process the identical event count, or the
//! observability layer leaked into the simulation.
//!
//! `scripts/bench_record.sh` records the JSON emitted when
//! `NCAP_BENCH_JSON=<path>` is set as `BENCH_7.json`.
//!
//! Run with: `cargo bench -p ncap-bench --bench attribution`

use cluster::{
    run_experiment, AppKind, CoordinatorConfig, DispatchPolicy, ExperimentConfig, FleetConfig,
    Policy,
};
use desim::SimDuration;
use ncap_bench::{fast_mode, smoke_mode};
use simstats::Table;
use std::time::Instant;

/// Same per-backend operating point as `sim_throughput`: half the
/// memcached knee, so every backend stays busy and the event stream is
/// dominated by the packet/kernel cascades the stage stamps ride on —
/// the worst case for attribution overhead.
const PER_BACKEND_RPS: f64 = 120_000.0;
const PER_BACKEND_LOAD_RPS: f64 = 60_000.0;
const BACKENDS: usize = 8;

fn cfg() -> ExperimentConfig {
    let (warmup, measure) = if smoke_mode() {
        (SimDuration::from_ms(2), SimDuration::from_ms(5))
    } else if fast_mode() {
        (SimDuration::from_ms(10), SimDuration::from_ms(20))
    } else {
        (SimDuration::from_ms(20), SimDuration::from_ms(40))
    };
    ExperimentConfig::new(
        AppKind::Memcached,
        Policy::NcapCons,
        PER_BACKEND_LOAD_RPS * BACKENDS as f64,
    )
    .with_durations(warmup, measure)
    .with_poisson()
    .with_fleet(
        FleetConfig::new(BACKENDS, DispatchPolicy::LeastOutstanding)
            .with_coordinator(CoordinatorConfig::new(PER_BACKEND_RPS).with_util_target(0.5)),
    )
}

struct Point {
    name: &'static str,
    events: u64,
    /// Best-of-reps wall seconds (min is the standard noise filter for
    /// a deterministic workload).
    wall_s: f64,
}

impl Point {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s
    }
}

/// Measures every variant with its repetitions *interleaved* (round 1
/// of each, round 2 of each, …), taking the per-variant minimum: a
/// host-load drift mid-bench then penalizes all variants alike instead
/// of whichever happened to run last.
fn measure(variants: Vec<(&'static str, ExperimentConfig)>, reps: usize) -> Vec<Point> {
    let mut points: Vec<Point> = variants
        .iter()
        .map(|(name, _)| Point {
            name,
            events: 0,
            wall_s: f64::INFINITY,
        })
        .collect();
    for _ in 0..reps {
        for ((name, cfg), point) in variants.iter().zip(&mut points) {
            let t0 = Instant::now();
            let r = run_experiment(cfg);
            let wall = t0.elapsed().as_secs_f64();
            assert!(
                point.events == 0 || point.events == r.events_processed,
                "{name}: event count drifted across repetitions"
            );
            point.events = r.events_processed;
            point.wall_s = point.wall_s.min(wall);
        }
    }
    points
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

fn main() {
    ncap_bench::header(
        "attribution",
        "overhead of per-stage latency attribution (DESIGN.md \u{a7}13), not a paper figure",
    );
    let mode = if smoke_mode() {
        "smoke"
    } else if fast_mode() {
        "fast"
    } else {
        "full"
    };
    let reps = if smoke_mode() {
        1
    } else if fast_mode() {
        2
    } else {
        3
    };
    println!("(mode: {mode}, {BACKENDS} memcached backends at half-knee, best of {reps} reps)\n");

    let base = cfg();
    let points = measure(
        vec![
            ("breakdown off", base.clone().with_breakdown(false)),
            ("breakdown on (default)", base.clone()),
            ("breakdown + self-profile", base.with_profile()),
        ],
        reps,
    );
    let (off, on, prof) = (&points[0], &points[1], &points[2]);

    // Observer-effect cross-check: same seed, same simulation — the
    // observability layers must not change what gets simulated.
    assert_eq!(off.events, on.events, "breakdown changed the event stream");
    assert_eq!(off.events, prof.events, "profiler changed the event stream");

    let overhead = |p: &Point| (1.0 - p.events_per_sec() / off.events_per_sec()) * 100.0;
    let mut table = Table::new(vec![
        "variant", "events", "wall (s)", "events/s", "overhead",
    ]);
    for p in [off, on, prof] {
        table.row(vec![
            p.name.to_string(),
            p.events.to_string(),
            format!("{:.3}", p.wall_s),
            format!("{:.0}", p.events_per_sec()),
            if std::ptr::eq(p, off) {
                "—".to_string()
            } else {
                format!("{:+.1}%", overhead(p))
            },
        ]);
    }
    print!("{table}");

    let breakdown_overhead = overhead(on);
    let profile_overhead = overhead(prof);
    println!(
        "\nbreakdown overhead {breakdown_overhead:+.1}% (budget \u{2264} 5%), \
         self-profile on top {profile_overhead:+.1}%"
    );
    // The acceptance budget, enforced only in the full recorded run:
    // smoke/fast windows are short enough that scheduler noise can
    // exceed the entire budget.
    if !smoke_mode() && !fast_mode() {
        assert!(
            breakdown_overhead <= 5.0,
            "attribution overhead {breakdown_overhead:.1}% exceeds the 5% budget"
        );
    }

    // JSON record for scripts/bench_record.sh → BENCH_7.json.
    if let Some(path) = std::env::var_os("NCAP_BENCH_JSON") {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"bench\": \"attribution\",\n");
        json.push_str("  \"issue\": 7,\n");
        json.push_str(&format!("  \"mode\": {},\n", json_str(mode)));
        json.push_str(&format!(
            "  \"config\": {{\"app\": \"memcached\", \"policy\": \"ncap.cons\", \
             \"backends\": {BACKENDS}, \"load_rps\": {:.0}, \"reps\": {reps}}},\n",
            PER_BACKEND_LOAD_RPS * BACKENDS as f64
        ));
        json.push_str(&format!("  \"events\": {},\n", off.events));
        json.push_str(&format!(
            "  \"breakdown_off_events_per_sec\": {:.0},\n",
            off.events_per_sec()
        ));
        json.push_str(&format!(
            "  \"breakdown_on_events_per_sec\": {:.0},\n",
            on.events_per_sec()
        ));
        json.push_str(&format!(
            "  \"profile_events_per_sec\": {:.0},\n",
            prof.events_per_sec()
        ));
        json.push_str(&format!(
            "  \"breakdown_overhead_pct\": {breakdown_overhead:.2},\n"
        ));
        json.push_str(&format!(
            "  \"profile_overhead_pct\": {profile_overhead:.2},\n"
        ));
        json.push_str("  \"budget_pct\": 5.0\n");
        json.push_str("}\n");
        match std::fs::write(&path, &json) {
            Ok(()) => println!(
                "(json written to {})",
                std::path::Path::new(&path).display()
            ),
            Err(e) => {
                eprintln!("NCAP_BENCH_JSON: cannot write: {e}");
                std::process::exit(1);
            }
        }
    }
}
