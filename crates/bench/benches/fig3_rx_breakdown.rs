//! Figure 3 / §2.2 — receive-path latency breakdown.
//!
//! The paper measures that steps ①–③ of the RX path (DMA of the frame to
//! main memory, interrupt posting under moderation, ICR read over PCIe)
//! average 86 µs under Apache load — the window NCAP exploits to hide
//! the processor wake-up. This bench drives the NIC model directly with
//! a time-ordered event loop (bursty arrivals, DMA completions, MITT
//! expiries) and reports the same per-step decomposition.

use desim::{EventHandler, EventQueue, SimDuration, SimTime, Simulation};
use ncap_bench::header;
use netsim::packet::{NodeId, Packet};
use netsim::Bytes;
use nicsim::{Nic, NicConfig};
use simstats::{LogHistogram, Table};

#[derive(Debug, Clone)]
enum Ev {
    Burst,
    DmaDone { arrival: SimTime, queue: usize },
    Mitt,
    Delay { queue: usize, gen: u64 },
}

struct RxProbe {
    nic: Nic,
    /// DMA-completed frames awaiting the moderated interrupt.
    waiting: Vec<(SimTime, SimTime)>, // (arrival, dma_done)
    dma_h: LogHistogram,
    irq_wait_h: LogHistogram,
    total_h: LogHistogram,
    icr_read: SimDuration,
    seq: u64,
}

impl RxProbe {
    fn new() -> (Self, SimTime) {
        let cfg = NicConfig::i82574_like();
        let icr_read = cfg.icr_read_latency;
        let mut nic = Nic::new(cfg);
        let first_mitt = nic.start_mitt(SimTime::ZERO);
        (
            RxProbe {
                nic,
                waiting: Vec::new(),
                dma_h: LogHistogram::new(),
                irq_wait_h: LogHistogram::new(),
                total_h: LogHistogram::new(),
                icr_read,
                seq: 0,
            },
            first_mitt,
        )
    }
}

impl EventHandler for RxProbe {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, queue: &mut EventQueue<Ev>) {
        match event {
            Ev::Burst => {
                // 30 back-to-back frames, Apache-style request sizes.
                for i in 0..30u64 {
                    let arrival = now + SimDuration::from_nanos(i * 1_200);
                    let frame = Packet::request(
                        NodeId(1),
                        NodeId(0),
                        self.seq + i,
                        Bytes::from_static(b"GET /doc HTTP/1.1\r\n\r\n"),
                    );
                    let out = self.nic.frame_arrived(arrival, frame);
                    if let Some(done) = out.dma_complete_at {
                        queue.push(
                            done,
                            Ev::DmaDone {
                                arrival,
                                queue: out.queue,
                            },
                        );
                    }
                }
                self.seq += 30;
                if now < SimTime::from_ms(499) {
                    queue.push(now + SimDuration::from_nanos(1_250_000), Ev::Burst);
                }
            }
            Ev::DmaDone { arrival, queue: q } => {
                if let Some((deadline, gen)) = self.nic.rx_dma_complete(now, q) {
                    queue.push(deadline, Ev::Delay { queue: q, gen });
                }
                self.dma_h.record(now.saturating_since(arrival).as_nanos());
                self.waiting.push((arrival, now));
            }
            Ev::Delay { queue: q, gen } => {
                if self.nic.delay_expired(now, q, gen) {
                    self.service_irq(now);
                }
            }
            Ev::Mitt => {
                let (next, raised) = self.nic.mitt_expired(now);
                queue.push(next, Ev::Mitt);
                if !raised.is_empty() {
                    self.service_irq(now);
                }
            }
        }
    }
}

impl RxProbe {
    fn service_irq(&mut self, now: SimTime) {
        let delivered = now + self.icr_read;
        self.nic.read_icr(0);
        while self.nic.fetch_rx(0).is_some() {}
        for &(arrival, dma_done) in &self.waiting {
            self.irq_wait_h
                .record(now.saturating_since(dma_done).as_nanos());
            self.total_h
                .record(delivered.saturating_since(arrival).as_nanos());
        }
        self.waiting.clear();
    }
}

fn main() {
    header(
        "fig3_rx_breakdown",
        "Figure 3 / §2.2 (RX path latency, steps 1-3)",
    );
    let (probe, first_mitt) = RxProbe::new();
    let icr_read = probe.icr_read;
    let mut sim = Simulation::new(probe);
    sim.queue_mut().push(SimTime::from_us(100), Ev::Burst);
    sim.queue_mut().push(first_mitt, Ev::Mitt);
    sim.run_until(SimTime::from_ms(500));
    let probe = sim.into_handler();

    let mut table = Table::new(vec!["step", "mean", "p95", "note"]);
    let row = |h: &LogHistogram, step: &str, note: &str| {
        vec![
            step.to_owned(),
            format!("{:.1}us", h.mean() / 1e3),
            format!("{:.1}us", h.percentile(95.0) as f64 / 1e3),
            note.to_owned(),
        ]
    };
    table.row(row(
        &probe.dma_h,
        "1. DMA to main memory",
        "descriptor fetch + PCIe writes",
    ));
    table.row(row(
        &probe.irq_wait_h,
        "2. interrupt moderation wait",
        "MITT gates the IRQ posting",
    ));
    table.row(vec![
        "3. ICR read".to_owned(),
        format!("{:.1}us", icr_read.as_us_f64()),
        format!("{:.1}us", icr_read.as_us_f64()),
        "one PCIe round trip".to_owned(),
    ]);
    table.row(row(
        &probe.total_h,
        "total (steps 1-3)",
        "paper: 86us average under Apache",
    ));
    println!("{table}");
    println!("frames measured: {}", probe.total_h.count());
    assert!(probe.total_h.count() > 5_000, "probe must observe traffic");
    let mean_us = probe.total_h.mean() / 1e3;
    println!(
        "measured mean {:.1}us vs paper 86us: same order, dominated by the\n\
         moderation wait — the latency NCAP overlaps with core wake-up.",
        mean_us
    );
}
