//! Self-timed microbenchmarks: the simulator's own performance.
//!
//! Not a paper artifact — these guard the harness's throughput so the
//! figure-regeneration benches stay fast: event-queue ops, packet
//! construction + ReqMonitor inspection, DecisionEngine window handling,
//! and end-to-end simulated-seconds-per-wall-second for a small cluster.
//!
//! `harness = false`, no external framework: each case is calibrated to
//! a per-round wall-clock budget, run for several rounds, and the best
//! per-iteration time is reported (the minimum is the usual noise-robust
//! estimator for microbenchmarks). `NCAP_BENCH_FAST` shrinks the budget;
//! `NCAP_BENCH_SMOKE` reduces everything to a single tiny sanity round.

use desim::{EventQueue, SimDuration, SimTime};
use ncap::{NcapConfig, ReqMonitor};
use netsim::http::HttpRequest;
use netsim::packet::{NodeId, Packet};
use netsim::Bytes;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Wall-clock budget for one measured round.
fn round_budget() -> Duration {
    if ncap_bench::smoke_mode() {
        Duration::from_millis(2)
    } else if ncap_bench::fast_mode() {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(100)
    }
}

/// Calibrates an iteration count to the round budget, then reports the
/// best per-iteration time over several rounds.
fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    let budget = round_budget();
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        if t.elapsed() >= budget || iters >= (1 << 30) {
            break;
        }
        iters *= 2;
    }
    let rounds = if ncap_bench::smoke_mode() { 1 } else { 5 };
    let mut best = u64::MAX;
    for _ in 0..rounds {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(t.elapsed().as_nanos() as u64 / iters);
    }
    println!(
        "{name:<36} {per:>10}/iter   ({iters} iters/round, {rounds} rounds)",
        per = simstats::fmt_ns(best)
    );
}

fn main() {
    ncap_bench::header("micro", "no paper section — simulator self-timing");

    bench("event_queue_push_pop_1k", || {
        let mut q = EventQueue::with_capacity(1024);
        for i in 0..1_000u64 {
            q.push(SimTime::from_nanos((i * 7919) % 10_000), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = q.pop() {
            sum = sum.wrapping_add(v);
        }
        sum
    });

    let mut monitor = ReqMonitor::new();
    monitor.program([*b"GE", *b"HE", *b"PO", *b"ge"]);
    let get = Packet::request(NodeId(1), NodeId(0), 1, HttpRequest::get("/x").to_payload());
    let bulk = Packet::new(
        NodeId(1),
        NodeId(0),
        0,
        Bytes::from(vec![0xA5; 1448]),
        netsim::PacketMeta::default(),
    );
    bench("reqmonitor_inspect_match", || {
        black_box(monitor.inspect(black_box(&get)))
    });
    bench("reqmonitor_inspect_miss", || {
        black_box(monitor.inspect(black_box(&bulk)))
    });
    bench("http_request_build", || {
        HttpRequest::get("/doc/123.html").to_payload()
    });

    let mut e = ncap::DecisionEngine::new(NcapConfig::paper_defaults());
    let mut now = SimTime::ZERO;
    let mut req = 0u64;
    bench("decision_engine_mitt_expiry", || {
        now += SimDuration::from_us(50);
        req += 3;
        e.on_mitt_expiry(now, req, req * 1_500)
    });

    bench("cluster_sim_50ms_memcached_ncap", || {
        let cfg = cluster::ExperimentConfig::new(
            cluster::AppKind::Memcached,
            cluster::Policy::NcapCons,
            35_000.0,
        )
        .with_durations(SimDuration::from_ms(10), SimDuration::from_ms(40));
        cluster::run_experiment(&cfg).completed
    });
}
