//! Criterion microbenchmarks: the simulator's own performance.
//!
//! Not a paper artifact — these guard the harness's throughput so the
//! figure-regeneration benches stay fast: event-queue ops, packet
//! construction + ReqMonitor inspection, P-state arithmetic, and
//! end-to-end simulated-seconds-per-wall-second for a small cluster.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use desim::{EventQueue, SimDuration, SimTime};
use ncap::{NcapConfig, ReqMonitor};
use netsim::http::HttpRequest;
use netsim::packet::{NodeId, Packet};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            for i in 0..1_000u64 {
                q.push(SimTime::from_nanos((i * 7919) % 10_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        });
    });
}

fn bench_packet_inspect(c: &mut Criterion) {
    let mut monitor = ReqMonitor::new();
    monitor.program([*b"GE", *b"HE", *b"PO", *b"ge"]);
    let get = Packet::request(NodeId(1), NodeId(0), 1, HttpRequest::get("/x").to_payload());
    let bulk = Packet::new(
        NodeId(1),
        NodeId(0),
        0,
        Bytes::from(vec![0xA5; 1448]),
        netsim::PacketMeta::default(),
    );
    c.bench_function("reqmonitor_inspect_match", |b| {
        b.iter(|| black_box(monitor.inspect(black_box(&get))));
    });
    c.bench_function("reqmonitor_inspect_miss", |b| {
        b.iter(|| black_box(monitor.inspect(black_box(&bulk))));
    });
    c.bench_function("http_request_build", |b| {
        b.iter(|| black_box(HttpRequest::get("/doc/123.html").to_payload()));
    });
}

fn bench_decision_engine(c: &mut Criterion) {
    c.bench_function("decision_engine_mitt_expiry", |b| {
        let mut e = ncap::DecisionEngine::new(NcapConfig::paper_defaults());
        let mut now = SimTime::ZERO;
        let mut req = 0u64;
        b.iter(|| {
            now += SimDuration::from_us(50);
            req += 3;
            black_box(e.on_mitt_expiry(now, req, req * 1_500))
        });
    });
}

fn bench_cluster_sim(c: &mut Criterion) {
    c.bench_function("cluster_sim_50ms_memcached_ncap", |b| {
        b.iter(|| {
            let cfg = cluster::ExperimentConfig::new(
                cluster::AppKind::Memcached,
                cluster::Policy::NcapCons,
                35_000.0,
            )
            .with_durations(SimDuration::from_ms(10), SimDuration::from_ms(40));
            black_box(cluster::run_experiment(&cfg).completed)
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_event_queue, bench_packet_inspect, bench_decision_engine, bench_cluster_sim
);
criterion_main!(benches);
