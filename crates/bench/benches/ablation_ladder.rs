//! Ablation: menu vs ladder cpuidle governor (paper §2.1).
//!
//! The paper evaluates the menu governor (Linux's default); ladder is the
//! other in-tree policy — it promotes one state per long-enough sleep
//! instead of predicting. Two workloads separate them:
//!
//! * under **bursty** arrivals the long inter-burst gaps let ladder climb
//!   to C6 within a few sleeps, after which both governors behave
//!   identically — the burst-period workload makes the choice immaterial
//!   (and NCAP's burst guard bypasses cpuidle exactly when it matters);
//! * under **Poisson** arrivals the short irregular idles expose the
//!   difference: ladder's stepwise walk keeps cores in shallow C1/C3
//!   (paying their static power through every sleep), while menu's
//!   next-timer fallback dives straight to C6 — whose zero residency
//!   power beats the per-dive transition energy at these idle lengths.

use cluster::{run_experiments_parallel, AppKind, Policy};
use ncap_bench::{header, standard};
use simstats::{fmt_ns, Table};

fn main() {
    header("ablation_ladder", "menu vs ladder cpuidle governor (§2.1)");
    let load = AppKind::Memcached.paper_loads()[0];
    let policies = [Policy::PerfIdle, Policy::OndIdle, Policy::NcapCons];
    for poisson in [false, true] {
        let mut configs = Vec::new();
        for &p in &policies {
            let base = standard(AppKind::Memcached, p, load);
            let base = if poisson { base.with_poisson() } else { base };
            configs.push(base.clone());
            configs.push(base.with_ladder());
        }
        let results = run_experiments_parallel(&configs);
        let mut t = Table::new(vec!["policy", "cpuidle", "p95", "p99", "energy (J)"]);
        for (i, r) in results.iter().enumerate() {
            t.row(vec![
                policies[i / 2].name().to_owned(),
                if i % 2 == 0 { "menu" } else { "ladder" }.to_owned(),
                fmt_ns(r.latency.p95),
                fmt_ns(r.latency.p99),
                format!("{:.2}", r.energy_j),
            ]);
        }
        println!(
            "Memcached @ {load:.0} rps, {} arrivals:",
            if poisson { "Poisson" } else { "bursty" }
        );
        println!("{t}");
    }
    println!("expected: identical under bursty arrivals (both converge to C6 in");
    println!("the long gaps); under Poisson, ladder's shallow C1/C3 sleeps pay");
    println!("static power on every idle and cost MORE than menu's straight-to-C6");
    println!("dives — the cpuidle-policy choice only matters for exactly the");
    println!("traffic NCAP does not guard (NCAP rows are identical either way).");
}
