//! The paper's headline claims (§1, §6), checked against this substrate.
//!
//! 1. "At medium- to high-load levels, a server deploying NCAP consumes
//!    37~61 % lower processor energy than the baseline server, while
//!    satisfying the SLA."  (baseline = `perf`)
//! 2. "At low- to medium-load levels, it consumes 21~49 % lower processor
//!    energy than a server employing the most energy-efficient,
//!    SLA-satisfying power management policy amongst the current [Linux]
//!    policies."
//! 3. NCAP-hardware beats `ncap.sw` on both latency and energy.

use cluster::{AppKind, ExperimentResult, Policy};
use ncap_bench::{find_sla, header, pct, run_all_policies, study_loads};
use simstats::Table;

fn best_conventional(results: &[ExperimentResult], sla_ns: u64) -> Option<&ExperimentResult> {
    results
        .iter()
        .filter(|r| !r.policy.is_ncap() && r.latency.meets_sla(sla_ns))
        .min_by(|a, b| a.energy_j.total_cmp(&b.energy_j))
}

fn best_ncap(results: &[ExperimentResult], sla_ns: u64) -> Option<&ExperimentResult> {
    results
        .iter()
        .filter(|r| r.policy.uses_ncap_hardware() && r.latency.meets_sla(sla_ns))
        .min_by(|a, b| a.energy_j.total_cmp(&b.energy_j))
}

fn main() {
    header("headline_claims", "§1/§6 headline numbers");
    let mut t = Table::new(vec![
        "app",
        "load",
        "NCAP vs perf",
        "best conventional (SLA ok)",
        "NCAP vs best conv.",
        "hw vs sw (p95)",
        "hw vs sw (energy)",
    ]);
    for app in [AppKind::Apache, AppKind::Memcached] {
        let sla = find_sla(app);
        let loads = study_loads(app, &sla);
        for (label, &load) in ["low", "medium", "high"].iter().zip(loads.iter()) {
            let results = run_all_policies(app, load);
            let perf = results
                .iter()
                .find(|r| r.policy == Policy::Perf)
                .expect("perf always runs");
            let ncap = best_ncap(&results, sla.sla_ns);
            let conv = best_conventional(&results, sla.sla_ns);
            let sw = results
                .iter()
                .find(|r| r.policy == Policy::NcapSw)
                .expect("ncap.sw always runs");
            let (vs_perf, vs_conv, vs_sw_lat, vs_sw_energy) = match ncap {
                Some(n) => (
                    pct(1.0 - n.energy_j / perf.energy_j),
                    conv.map_or("-".to_owned(), |c| {
                        format!(
                            "{} ({})",
                            pct(1.0 - n.energy_j / c.energy_j),
                            c.policy.name()
                        )
                    }),
                    format!(
                        "{:+.1}%",
                        (n.latency.p95 as f64 / sw.latency.p95 as f64 - 1.0) * 100.0
                    ),
                    pct(1.0 - n.energy_j / sw.energy_j),
                ),
                None => (
                    "SLA violated".to_owned(),
                    "-".to_owned(),
                    "-".to_owned(),
                    "-".to_owned(),
                ),
            };
            t.row(vec![
                app.name().to_owned(),
                format!("{label} ({load:.0})"),
                vs_perf,
                conv.map_or("none".to_owned(), |c| c.policy.name().to_owned()),
                vs_conv,
                vs_sw_lat,
                vs_sw_energy,
            ]);
        }
    }
    println!("{t}");
    println!(
        "paper: (1) NCAP 37-61% below perf at med-high loads with SLA met;\n\
         (2) 21-49% below the best SLA-satisfying conventional policy at\n\
         low-medium loads; (3) hardware NCAP faster AND cheaper than ncap.sw."
    );
}
