//! Figure 8 — Apache: response-time distribution, energy consumption, and
//! BW(Rx)/F snapshots across the seven policies at three load levels.

use cluster::AppKind;
use ncap_bench::{header, run_fig89};

fn main() {
    header(
        "fig8_apache",
        "Figure 8 (Apache: latency dist, energy, snapshots)",
    );
    run_fig89(AppKind::Apache);
}
