//! Ablation: the FCONS descent schedule (paper §4.3/§6).
//!
//! `ncap.cons` (FCONS = 5) and `ncap.aggr` (FCONS = 1) are the paper's
//! two points; this sweep generalizes the latency/energy trade across
//! FCONS = 1..8 at the low and medium Apache loads, where the paper
//! reports cons giving 12 %/31 % lower p95 than aggr at 6 %/3 % higher
//! energy.

use cluster::{run_experiments_parallel, AppKind, Policy};
use ncap::NcapConfig;
use ncap_bench::{header, standard};
use simstats::{fmt_ns, Table};

fn main() {
    header(
        "ablation_fcons",
        "FCONS sweep (generalizing ncap.cons vs ncap.aggr)",
    );
    for &load in &AppKind::Apache.paper_loads()[..2] {
        let fcons: Vec<u8> = vec![1, 2, 3, 5, 8];
        let configs: Vec<_> = fcons
            .iter()
            .map(|&f| {
                standard(AppKind::Apache, Policy::NcapCons, load)
                    .with_ncap_override(NcapConfig::paper_defaults().with_fcons(f))
            })
            .collect();
        let results = run_experiments_parallel(&configs);
        println!("Apache @ {load:.0} rps:");
        let mut t = Table::new(vec!["FCONS", "p95", "p99", "energy (J)", "IT_LOW wakes"]);
        for (f, r) in fcons.iter().zip(results.iter()) {
            t.row(vec![
                f.to_string(),
                fmt_ns(r.latency.p95),
                fmt_ns(r.latency.p99),
                format!("{:.2}", r.energy_j),
                r.wake_markers.to_string(),
            ]);
        }
        println!("{t}");
    }
    println!("expected shape: larger FCONS (slower descent) trades energy for latency.");
}
