//! Latency-versus-load curves and the SLA inflection points.
//!
//! The paper (§6, "Figure 7"-style latency/load plot) sweeps load under
//! the `perf` baseline, finds the inflection of the p95 curve, and sets
//! the SLA to the p95 there — 41 ms for Apache and 3 ms for Memcached on
//! their testbed. Absolute values differ on our substrate; the shape
//! (flat, then a knee, then blow-up past saturation) and the max-load
//! ratio between the applications (~2.1×) are the reproduction targets.

use cluster::AppKind;
use ncap_bench::{dump_tsv, find_sla, header};
use simstats::{fmt_ns, Table};

fn main() {
    header(
        "fig7_latency_vs_load",
        "latency-load curves / SLA inflection (§6)",
    );
    let mut knees = Vec::new();
    for app in [AppKind::Apache, AppKind::Memcached] {
        let sla = find_sla(app);
        println!("{app}: p95 vs offered load (perf baseline)");
        let mut t = Table::new(vec!["load (rps)", "p95", "note"]);
        for &(load, p95) in &sla.curve {
            let note = if (load - sla.knee_rps).abs() < 1.0 {
                "<-- inflection (SLA set here)"
            } else if load > sla.knee_rps {
                "past the knee"
            } else {
                ""
            };
            t.row(vec![format!("{load:.0}"), fmt_ns(p95), note.to_owned()]);
        }
        println!("{t}");
        dump_tsv(
            &format!("fig7_{app}"),
            &["load_rps", "p95_ns"],
            &sla.curve
                .iter()
                .map(|&(l, p)| vec![format!("{l:.0}"), p.to_string()])
                .collect::<Vec<_>>(),
        );
        println!(
            "{app}: SLA = {} at knee load {:.0} rps (paper: {} at their testbed scale)\n",
            fmt_ns(sla.sla_ns),
            sla.knee_rps,
            match app {
                AppKind::Apache => "41 ms",
                AppKind::Memcached => "3 ms",
            }
        );
        knees.push((app, sla.knee_rps));
    }
    let ratio = knees[1].1 / knees[0].1;
    println!(
        "max sustained load ratio memcached/apache = {ratio:.2} (paper: ~2.1x, 143K vs 68K rps)"
    );
}
