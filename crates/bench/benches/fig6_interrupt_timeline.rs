//! Figure 6 — NCAP interrupt timeline under a crafted arrival scenario.
//!
//! Drives the NCAP-enhanced NIC directly through the paper's Figure 6
//! storyline, in strict time order: a request after a long idle period
//! (immediate `IT_RX` via the CIT rule), a burst of requests (`IT_HIGH`
//! at the next MITT expiry), then a quiet stretch (`IT_LOW` descent over
//! FCONS steps).

use desim::{SimDuration, SimTime};
use ncap::{IcrFlags, NcapConfig};
use ncap_bench::header;
use netsim::packet::{NodeId, Packet};
use netsim::Bytes;
use nicsim::{Nic, NicConfig};
use simstats::Table;

fn get_frame(id: u64) -> Packet {
    Packet::request(
        NodeId(1),
        NodeId(0),
        id,
        Bytes::from_static(b"GET /doc HTTP/1.1\r\n\r\n"),
    )
}

struct Scenario {
    nic: Nic,
    mitt_at: SimTime,
    fcons: u8,
    steps_down: u8,
    timeline: Table,
}

impl Scenario {
    fn new() -> Self {
        let cfg = NcapConfig::conservative();
        let fcons = cfg.fcons;
        let mut nic = Nic::new(NicConfig::i82574_like().with_ncap(cfg));
        let mitt_at = nic.start_mitt(SimTime::ZERO);
        nic.note_freq_status(false, true); // booted at the deepest P-state
        Scenario {
            nic,
            mitt_at,
            fcons,
            steps_down: 0,
            timeline: Table::new(vec!["t", "event", "ICR", "driver reaction"]),
        }
    }

    /// Handles an asserted interrupt exactly as the enhanced driver would,
    /// logging the cause and mirroring the frequency status back.
    fn service_irq(&mut self, t: SimTime, event: &str) {
        let icr = self.nic.read_icr(0);
        let reaction = if icr.contains(IcrFlags::IT_HIGH) {
            self.steps_down = 0;
            self.nic.note_freq_status(true, false);
            "boost F to max, disable menu, suspend ondemand"
        } else if icr.contains(IcrFlags::IT_LOW) {
            self.steps_down += 1;
            let at_min = self.steps_down >= self.fcons;
            self.nic.note_freq_status(false, at_min);
            if at_min {
                "FCONS descent complete: minimum F"
            } else if self.steps_down == 1 {
                "step F down, re-enable menu"
            } else {
                "step F down"
            }
        } else {
            "ordinary moderated RX/TX service"
        };
        self.timeline.row(vec![
            t.to_string(),
            event.to_owned(),
            icr.to_string(),
            reaction.to_owned(),
        ]);
    }

    /// Advances MITT expiries (in time order) up to `until`.
    fn run_until(&mut self, until: SimTime) {
        while self.mitt_at <= until {
            let t = self.mitt_at;
            let (next, raised) = self.nic.mitt_expired(t);
            self.mitt_at = next;
            if !raised.is_empty() {
                self.service_irq(t, "MITT expiry");
            }
        }
    }

    fn inject(&mut self, t: SimTime, frame: Packet, label: Option<&str>) {
        self.run_until(t);
        let out = self.nic.frame_arrived(t, frame);
        if let Some(l) = label {
            self.timeline.row(vec![
                t.to_string(),
                l.to_owned(),
                "-".to_owned(),
                String::new(),
            ]);
        }
        if out.immediate_irq {
            self.service_irq(t, "request after CIT silence");
        }
        if let Some(done) = out.dma_complete_at {
            self.run_until(done);
            self.nic.rx_dma_complete(done, out.queue);
        }
    }
}

fn main() {
    header(
        "fig6_interrupt_timeline",
        "Figure 6 (NCAP interrupt scenario)",
    );
    let mut s = Scenario::new();

    // Phase 1: req1 arrives after > CIT (500 us) of silence.
    s.inject(
        SimTime::from_ms(2),
        get_frame(1),
        Some("req1 after long idle"),
    );

    // Phase 2: a burst of 10 requests inside one MITT window (~200 K rps).
    let burst_start = SimTime::from_nanos(2_410_000);
    s.run_until(burst_start);
    s.timeline.row(vec![
        burst_start.to_string(),
        "burst of 10 requests".to_owned(),
        "-".to_owned(),
        String::new(),
    ]);
    for i in 0..10u64 {
        s.inject(
            burst_start + SimDuration::from_nanos(i * 1_500),
            get_frame(10 + i),
            None,
        );
    }

    // Phase 3: quiet stretch — the staged IT_LOW descent.
    s.run_until(SimTime::from_ms(12));

    println!("{}", s.timeline);
    let (high, low, wake) = s.nic.ncap().unwrap().engine().posted_counts();
    println!(
        "posted: IT_HIGH={high} IT_LOW={low} immediate IT_RX={wake} (FCONS={})",
        s.fcons
    );
    assert_eq!(wake, 1, "exactly one CIT wake in the scenario");
    assert_eq!(high, 1, "the burst must trigger IT_HIGH exactly once");
    assert_eq!(
        low,
        u64::from(s.fcons),
        "descent must take FCONS IT_LOW steps"
    );
    println!("scenario reproduces Figure 6: wake -> boost -> staged descent.");
}
