//! Figure 2 — Apache p95 latency vs. ondemand invocation period.
//!
//! The paper recompiled the Linux kernel to unlock invocation periods
//! below the hard-coded 10 ms minimum and showed that (a) the best period
//! varies with load and (b) shorter is not always better, because the
//! governor invocation and V/F-change penalties accumulate. The
//! simulator's ondemand period is a parameter, so the sweep is direct.

use cluster::{run_experiments_parallel, AppKind, Policy};
use desim::SimDuration;
use ncap_bench::{header, standard};
use simstats::{fmt_ns, Table};

fn main() {
    header(
        "fig2_ondemand_period",
        "Figure 2 (ondemand invocation period sweep)",
    );
    let periods_ms = [1u64, 2, 5, 10, 20];
    let loads = AppKind::Apache.paper_loads();

    let mut configs = Vec::new();
    for &load in &loads {
        for &p in &periods_ms {
            configs.push(
                standard(AppKind::Apache, Policy::Ond, load)
                    .with_ondemand_period(SimDuration::from_ms(p)),
            );
        }
    }
    let results = run_experiments_parallel(&configs);

    let mut t = Table::new(vec![
        "load (rps)",
        "1ms",
        "2ms",
        "5ms",
        "10ms",
        "20ms",
        "best",
    ]);
    for (li, &load) in loads.iter().enumerate() {
        let row: Vec<&cluster::ExperimentResult> = (0..periods_ms.len())
            .map(|pi| &results[li * periods_ms.len() + pi])
            .collect();
        let best = row
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.latency.p95)
            .map(|(i, _)| periods_ms[i])
            .unwrap_or(10);
        let mut cells = vec![format!("{load:.0}")];
        cells.extend(row.iter().map(|r| fmt_ns(r.latency.p95)));
        cells.push(format!("{best}ms"));
        t.row(cells);
    }
    println!("p95 response time by ondemand invocation period:");
    println!("{t}");
    println!(
        "paper's shape: the best period differs per load level, and 1 ms is\n\
         not uniformly better than 10 ms — the reason Linux hard-codes the\n\
         10 ms minimum (§2.1)."
    );
}
