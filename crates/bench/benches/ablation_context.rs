//! Ablation: context-aware vs naive packet-rate triggering (paper §4.1).
//!
//! The paper's motivating comparison: a naive design boosts the processor
//! whenever *any* packet rate is high, so bulk background traffic
//! (off-line analytics, storage streams) and non-latency-critical updates
//! (HTTP PUT) burn energy for nothing. NCAP's ReqMonitor templates ignore
//! them. We run the low Apache load plus a heavy bulk-frame background
//! stream and compare.

use cluster::{run_experiments_parallel, AppKind, BackgroundTraffic, Policy};
use ncap::NcapConfig;
use ncap_bench::{header, standard};
use simstats::{fmt_ns, Table};

fn main() {
    header("ablation_context", "context-aware vs naive trigger (§4.1)");
    let load = AppKind::Apache.paper_loads()[0];
    let bg = BackgroundTraffic {
        bulk: true,
        rate: 100_000.0, // 100 K bulk frames/s ≈ 1.2 Gbps of analytics traffic
        burst_size: 500,
    };
    let variants: Vec<(&str, cluster::ExperimentConfig)> = vec![
        (
            "context-aware, no background",
            standard(AppKind::Apache, Policy::NcapCons, load),
        ),
        (
            "context-aware + bulk background",
            standard(AppKind::Apache, Policy::NcapCons, load).with_background(bg),
        ),
        (
            "naive trigger + bulk background",
            standard(AppKind::Apache, Policy::NcapCons, load)
                .with_background(bg)
                .with_ncap_override(NcapConfig::paper_defaults().naive_trigger()),
        ),
    ];
    let configs: Vec<_> = variants.iter().map(|(_, c)| c.clone()).collect();
    let results = run_experiments_parallel(&configs);
    let mut t = Table::new(vec!["variant", "p95", "energy (J)", "NCAP interrupts"]);
    for ((name, _), r) in variants.iter().zip(results.iter()) {
        t.row(vec![
            (*name).to_owned(),
            fmt_ns(r.latency.p95),
            format!("{:.2}", r.energy_j),
            r.wake_markers.to_string(),
        ]);
    }
    println!("Apache @ {load:.0} rps (+500-frame bulk bursts at 100 K frames/s):");
    println!("{t}");
    println!("expected: the naive trigger fires on the bulk stream, pinning the");
    println!("processor at P0 and burning energy; the context-aware design ignores it.");
}
