//! §7 discussion — NCAP on a TOE-capable NIC.
//!
//! "Because TOEs reduce the load on the processors processing packets, a
//! server employing TOE-capable NICs can sustain a higher rate of network
//! packets … a TOE-enabled NIC holds packets a longer time within the
//! NIC, [so] NCAP has more slack to hide the latency of processor cores
//! transitioning from a sleep or low-performance state."

use cluster::{run_experiments_parallel, AppKind, Policy};
use ncap_bench::{header, standard};
use nicsim::ToeConfig;
use simstats::{fmt_ns, Table};

fn main() {
    header("discussion_toe", "§7 (NCAP with a TCP offload engine)");
    // Loads around and above the conventional knee: the TOE's extra
    // stack headroom shows up as sustained capacity.
    let loads = [110_000.0, 130_000.0, 150_000.0];
    let mut configs = Vec::new();
    for &load in &loads {
        configs.push(standard(AppKind::Memcached, Policy::NcapCons, load));
        configs.push(
            standard(AppKind::Memcached, Policy::NcapCons, load).with_toe(ToeConfig::typical()),
        );
    }
    let results = run_experiments_parallel(&configs);
    let mut t = Table::new(vec!["load (rps)", "NIC", "p95", "goodput", "energy (J)"]);
    for (i, r) in results.iter().enumerate() {
        t.row(vec![
            format!("{:.0}", loads[i / 2]),
            if i % 2 == 0 { "conventional" } else { "TOE" }.to_owned(),
            fmt_ns(r.latency.p95),
            format!("{:.3}", r.goodput()),
            format!("{:.2}", r.energy_j),
        ]);
    }
    println!("Memcached, ncap.cons, at and above the conventional knee:");
    println!("{t}");
    println!("expected: the TOE sustains loads past the conventional knee (stack");
    println!("cycles absorbed on the NIC) and trims busy energy; its extra hold");
    println!("time gives NCAP more overlap to hide wake-ups behind.");
}
