//! Every quantitative sentence of the paper's §6, measured side by side.
//!
//! For each claim the table shows the paper's number, the value measured
//! on this substrate at the corresponding (knee-relative) operating
//! point, and whether the *direction* of the effect reproduces. Absolute
//! agreement is not expected (different substrate); directions and rough
//! magnitudes are the reproduction contract.

use cluster::{AppKind, ExperimentResult, Policy};
use ncap_bench::{find_sla, header, run_all_policies, study_loads};
use simstats::Table;

struct Ctx {
    /// results[load_idx][policy_idx] in Policy::ALL order.
    levels: Vec<Vec<ExperimentResult>>,
    sla_ns: u64,
}

fn collect(app: AppKind) -> Ctx {
    let sla = find_sla(app);
    let levels = study_loads(app, &sla)
        .iter()
        .map(|&l| run_all_policies(app, l))
        .collect();
    Ctx {
        levels,
        sla_ns: sla.sla_ns,
    }
}

impl Ctx {
    fn get(&self, level: usize, p: Policy) -> &ExperimentResult {
        self.levels[level]
            .iter()
            .find(|r| r.policy == p)
            .expect("all policies ran")
    }

    /// Energy of `a` relative to `b` minus one, in percent (negative =
    /// `a` consumes less).
    fn energy_delta(&self, level: usize, a: Policy, b: Policy) -> f64 {
        (self.get(level, a).energy_j / self.get(level, b).energy_j - 1.0) * 100.0
    }

    /// p95 of `a` relative to `b` minus one, in percent.
    fn p95_delta(&self, level: usize, a: Policy, b: Policy) -> f64 {
        (self.get(level, a).latency.p95 as f64 / self.get(level, b).latency.p95 as f64 - 1.0)
            * 100.0
    }

    fn meets(&self, level: usize, p: Policy) -> bool {
        self.get(level, p).latency.meets_sla(self.sla_ns)
    }
}

fn verdict(paper: f64, measured: f64) -> &'static str {
    if paper == 0.0 {
        return if measured.abs() < 5.0 {
            "direction ok"
        } else {
            "DIFFERS"
        };
    }
    if paper.signum() == measured.signum() {
        "direction ok"
    } else {
        "DIFFERS"
    }
}

fn main() {
    header(
        "section6_claims",
        "§6's quantitative statements, one by one",
    );
    let apache = collect(AppKind::Apache);
    let memcached = collect(AppKind::Memcached);
    let (low, med, high) = (0usize, 1usize, 2usize);

    let mut t = Table::new(vec!["§6 claim", "paper", "measured", "verdict"]);
    let mut row = |claim: &str, paper_txt: String, paper: f64, measured: f64| {
        t.row(vec![
            claim.to_owned(),
            paper_txt,
            format!("{measured:+.1}%"),
            verdict(paper, measured).to_owned(),
        ]);
    };

    // --- Apache energy ---------------------------------------------------
    row(
        "apache low: ond energy vs perf",
        "-22%".into(),
        -22.0,
        apache.energy_delta(low, Policy::Ond, Policy::Perf),
    );
    row(
        "apache low: perf.idle energy vs perf",
        "-58%".into(),
        -58.0,
        apache.energy_delta(low, Policy::PerfIdle, Policy::Perf),
    );
    row(
        "apache low: ond.idle energy vs perf.idle",
        "~-5%".into(),
        -5.0,
        apache.energy_delta(low, Policy::OndIdle, Policy::PerfIdle),
    );
    row(
        "apache low: ncap.aggr energy vs ond",
        "-49%".into(),
        -49.0,
        apache.energy_delta(low, Policy::NcapAggr, Policy::Ond),
    );
    row(
        "apache med: ncap.aggr energy vs ond",
        "-21%".into(),
        -21.0,
        apache.energy_delta(med, Policy::NcapAggr, Policy::Ond),
    );
    row(
        "apache med: ncap.sw energy vs ond",
        "-11%".into(),
        -11.0,
        apache.energy_delta(med, Policy::NcapSw, Policy::Ond),
    );
    row(
        "apache med: ncap.sw p95 vs ond",
        "+25%".into(),
        25.0,
        apache.p95_delta(med, Policy::NcapSw, Policy::Ond),
    );
    row(
        "apache low: ncap.cons p95 vs ncap.aggr",
        "-12%".into(),
        -12.0,
        apache.p95_delta(low, Policy::NcapCons, Policy::NcapAggr),
    );
    row(
        "apache low: ncap.cons energy vs ncap.aggr",
        "+6%".into(),
        6.0,
        apache.energy_delta(low, Policy::NcapCons, Policy::NcapAggr),
    );
    row(
        "apache high: ncap energy vs perf",
        "~0%".into(),
        0.0,
        apache.energy_delta(high, Policy::NcapCons, Policy::Perf),
    );

    // --- Memcached -------------------------------------------------------
    row(
        "memcached low: perf.idle p95 vs perf",
        "+47%".into(),
        47.0,
        memcached.p95_delta(low, Policy::PerfIdle, Policy::Perf),
    );
    row(
        "memcached low: ond p95 vs perf",
        "+83%".into(),
        83.0,
        memcached.p95_delta(low, Policy::Ond, Policy::Perf),
    );
    row(
        "memcached med: ond p95 vs perf",
        "+340%".into(),
        340.0,
        memcached.p95_delta(med, Policy::Ond, Policy::Perf),
    );
    row(
        "memcached low: ncap.cons energy vs perf.idle",
        "-24%".into(),
        -24.0,
        memcached.energy_delta(low, Policy::NcapCons, Policy::PerfIdle),
    );
    row(
        "memcached low: ncap.aggr energy vs perf.idle",
        "-34%".into(),
        -34.0,
        memcached.energy_delta(low, Policy::NcapAggr, Policy::PerfIdle),
    );
    row(
        "memcached low: ncap.aggr p95 vs perf.idle",
        "+8%".into(),
        8.0,
        memcached.p95_delta(low, Policy::NcapAggr, Policy::PerfIdle),
    );
    row(
        "memcached high: ncap energy vs perf",
        "~0%".into(),
        0.0,
        memcached.energy_delta(high, Policy::NcapCons, Policy::Perf),
    );
    println!("{t}");

    // --- SLA pass/fail pattern --------------------------------------------
    let mut sla = Table::new(vec!["claim", "paper", "measured"]);
    sla.row(vec![
        "apache: perf.idle/ond.idle fail SLA somewhere below the knee".into(),
        "fail at medium".into(),
        format!(
            "perf.idle {}, ond.idle {} (low) / {} , {} (med)",
            if apache.meets(low, Policy::PerfIdle) {
                "ok"
            } else {
                "FAIL"
            },
            if apache.meets(low, Policy::OndIdle) {
                "ok"
            } else {
                "FAIL"
            },
            if apache.meets(med, Policy::PerfIdle) {
                "ok"
            } else {
                "FAIL"
            },
            if apache.meets(med, Policy::OndIdle) {
                "ok"
            } else {
                "FAIL"
            },
        ),
    ]);
    sla.row(vec![
        "NCAP hardware meets the SLA at low and medium loads".into(),
        "always".into(),
        format!(
            "ncap.cons {}/{}; ncap.aggr {}/{}",
            if apache.meets(low, Policy::NcapCons) {
                "ok"
            } else {
                "FAIL"
            },
            if apache.meets(med, Policy::NcapCons) {
                "ok"
            } else {
                "FAIL"
            },
            if memcached.meets(low, Policy::NcapAggr) {
                "ok"
            } else {
                "FAIL"
            },
            if memcached.meets(med, Policy::NcapAggr) {
                "ok"
            } else {
                "FAIL"
            },
        ),
    ]);
    let apache_mean = apache.get(low, Policy::Perf).latency.mean / 1e6;
    let memcached_mean = memcached.get(low, Policy::Perf).latency.mean / 1e6;
    sla.row(vec![
        "apache mean response >> memcached mean (1.7 vs 0.6 ms)".into(),
        "2.8x".into(),
        format!(
            "{apache_mean:.2} vs {memcached_mean:.2} ms ({:.1}x)",
            apache_mean / memcached_mean
        ),
    ]);
    println!("{sla}");
    println!("see EXPERIMENTS.md \"Deviations\" for the claims that do not reproduce.");
}
