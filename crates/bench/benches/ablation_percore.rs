//! Ablation: chip-wide vs per-core boost vs the full multi-queue NIC
//! (paper §7 extension).
//!
//! With a multi-queue NIC "the target core for packet/request processing
//! is known, [so] NCAP changes the P and C states of the target core
//! independent from other cores. This can further improve the
//! effectiveness of NCAP." Three steps are measured: the paper's
//! chip-wide baseline; per-core boost on the single-queue NIC (boost on
//! dispatch, menu guard on core 0 only); and per-core boost on a 4-queue
//! RSS NIC where every vector is pinned to its own core.

use cluster::{run_experiments_parallel, AppKind, Policy};
use ncap_bench::{header, standard};
use simstats::{fmt_ns, Table};

fn main() {
    header("ablation_percore", "§7 per-core vs chip-wide boost");
    for app in [AppKind::Apache, AppKind::Memcached] {
        let load = app.paper_loads()[0];
        let configs = vec![
            standard(app, Policy::NcapCons, load),
            standard(app, Policy::NcapCons, load).with_per_core_boost(),
            standard(app, Policy::NcapCons, load)
                .with_per_core_boost()
                .with_nic_queues(4),
            standard(app, Policy::NcapAggr, load),
            standard(app, Policy::NcapAggr, load).with_per_core_boost(),
            standard(app, Policy::NcapAggr, load)
                .with_per_core_boost()
                .with_nic_queues(4),
        ];
        let results = run_experiments_parallel(&configs);
        let labels = [
            "ncap.cons chip-wide",
            "ncap.cons per-core",
            "ncap.cons per-core + 4 queues",
            "ncap.aggr chip-wide",
            "ncap.aggr per-core",
            "ncap.aggr per-core + 4 queues",
        ];
        println!("{app} @ {load:.0} rps:");
        let mut t = Table::new(vec!["variant", "p95", "p99", "energy (J)"]);
        for (l, r) in labels.iter().zip(results.iter()) {
            t.row(vec![
                (*l).to_owned(),
                fmt_ns(r.latency.p95),
                fmt_ns(r.latency.p99),
                format!("{:.2}", r.energy_j),
            ]);
        }
        println!("{t}");
    }
    println!("expected: per-core saves energy (idle cores poll at low V during");
    println!("bursts) at a small latency cost (late cores pay the V-ramp on");
    println!("their first job).");
}
