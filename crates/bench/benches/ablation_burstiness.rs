//! Ablation: bursty vs smooth (Poisson) arrivals at the same offered rate.
//!
//! The paper's premise (§3, citing Benson et al.): datacenter traffic is
//! bursty and "the rate of network packets is inherently unpredictable at
//! the low- to medium-levels". NCAP exists to anticipate bursts — so
//! with the burstiness removed (Poisson arrivals at the same rate) its
//! advantage over the conventional policies should shrink on the latency
//! side, and the ondemand-based policies should stop violating the SLA.

use cluster::{run_experiments_parallel, AppKind, Policy};
use ncap_bench::{header, standard};
use simstats::{fmt_ns, Table};

fn main() {
    header(
        "ablation_burstiness",
        "bursty vs Poisson arrivals (§3 premise)",
    );
    let load = 39_600.0; // the fig9 low load
    let policies = [
        Policy::Perf,
        Policy::OndIdle,
        Policy::NcapCons,
        Policy::NcapAggr,
    ];
    let mut configs = Vec::new();
    for &p in &policies {
        configs.push(standard(AppKind::Memcached, p, load));
        configs.push(standard(AppKind::Memcached, p, load).with_poisson());
    }
    let results = run_experiments_parallel(&configs);
    let mut t = Table::new(vec!["policy", "arrivals", "p95", "p99", "energy (J)"]);
    for (i, r) in results.iter().enumerate() {
        t.row(vec![
            policies[i / 2].name().to_owned(),
            if i % 2 == 0 { "bursty" } else { "poisson" }.to_owned(),
            fmt_ns(r.latency.p95),
            fmt_ns(r.latency.p99),
            format!("{:.2}", r.energy_j),
        ]);
    }
    println!("Memcached @ {load:.0} rps:");
    println!("{t}");
    println!("expected: under Poisson arrivals ond.idle's tail collapses toward");
    println!("perf's (no bursts to miss) — NCAP's latency advantage is a");
    println!("burstiness phenomenon, exactly the paper's motivation.");
}
