//! Figure 1 — V/F change sequence and the PLL-relock halt window.
//!
//! Reproduces the paper's transition timing: raising V/F ramps voltage
//! first (6.25 mV/µs) while the core keeps executing, then halts ~5 µs
//! for the PLL; lowering halts first. The paper cites ~50 µs for
//! min→max on the i7-3770 and ~5 µs for max→min; our analytic model
//! yields 93 µs / 5 µs for the full 0.55 V span (the component model is
//! the paper's; the headline differs because 0.55 V at 6.25 mV/µs is
//! 88 µs of ramp).

use cpusim::transition::vf_trace;
use cpusim::{transition_plan, PStateTable};
use desim::SimTime;
use ncap_bench::header;
use simstats::Table;

fn main() {
    header("fig1_vf_transition", "Figure 1 (V/F change sequence)");
    let table = PStateTable::i7_like();

    for (label, from, to) in [
        ("raise Pmin -> P0", table.deepest(), table.fastest()),
        ("lower P0 -> Pmin", table.fastest(), table.deepest()),
    ] {
        let plan = transition_plan(&table, from, to, SimTime::ZERO);
        println!(
            "{label}: total latency {} (halt {} starting at +{})",
            plan.total_latency(),
            plan.halt_duration(),
            plan.halt_start.saturating_since(plan.requested_at),
        );
        let mut t = Table::new(vec!["t (us)", "V", "F (GHz)", "note"]);
        for (i, pt) in vf_trace(&table, from, to).iter().enumerate() {
            let note = match (i, pt.freq_hz) {
                (_, 0) => "core halted (PLL relock)",
                (0, _) => "request issued",
                _ => "new operating point live",
            };
            t.row(vec![
                format!("{:.1}", pt.at.as_us_f64()),
                format!("{:.3}", pt.voltage),
                format!("{:.2}", pt.freq_hz as f64 / 1e9),
                note.to_owned(),
            ]);
        }
        println!("{t}");
    }

    println!("Per-step transition cost across the ladder (one ladder step):");
    let mut t = Table::new(vec!["from", "to", "total", "halt"]);
    for i in [0u8, 4, 9, 13] {
        let from = cpusim::PStateId(i + 1);
        let to = cpusim::PStateId(i);
        let plan = transition_plan(&table, from, to, SimTime::ZERO);
        t.row(vec![
            from.to_string(),
            to.to_string(),
            plan.total_latency().to_string(),
            plan.halt_duration().to_string(),
        ]);
    }
    println!("{t}");
    println!("paper: min->max ~50us (i7-3770), max->min ~5us; PLL halt ~5us in both.");
}
