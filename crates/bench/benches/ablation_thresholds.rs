//! Ablation: DecisionEngine rate thresholds (RHT/RLT/TLT, paper §6).
//!
//! The paper picks RHT = 35 K rps, RLT = 5 K rps, TLT = 5 Mbps after
//! characterising the workloads. This sweep shows the sensitivity: too
//! high an RHT misses bursts (latency suffers); too low an RLT/TLT never
//! descends (energy suffers).

use cluster::{run_experiments_parallel, AppKind, Policy};
use ncap::NcapConfig;
use ncap_bench::{header, standard};
use simstats::{fmt_ns, Table};

fn main() {
    header(
        "ablation_thresholds",
        "RHT/RLT/TLT sensitivity (§6 choices)",
    );
    let load = AppKind::Apache.paper_loads()[0];
    // A 200-request burst concentrates ~60 requests into one 50 us MITT
    // window (~1.2 M rps instantaneous), while inter-burst windows are
    // empty — so the interesting extremes are an RHT *above* the burst's
    // windowed rate (IT_HIGH never fires) and thresholds inside the dead
    // band (identical to paper, demonstrating the design's robustness).
    let variants: Vec<(&str, NcapConfig)> = vec![
        ("paper (35K/5K/5M)", NcapConfig::paper_defaults()),
        (
            "hair trigger (RHT=100)",
            NcapConfig::paper_defaults().with_thresholds(100.0, 50.0, 5e6),
        ),
        (
            "RHT x4 (140K, dead band)",
            NcapConfig::paper_defaults().with_thresholds(140_000.0, 5_000.0, 5e6),
        ),
        (
            "RHT above bursts (10M)",
            NcapConfig::paper_defaults().with_thresholds(10_000_000.0, 5_000.0, 5e6),
        ),
        (
            "RLT just under RHT (34K)",
            NcapConfig::paper_defaults().with_thresholds(35_000.0, 34_000.0, 5e6),
        ),
    ];
    let configs: Vec<_> = variants
        .iter()
        .map(|(_, c)| {
            standard(AppKind::Apache, Policy::NcapCons, load).with_ncap_override(c.clone())
        })
        .collect();
    let results = run_experiments_parallel(&configs);
    let mut t = Table::new(vec!["thresholds", "p95", "energy (J)", "NCAP interrupts"]);
    for ((name, _), r) in variants.iter().zip(results.iter()) {
        t.row(vec![
            (*name).to_owned(),
            fmt_ns(r.latency.p95),
            format!("{:.2}", r.energy_j),
            r.wake_markers.to_string(),
        ]);
    }
    println!("Apache @ {load:.0} rps, ncap.cons:");
    println!("{t}");
    println!("expected: an RHT above the burst's windowed rate suppresses IT_HIGH");
    println!("entirely (NCAP degenerates to ond.idle: worse p95, lower energy);");
    println!("thresholds within the bimodal dead band match the paper's setting,");
    println!("showing the design is robust to the exact values (§7's TOE point).");
}
