//! Ablation: the core idle-time threshold CIT (paper §4.3, 500 µs).
//!
//! CIT gates the *immediate* IT_RX wake-up: a request arriving after more
//! than CIT of interrupt silence speculatively wakes the processor while
//! the frame is still being DMA'd. Sweeping CIT from tiny (wakes on every
//! quiet-ish request) to effectively disabled shows the latency value of
//! the speculation at low load, where inter-burst gaps are long.

use cluster::{run_experiments_parallel, AppKind, Policy};
use desim::SimDuration;
use ncap::NcapConfig;
use ncap_bench::{header, standard};
use simstats::{fmt_ns, Table};

fn main() {
    header(
        "ablation_cit",
        "CIT sweep (immediate-wake speculation, §4.3)",
    );
    let load = AppKind::Memcached.paper_loads()[0];
    let cits = [
        ("50us", SimDuration::from_us(50)),
        ("200us", SimDuration::from_us(200)),
        ("500us (paper)", SimDuration::from_us(500)),
        ("2ms", SimDuration::from_ms(2)),
        ("disabled (10s)", SimDuration::from_secs(10)),
    ];
    let configs: Vec<_> = cits
        .iter()
        .map(|&(_, cit)| {
            standard(AppKind::Memcached, Policy::NcapCons, load)
                .with_ncap_override(NcapConfig::paper_defaults().with_cit(cit))
        })
        .collect();
    let results = run_experiments_parallel(&configs);
    let mut t = Table::new(vec!["CIT", "p50", "p95", "p99", "energy (J)", "wakes"]);
    for ((name, _), r) in cits.iter().zip(results.iter()) {
        t.row(vec![
            (*name).to_owned(),
            fmt_ns(r.latency.p50),
            fmt_ns(r.latency.p95),
            fmt_ns(r.latency.p99),
            format!("{:.2}", r.energy_j),
            r.wake_markers.to_string(),
        ]);
    }
    println!("Memcached @ {load:.0} rps, ncap.cons:");
    println!("{t}");
    println!("expected: disabling CIT removes the early wake, lengthening the tail;");
    println!("tiny CIT wakes on nearly every burst head (more interrupts, same tail).");
}
