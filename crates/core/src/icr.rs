//! Interrupt Cause Read (ICR) register bits.
//!
//! NICs record *why* they interrupted the processor in the ICR register;
//! the driver's interrupt handler reads it over PCIe to dispatch (paper
//! §2.2). NCAP claims two unused bits for its proactive interrupts
//! (paper §4.2): `IT_HIGH` ("go to maximum performance now") and
//! `IT_LOW` ("activity has been low; step performance down").

use core::fmt;
use core::ops::{BitAnd, BitOr, BitOrAssign};

/// A set of ICR cause bits.
///
/// # Example
///
/// ```
/// use ncap::IcrFlags;
/// let icr = IcrFlags::IT_HIGH | IcrFlags::IT_RX;
/// assert!(icr.contains(IcrFlags::IT_HIGH));
/// assert!(!icr.contains(IcrFlags::IT_LOW));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct IcrFlags(u32);

impl IcrFlags {
    /// No cause recorded.
    pub const EMPTY: IcrFlags = IcrFlags(0);
    /// A received frame is ready for the network stack.
    pub const IT_RX: IcrFlags = IcrFlags(1 << 0);
    /// Transmit descriptors were written back.
    pub const IT_TX: IcrFlags = IcrFlags(1 << 1);
    /// Receiver overrun: a frame arrived with no free RX descriptor and
    /// was dropped (the 82574's RXO cause, bit 6). Posted immediately —
    /// outside interrupt moderation — so the driver drains the ring
    /// before more traffic is lost.
    pub const RXO: IcrFlags = IcrFlags(1 << 6);
    /// NCAP: a burst of latency-critical requests is arriving — transition
    /// to the highest performance state (paper §4.2, new bit).
    pub const IT_HIGH: IcrFlags = IcrFlags(1 << 16);
    /// NCAP: sustained low activity — reduce the performance state
    /// (paper §4.2, new bit).
    pub const IT_LOW: IcrFlags = IcrFlags(1 << 17);

    /// `true` when no bits are set.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// `true` when all bits of `other` are set in `self`.
    #[must_use]
    pub fn contains(self, other: IcrFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// The raw register value.
    #[must_use]
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Inserts the bits of `other`.
    pub fn insert(&mut self, other: IcrFlags) {
        self.0 |= other.0;
    }

    /// Reads-and-clears, as a driver ICR read does on real hardware.
    pub fn take(&mut self) -> IcrFlags {
        core::mem::take(self)
    }
}

impl BitOr for IcrFlags {
    type Output = IcrFlags;
    fn bitor(self, rhs: IcrFlags) -> IcrFlags {
        IcrFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for IcrFlags {
    fn bitor_assign(&mut self, rhs: IcrFlags) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for IcrFlags {
    type Output = IcrFlags;
    fn bitand(self, rhs: IcrFlags) -> IcrFlags {
        IcrFlags(self.0 & rhs.0)
    }
}

impl fmt::Display for IcrFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("(none)");
        }
        let mut first = true;
        for (bit, name) in [
            (IcrFlags::IT_RX, "IT_RX"),
            (IcrFlags::IT_TX, "IT_TX"),
            (IcrFlags::RXO, "RXO"),
            (IcrFlags::IT_HIGH, "IT_HIGH"),
            (IcrFlags::IT_LOW, "IT_LOW"),
        ] {
            if self.contains(bit) {
                if !first {
                    f.write_str("|")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_ops() {
        let mut icr = IcrFlags::EMPTY;
        assert!(icr.is_empty());
        icr |= IcrFlags::IT_RX;
        icr.insert(IcrFlags::IT_HIGH);
        assert!(icr.contains(IcrFlags::IT_RX | IcrFlags::IT_HIGH));
        assert!(!icr.contains(IcrFlags::IT_LOW));
        assert_eq!((icr & IcrFlags::IT_RX).bits(), IcrFlags::IT_RX.bits());
    }

    #[test]
    fn take_clears_like_a_read() {
        let mut icr = IcrFlags::IT_RX | IcrFlags::IT_LOW;
        let read = icr.take();
        assert!(read.contains(IcrFlags::IT_LOW));
        assert!(icr.is_empty());
    }

    #[test]
    fn ncap_bits_use_high_word() {
        // The paper uses *unused* ICR bits; keep them clear of the
        // standard causes.
        assert!(IcrFlags::IT_HIGH.bits() > u32::from(u16::MAX));
        assert!(IcrFlags::IT_LOW.bits() > u32::from(u16::MAX));
        assert_eq!(IcrFlags::IT_HIGH & IcrFlags::IT_LOW, IcrFlags::EMPTY);
    }

    #[test]
    fn display_lists_causes() {
        assert_eq!(IcrFlags::EMPTY.to_string(), "(none)");
        assert_eq!(
            (IcrFlags::IT_RX | IcrFlags::IT_HIGH).to_string(),
            "IT_RX|IT_HIGH"
        );
        assert_eq!((IcrFlags::IT_RX | IcrFlags::RXO).to_string(), "IT_RX|RXO");
    }

    #[test]
    fn rxo_is_a_standard_cause() {
        assert!(IcrFlags::RXO.bits() < u32::from(u16::MAX));
        assert_eq!(
            IcrFlags::RXO & (IcrFlags::IT_RX | IcrFlags::IT_TX),
            IcrFlags::EMPTY
        );
    }
}
