//! A sysfs-like configuration surface for the enhanced NIC.
//!
//! The paper programs ReqMonitor's template registers "through the
//! operating system's sysfs interface … when running the initialization
//! subroutine of the NIC driver" (§4.1). This module models that
//! control-plane path: a small key/value filesystem under `ncap/` whose
//! writes are validated like a driver's sysfs store hooks would.

use std::collections::BTreeMap;

/// Errors from sysfs reads/writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SysfsError {
    /// The attribute path does not exist.
    NoSuchAttribute(String),
    /// The written value failed the attribute's validation.
    InvalidValue { path: String, reason: String },
}

impl core::fmt::Display for SysfsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SysfsError::NoSuchAttribute(p) => write!(f, "no such attribute: {p}"),
            SysfsError::InvalidValue { path, reason } => {
                write!(f, "invalid value for {path}: {reason}")
            }
        }
    }
}

impl std::error::Error for SysfsError {}

/// Number of template registers the enhanced NIC exposes. Real GbE
/// controllers have a handful of spare filter registers; eight covers
/// every latency-critical method of HTTP and Memcached with room to
/// spare.
pub const TEMPLATE_REGISTERS: usize = 8;

/// The `ncap/` sysfs directory: template registers plus readable counters.
///
/// # Example
///
/// ```
/// use ncap::Sysfs;
/// let mut fs = Sysfs::new();
/// fs.write("ncap/template0", "GE").unwrap();
/// assert_eq!(fs.read("ncap/template0").unwrap(), "GE");
/// assert!(fs.write("ncap/template0", "TOO LONG").is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sysfs {
    attrs: BTreeMap<String, String>,
}

impl Sysfs {
    /// Creates the directory with all template registers empty.
    #[must_use]
    pub fn new() -> Self {
        let mut attrs = BTreeMap::new();
        for i in 0..TEMPLATE_REGISTERS {
            attrs.insert(format!("ncap/template{i}"), String::new());
        }
        Sysfs { attrs }
    }

    /// Writes `value` to `path`.
    ///
    /// # Errors
    ///
    /// [`SysfsError::NoSuchAttribute`] for unknown paths;
    /// [`SysfsError::InvalidValue`] when a template is not exactly 0 or 2
    /// bytes (the hardware compares exactly two bytes).
    pub fn write(&mut self, path: &str, value: &str) -> Result<(), SysfsError> {
        let slot = self
            .attrs
            .get_mut(path)
            .ok_or_else(|| SysfsError::NoSuchAttribute(path.to_owned()))?;
        if path.starts_with("ncap/template") && !(value.is_empty() || value.len() == 2) {
            return Err(SysfsError::InvalidValue {
                path: path.to_owned(),
                reason: format!("template must be empty or 2 bytes, got {}", value.len()),
            });
        }
        *slot = value.to_owned();
        Ok(())
    }

    /// Reads the value at `path`.
    ///
    /// # Errors
    ///
    /// [`SysfsError::NoSuchAttribute`] for unknown paths.
    pub fn read(&self, path: &str) -> Result<&str, SysfsError> {
        self.attrs
            .get(path)
            .map(String::as_str)
            .ok_or_else(|| SysfsError::NoSuchAttribute(path.to_owned()))
    }

    /// The currently programmed two-byte templates, in register order.
    #[must_use]
    pub fn templates(&self) -> Vec<[u8; 2]> {
        (0..TEMPLATE_REGISTERS)
            .filter_map(|i| {
                let v = self.attrs.get(&format!("ncap/template{i}"))?;
                let b = v.as_bytes();
                (b.len() == 2).then(|| [b[0], b[1]])
            })
            .collect()
    }

    /// Programs the standard latency-critical templates for HTTP and
    /// Memcached traffic — what the NIC driver's init subroutine does.
    ///
    /// # Panics
    ///
    /// Never: the built-in templates are valid.
    pub fn program_default_templates(&mut self) {
        for (i, t) in ["GE", "HE", "PO", "ge"].iter().enumerate() {
            self.write(&format!("ncap/template{i}"), t)
                .expect("built-in templates are valid");
        }
    }

    /// Lists all attribute paths (for discovery/tests).
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.attrs.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_exist_and_start_empty() {
        let fs = Sysfs::new();
        assert_eq!(fs.paths().count(), TEMPLATE_REGISTERS);
        assert!(fs.templates().is_empty());
        assert_eq!(fs.read("ncap/template0").unwrap(), "");
    }

    #[test]
    fn write_and_read_template() {
        let mut fs = Sysfs::new();
        fs.write("ncap/template3", "PU").unwrap();
        assert_eq!(fs.read("ncap/template3").unwrap(), "PU");
        assert_eq!(fs.templates(), vec![*b"PU"]);
    }

    #[test]
    fn invalid_length_rejected() {
        let mut fs = Sysfs::new();
        let err = fs.write("ncap/template0", "GET").unwrap_err();
        assert!(matches!(err, SysfsError::InvalidValue { .. }));
        assert!(err.to_string().contains("template"));
    }

    #[test]
    fn unknown_path_rejected() {
        let mut fs = Sysfs::new();
        assert_eq!(
            fs.write("ncap/bogus", "xx"),
            Err(SysfsError::NoSuchAttribute("ncap/bogus".to_owned()))
        );
        assert!(fs.read("nope").is_err());
    }

    #[test]
    fn clearing_a_template() {
        let mut fs = Sysfs::new();
        fs.write("ncap/template0", "GE").unwrap();
        fs.write("ncap/template0", "").unwrap();
        assert!(fs.templates().is_empty());
    }

    #[test]
    fn default_templates_cover_http_and_memcached() {
        let mut fs = Sysfs::new();
        fs.program_default_templates();
        let t = fs.templates();
        assert!(t.contains(b"GE"));
        assert!(t.contains(b"ge"));
        // PUT is deliberately absent: updates are not latency-critical
        // (paper §4.1).
        assert!(!t.contains(b"PU"));
    }
}
