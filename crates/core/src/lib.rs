//! # ncap — Network-driven, packet Context-Aware Power management
//!
//! The primary contribution of *"NCAP: Network-Driven, Packet
//! Context-Aware Power Management for Client-Server Architecture"*
//! (Alian et al., HPCA 2017), as a reusable library.
//!
//! NCAP enhances a NIC and its driver so the *network* — not a sampled
//! utilization signal — drives processor power management:
//!
//! * [`ReqMonitor`] inspects the first two TCP-payload bytes of every
//!   received frame (offset 66) against **sysfs-programmable templates**
//!   (`GET `, `get `, …) and counts latency-critical requests (`ReqCnt`);
//! * [`TxBytesCounter`] counts transmitted bytes (`TxCnt`) — responses
//!   span several MTU-sized frames, so no payload context is needed;
//! * [`DecisionEngine`] turns counter rates into proactive interrupts on
//!   each Master Interrupt Throttling Timer (MITT) expiry:
//!   [`IcrFlags::IT_HIGH`] when the request rate crosses RHT and the
//!   processor is not at maximum frequency, [`IcrFlags::IT_LOW`] after a
//!   sustained low-activity window, and an immediate [`IcrFlags::IT_RX`]
//!   when a request arrives after more than CIT of interrupt silence
//!   (the cores are speculatively asleep);
//! * [`EnhancedDriver`] maps those interrupt bits to cpufreq/cpuidle
//!   actions: jump to P0 + disable the menu governor + suspend ondemand
//!   on `IT_HIGH`; step the frequency down by the FCONS schedule and
//!   re-enable menu on `IT_LOW`;
//! * [`SoftwareNcap`] is the paper's `ncap.sw` baseline: the same
//!   algorithm in the SoftIRQ path with a 1 ms kernel timer, paying CPU
//!   cycles for every inspection.
//!
//! The hardware blocks are *pure state machines*: they consume packets
//! and times, and return decisions. The `nicsim` crate embeds them in a
//! NIC model; `oskernel` applies driver actions to cores and governors.
//!
//! ## Example
//!
//! ```
//! use ncap::{NcapConfig, NcapHardware};
//! use netsim::packet::{NodeId, Packet};
//! use netsim::http::HttpRequest;
//! use desim::SimTime;
//!
//! let mut hw = NcapHardware::new(NcapConfig::paper_defaults());
//! let frame = Packet::request(NodeId(1), NodeId(0), 1,
//!     HttpRequest::get("/").to_payload());
//! // After a long silence, the very first request triggers an immediate
//! // IT_RX wake-up interrupt.
//! let icr = hw.on_rx_frame(SimTime::from_ms(5), &frame);
//! assert!(icr.is_some());
//! ```

pub mod config;
pub mod decision;
pub mod driver;
pub mod icr;
pub mod req_monitor;
pub mod software;
pub mod sysfs;
pub mod tx_counter;

pub use config::NcapConfig;
pub use decision::{DecisionEngine, NcapHardware, RateSample};
pub use driver::{DriverAction, EnhancedDriver};
pub use icr::IcrFlags;
pub use req_monitor::ReqMonitor;
pub use software::{SoftwareNcap, SW_PER_PACKET_CYCLES, SW_PER_TX_CYCLES, SW_TIMER_CYCLES};
pub use sysfs::Sysfs;
pub use tx_counter::TxBytesCounter;
