//! TxBytesCounter: context-free transmit accounting.
//!
//! Paper §4.1: detecting latency-critical *responses* would need complex
//! hardware (one response spans many frames), so NCAP simply counts
//! transmitted bytes — "most responses are larger than the Ethernet
//! maximum transmission unit". A falling TxCnt rate marks the end of a
//! response burst and gates the `IT_LOW` descent.

/// The transmitted-bytes counter in the enhanced NIC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxBytesCounter {
    tx_bytes: u64,
    tx_frames: u64,
}

impl TxBytesCounter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        TxBytesCounter::default()
    }

    /// Records one transmitted frame of `wire_bytes`.
    ///
    /// # Example
    ///
    /// ```
    /// use ncap::TxBytesCounter;
    /// let mut c = TxBytesCounter::new();
    /// c.on_transmit(1500);
    /// c.on_transmit(700);
    /// assert_eq!(c.tx_bytes(), 2200);
    /// ```
    pub fn on_transmit(&mut self, wire_bytes: usize) {
        self.tx_bytes += wire_bytes as u64;
        self.tx_frames += 1;
        simtrace::metric_add_cum("core", "tx_bytes", wire_bytes as f64);
    }

    /// Cumulative transmitted bytes (`TxCnt`).
    #[must_use]
    pub fn tx_bytes(&self) -> u64 {
        self.tx_bytes
    }

    /// Cumulative transmitted frames.
    #[must_use]
    pub fn tx_frames(&self) -> u64 {
        self.tx_frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_bytes_and_frames() {
        let mut c = TxBytesCounter::new();
        assert_eq!(c.tx_bytes(), 0);
        for i in 1..=10 {
            c.on_transmit(i * 100);
        }
        assert_eq!(c.tx_bytes(), 5_500);
        assert_eq!(c.tx_frames(), 10);
    }

    #[test]
    fn zero_byte_frames_count_frames_only() {
        let mut c = TxBytesCounter::new();
        c.on_transmit(0);
        assert_eq!(c.tx_bytes(), 0);
        assert_eq!(c.tx_frames(), 1);
    }
}
