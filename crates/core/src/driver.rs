//! The enhanced NIC-driver interrupt handler (paper Figure 5(d)).
//!
//! When the interrupt handler reads an ICR with NCAP bits set, it calls
//! cpufreq APIs:
//!
//! * `IT_HIGH` → raise frequency to the maximum, disable the menu
//!   governor (preventing short C-state dips during the burst) and
//!   suspend the ondemand governor for one invocation period (avoiding
//!   conflicting decisions);
//! * `IT_LOW` → step the frequency down along the FCONS schedule and
//!   re-enable the menu governor on the first step.
//!
//! The driver here is pure decision logic returning a [`DriverAction`];
//! the `oskernel` crate applies it to cores/governors and writes the
//! frequency status back to the NIC.

use crate::config::NcapConfig;
use crate::icr::IcrFlags;
use cpusim::{PStateId, PStateTable};
use desim::SimDuration;

/// What the interrupt handler asks the kernel to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DriverAction {
    /// Target P-state to apply, if any.
    pub set_pstate: Option<PStateId>,
    /// Disable the menu governor (cores stay in C0 between jobs).
    pub disable_menu: bool,
    /// Re-enable the menu governor.
    pub enable_menu: bool,
    /// Suspend the ondemand governor for this long.
    pub suspend_ondemand: Option<SimDuration>,
}

impl DriverAction {
    /// `true` when the action changes nothing.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.set_pstate.is_none()
            && !self.disable_menu
            && !self.enable_menu
            && self.suspend_ondemand.is_none()
    }
}

/// The NCAP-enhanced interrupt handler state.
#[derive(Debug, Clone)]
pub struct EnhancedDriver {
    config: NcapConfig,
    /// Levels to descend per IT_LOW so FCONS interrupts reach minimum.
    step: u8,
    /// Whether the current descent already re-enabled the menu governor.
    descending: bool,
}

impl EnhancedDriver {
    /// Creates the driver for a given table/config pair.
    #[must_use]
    pub fn new(config: NcapConfig, table: &PStateTable) -> Self {
        let step = table.fcons_step(config.fcons);
        EnhancedDriver {
            config,
            step,
            descending: false,
        }
    }

    /// The per-IT_LOW descent step in P-state levels.
    #[must_use]
    pub fn fcons_step(&self) -> u8 {
        self.step
    }

    /// Handles an ICR read, given the P-state the processor is currently
    /// heading to.
    ///
    /// # Example
    ///
    /// ```
    /// use ncap::{EnhancedDriver, NcapConfig, IcrFlags};
    /// use cpusim::PStateTable;
    ///
    /// let table = PStateTable::i7_like();
    /// let mut drv = EnhancedDriver::new(NcapConfig::aggressive(), &table);
    /// let act = drv.handle_interrupt(IcrFlags::IT_HIGH | IcrFlags::IT_RX,
    ///                                table.deepest(), &table);
    /// assert_eq!(act.set_pstate, Some(table.fastest()));
    /// assert!(act.disable_menu);
    /// ```
    pub fn handle_interrupt(
        &mut self,
        icr: IcrFlags,
        current_goal: PStateId,
        table: &PStateTable,
    ) -> DriverAction {
        let mut action = DriverAction::default();
        if icr.contains(IcrFlags::IT_HIGH) {
            self.descending = false;
            if current_goal != table.fastest() {
                action.set_pstate = Some(table.fastest());
            }
            action.disable_menu = true;
            action.suspend_ondemand = Some(self.config.ondemand_suspend);
        } else if icr.contains(IcrFlags::IT_LOW) {
            let next = table.step_down(current_goal, self.step);
            if next != current_goal {
                action.set_pstate = Some(next);
            }
            if !self.descending {
                // Paper §4.3: "NCAP enables the menu governor when the
                // first IT_LOW interrupt is posted."
                action.enable_menu = true;
                self.descending = true;
            }
        }
        action
    }

    /// Whether the target P-state is the table maximum/minimum — the
    /// status pair the driver writes back to the NIC after applying.
    #[must_use]
    pub fn freq_status(target: PStateId, table: &PStateTable) -> (bool, bool) {
        (target == table.fastest(), target == table.deepest())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(fcons: u8) -> (EnhancedDriver, PStateTable) {
        let table = PStateTable::i7_like();
        let drv = EnhancedDriver::new(NcapConfig::paper_defaults().with_fcons(fcons), &table);
        (drv, table)
    }

    #[test]
    fn it_high_boosts_and_guards() {
        let (mut drv, t) = setup(5);
        let a = drv.handle_interrupt(IcrFlags::IT_HIGH | IcrFlags::IT_RX, PStateId(9), &t);
        assert_eq!(a.set_pstate, Some(t.fastest()));
        assert!(a.disable_menu);
        assert_eq!(a.suspend_ondemand, Some(SimDuration::from_ms(10)));
        assert!(!a.enable_menu);
    }

    #[test]
    fn it_high_at_max_skips_pstate_change() {
        let (mut drv, t) = setup(5);
        let a = drv.handle_interrupt(IcrFlags::IT_HIGH, t.fastest(), &t);
        assert_eq!(a.set_pstate, None);
        assert!(a.disable_menu, "menu guard still applies during bursts");
    }

    #[test]
    fn aggressive_single_it_low_hits_minimum() {
        let (mut drv, t) = setup(1);
        let a = drv.handle_interrupt(IcrFlags::IT_LOW, t.fastest(), &t);
        assert_eq!(a.set_pstate, Some(t.deepest()));
        assert!(a.enable_menu);
    }

    #[test]
    fn conservative_descent_takes_fcons_steps() {
        let (mut drv, t) = setup(5);
        let mut goal = t.fastest();
        let mut steps = 0;
        loop {
            let a = drv.handle_interrupt(IcrFlags::IT_LOW, goal, &t);
            match a.set_pstate {
                Some(p) => {
                    assert!(p > goal, "descent must deepen");
                    goal = p;
                    steps += 1;
                }
                None => break,
            }
            assert!(steps <= 5, "FCONS=5 must reach min within 5 steps");
        }
        assert_eq!(goal, t.deepest());
        assert_eq!(steps, 5);
    }

    #[test]
    fn menu_reenabled_only_on_first_it_low() {
        let (mut drv, t) = setup(5);
        let a1 = drv.handle_interrupt(IcrFlags::IT_LOW, t.fastest(), &t);
        assert!(a1.enable_menu);
        let a2 = drv.handle_interrupt(IcrFlags::IT_LOW, PStateId(3), &t);
        assert!(!a2.enable_menu);
        // A new burst resets the descent; the next IT_LOW re-enables menu.
        drv.handle_interrupt(IcrFlags::IT_HIGH, PStateId(3), &t);
        let a3 = drv.handle_interrupt(IcrFlags::IT_LOW, t.fastest(), &t);
        assert!(a3.enable_menu);
    }

    #[test]
    fn plain_rx_is_noop() {
        let (mut drv, t) = setup(5);
        let a = drv.handle_interrupt(IcrFlags::IT_RX, PStateId(5), &t);
        assert!(a.is_noop());
    }

    #[test]
    fn freq_status_extremes() {
        let t = PStateTable::i7_like();
        assert_eq!(EnhancedDriver::freq_status(t.fastest(), &t), (true, false));
        assert_eq!(EnhancedDriver::freq_status(t.deepest(), &t), (false, true));
        assert_eq!(EnhancedDriver::freq_status(PStateId(7), &t), (false, false));
    }
}
