//! DecisionEngine: turning counter rates into proactive interrupts.
//!
//! Paper §4.3 / Figure 5(c). Two events trigger the engine:
//!
//! 1. **MITT expiry** (every 40–100 µs): compute `ReqRate` and `TxRate`
//!    from the counter deltas. If `ReqRate > RHT` and the processor is
//!    not already at maximum frequency, post `IT_HIGH | IT_RX`. If both
//!    `ReqRate < RLT` and `TxRate < TLT` have held for the low-activity
//!    window (1 ms), post `IT_LOW` — and keep posting one per further
//!    window while activity stays low and the frequency is not yet at
//!    minimum (the FCONS descent).
//! 2. **ReqCnt change** (a latency-critical request arrived): if the
//!    processor has not been interrupted for longer than CIT, the cores
//!    are speculatively in a C-state — post an immediate `IT_RX` so the
//!    target core starts waking while the packet is still being DMA'd.
//!
//! The engine mirrors the processor's frequency extremes (`at_max` /
//! `at_min`) the way the real hardware would: the NCAP driver wrote them
//! back to the NIC after applying each change.

use crate::config::NcapConfig;
use crate::icr::IcrFlags;
use crate::req_monitor::ReqMonitor;
use crate::sysfs::Sysfs;
use crate::tx_counter::TxBytesCounter;
use desim::SimTime;
use netsim::Packet;

/// One MITT-window rate observation (exposed for tests and traces).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSample {
    /// Latency-critical requests per second over the last window.
    pub req_rate_rps: f64,
    /// Transmitted bits per second over the last window.
    pub tx_rate_bps: f64,
}

/// The rate-threshold decision logic (paper Figure 5(c)).
#[derive(Debug, Clone)]
pub struct DecisionEngine {
    config: NcapConfig,
    prev_req_cnt: u64,
    prev_tx_bytes: u64,
    last_mitt: Option<SimTime>,
    low_since: Option<SimTime>,
    last_low_emit: Option<SimTime>,
    last_interrupt: SimTime,
    freq_at_max: bool,
    freq_at_min: bool,
    last_sample: Option<RateSample>,
    high_posted: u64,
    low_posted: u64,
    wake_posted: u64,
}

impl DecisionEngine {
    /// Creates an engine with the given thresholds.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`NcapConfig::validate`].
    #[must_use]
    pub fn new(config: NcapConfig) -> Self {
        config.validate().expect("invalid NCAP configuration");
        DecisionEngine {
            config,
            prev_req_cnt: 0,
            prev_tx_bytes: 0,
            last_mitt: None,
            low_since: None,
            last_low_emit: None,
            last_interrupt: SimTime::ZERO,
            freq_at_max: false,
            freq_at_min: false,
            last_sample: None,
            high_posted: 0,
            low_posted: 0,
            wake_posted: 0,
        }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &NcapConfig {
        &self.config
    }

    /// Driver write-back: the processor's frequency extremes after the
    /// last applied change.
    pub fn note_freq_status(&mut self, at_max: bool, at_min: bool) {
        debug_assert!(!(at_max && at_min), "frequency cannot be both extremes");
        self.freq_at_max = at_max;
        self.freq_at_min = at_min;
    }

    /// Records that *any* interrupt was posted to the processor at `now`
    /// (NCAP or ordinary RX/TX moderation) — the CIT silence clock.
    pub fn note_interrupt_posted(&mut self, now: SimTime) {
        self.last_interrupt = now;
    }

    /// A latency-critical request was detected at `now` (ReqCnt changed).
    /// Returns an immediate `IT_RX` if the processor has been quiet
    /// longer than CIT.
    pub fn on_request_detected(&mut self, now: SimTime) -> Option<IcrFlags> {
        if now.saturating_since(self.last_interrupt) > self.config.cit {
            self.wake_posted += 1;
            if simtrace::is_enabled() {
                let t = now.as_nanos();
                simtrace::instant("core", "cit_wake", t);
                simtrace::metric_add("core", "cit_wakes", t, 1.0);
            }
            Some(IcrFlags::IT_RX)
        } else {
            None
        }
    }

    /// MITT expiry at `now` with current counter snapshots. Returns the
    /// interrupt cause to post, if any.
    pub fn on_mitt_expiry(
        &mut self,
        now: SimTime,
        req_cnt: u64,
        tx_bytes: u64,
    ) -> Option<IcrFlags> {
        let elapsed = match self.last_mitt.replace(now) {
            Some(prev) if now > prev => now.saturating_since(prev),
            _ => {
                // First expiry: establish the baseline only.
                self.prev_req_cnt = req_cnt;
                self.prev_tx_bytes = tx_bytes;
                return None;
            }
        };
        let d_req = req_cnt.saturating_sub(self.prev_req_cnt);
        let d_tx = tx_bytes.saturating_sub(self.prev_tx_bytes);
        self.prev_req_cnt = req_cnt;
        self.prev_tx_bytes = tx_bytes;
        let secs = elapsed.as_secs_f64();
        let sample = RateSample {
            req_rate_rps: d_req as f64 / secs,
            tx_rate_bps: d_tx as f64 * 8.0 / secs,
        };
        self.last_sample = Some(sample);
        if simtrace::is_enabled() {
            simtrace::complete(
                "core",
                "rate_eval",
                now.as_nanos(),
                0,
                &[
                    simtrace::arg("req_rps", sample.req_rate_rps),
                    simtrace::arg("tx_bps", sample.tx_rate_bps),
                ],
            );
        }

        if sample.req_rate_rps > self.config.rht_rps {
            // Burst of latency-critical requests.
            self.low_since = None;
            self.last_low_emit = None;
            if !self.freq_at_max {
                self.high_posted += 1;
                simtrace::metric_add("core", "verdict_high", now.as_nanos(), 1.0);
                return Some(IcrFlags::IT_HIGH | IcrFlags::IT_RX);
            }
            return None;
        }

        if sample.req_rate_rps < self.config.rlt_rps && sample.tx_rate_bps < self.config.tlt_bps {
            let since = *self.low_since.get_or_insert(now);
            let anchor = self.last_low_emit.unwrap_or(since);
            if now.saturating_since(anchor) >= self.config.low_activity_window && !self.freq_at_min
            {
                self.last_low_emit = Some(now);
                self.low_posted += 1;
                simtrace::metric_add("core", "verdict_low", now.as_nanos(), 1.0);
                return Some(IcrFlags::IT_LOW);
            }
        } else {
            self.low_since = None;
            self.last_low_emit = None;
        }
        None
    }

    /// The most recent rate observation.
    #[must_use]
    pub fn last_sample(&self) -> Option<RateSample> {
        self.last_sample
    }

    /// Counts of posted (`IT_HIGH`, `IT_LOW`, immediate `IT_RX`) causes.
    #[must_use]
    pub fn posted_counts(&self) -> (u64, u64, u64) {
        (self.high_posted, self.low_posted, self.wake_posted)
    }
}

/// The complete NCAP hardware block embedded in the enhanced NIC:
/// ReqMonitor + TxBytesCounter + DecisionEngine (paper Figure 5(a)).
#[derive(Debug, Clone)]
pub struct NcapHardware {
    monitor: ReqMonitor,
    tx: TxBytesCounter,
    engine: DecisionEngine,
}

impl NcapHardware {
    /// Builds the block and programs the default latency-critical
    /// templates through sysfs, as the driver init subroutine does.
    #[must_use]
    pub fn new(config: NcapConfig) -> Self {
        let mut sysfs = Sysfs::new();
        sysfs.program_default_templates();
        let mut monitor = ReqMonitor::new();
        monitor.program_from_sysfs(&sysfs);
        monitor.set_match_all(!config.context_aware);
        NcapHardware {
            monitor,
            tx: TxBytesCounter::new(),
            engine: DecisionEngine::new(config),
        }
    }

    /// Builds the block with externally prepared components (ablations).
    #[must_use]
    pub fn with_parts(monitor: ReqMonitor, tx: TxBytesCounter, engine: DecisionEngine) -> Self {
        NcapHardware {
            monitor,
            tx,
            engine,
        }
    }

    /// Inspects a received frame; may return an immediate wake interrupt.
    pub fn on_rx_frame(&mut self, now: SimTime, frame: &Packet) -> Option<IcrFlags> {
        if self.monitor.inspect(frame) {
            self.engine.on_request_detected(now)
        } else {
            None
        }
    }

    /// Accounts one transmitted frame.
    pub fn on_tx_frame(&mut self, wire_bytes: usize) {
        self.tx.on_transmit(wire_bytes);
    }

    /// MITT expiry: evaluates rates against the thresholds.
    pub fn on_mitt_expiry(&mut self, now: SimTime) -> Option<IcrFlags> {
        self.engine
            .on_mitt_expiry(now, self.monitor.req_cnt(), self.tx.tx_bytes())
    }

    /// See [`DecisionEngine::note_interrupt_posted`].
    pub fn note_interrupt_posted(&mut self, now: SimTime) {
        self.engine.note_interrupt_posted(now);
    }

    /// See [`DecisionEngine::note_freq_status`].
    pub fn note_freq_status(&mut self, at_max: bool, at_min: bool) {
        self.engine.note_freq_status(at_max, at_min);
    }

    /// The embedded request monitor.
    #[must_use]
    pub fn monitor(&self) -> &ReqMonitor {
        &self.monitor
    }

    /// Mutable access to the monitor (for reprogramming templates).
    pub fn monitor_mut(&mut self) -> &mut ReqMonitor {
        &mut self.monitor
    }

    /// The embedded transmit counter.
    #[must_use]
    pub fn tx_counter(&self) -> &TxBytesCounter {
        &self.tx
    }

    /// The embedded decision engine.
    #[must_use]
    pub fn engine(&self) -> &DecisionEngine {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::{ensure, gen, Check};
    use desim::SimDuration;
    use netsim::http::HttpRequest;
    use netsim::packet::NodeId;

    fn cfg() -> NcapConfig {
        NcapConfig::paper_defaults()
    }

    fn get_frame(id: u64) -> Packet {
        Packet::request(
            NodeId(1),
            NodeId(0),
            id,
            HttpRequest::get("/x").to_payload(),
        )
    }

    #[test]
    fn first_expiry_only_baselines() {
        let mut e = DecisionEngine::new(cfg());
        assert_eq!(e.on_mitt_expiry(SimTime::from_us(50), 100, 0), None);
        assert!(e.last_sample().is_none());
    }

    #[test]
    fn high_rate_posts_it_high_once() {
        let mut e = DecisionEngine::new(cfg());
        e.on_mitt_expiry(SimTime::from_us(50), 0, 0);
        // 10 requests in 50 us = 200 K rps >> RHT.
        let icr = e.on_mitt_expiry(SimTime::from_us(100), 10, 0).unwrap();
        assert!(icr.contains(IcrFlags::IT_HIGH | IcrFlags::IT_RX));
        // Driver set F to max and wrote status back: no more IT_HIGH.
        e.note_freq_status(true, false);
        assert_eq!(e.on_mitt_expiry(SimTime::from_us(150), 20, 0), None);
        assert_eq!(e.posted_counts().0, 1);
    }

    #[test]
    fn low_activity_posts_it_low_after_window() {
        let mut e = DecisionEngine::new(cfg());
        e.note_freq_status(true, false);
        let mut t = SimTime::ZERO;
        let mut first_low = None;
        for _ in 0..60 {
            t += SimDuration::from_us(50);
            if let Some(icr) = e.on_mitt_expiry(t, 0, 0) {
                assert!(icr.contains(IcrFlags::IT_LOW));
                first_low = Some(t);
                break;
            }
        }
        // First IT_LOW arrives once the 1 ms window has elapsed.
        let first_low = first_low.expect("IT_LOW was never posted");
        assert!(first_low >= SimTime::from_ms(1));
        assert!(first_low <= SimTime::from_nanos(1_100_000));
    }

    #[test]
    fn it_low_repeats_each_window_until_min() {
        let mut e = DecisionEngine::new(cfg());
        e.note_freq_status(false, false);
        let mut t = SimTime::ZERO;
        let mut lows = Vec::new();
        for _ in 0..200 {
            t += SimDuration::from_us(50);
            if let Some(icr) = e.on_mitt_expiry(t, 0, 0) {
                if icr.contains(IcrFlags::IT_LOW) {
                    lows.push(t);
                }
            }
        }
        assert!(lows.len() >= 5, "expected repeated IT_LOWs, got {lows:?}");
        // Consecutive IT_LOWs are one window apart.
        for w in lows.windows(2) {
            assert!(w[1].saturating_since(w[0]) >= SimDuration::from_ms(1));
        }
        // Once at minimum frequency, the descent stops.
        e.note_freq_status(false, true);
        for _ in 0..40 {
            t += SimDuration::from_us(50);
            assert_eq!(e.on_mitt_expiry(t, 0, 0), None);
        }
    }

    #[test]
    fn activity_resets_the_low_window() {
        let mut e = DecisionEngine::new(cfg());
        e.note_freq_status(true, false);
        let mut t = SimTime::ZERO;
        let mut req = 0u64;
        let mut tx = 0u64;
        for i in 0..100 {
            t += SimDuration::from_us(50);
            // Every ~0.9 ms, one window of TX traffic above TLT resets it.
            if i % 18 == 17 {
                tx += 10_000; // 10 KB in 50 us = 1.6 Gbps >> TLT
            }
            req += 0; // no requests
            assert_eq!(e.on_mitt_expiry(t, req, tx), None, "at {t}");
        }
    }

    #[test]
    fn cit_wake_on_request_after_silence() {
        let mut e = DecisionEngine::new(cfg());
        e.note_interrupt_posted(SimTime::ZERO);
        // 100 us after an interrupt: inside CIT, no wake.
        assert_eq!(e.on_request_detected(SimTime::from_us(100)), None);
        // 600 us of silence: beyond CIT = 500 us → immediate IT_RX.
        assert_eq!(
            e.on_request_detected(SimTime::from_us(600)),
            Some(IcrFlags::IT_RX)
        );
        assert_eq!(e.posted_counts().2, 1);
    }

    #[test]
    fn hardware_block_end_to_end_burst() {
        let mut hw = NcapHardware::new(cfg());
        hw.note_freq_status(false, false);
        hw.note_interrupt_posted(SimTime::ZERO);
        // Baseline MITT.
        hw.on_mitt_expiry(SimTime::from_us(50));
        // A burst of GETs lands within one MITT window.
        for i in 0..10 {
            let icr = hw.on_rx_frame(SimTime::from_us(60 + i), &get_frame(i));
            assert_eq!(icr, None, "CIT not exceeded: no immediate wake");
        }
        let icr = hw.on_mitt_expiry(SimTime::from_us(100)).unwrap();
        assert!(icr.contains(IcrFlags::IT_HIGH));
        assert_eq!(hw.monitor().req_cnt(), 10);
    }

    #[test]
    fn hardware_block_cit_wake() {
        let mut hw = NcapHardware::new(cfg());
        hw.note_interrupt_posted(SimTime::ZERO);
        let icr = hw.on_rx_frame(SimTime::from_ms(2), &get_frame(1));
        assert_eq!(icr, Some(IcrFlags::IT_RX));
        // A PUT after silence does not wake anything: context-awareness.
        let put = Packet::request(NodeId(1), NodeId(0), 2, HttpRequest::put("/x").to_payload());
        let mut hw2 = NcapHardware::new(cfg());
        hw2.note_interrupt_posted(SimTime::ZERO);
        assert_eq!(hw2.on_rx_frame(SimTime::from_ms(2), &put), None);
    }

    /// Invariant `DecisionEngine hysteresis`: threshold discipline under
    /// arbitrary traffic. IT_HIGH only fires when the window's request
    /// rate exceeds RHT (and F is not at max); IT_LOW never fires within
    /// the low-activity window of the last activity or the last IT_LOW.
    #[test]
    fn prop_threshold_discipline() {
        Check::new("decision_threshold_discipline").run(
            |rng, size| gen::vec_with(rng, size, 10, 120, |r| r.next_below(20)),
            |reqs_per_window| {
                let cfg = NcapConfig::paper_defaults();
                let window_us = 50u64;
                let mut e = DecisionEngine::new(cfg.clone());
                let mut t = SimTime::ZERO;
                let mut req_cnt = 0u64;
                let mut last_active = SimTime::ZERO;
                let mut last_low: Option<SimTime> = None;
                // First expiry baselines.
                e.on_mitt_expiry(t, req_cnt, 0);
                for &n in reqs_per_window {
                    t += SimDuration::from_us(window_us);
                    req_cnt += n;
                    let rate = n as f64 / (window_us as f64 * 1e-6);
                    let out = e.on_mitt_expiry(t, req_cnt, 0);
                    if rate >= cfg.rlt_rps {
                        last_active = t;
                        last_low = None;
                    }
                    if let Some(icr) = out {
                        if icr.contains(IcrFlags::IT_HIGH) {
                            ensure!(rate > cfg.rht_rps, "IT_HIGH at rate {rate}");
                            e.note_freq_status(true, false);
                            last_low = None;
                        }
                        if icr.contains(IcrFlags::IT_LOW) {
                            let anchor = last_low.unwrap_or(last_active).max(last_active);
                            ensure!(
                                t.saturating_since(anchor) >= cfg.low_activity_window,
                                "early IT_LOW at {t}"
                            );
                            e.note_freq_status(false, false);
                            last_low = Some(t);
                        }
                    } else if rate > cfg.rht_rps {
                        // No IT_HIGH above RHT is only legal when already at max.
                    }
                }
                Ok(())
            },
        );
    }

    #[test]
    fn tx_counting_flows_into_rates() {
        let mut hw = NcapHardware::new(cfg());
        hw.note_freq_status(true, false);
        hw.on_mitt_expiry(SimTime::from_us(50));
        hw.on_tx_frame(50_000); // 8 Gbps over 50 us
        hw.on_mitt_expiry(SimTime::from_us(100));
        let s = hw.engine().last_sample().unwrap();
        assert!(s.tx_rate_bps > 5e6, "tx rate {s:?}");
    }
}
