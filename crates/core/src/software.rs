//! `ncap.sw`: the software implementation of NCAP (paper §5).
//!
//! The same ReqMonitor/TxBytesCounter/DecisionEngine algorithms run in
//! the NIC *driver* instead of NIC hardware: the receive SoftIRQ calls a
//! ReqMonitor function per packet, the transmit SoftIRQ counts bytes, and
//! a 1 ms high-resolution kernel timer evaluates the rates.
//!
//! Two structural handicaps versus the hardware variant — both visible in
//! the paper's results — fall out of this placement:
//!
//! 1. **CPU overhead**: every inspected packet and every timer tick burns
//!    processor cycles ([`SW_PER_PACKET_CYCLES`], [`SW_TIMER_CYCLES`]),
//!    which at high load steals capacity from request processing;
//! 2. **no early wake**: detection happens *after* the packet has already
//!    traversed DMA and the interrupt path, so nothing overlaps the
//!    C-state exit or V/F ramp with packet delivery — the CIT-based
//!    immediate `IT_RX` simply cannot exist in software.

use crate::config::NcapConfig;
use crate::decision::DecisionEngine;
use crate::driver::{DriverAction, EnhancedDriver};
use crate::icr::IcrFlags;
use crate::req_monitor::ReqMonitor;
use crate::sysfs::Sysfs;
use crate::tx_counter::TxBytesCounter;
use cpusim::{PStateId, PStateTable};
use desim::{SimDuration, SimTime};
use netsim::Packet;

/// Cycles the SoftIRQ pays to run the ReqMonitor function per received
/// packet (template compare + counter update + branch overhead in kernel
/// code).
pub const SW_PER_PACKET_CYCLES: u64 = 400;
/// Cycles per transmitted packet for TxCnt accounting.
pub const SW_PER_TX_CYCLES: u64 = 120;
/// Cycles per 1 ms timer invocation (hrtimer dispatch, rate computation,
/// DecisionEngine logic, possible cpufreq calls).
pub const SW_TIMER_CYCLES: u64 = 30_000;

/// The driver-resident NCAP implementation.
#[derive(Debug, Clone)]
pub struct SoftwareNcap {
    monitor: ReqMonitor,
    tx: TxBytesCounter,
    engine: DecisionEngine,
    driver: EnhancedDriver,
    timer_period: SimDuration,
}

impl SoftwareNcap {
    /// Builds `ncap.sw` with the paper's 1 ms evaluation timer.
    #[must_use]
    pub fn new(config: NcapConfig, table: &PStateTable) -> Self {
        let timer_period = SimDuration::from_ms(1);
        // The software variant evaluates rates at timer granularity; its
        // decision engine therefore runs with the timer as its "MITT".
        let engine_cfg = config.clone().with_mitt_period(timer_period);
        let mut sysfs = Sysfs::new();
        sysfs.program_default_templates();
        let mut monitor = ReqMonitor::new();
        monitor.program_from_sysfs(&sysfs);
        SoftwareNcap {
            monitor,
            tx: TxBytesCounter::new(),
            engine: DecisionEngine::new(engine_cfg),
            driver: EnhancedDriver::new(config, table),
            timer_period,
        }
    }

    /// The evaluation timer period (1 ms, per §5).
    #[must_use]
    pub fn timer_period(&self) -> SimDuration {
        self.timer_period
    }

    /// Called by the receive SoftIRQ for each packet, *before* it is
    /// handed to the upper layers. Returns the CPU cycles consumed.
    pub fn on_rx_packet(&mut self, frame: &Packet) -> u64 {
        self.monitor.inspect(frame);
        SW_PER_PACKET_CYCLES
    }

    /// Called by the transmit SoftIRQ per sent frame. Returns cycles.
    pub fn on_tx_packet(&mut self, wire_bytes: usize) -> u64 {
        self.tx.on_transmit(wire_bytes);
        SW_PER_TX_CYCLES
    }

    /// The 1 ms timer handler: evaluates rates and returns the cycles
    /// consumed plus the power-management action to apply.
    pub fn on_timer(
        &mut self,
        now: SimTime,
        current_goal: PStateId,
        table: &PStateTable,
    ) -> (u64, DriverAction) {
        let icr = self
            .engine
            .on_mitt_expiry(now, self.monitor.req_cnt(), self.tx.tx_bytes())
            .unwrap_or(IcrFlags::EMPTY);
        let action = if icr.is_empty() {
            DriverAction::default()
        } else {
            self.driver.handle_interrupt(icr, current_goal, table)
        };
        (SW_TIMER_CYCLES, action)
    }

    /// Mirrors the applied frequency status into the decision engine.
    pub fn note_freq_status(&mut self, at_max: bool, at_min: bool) {
        self.engine.note_freq_status(at_max, at_min);
    }

    /// The embedded monitor (for tests).
    #[must_use]
    pub fn monitor(&self) -> &ReqMonitor {
        &self.monitor
    }

    /// The embedded decision engine (for tests).
    #[must_use]
    pub fn engine(&self) -> &DecisionEngine {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::http::HttpRequest;
    use netsim::packet::NodeId;

    fn get_frame(id: u64) -> Packet {
        Packet::request(NodeId(1), NodeId(0), id, HttpRequest::get("/").to_payload())
    }

    fn sw() -> (SoftwareNcap, PStateTable) {
        let t = PStateTable::i7_like();
        let s = SoftwareNcap::new(NcapConfig::paper_defaults(), &t);
        (s, t)
    }

    #[test]
    fn per_packet_costs_are_charged() {
        let (mut s, _) = sw();
        assert_eq!(s.on_rx_packet(&get_frame(1)), SW_PER_PACKET_CYCLES);
        assert_eq!(s.on_tx_packet(1500), SW_PER_TX_CYCLES);
        assert_eq!(s.monitor().req_cnt(), 1);
    }

    #[test]
    fn timer_detects_burst_and_boosts() {
        let (mut s, t) = sw();
        s.note_freq_status(false, false);
        // Baseline tick.
        let (c, a) = s.on_timer(SimTime::from_ms(1), t.deepest(), &t);
        assert_eq!(c, SW_TIMER_CYCLES);
        assert!(a.is_noop());
        // 100 GETs within the next millisecond = 100 K rps > RHT.
        for i in 0..100 {
            s.on_rx_packet(&get_frame(i));
        }
        let (_, a) = s.on_timer(SimTime::from_ms(2), t.deepest(), &t);
        assert_eq!(a.set_pstate, Some(t.fastest()));
        assert!(a.disable_menu);
    }

    #[test]
    fn timer_descends_after_quiet_period() {
        let (mut s, t) = sw();
        s.note_freq_status(true, false);
        let mut now = SimTime::ZERO;
        let mut saw_descent = false;
        for _ in 0..10 {
            now += SimDuration::from_ms(1);
            let (_, a) = s.on_timer(now, t.fastest(), &t);
            if a.set_pstate.is_some() {
                assert!(a.enable_menu);
                saw_descent = true;
                break;
            }
        }
        assert!(saw_descent, "sustained quiet must trigger a descent");
    }

    #[test]
    fn detection_granularity_is_the_timer() {
        // Unlike the hardware variant, nothing happens between timer
        // ticks no matter how many requests arrive.
        let (mut s, t) = sw();
        s.note_freq_status(false, false);
        s.on_timer(SimTime::from_ms(1), t.deepest(), &t);
        for i in 0..500 {
            s.on_rx_packet(&get_frame(i));
        }
        // Still nothing until the next tick evaluates the rates.
        assert_eq!(s.engine().posted_counts().0, 0);
        let (_, a) = s.on_timer(SimTime::from_ms(2), t.deepest(), &t);
        assert!(a.set_pstate.is_some());
    }
}
