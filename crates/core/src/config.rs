//! NCAP configuration: the DecisionEngine thresholds and timers.
//!
//! Paper §6 fixes the threshold values after characterising Memcached and
//! Apache: RHT = 35 K requests/s, RLT = 5 K requests/s, TLT = 5 Mbit/s,
//! CIT = 500 µs. The MITT expires every 40–100 µs (§4.3) and the
//! low-activity window before the first `IT_LOW` is 1 ms. `FCONS` sets
//! how many back-to-back `IT_LOW` interrupts walk the frequency to its
//! minimum: 1 for `ncap.aggr`, 5 for `ncap.cons`.

use desim::{ConfigError, SimDuration};

/// Tunable parameters of the NCAP hardware and driver.
#[derive(Debug, Clone, PartialEq)]
pub struct NcapConfig {
    /// Request-rate high threshold (requests/second): above it, post
    /// `IT_HIGH` unless already at maximum frequency.
    pub rht_rps: f64,
    /// Request-rate low threshold (requests/second).
    pub rlt_rps: f64,
    /// Transmit-rate low threshold (bits/second).
    pub tlt_bps: f64,
    /// Core idle-time threshold: a request arriving after this much
    /// interrupt silence triggers an immediate `IT_RX` wake-up.
    pub cit: SimDuration,
    /// How long rates must stay below RLT/TLT before the first `IT_LOW`.
    pub low_activity_window: SimDuration,
    /// Back-to-back `IT_LOW` interrupts needed to reach minimum frequency.
    pub fcons: u8,
    /// Master Interrupt Throttling Timer period (40–100 µs per §4.3).
    pub mitt_period: SimDuration,
    /// How long one `IT_HIGH` suspends the ondemand governor (one
    /// invocation period, per §4.3).
    pub ondemand_suspend: SimDuration,
    /// `true` (the paper's design): only template-matching frames count
    /// toward `ReqRate`. `false` models the naive strawman of §4.1 that
    /// reacts to the rate of *any* received packets.
    pub context_aware: bool,
}

impl NcapConfig {
    /// The paper's evaluated configuration (§6), with `FCONS = 5`
    /// (`ncap.cons`). Use [`aggressive`](Self::aggressive) for
    /// `ncap.aggr`.
    #[must_use]
    pub fn paper_defaults() -> Self {
        NcapConfig {
            rht_rps: 35_000.0,
            rlt_rps: 5_000.0,
            tlt_bps: 5_000_000.0,
            cit: SimDuration::from_us(500),
            low_activity_window: SimDuration::from_ms(1),
            fcons: 5,
            mitt_period: SimDuration::from_us(50),
            ondemand_suspend: SimDuration::from_ms(10),
            context_aware: true,
        }
    }

    /// `ncap.cons`: conservative frequency descent (FCONS = 5).
    #[must_use]
    pub fn conservative() -> Self {
        Self::paper_defaults()
    }

    /// `ncap.aggr`: aggressive frequency descent (FCONS = 1).
    #[must_use]
    pub fn aggressive() -> Self {
        NcapConfig {
            fcons: 1,
            ..Self::paper_defaults()
        }
    }

    /// Builder-style override of FCONS ([`validate`](Self::validate)
    /// rejects zero).
    #[must_use]
    pub fn with_fcons(mut self, fcons: u8) -> Self {
        self.fcons = fcons;
        self
    }

    /// Builder-style override of the MITT period
    /// ([`validate`](Self::validate) rejects zero).
    #[must_use]
    pub fn with_mitt_period(mut self, period: SimDuration) -> Self {
        self.mitt_period = period;
        self
    }

    /// Builder-style override of the rate thresholds.
    #[must_use]
    pub fn with_thresholds(mut self, rht_rps: f64, rlt_rps: f64, tlt_bps: f64) -> Self {
        self.rht_rps = rht_rps;
        self.rlt_rps = rlt_rps;
        self.tlt_bps = tlt_bps;
        self
    }

    /// Builder-style override of CIT.
    #[must_use]
    pub fn with_cit(mut self, cit: SimDuration) -> Self {
        self.cit = cit;
        self
    }

    /// Builder-style switch to the naive any-packet-rate trigger
    /// (the §4.1 strawman, for the context-awareness ablation).
    #[must_use]
    pub fn naive_trigger(mut self) -> Self {
        self.context_aware = false;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.rlt_rps > self.rht_rps {
            return Err(ConfigError::new(
                "rlt_rps",
                format!(
                    "RLT ({}) must not exceed RHT ({})",
                    self.rlt_rps, self.rht_rps
                ),
            ));
        }
        if self.fcons == 0 {
            return Err(ConfigError::new("fcons", "FCONS must be at least 1"));
        }
        if self.mitt_period.is_zero() {
            return Err(ConfigError::new(
                "mitt_period",
                "MITT period must be positive",
            ));
        }
        if self.mitt_period > self.low_activity_window {
            return Err(ConfigError::new(
                "mitt_period",
                "MITT period must not exceed the low-activity window",
            ));
        }
        Ok(())
    }
}

impl Default for NcapConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let c = NcapConfig::paper_defaults();
        assert_eq!(c.rht_rps, 35_000.0);
        assert_eq!(c.rlt_rps, 5_000.0);
        assert_eq!(c.tlt_bps, 5_000_000.0);
        assert_eq!(c.cit, SimDuration::from_us(500));
        assert_eq!(c.low_activity_window, SimDuration::from_ms(1));
        assert_eq!(c.fcons, 5);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn aggressive_vs_conservative() {
        assert_eq!(NcapConfig::aggressive().fcons, 1);
        assert_eq!(NcapConfig::conservative().fcons, 5);
    }

    #[test]
    fn mitt_period_in_paper_range() {
        let c = NcapConfig::paper_defaults();
        assert!(c.mitt_period >= SimDuration::from_us(40));
        assert!(c.mitt_period <= SimDuration::from_us(100));
    }

    #[test]
    fn builders_compose() {
        let c = NcapConfig::paper_defaults()
            .with_fcons(3)
            .with_mitt_period(SimDuration::from_us(40))
            .with_thresholds(50_000.0, 1_000.0, 1e6)
            .with_cit(SimDuration::from_us(200));
        assert_eq!(c.fcons, 3);
        assert_eq!(c.mitt_period, SimDuration::from_us(40));
        assert_eq!(c.rht_rps, 50_000.0);
        assert_eq!(c.cit, SimDuration::from_us(200));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_inverted_thresholds() {
        let c = NcapConfig::paper_defaults().with_thresholds(1_000.0, 5_000.0, 1e6);
        assert_eq!(c.validate().unwrap_err().field, "rlt_rps");
    }

    #[test]
    fn validation_catches_oversized_mitt() {
        let mut c = NcapConfig::paper_defaults();
        c.mitt_period = SimDuration::from_ms(2);
        assert_eq!(c.validate().unwrap_err().field, "mitt_period");
    }

    #[test]
    fn validation_catches_zero_fcons_and_mitt() {
        // Builders no longer panic; validate() reports the field instead.
        let c = NcapConfig::paper_defaults().with_fcons(0);
        assert_eq!(c.validate().unwrap_err().field, "fcons");
        let c = NcapConfig::paper_defaults().with_mitt_period(SimDuration::ZERO);
        assert_eq!(c.validate().unwrap_err().field, "mitt_period");
    }
}
