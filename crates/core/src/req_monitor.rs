//! ReqMonitor: context-aware detection of latency-critical requests.
//!
//! Paper §4.1 / Figure 5(b): "ReqMonitor compares the first two bytes of
//! the payload with a set of templates that are stored in some registers
//! in a NIC … Consequently, ReqMonitor can determine whether or not a
//! received network packet is a latency-critical one. If so, ReqMonitor
//! increments ReqCnt."
//!
//! This is what distinguishes NCAP from a naive packet-rate trigger:
//! bulk traffic (storage replication, VM migration, `PUT` updates) never
//! matches a template and therefore never drives the processor to P0.

use crate::sysfs::Sysfs;
use netsim::Packet;

/// The template-matching request detector in the enhanced NIC.
#[derive(Debug, Clone, Default)]
pub struct ReqMonitor {
    templates: Vec<[u8; 2]>,
    match_all: bool,
    req_cnt: u64,
    frames_seen: u64,
}

impl ReqMonitor {
    /// A monitor with no templates programmed (matches nothing).
    #[must_use]
    pub fn new() -> Self {
        ReqMonitor::default()
    }

    /// Loads templates from the sysfs registers — the NIC-driver init
    /// subroutine's job (paper §4.1).
    pub fn program_from_sysfs(&mut self, sysfs: &Sysfs) {
        self.templates = sysfs.templates();
    }

    /// Directly programs a template set (tests, ablations).
    pub fn program(&mut self, templates: impl IntoIterator<Item = [u8; 2]>) {
        self.templates = templates.into_iter().collect();
    }

    /// The currently active templates.
    #[must_use]
    pub fn templates(&self) -> &[[u8; 2]] {
        &self.templates
    }

    /// Switches to counting *every* received frame as a request — the
    /// naive, context-free trigger of the paper's §4.1 strawman.
    pub fn set_match_all(&mut self, match_all: bool) {
        self.match_all = match_all;
    }

    /// Inspects one received frame. Returns `true` (and increments
    /// `ReqCnt`) if the first two payload bytes match any template.
    ///
    /// # Example
    ///
    /// ```
    /// use ncap::ReqMonitor;
    /// use netsim::packet::{NodeId, Packet};
    /// use netsim::http::HttpRequest;
    ///
    /// let mut m = ReqMonitor::new();
    /// m.program([*b"GE"]);
    /// let get = Packet::request(NodeId(1), NodeId(0), 1,
    ///     HttpRequest::get("/").to_payload());
    /// assert!(m.inspect(&get));
    /// let put = Packet::request(NodeId(1), NodeId(0), 2,
    ///     HttpRequest::put("/").to_payload());
    /// assert!(!m.inspect(&put));
    /// assert_eq!(m.req_cnt(), 1);
    /// ```
    pub fn inspect(&mut self, frame: &Packet) -> bool {
        self.frames_seen += 1;
        if self.match_all {
            self.req_cnt += 1;
            simtrace::metric_add_cum("core", "req_matches", 1.0);
            return true;
        }
        let Some(lead) = frame.leading_bytes() else {
            return false;
        };
        if self.templates.contains(&lead) {
            self.req_cnt += 1;
            simtrace::metric_add_cum("core", "req_matches", 1.0);
            true
        } else {
            false
        }
    }

    /// Inspects a raw wire frame (as produced by [`netsim::wire::encode`])
    /// the way the hardware comparator does: two bytes at the fixed
    /// payload offset. Frames shorter than offset+2 never match.
    pub fn inspect_wire(&mut self, frame: &[u8]) -> bool {
        self.frames_seen += 1;
        let off = netsim::packet::PAYLOAD_OFFSET;
        if self.match_all {
            self.req_cnt += 1;
            return true;
        }
        let Some(lead) = frame.get(off..off + 2) else {
            return false;
        };
        if self.templates.contains(&[lead[0], lead[1]]) {
            self.req_cnt += 1;
            true
        } else {
            false
        }
    }

    /// The running latency-critical request count (`ReqCnt`).
    #[must_use]
    pub fn req_cnt(&self) -> u64 {
        self.req_cnt
    }

    /// Total frames inspected (matching or not).
    #[must_use]
    pub fn frames_seen(&self) -> u64 {
        self.frames_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::http::{HttpRequest, MemcachedRequest};
    use netsim::packet::{NodeId, PacketMeta};
    use netsim::Bytes;

    fn frame(payload: Bytes) -> Packet {
        Packet::new(NodeId(1), NodeId(0), 0, payload, PacketMeta::default())
    }

    #[test]
    fn matches_only_programmed_templates() {
        let mut m = ReqMonitor::new();
        m.program([*b"GE", *b"ge"]);
        assert!(m.inspect(&frame(HttpRequest::get("/a").to_payload())));
        assert!(m.inspect(&frame(MemcachedRequest::get("k").to_payload())));
        assert!(!m.inspect(&frame(HttpRequest::put("/a").to_payload())));
        assert!(!m.inspect(&frame(MemcachedRequest::set("k", 4).to_payload())));
        assert_eq!(m.req_cnt(), 2);
        assert_eq!(m.frames_seen(), 4);
    }

    #[test]
    fn empty_template_set_matches_nothing() {
        let mut m = ReqMonitor::new();
        assert!(!m.inspect(&frame(HttpRequest::get("/").to_payload())));
        assert_eq!(m.req_cnt(), 0);
    }

    #[test]
    fn short_payloads_never_match() {
        let mut m = ReqMonitor::new();
        m.program([*b"GE"]);
        assert!(!m.inspect(&frame(Bytes::new())));
        assert!(!m.inspect(&frame(Bytes::from_static(b"G"))));
    }

    #[test]
    fn bulk_transfer_payloads_do_not_match() {
        // Response-like data payloads (no method token) are ignored even
        // at high rate — the context-awareness claim.
        let mut m = ReqMonitor::new();
        m.program([*b"GE", *b"HE", *b"PO", *b"ge"]);
        for _ in 0..1000 {
            assert!(!m.inspect(&frame(Bytes::from(vec![0xAB; 1400]))));
        }
        assert_eq!(m.req_cnt(), 0);
        assert_eq!(m.frames_seen(), 1000);
    }

    #[test]
    fn wire_inspection_matches_object_inspection() {
        // The byte-level comparator and the object-level one agree on
        // every payload family.
        let mut obj = ReqMonitor::new();
        let mut wire = ReqMonitor::new();
        obj.program([*b"GE", *b"ge"]);
        wire.program([*b"GE", *b"ge"]);
        for payload in [
            HttpRequest::get("/a").to_payload(),
            HttpRequest::put("/a").to_payload(),
            MemcachedRequest::get("k").to_payload(),
            Bytes::from(vec![0xA5; 100]),
        ] {
            let pkt = frame(payload);
            let bytes = netsim::wire::encode(&pkt);
            assert_eq!(obj.inspect(&pkt), wire.inspect_wire(&bytes));
        }
        assert_eq!(obj.req_cnt(), wire.req_cnt());
    }

    #[test]
    fn wire_inspection_rejects_short_frames() {
        let mut m = ReqMonitor::new();
        m.program([*b"GE"]);
        assert!(!m.inspect_wire(&[0u8; 60]));
    }

    #[test]
    fn match_all_counts_everything() {
        let mut m = ReqMonitor::new();
        m.set_match_all(true);
        assert!(m.inspect(&frame(Bytes::from(vec![0xAB; 100]))));
        assert!(m.inspect(&frame(Bytes::new())));
        assert_eq!(m.req_cnt(), 2);
    }

    #[test]
    fn programs_from_sysfs() {
        let mut fs = Sysfs::new();
        fs.program_default_templates();
        let mut m = ReqMonitor::new();
        m.program_from_sysfs(&fs);
        assert_eq!(m.templates().len(), 4);
        assert!(m.inspect(&frame(HttpRequest::get("/").to_payload())));
    }
}
