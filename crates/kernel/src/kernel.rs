//! The per-node kernel: event handlers tying every substrate together.
//!
//! See the crate docs for the model. The kernel is driven through
//! [`Kernel::handle`]; every handler returns [`Effects`] — follow-up
//! events for this node plus frames leaving on the wire (which the
//! cluster routes through the switch).

use crate::app::{AppPhase, RequestInfo, ServerApp};
use crate::config::{KernelConfig, ShedPolicy};
use crate::work::{Work, WorkKind};
use cpusim::{
    CState, Core, CoreId, CoreStateKind, EnergyMeter, PStateTable, PowerMode, PowerModel,
};
use desim::{SimTime, TimerSlot};
use governors::{CpufreqGovernor, CpuidleGovernor};
use ncap::{DriverAction, EnhancedDriver, IcrFlags, SoftwareNcap};
use netsim::tcp::segment_response;
use netsim::Bytes;
use netsim::{NodeId, Packet};
use nicsim::Nic;
use std::collections::{HashMap, VecDeque};

/// Events delivered to a node's kernel.
#[derive(Debug, Clone)]
pub enum NodeEvent {
    /// A frame fully arrived from the wire.
    FrameFromWire(Packet),
    /// A queue's head-of-line RX DMA completed.
    RxDmaComplete {
        /// The RSS queue.
        queue: u8,
    },
    /// An AITT/PITT delay-timer deadline (validated by generation).
    ModerationDelay {
        /// The RSS queue.
        queue: u8,
        /// Timer-slot generation from the NIC.
        gen: u64,
    },
    /// The NIC's master interrupt throttling timer expired.
    MittExpired,
    /// A core's current job finished (validated by generation).
    JobDone {
        /// Core index.
        core: u8,
        /// Timer-slot generation.
        gen: u64,
    },
    /// A core finished waking from a C-state (validated by generation).
    WakeDone {
        /// Core index.
        core: u8,
        /// Timer-slot generation.
        gen: u64,
    },
    /// Periodic dynamic cpufreq governor invocation.
    GovernorTick,
    /// The `ncap.sw` 1 ms evaluation timer.
    NcapSwTimer,
    /// An application IO phase (e.g. disk access) completed.
    IoDone {
        /// Kernel-internal request token.
        token: u64,
    },
    /// A frame finished DMA into the NIC and hits the wire now.
    TxWire {
        /// The departing frame.
        frame: Packet,
    },
    /// Bypass datapath: a queue's head-of-line RX DMA completed and the
    /// busy-poll loop (spinning continuously) picks the frame up now.
    PollRx {
        /// The RSS queue.
        queue: u8,
    },
}

impl NodeEvent {
    /// Coarse per-variant label, used by the simulator's wall-clock
    /// self-profiler (`desim::EventHandler::classify`).
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            NodeEvent::FrameFromWire(_) => "node.frame_from_wire",
            NodeEvent::RxDmaComplete { .. } => "node.rx_dma",
            NodeEvent::ModerationDelay { .. } => "node.moderation_delay",
            NodeEvent::MittExpired => "node.mitt",
            NodeEvent::JobDone { .. } => "node.job_done",
            NodeEvent::WakeDone { .. } => "node.wake_done",
            NodeEvent::GovernorTick => "node.governor_tick",
            NodeEvent::NcapSwTimer => "node.ncap_sw_timer",
            NodeEvent::IoDone { .. } => "node.io_done",
            NodeEvent::TxWire { .. } => "node.tx_wire",
            NodeEvent::PollRx { .. } => "node.poll_rx",
        }
    }
}

/// What a handler wants done next.
#[derive(Debug, Default)]
pub struct Effects {
    /// Events to schedule on this node at absolute instants.
    pub schedule: Vec<(SimTime, NodeEvent)>,
    /// Frames leaving on the wire *now* (cluster routes via the switch).
    pub transmit: Vec<Packet>,
}

impl Effects {
    fn at(&mut self, t: SimTime, e: NodeEvent) {
        self.schedule.push((t, e));
    }
}

struct ReqState {
    info: RequestInfo,
    phases: VecDeque<AppPhase>,
    response_bytes: usize,
    /// Latency-attribution record accumulated while the request is in
    /// flight (measurement sideband; stamped into the final response).
    stages: netsim::StageRecord,
}

/// Everything `emit_response` needs to address, size, and attribute a
/// response — from first-time completion or a reliability-layer replay.
struct Response {
    dst: NodeId,
    request_id: u64,
    bytes: usize,
    sent_at: SimTime,
    stages: netsim::StageRecord,
}

/// Receiver-side duplicate-suppression state for one request id (only
/// tracked when [`KernelConfig::reliable`] is set).
#[derive(Debug, Clone, Copy)]
enum DupState {
    /// The request is being processed; duplicates are dropped without
    /// scheduling any application work.
    InFlight,
    /// The response (of this size) was already generated; a duplicate
    /// means the client did not receive it all — replay it.
    Done {
        /// Size of the generated response body.
        response_bytes: usize,
        /// The original attribution record, so a replayed response still
        /// tiles the client-observed latency (the original-to-replay gap
        /// is charged to `replay_ns`).
        stages: netsim::StageRecord,
    },
    /// Admission control rejected the request with a 503. A duplicate
    /// retransmission replays the rejection — the request is never
    /// re-admitted, even if capacity has since freed up, because the
    /// client already observed (or will observe) the rejection.
    Rejected,
}

/// Operational counters of one kernel — the `/proc`-style observability a
/// production deployment would watch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Interrupt service routines executed.
    pub isrs: u64,
    /// Receive SoftIRQ work items processed (one per frame).
    pub softirq_rx: u64,
    /// Transmit-path work items processed (one per frame).
    pub softirq_tx: u64,
    /// Application work items executed.
    pub app_jobs: u64,
    /// Dynamic-governor invocations that actually evaluated (not
    /// suspended by NCAP).
    pub governor_ticks: u64,
    /// Core wake-ups out of C-states.
    pub core_wakes: u64,
    /// Retransmitted requests dropped while the original was still in
    /// flight (no application work scheduled).
    pub dup_suppressed: u64,
    /// Responses replayed for retransmitted requests that had already
    /// completed (the response was lost on the way back).
    pub resp_replays: u64,
    /// Requests refused with a 503-style response by admission control
    /// (first rejection only; replays are counted separately).
    pub rejected: u64,
    /// 503 responses replayed for retransmissions of already-rejected
    /// requests.
    pub reject_replays: u64,
    /// Frames tail-dropped at the RX backlog caps during ISR drain
    /// (recovered by client RTO, like a ring overflow).
    pub backlog_sheds: u64,
    /// TX frames dropped at the run-queue or TX-backlog cap (recovered
    /// by retransmission and response replay).
    pub tx_sheds: u64,
    /// Frames received through the bypass datapath's busy-poll loop
    /// (zero on the interrupt-driven kernel datapath).
    pub polled_frames: u64,
}

/// A stage-level waterfall of one sampled request's life inside the
/// server — measurement-only instrumentation (the gem5-pseudo-instruction
/// role of the paper's methodology, at per-stage granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTrace {
    /// The client's request id.
    pub id: u64,
    /// The request frame fully arrived at the NIC.
    pub nic_arrival: SimTime,
    /// The receive SoftIRQ delivered the request to the application.
    pub stack_done: SimTime,
    /// The application finished generating the response.
    pub app_done: SimTime,
    /// Total IO (disk) wait inside the application phases.
    pub io_wait: desim::SimDuration,
    /// The final response frame left on the wire.
    pub last_tx: SimTime,
}

impl RequestTrace {
    /// Server-internal residence time (NIC arrival to last TX byte).
    #[must_use]
    pub fn residence(&self) -> desim::SimDuration {
        self.last_tx.saturating_since(self.nic_arrival)
    }
}

/// Deterministic CoDel-style controller state (Controlled Delay, Nichols
/// & Jacobson): once queue sojourn time stays above the target for a full
/// interval, shed one request, then shed again at intervals shrinking
/// with `interval / sqrt(count)` until sojourn drops below target.
#[derive(Debug, Clone, Copy, Default)]
struct CoDelState {
    /// When the sojourn first exceeded the target (plus one interval):
    /// the instant at which shedding may begin.
    first_above: Option<SimTime>,
    /// Next scheduled shed while in the dropping state.
    shed_next: SimTime,
    /// Sheds performed in the current dropping episode.
    count: u32,
    /// Whether the controller is in the dropping state.
    dropping: bool,
}

impl CoDelState {
    fn backoff(interval: desim::SimDuration, count: u32) -> desim::SimDuration {
        desim::SimDuration::from_secs_f64(interval.as_secs_f64() / f64::from(count.max(1)).sqrt())
    }

    /// Feeds one observed sojourn time; returns `true` if this request
    /// should be shed.
    fn should_shed(
        &mut self,
        now: SimTime,
        sojourn: desim::SimDuration,
        target: desim::SimDuration,
        interval: desim::SimDuration,
    ) -> bool {
        if sojourn < target {
            self.first_above = None;
            self.dropping = false;
            self.count = 0;
            return false;
        }
        let Some(first) = self.first_above else {
            self.first_above = Some(now + interval);
            return false;
        };
        if now < first {
            return false;
        }
        if !self.dropping {
            self.dropping = true;
            self.count = self.count.saturating_add(1);
            self.shed_next = now + Self::backoff(interval, self.count);
            return true;
        }
        if now >= self.shed_next {
            self.count = self.count.saturating_add(1);
            self.shed_next += Self::backoff(interval, self.count);
            return true;
        }
        false
    }
}

/// Narrows a nanosecond span to the `u32` attribution fields. Simulated
/// runs are orders of magnitude below the ~4.3 s cap; saturate rather
/// than wrap if one ever is not.
fn ns32(ns: u64) -> u32 {
    u32::try_from(ns).unwrap_or(u32::MAX)
}

/// The kernel of one simulated server node.
pub struct Kernel {
    cfg: KernelConfig,
    node: NodeId,
    table: PStateTable,
    cores: Vec<Core>,
    nic: Nic,
    cpufreq: Box<dyn CpufreqGovernor + Send>,
    cpuidle: Box<dyn CpuidleGovernor + Send>,
    app: Box<dyn ServerApp + Send>,
    ncap_driver: Option<EnhancedDriver>,
    ncap_sw: Option<SoftwareNcap>,

    desired_pstate: cpusim::PStateId,
    menu_disabled: bool,
    ondemand_suspended_until: SimTime,
    last_gov_sample: SimTime,
    last_busy: Vec<desim::SimDuration>,

    run_queue: VecDeque<Work>,
    /// Bypass datapath: the userspace RX/TX descriptor ring busy-poll
    /// cores drain. Always empty on the kernel datapath.
    poll_queue: bypass::UserRing<Work>,
    current: Vec<Option<Work>>,
    job_slots: Vec<TimerSlot>,
    wake_slots: Vec<TimerSlot>,
    sleep_since: Vec<SimTime>,
    isr_pending: Vec<bool>,
    /// When each core's in-progress wake will complete (valid while the
    /// matching `wake_slots` entry is armed). Attribution only.
    wake_eta: Vec<SimTime>,
    /// Per NIC queue: the `(begin, done)` window of the C-state wake the
    /// last asserted interrupt had to wait out (both zero when the
    /// servicing core was already awake). Attribution only.
    irq_wake: Vec<(SimTime, SimTime)>,

    power: PowerModel,
    uncore: EnergyMeter,
    uncore_sync: SimTime,

    requests: HashMap<u64, ReqState>,
    seen: HashMap<u64, DupState>,
    req_traces: HashMap<u64, RequestTrace>,
    finished_traces: Vec<RequestTrace>,
    next_token: u64,
    tx_backlog: VecDeque<Packet>,
    completed_responses: u64,
    wake_marker_times: Vec<SimTime>,
    stats: KernelStats,

    /// RX-softirq items currently in the run queue, per NIC queue
    /// (overload accounting for the per-RSS backlog cap).
    rx_backlog: Vec<usize>,
    /// TX stack work items currently in the run queue (departures are
    /// capped separately from admissions).
    tx_in_queue: usize,
    /// High-water mark of the run-queue depth (memory proxy).
    max_run_queue: usize,
    codel: CoDelState,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("node", &self.node)
            .field("cores", &self.cores.len())
            .field("cpufreq", &self.cpufreq.name())
            .field("cpuidle", &self.cpuidle.name())
            .field("app", &self.app.name())
            .field("desired_pstate", &self.desired_pstate)
            .field("run_queue", &self.run_queue.len())
            .field("in_flight_requests", &self.requests.len())
            .finish()
    }
}

impl Kernel {
    /// Builds a kernel.
    #[must_use]
    pub fn new(
        cfg: KernelConfig,
        node: NodeId,
        nic: Nic,
        cpufreq: Box<dyn CpufreqGovernor + Send>,
        cpuidle: Box<dyn CpuidleGovernor + Send>,
        app: Box<dyn ServerApp + Send>,
    ) -> Self {
        let table = PStateTable::i7_like();
        let power = PowerModel::i7_like();
        let n = cfg.cores as usize;
        let mut nic = nic;
        let poll_cores = if cfg.datapath.bypasses_kernel() {
            // Hand RX ring ownership to the userspace poll-mode driver;
            // no interrupts, moderation timers or on-NIC inspection.
            nic.set_poll_mode();
            cfg.bypass.poll_cores as usize
        } else {
            0
        };
        let cores = (0..cfg.cores)
            .map(|i| {
                // Busy-poll cores are pinned at the max P-state from boot
                // and never consult the governors.
                let p = if (i as usize) < poll_cores {
                    table.fastest()
                } else {
                    cfg.initial_pstate
                };
                Core::new(CoreId(i), table.clone(), power.clone(), p)
            })
            .collect();
        let isr_pending = vec![false; nic.queue_count()];
        let irq_wake = vec![(SimTime::ZERO, SimTime::ZERO); nic.queue_count()];
        let rx_backlog = vec![0; nic.queue_count()];
        Kernel {
            rx_backlog,
            tx_in_queue: 0,
            max_run_queue: 0,
            codel: CoDelState::default(),
            power,
            uncore: EnergyMeter::new(),
            uncore_sync: SimTime::ZERO,
            desired_pstate: cfg.initial_pstate,
            table,
            cores,
            nic,
            cpufreq,
            cpuidle,
            app,
            ncap_driver: None,
            ncap_sw: None,
            menu_disabled: false,
            ondemand_suspended_until: SimTime::ZERO,
            last_gov_sample: SimTime::ZERO,
            last_busy: vec![desim::SimDuration::ZERO; n],
            run_queue: VecDeque::new(),
            poll_queue: bypass::UserRing::new(),
            current: std::iter::repeat_with(|| None).take(n).collect(),
            job_slots: vec![TimerSlot::new(); n],
            wake_slots: vec![TimerSlot::new(); n],
            sleep_since: vec![SimTime::ZERO; n],
            wake_eta: vec![SimTime::ZERO; n],
            isr_pending,
            irq_wake,
            requests: HashMap::new(),
            seen: HashMap::new(),
            req_traces: HashMap::new(),
            finished_traces: Vec::new(),
            next_token: 0,
            tx_backlog: VecDeque::new(),
            completed_responses: 0,
            wake_marker_times: Vec::new(),
            stats: KernelStats::default(),
            node,
            cfg,
        }
    }

    /// Attaches the NCAP-enhanced driver (hardware NCAP policies).
    #[must_use]
    pub fn with_ncap_driver(mut self, driver: EnhancedDriver) -> Self {
        self.ncap_driver = Some(driver);
        self
    }

    /// Attaches the software NCAP implementation (`ncap.sw`).
    #[must_use]
    pub fn with_software_ncap(mut self, sw: SoftwareNcap) -> Self {
        self.ncap_sw = Some(sw);
        self
    }

    /// Boots the node: applies the static governor (or schedules the
    /// dynamic one), arms the MITT and the `ncap.sw` timer, and lets idle
    /// cores consult cpuidle.
    pub fn init(&mut self, now: SimTime) -> Effects {
        let mut fx = Effects::default();
        match self.cpufreq.period() {
            None => {
                self.desired_pstate =
                    self.cpufreq
                        .target(now, 0.0, self.cfg.initial_pstate, &self.table);
                self.apply_pstates(now, &mut fx);
            }
            Some(p) => {
                self.last_gov_sample = now;
                fx.at(now + p, NodeEvent::GovernorTick);
                // Write the initial status back so NCAP's mirror is sane.
                self.writeback_freq_status();
            }
        }
        if !self.cfg.datapath.bypasses_kernel() {
            let mitt = self.nic.start_mitt(now);
            fx.at(mitt, NodeEvent::MittExpired);
        }
        if let Some(sw) = &self.ncap_sw {
            fx.at(now + sw.timer_period(), NodeEvent::NcapSwTimer);
        }
        for ci in 0..self.cores.len() {
            if self.cores[ci].is_idle() {
                self.idle_enter(now, ci);
            }
        }
        fx
    }

    /// Bills package/uncore power for the interval since the last event,
    /// using the core states that held throughout it (all state changes
    /// happen inside event handlers, so the interval is homogeneous).
    fn sync_uncore(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.uncore_sync);
        if dt.is_zero() {
            return;
        }
        self.uncore_sync = now;
        let mut any_awake = false;
        let mut all_c6 = true;
        for c in &self.cores {
            match c.state_kind() {
                CoreStateKind::Active | CoreStateKind::Waking(_) => {
                    any_awake = true;
                    all_c6 = false;
                }
                CoreStateKind::Asleep(s) => {
                    if s != CState::C6 {
                        all_c6 = false;
                    }
                }
            }
        }
        let w = if any_awake {
            self.power.uncore_active()
        } else if all_c6 {
            self.power.uncore_gated()
        } else {
            self.power.uncore_sleep()
        };
        self.uncore.accumulate(PowerMode::Uncore, w, dt);
    }

    /// Handles one event. The single entry point for the event loop.
    pub fn handle(&mut self, now: SimTime, event: NodeEvent) -> Effects {
        self.sync_uncore(now);
        let mut fx = Effects::default();
        match event {
            NodeEvent::FrameFromWire(frame) => self.on_frame_from_wire(now, frame, &mut fx),
            NodeEvent::RxDmaComplete { queue } => {
                if let Some((deadline, gen)) = self.nic.rx_dma_complete(now, queue as usize) {
                    fx.at(deadline, NodeEvent::ModerationDelay { queue, gen });
                }
            }
            NodeEvent::ModerationDelay { queue, gen } => {
                if self.nic.delay_expired(now, queue as usize, gen) {
                    self.deliver_irq(now, queue as usize, &mut fx);
                }
            }
            NodeEvent::MittExpired => self.on_mitt(now, &mut fx),
            NodeEvent::JobDone { core, gen } => self.on_job_done(now, core as usize, gen, &mut fx),
            NodeEvent::WakeDone { core, gen } => {
                self.on_wake_done(now, core as usize, gen, &mut fx);
            }
            NodeEvent::GovernorTick => self.on_governor_tick(now, &mut fx),
            NodeEvent::NcapSwTimer => self.on_sw_timer(now, &mut fx),
            NodeEvent::IoDone { token } => self.advance_request(now, token, &mut fx),
            NodeEvent::TxWire { frame } => self.on_tx_wire(now, frame, &mut fx),
            NodeEvent::PollRx { queue } => self.on_poll_rx(now, queue as usize, &mut fx),
        }
        fx
    }

    /// Cores dedicated to busy-polling (the lowest-numbered ones); zero
    /// on the interrupt-driven datapaths.
    #[must_use]
    pub fn poll_core_count(&self) -> usize {
        if self.cfg.datapath.bypasses_kernel() {
            self.cfg.bypass.poll_cores as usize
        } else {
            0
        }
    }

    // ----- RX path -------------------------------------------------------

    fn sampled(&self, id: u64) -> bool {
        self.cfg
            .trace_requests_every
            .is_some_and(|n| id.is_multiple_of(n))
    }

    fn on_frame_from_wire(&mut self, now: SimTime, mut frame: Packet, fx: &mut Effects) {
        // Attribution anchor: the frame is fully off the wire. Everything
        // until the SoftIRQ drain is NIC-resident time (DMA, moderation
        // hold, interrupt servicing, wake latency).
        frame.meta_mut().stages.arrival = now;
        if let Some(id) = frame.meta().request_id {
            if self.sampled(id) {
                self.req_traces.entry(id).or_insert(RequestTrace {
                    id,
                    nic_arrival: now,
                    stack_done: now,
                    app_done: now,
                    io_wait: desim::SimDuration::ZERO,
                    last_tx: now,
                });
            }
        }
        let out = self.nic.frame_arrived(now, frame);
        if self.cfg.datapath.bypasses_kernel() {
            // Poll mode: no interrupts. The busy-poll loop spins
            // continuously, so it notices the frame the moment its DMA
            // lands in the userspace ring.
            if let Some(t) = out.dma_complete_at {
                fx.at(
                    t,
                    NodeEvent::PollRx {
                        queue: out.queue as u8,
                    },
                );
            }
            return;
        }
        if out.immediate_irq {
            // NCAP CIT rule: a proactive wake-up interrupt.
            self.wake_marker_times.push(now);
            self.deliver_irq(now, out.queue, fx);
        } else if out.overflow_irq {
            // Receiver overrun (RXO): drain the ring immediately — but do
            // NOT record an NCAP wake marker; this is congestion
            // backpressure, not a packet-context decision.
            self.deliver_irq(now, out.queue, fx);
        }
        if let Some(t) = out.dma_complete_at {
            fx.at(
                t,
                NodeEvent::RxDmaComplete {
                    queue: out.queue as u8,
                },
            );
        }
    }

    fn on_mitt(&mut self, now: SimTime, fx: &mut Effects) {
        let (next, raised) = self.nic.mitt_expired(now);
        fx.at(next, NodeEvent::MittExpired);
        for queue in raised {
            self.deliver_irq(now, queue, fx);
        }
        // Opportunistic retry of P-state application for cores that were
        // mid-transition when the last change was requested.
        self.apply_pstates(now, fx);
    }

    /// The core servicing a queue's MSI-X vector: vectors are distributed
    /// round-robin across cores, as irqbalance pins them.
    fn irq_core(&self, queue: usize) -> usize {
        queue % self.cores.len()
    }

    fn deliver_irq(&mut self, now: SimTime, queue: usize, fx: &mut Effects) {
        // Offload datapath: the NCAP decision engine lives on the NIC, so
        // packet-context actions (wakes, boosts, menu gating) apply the
        // moment the vector asserts — before the host ISR is even
        // scheduled, and overlapping any C-state wake it must wait out.
        if self.cfg.datapath.offloads_ncap() {
            let icr = self.nic.read_icr(queue);
            self.apply_ncap_icr(now, icr, fx);
        }
        if self.isr_pending[queue] {
            return; // level-triggered: causes accumulate in the vector
        }
        self.isr_pending[queue] = true;
        if simtrace::is_enabled() {
            let t = now.as_nanos();
            simtrace::instant_args("kernel", "hardirq", t, &[simtrace::arg("queue", queue)]);
            simtrace::metric_add("kernel", "hardirqs", t, 1.0);
        }
        let core = self.irq_core(queue);
        let isr = Work::cycles(self.cfg.isr_cycles, WorkKind::Isr { queue: queue as u8 })
            .on_core(core as u8)
            .queued_at(now);
        // The on-NIC engine already consumed the causes, so an offload
        // ISR skips the PCIe ICR read stall on its critical path.
        let isr = if self.cfg.datapath.offloads_ncap() {
            isr
        } else {
            isr.with_fixed(self.nic.config().icr_read_latency)
        };
        // ISRs are exempt from admission control: at most one per vector
        // is pending (level-triggered dedup above), and dropping one would
        // wedge the queue it services.
        self.run_queue.push_front(isr);
        self.note_queue_depth(now);
        // Attribution: note the wake window this interrupt waits out, so
        // the drain can split NIC hold from C-state wake latency.
        match self.cores[core].state_kind() {
            CoreStateKind::Asleep(_) => {
                self.wake_core(now, core, fx);
                self.irq_wake[queue] = (now, self.wake_eta[core]);
            }
            CoreStateKind::Waking(_) => {
                self.irq_wake[queue] = (now, self.wake_eta[core]);
            }
            CoreStateKind::Active => {
                self.irq_wake[queue] = (SimTime::ZERO, SimTime::ZERO);
            }
        }
        self.try_dispatch(now, fx);
    }

    /// Bypass datapath: a frame's RX DMA landed in the userspace ring and
    /// the busy-poll loop picks it up now. Mirrors the NAPI drain's
    /// backlog accounting, but queues thin userspace RX work on the poll
    /// ring instead of SoftIRQ work on the kernel run queue.
    fn on_poll_rx(&mut self, now: SimTime, queue: usize, fx: &mut Effects) {
        // Advance the DMA machinery (stamps `dma_done`, parks the frame
        // in the ring); poll mode arms no timers and raises no causes.
        let _ = self.nic.rx_dma_complete(now, queue);
        let ov = self.cfg.overload;
        let mut polled = 0u64;
        while let Some(frame) = self.nic.fetch_rx(queue) {
            // The per-RSS backlog cap applies exactly as at the NAPI
            // drain: excess frames are tail-dropped, clients recover via
            // RTO.
            if ov.shedding()
                && ov
                    .rx_backlog_cap
                    .is_some_and(|cap| self.rx_backlog[queue] >= cap)
            {
                self.stats.backlog_sheds += 1;
                if simtrace::is_enabled() {
                    simtrace::metric_add("kernel", "backlog_sheds", now.as_nanos(), 1.0);
                }
                continue;
            }
            self.rx_backlog[queue] += 1;
            self.stats.polled_frames += 1;
            polled += 1;
            self.poll_queue.push(
                Work::cycles(
                    self.cfg.bypass.poll_rx_cycles,
                    WorkKind::PollRx {
                        frame,
                        queue: queue as u8,
                    },
                )
                .queued_at(now),
            );
        }
        if simtrace::is_enabled() && polled > 0 {
            let t = now.as_nanos();
            simtrace::metric_add("kernel", "polled_frames", t, polled as f64);
            simtrace::metric_set("kernel", "poll_ring_depth", t, self.poll_queue.len() as f64);
        }
        self.try_dispatch_poll(now, fx);
    }

    /// Assigns poll-ring descriptors to idle busy-poll cores, in FIFO
    /// order. Poll cores are always awake, so no wake path is needed; a
    /// no-op when the ring is empty (every kernel-datapath call).
    fn try_dispatch_poll(&mut self, now: SimTime, fx: &mut Effects) {
        let p = self.poll_core_count();
        while !self.poll_queue.is_empty() {
            let Some(ci) = (0..p).find(|&ci| self.cores[ci].is_idle()) else {
                break;
            };
            let work = self.poll_queue.pop().expect("ring checked non-empty");
            self.start_work(now, ci, work, fx);
        }
    }

    // ----- scheduler -----------------------------------------------------

    fn wake_core(&mut self, now: SimTime, ci: usize, fx: &mut Effects) {
        if self.wake_slots[ci].is_armed() {
            return; // wake already in progress
        }
        if let Ok(ready) = self.cores[ci].begin_wake(now) {
            self.stats.core_wakes += 1;
            if simtrace::is_enabled() {
                let t = now.as_nanos();
                simtrace::instant_args("kernel", "core_wake", t, &[simtrace::arg("core", ci)]);
                simtrace::metric_add("kernel", "core_wakes", t, 1.0);
            }
            let done = ready + self.cfg.mwait_wake_overhead;
            let gen = self.wake_slots[ci].arm(done);
            self.wake_eta[ci] = done;
            fx.at(
                done,
                NodeEvent::WakeDone {
                    core: ci as u8,
                    gen,
                },
            );
        }
    }

    fn start_work(&mut self, now: SimTime, ci: usize, mut work: Work, fx: &mut Effects) {
        work.started_at = now;
        // §7 per-core boost: a core receiving work during a burst joins
        // the boosted frequency only now, instead of chip-wide at IT_HIGH.
        // Busy-poll cores are already pinned at max and never rejoin.
        if self.cfg.per_core_boost
            && self.menu_disabled
            && ci >= self.poll_core_count()
            && self.cores[ci].goal_pstate() > self.desired_pstate
        {
            let _ = self.cores[ci].set_pstate(now, self.desired_pstate);
        }
        let freq = self.cores[ci].freq_hz() as f64;
        let total = work.cycles as f64 + work.fixed.as_secs_f64() * freq;
        let eta = self.cores[ci]
            .begin_job(now, total)
            .expect("dispatch target must be idle and awake");
        let gen = self.job_slots[ci].arm(eta);
        fx.at(
            eta,
            NodeEvent::JobDone {
                core: ci as u8,
                gen,
            },
        );
        simtrace::span_begin_args(
            "kernel",
            "work",
            now.as_nanos(),
            ci as u32,
            &[simtrace::arg("kind", work.kind.label())],
        );
        self.current[ci] = Some(work);
    }

    fn try_dispatch(&mut self, now: SimTime, fx: &mut Effects) {
        // Assign queue entries to idle cores, respecting affinity,
        // skipping over blocked entries so affinity cannot head-of-line
        // block unrelated work.
        loop {
            let mut pick: Option<(usize, usize)> = None;
            for qi in 0..self.run_queue.len() {
                let target = match self.run_queue[qi].affinity {
                    Some(c) => {
                        let c = c as usize;
                        self.cores[c].is_idle().then_some(c)
                    }
                    // Non-affine (application) work prefers the highest
                    // idle core: core 0 carries the IRQ/SoftIRQ load of
                    // the single-queue NIC, and a Linux scheduler keeps
                    // application threads off it while others are free.
                    // Busy-poll cores (below `floor`) take no application
                    // work at all.
                    None => {
                        let floor = self.poll_core_count();
                        self.cores[floor..]
                            .iter()
                            .rposition(Core::is_idle)
                            .map(|i| i + floor)
                    }
                };
                if let Some(ci) = target {
                    pick = Some((qi, ci));
                    break;
                }
            }
            match pick {
                Some((qi, ci)) => {
                    let work = self.run_queue.remove(qi).expect("index in range");
                    self.start_work(now, ci, work, fx);
                }
                None => break,
            }
        }
        // Wake sleeping cores for whatever remains queued.
        let mut wake: Vec<usize> = Vec::new();
        let mut nonaffine = 0usize;
        for w in &self.run_queue {
            match w.affinity {
                Some(c) => {
                    let c = c as usize;
                    if matches!(self.cores[c].state_kind(), CoreStateKind::Asleep(_))
                        && !wake.contains(&c)
                    {
                        wake.push(c);
                    }
                }
                None => nonaffine += 1,
            }
        }
        if nonaffine > 0 {
            for ci in 0..self.cores.len() {
                if nonaffine == 0 {
                    break;
                }
                if matches!(self.cores[ci].state_kind(), CoreStateKind::Asleep(_))
                    && !wake.contains(&ci)
                {
                    wake.push(ci);
                    nonaffine -= 1;
                }
            }
        }
        for ci in wake {
            self.wake_core(now, ci, fx);
        }
    }

    fn on_job_done(&mut self, now: SimTime, ci: usize, gen: u64, fx: &mut Effects) {
        if !self.job_slots[ci].fires(gen) {
            return; // superseded by a frequency-change reschedule
        }
        self.cores[ci]
            .complete_job(now)
            .expect("job slot fired without a job");
        let work = self.current[ci].take().expect("current work recorded");
        simtrace::span_end("kernel", "work", now.as_nanos(), ci as u32);
        self.complete_work(now, work, fx);
        self.try_dispatch(now, fx);
        self.try_dispatch_poll(now, fx);
        if self.cores[ci].is_idle() {
            self.idle_enter(now, ci);
        }
    }

    fn on_wake_done(&mut self, now: SimTime, ci: usize, gen: u64, fx: &mut Effects) {
        if !self.wake_slots[ci].fires(gen) {
            return;
        }
        self.cores[ci].sync(now);
        let slept = now.saturating_since(self.sleep_since[ci]);
        self.cpuidle.note_idle_end(ci, now, slept);
        // Chip-wide frequency: the core rejoins at the current goal.
        let _ = self.cores[ci].set_pstate(now, self.desired_pstate);
        self.try_dispatch(now, fx);
        if self.cores[ci].is_idle() {
            self.idle_enter(now, ci);
        }
    }

    fn idle_enter(&mut self, now: SimTime, ci: usize) {
        // Poll-mode stacks have no interrupt to wake a sleeping core:
        // the poll cores spin on the NIC rings, and the worker cores
        // spin-wait on the work queue (blocking would need a kernel
        // wakeup path the bypass datapath deliberately lacks). Every
        // core stays in C0 — the poll cores pinned at max P-state, the
        // workers at whatever P-state ondemand picked — which is the
        // flat worst-case energy bill busy-polling pays at low load.
        if self.cfg.datapath.bypasses_kernel() {
            return;
        }
        // NCAP burst guard: stay in C0. Under the §7 per-core extension
        // the guard covers only the known packet-processing target
        // (core 0); other cores keep their cpuidle autonomy.
        if self.menu_disabled && (!self.cfg.per_core_boost || ci == 0) {
            return;
        }
        if let Some(c) = self.cpuidle.select(ci, now) {
            if self.cores[ci].enter_sleep(now, c).is_ok() {
                self.sleep_since[ci] = now;
            }
        }
    }

    // ----- overload protection -------------------------------------------

    /// Records the run-queue depth high-water mark (the memory proxy)
    /// and the `kernel.queue_depth` gauge.
    fn note_queue_depth(&mut self, now: SimTime) {
        let depth = self.run_queue.len();
        if depth > self.max_run_queue {
            self.max_run_queue = depth;
        }
        if simtrace::is_enabled() {
            simtrace::metric_set("kernel", "queue_depth", now.as_nanos(), depth as f64);
        }
    }

    /// Run-queue depth excluding TX stack work — what admission control
    /// compares against `run_queue_cap` (departures must not starve).
    ///
    /// `tx_in_queue` also counts a TX job from dispatch until its cycles
    /// finish (it left the run queue but still holds its departure
    /// slot), so it can transiently exceed the queued TX count — the
    /// subtraction must saturate or an executing TX job over an empty
    /// queue reads as a huge backlog and sheds every admission.
    fn admit_backlog(&self) -> usize {
        self.run_queue.len().saturating_sub(self.tx_in_queue)
    }

    /// `true` when shedding is armed and the non-TX queue depth is at or
    /// past the admission capacity.
    fn run_queue_full(&self) -> bool {
        let ov = &self.cfg.overload;
        ov.shedding()
            && ov
                .run_queue_cap
                .is_some_and(|cap| self.admit_backlog() >= cap)
    }

    /// Consults the active shed policy at admission time. Returns the
    /// reason to shed this request, or `None` to admit it.
    fn admission_sheds(
        &mut self,
        now: SimTime,
        meta: &netsim::PacketMeta,
        sojourn: desim::SimDuration,
    ) -> Option<&'static str> {
        let ov = self.cfg.overload;
        if !ov.shedding() {
            return None;
        }
        if ov
            .run_queue_cap
            .is_some_and(|cap| self.admit_backlog() >= cap)
        {
            return Some("queue-full");
        }
        match ov.policy {
            ShedPolicy::Deadline => {
                let deadline = meta.deadline.or(ov.default_deadline)?;
                (now.saturating_since(meta.sent_at) >= deadline).then_some("deadline")
            }
            ShedPolicy::CoDel => self
                .codel
                .should_shed(now, sojourn, ov.codel_target, ov.codel_interval)
                .then_some("codel"),
            ShedPolicy::None | ShedPolicy::DropTail => None,
        }
    }

    /// Refuses request `rid` with the cheap 503-style response and
    /// records the outcome so duplicate retransmissions replay it.
    fn reject(
        &mut self,
        now: SimTime,
        dst: NodeId,
        rid: u64,
        sent_at: SimTime,
        reason: &'static str,
        fx: &mut Effects,
    ) {
        self.stats.rejected += 1;
        if self.cfg.reliable {
            self.seen.insert(rid, DupState::Rejected);
        }
        self.req_traces.remove(&rid);
        if simtrace::is_enabled() {
            let t = now.as_nanos();
            simtrace::instant_args(
                "kernel",
                "rejected",
                t,
                &[simtrace::arg("id", rid), simtrace::arg("reason", reason)],
            );
            simtrace::metric_add("kernel", "rejected", t, 1.0);
        }
        // The 503 costs no stack cycles — it goes straight to the NIC,
        // which is the whole point: rejection must stay cheap when the
        // CPUs are the saturated resource.
        let frame = Packet::reject_response(self.node, dst, rid, sent_at);
        self.complete_tx(now, frame, fx);
    }

    // ----- work completion actions ---------------------------------------

    fn complete_work(&mut self, now: SimTime, work: Work, fx: &mut Effects) {
        let enqueued_at = work.enqueued_at;
        match work.kind {
            WorkKind::Isr { queue } => {
                self.stats.isrs += 1;
                self.complete_isr(now, queue as usize, fx);
            }
            WorkKind::SoftIrqRx { frame, queue } => {
                self.stats.softirq_rx += 1;
                let sojourn = now.saturating_since(enqueued_at);
                self.complete_rx(now, &frame, queue as usize, sojourn, fx);
            }
            WorkKind::App { token } => {
                self.stats.app_jobs += 1;
                // Attribution: split this phase into run-queue wait
                // (enqueue → dispatch) and execution (dispatch → done).
                if let Some(state) = self.requests.get_mut(&token) {
                    let started_at = work.started_at;
                    let st = &mut state.stages;
                    st.rq_wait_ns = ns32(
                        u64::from(st.rq_wait_ns)
                            + started_at.as_nanos().saturating_sub(enqueued_at.as_nanos()),
                    );
                    st.cpu_ns = ns32(
                        u64::from(st.cpu_ns) + now.as_nanos().saturating_sub(started_at.as_nanos()),
                    );
                }
                self.advance_request(now, token, fx);
            }
            WorkKind::SoftIrqTx { frame } => {
                self.stats.softirq_tx += 1;
                self.tx_in_queue = self.tx_in_queue.saturating_sub(1);
                self.complete_tx(now, frame, fx);
            }
            WorkKind::PollRx { mut frame, queue } => {
                // Attribution: everything from DMA completion to this
                // instant — ring residency, poll pickup and userspace RX
                // processing — is the `poll_wait` stage. It replaces
                // `moderation + wake + stack` on the bypass path, so the
                // per-request tiling identity still closes.
                {
                    let st = &mut frame.meta_mut().stages;
                    st.poll_wait_ns = ns32(now.as_nanos().saturating_sub(st.dma_done.as_nanos()));
                }
                self.complete_rx(now, &frame, queue as usize, desim::SimDuration::ZERO, fx);
            }
            WorkKind::Overhead => {}
        }
    }

    /// Applies the NCAP flags of a consumed ICR: the IT_HIGH wake marker
    /// and the driver's decision-engine action. On the kernel datapath
    /// this runs in the host ISR; on the offload datapath the on-NIC
    /// engine runs it at interrupt-assert time.
    fn apply_ncap_icr(&mut self, now: SimTime, icr: IcrFlags, fx: &mut Effects) {
        if icr.contains(IcrFlags::IT_HIGH) {
            self.wake_marker_times.push(now);
        }
        if let Some(driver) = self.ncap_driver.as_mut() {
            if icr.contains(IcrFlags::IT_HIGH) || icr.contains(IcrFlags::IT_LOW) {
                let action = driver.handle_interrupt(icr, self.desired_pstate, &self.table);
                self.apply_driver_action(now, action, fx);
            }
        }
    }

    fn complete_isr(&mut self, now: SimTime, queue: usize, fx: &mut Effects) {
        self.isr_pending[queue] = false;
        let icr = self.nic.read_icr(queue);
        if !self.cfg.datapath.offloads_ncap() {
            // Kernel datapath: the host ISR reads the causes and runs the
            // NCAP decision engine. Under offload the on-NIC engine
            // already consumed them at assert time; any flags left here
            // are silently-accumulated IT_RX/IT_TX with no action
            // attached.
            self.apply_ncap_icr(now, icr, fx);
        }
        // NAPI-style drain: one SoftIRQ work item per DMA-completed frame,
        // pinned to the vector's core (RSS keeps a flow's processing
        // local). A TOE-capable NIC absorbs part of the protocol work (§7).
        let sw_cost = self
            .ncap_sw
            .as_ref()
            .map_or(0, |_| ncap::SW_PER_PACKET_CYCLES);
        let stack = (self.cfg.rx_stack_cycles as f64 * self.nic.stack_cycle_factor()) as u64;
        let core = self.irq_core(queue) as u8;
        let ov = self.cfg.overload;
        let mut drained = 0u64;
        let mut shed = 0u64;
        while let Some(mut frame) = self.nic.fetch_rx(queue) {
            drained += 1;
            // Attribution: tile [arrival, drain] into DMA + wake + moderation.
            // The wake share is the overlap of the interrupt's wake window
            // with the frame's residency; the remainder is the moderation /
            // ring hold. Sums are exact by construction.
            {
                let (wake_begin, wake_done) = self.irq_wake[queue];
                let st = &mut frame.meta_mut().stages;
                let arrival = st.arrival.as_nanos();
                let span = now.as_nanos().saturating_sub(arrival);
                let dma = st.dma_done.as_nanos().saturating_sub(arrival).min(span);
                let wake = if wake_done > wake_begin {
                    wake_done
                        .as_nanos()
                        .saturating_sub(wake_begin.max(st.arrival).as_nanos())
                        .min(span - dma)
                } else {
                    0
                };
                st.wake_ns = ns32(wake);
                st.moderation_ns = ns32(span - dma - wake);
            }
            // Per-RSS backlog cap: frames beyond it are tail-dropped at
            // the drain, exactly as if the ring itself had overflowed —
            // clients recover via RTO.
            if ov.shedding()
                && ov
                    .rx_backlog_cap
                    .is_some_and(|cap| self.rx_backlog[queue] >= cap)
            {
                self.stats.backlog_sheds += 1;
                shed += 1;
                continue;
            }
            self.rx_backlog[queue] += 1;
            self.run_queue.push_back(
                Work::cycles(
                    stack + sw_cost,
                    WorkKind::SoftIrqRx {
                        frame,
                        queue: queue as u8,
                    },
                )
                .on_core(core)
                .queued_at(now),
            );
        }
        self.note_queue_depth(now);
        if simtrace::is_enabled() {
            let t = now.as_nanos();
            simtrace::instant_args(
                "kernel",
                "ring_drain",
                t,
                &[
                    simtrace::arg("queue", queue),
                    simtrace::arg("frames", drained),
                ],
            );
            simtrace::metric_add("kernel", "rx_ring_drained", t, drained as f64);
            if shed > 0 {
                simtrace::metric_add("kernel", "backlog_sheds", t, shed as f64);
            }
        }
        self.try_dispatch(now, fx);
    }

    fn complete_rx(
        &mut self,
        now: SimTime,
        frame: &Packet,
        queue: usize,
        sojourn: desim::SimDuration,
        fx: &mut Effects,
    ) {
        self.rx_backlog[queue] = self.rx_backlog[queue].saturating_sub(1);
        if let Some(sw) = self.ncap_sw.as_mut() {
            sw.on_rx_packet(frame);
        }
        let Some(rid) = frame.meta().request_id else {
            return;
        };
        if self.cfg.reliable {
            match self.seen.get(&rid) {
                // The original is still being processed: drop the
                // retransmitted duplicate without any application work —
                // a retransmission must not double-serve a request (or
                // spuriously re-trigger NCAP's request machinery in
                // software).
                Some(DupState::InFlight) => {
                    self.stats.dup_suppressed += 1;
                    self.req_traces.remove(&rid);
                    if simtrace::is_enabled() {
                        let t = now.as_nanos();
                        simtrace::instant_args(
                            "kernel",
                            "dup_suppressed",
                            t,
                            &[simtrace::arg("id", rid)],
                        );
                        simtrace::metric_add("kernel", "dup_suppressed", t, 1.0);
                    }
                    return;
                }
                // Already answered: the response (or its tail) was lost —
                // replay it without re-running the application.
                Some(&DupState::Done {
                    response_bytes,
                    stages,
                }) => {
                    self.stats.resp_replays += 1;
                    self.req_traces.remove(&rid);
                    if simtrace::is_enabled() {
                        let t = now.as_nanos();
                        simtrace::instant_args(
                            "kernel",
                            "resp_replay",
                            t,
                            &[simtrace::arg("id", rid)],
                        );
                        simtrace::metric_add("kernel", "resp_replays", t, 1.0);
                    }
                    // Charge the gap since the original (or previous replay)
                    // response to `replay_ns` so the record still tiles the
                    // latency the client finally observes.
                    let mut st = stages;
                    st.replay_ns = ns32(
                        u64::from(st.replay_ns)
                            + now.as_nanos().saturating_sub(st.app_done.as_nanos()),
                    );
                    st.app_done = now;
                    self.seen.insert(
                        rid,
                        DupState::Done {
                            response_bytes,
                            stages: st,
                        },
                    );
                    self.emit_response(
                        now,
                        Response {
                            dst: frame.src(),
                            request_id: rid,
                            bytes: response_bytes,
                            sent_at: frame.meta().sent_at,
                            stages: st,
                        },
                        fx,
                    );
                    return;
                }
                // Already rejected: replay the 503 — never re-admit, even
                // if capacity has since freed up, so the client's view of
                // this request stays consistent.
                Some(DupState::Rejected) => {
                    self.stats.reject_replays += 1;
                    self.req_traces.remove(&rid);
                    if simtrace::is_enabled() {
                        let t = now.as_nanos();
                        simtrace::instant_args(
                            "kernel",
                            "reject_replay",
                            t,
                            &[simtrace::arg("id", rid)],
                        );
                        simtrace::metric_add("kernel", "reject_replays", t, 1.0);
                    }
                    let nack =
                        Packet::reject_response(self.node, frame.src(), rid, frame.meta().sent_at);
                    self.complete_tx(now, nack, fx);
                    return;
                }
                None => {}
            }
        }
        let info = RequestInfo {
            id: rid,
            src: frame.src(),
            sent_at: frame.meta().sent_at,
            payload: frame.payload_bytes(),
        };
        let Some(mut plan) = self.app.plan(now, &info) else {
            self.req_traces.remove(&rid);
            return;
        };
        if self.cfg.datapath.bypasses_kernel() {
            // Zero-copy service loop: the request payload is handed to
            // the application straight out of the userspace ring, so
            // the serving loop skips the socket-API copies and syscall
            // crossings the kernel-path app cycle budget includes.
            let keep = u64::from(self.cfg.bypass.app_cycle_permille);
            for phase in &mut plan.phases {
                if let AppPhase::Cpu { cycles } = phase {
                    *cycles = *cycles * keep / 1_000;
                }
            }
        }
        // Admission control: shed the request *before* it consumes any
        // application resources. The rejection is observable (503), so
        // clients distinguish it from loss.
        if let Some(reason) = self.admission_sheds(now, &frame.meta(), sojourn) {
            self.reject(now, info.src, rid, info.sent_at, reason, fx);
            return;
        }
        if self.cfg.reliable {
            self.seen.insert(rid, DupState::InFlight);
        }
        if let Some(tr) = self.req_traces.get_mut(&rid) {
            tr.stack_done = now;
        }
        let token = self.next_token;
        self.next_token += 1;
        let mut stages = frame.meta().stages;
        stages.stack_ns = ns32(sojourn.as_nanos());
        self.requests.insert(
            token,
            ReqState {
                info,
                phases: plan.phases.into(),
                response_bytes: plan.response_bytes,
                stages,
            },
        );
        self.advance_request(now, token, fx);
    }

    fn advance_request(&mut self, now: SimTime, token: u64, fx: &mut Effects) {
        let Some(state) = self.requests.get_mut(&token) else {
            return;
        };
        match state.phases.pop_front() {
            Some(AppPhase::Cpu { cycles }) => {
                // A request needing CPU while admission is saturated is
                // aborted with the same 503 a fresh arrival would get —
                // keeping it would let in-flight work breach the queue
                // bound. (The first CPU phase never trips this: admission
                // just verified the queue has room.)
                if self.run_queue_full() {
                    let state = self.requests.remove(&token).expect("fetched above");
                    self.reject(
                        now,
                        state.info.src,
                        state.info.id,
                        state.info.sent_at,
                        "queue-full",
                        fx,
                    );
                    return;
                }
                self.run_queue
                    .push_back(Work::cycles(cycles, WorkKind::App { token }).queued_at(now));
                self.note_queue_depth(now);
                self.try_dispatch(now, fx);
            }
            Some(AppPhase::Io { wait }) => {
                if let Some(tr) = self.req_traces.get_mut(&state.info.id) {
                    tr.io_wait += wait;
                }
                state.stages.io_ns = ns32(u64::from(state.stages.io_ns) + wait.as_nanos());
                fx.at(now + wait, NodeEvent::IoDone { token });
            }
            None => {
                let state = self.requests.remove(&token).expect("present above");
                self.completed_responses += 1;
                if let Some(tr) = self.req_traces.get_mut(&state.info.id) {
                    tr.app_done = now;
                }
                let mut stages = state.stages;
                stages.app_done = now;
                if self.cfg.reliable {
                    self.seen.insert(
                        state.info.id,
                        DupState::Done {
                            response_bytes: state.response_bytes,
                            stages,
                        },
                    );
                }
                self.emit_response(
                    now,
                    Response {
                        dst: state.info.src,
                        request_id: state.info.id,
                        bytes: state.response_bytes,
                        sent_at: state.info.sent_at,
                        stages,
                    },
                    fx,
                );
            }
        }
    }

    /// Segments a response body of `response.bytes` into TX stack work.
    /// Shared by first-time completion and reliability-layer replays.
    fn emit_response(&mut self, now: SimTime, response: Response, fx: &mut Effects) {
        let Response {
            dst,
            request_id,
            bytes,
            sent_at,
            stages,
        } = response;
        let body = Bytes::from(vec![0u8; bytes]);
        let mut frames = segment_response(self.node, dst, request_id, body, sent_at);
        // The attribution record rides the final frame — the one whose
        // arrival completes the request at the client.
        if let Some(last) = frames.last_mut() {
            last.meta_mut().stages = stages;
        }
        let sw_cost = self.ncap_sw.as_ref().map_or(0, |_| ncap::SW_PER_TX_CYCLES);
        let stack = (self.cfg.tx_stack_cycles as f64 * self.nic.stack_cycle_factor()) as u64;
        let ov = self.cfg.overload;
        for frame in frames {
            // Departures have their own allowance; past it the frame is
            // dropped and the client's retransmission triggers a replay.
            if ov.shedding() && ov.tx_backlog_cap.is_some_and(|cap| self.tx_in_queue >= cap) {
                self.stats.tx_sheds += 1;
                if simtrace::is_enabled() {
                    simtrace::metric_add("kernel", "tx_sheds", now.as_nanos(), 1.0);
                }
                continue;
            }
            self.tx_in_queue += 1;
            if self.cfg.datapath.bypasses_kernel() {
                // Doorbell-free userspace TX: a poll core writes the
                // descriptor directly — no softirq hop, no core-0 pin.
                self.poll_queue.push(
                    Work::cycles(
                        self.cfg.bypass.poll_tx_cycles,
                        WorkKind::SoftIrqTx { frame },
                    )
                    .queued_at(now),
                );
            } else {
                self.run_queue.push_back(
                    Work::cycles(stack + sw_cost, WorkKind::SoftIrqTx { frame })
                        .on_core(0)
                        .queued_at(now),
                );
            }
        }
        if self.cfg.datapath.bypasses_kernel() {
            self.try_dispatch_poll(now, fx);
        } else {
            self.note_queue_depth(now);
            self.try_dispatch(now, fx);
        }
    }

    fn complete_tx(&mut self, now: SimTime, frame: Packet, fx: &mut Effects) {
        if let Some(sw) = self.ncap_sw.as_mut() {
            sw.on_tx_packet(frame.wire_len());
        }
        match self.nic.enqueue_tx(now, &frame) {
            Some(out) => fx.at(out.ready_at, NodeEvent::TxWire { frame }),
            None => {
                let ov = &self.cfg.overload;
                if ov.shedding()
                    && ov
                        .tx_backlog_cap
                        .is_some_and(|cap| self.tx_backlog.len() >= cap)
                {
                    self.stats.tx_sheds += 1;
                    if simtrace::is_enabled() {
                        simtrace::metric_add("kernel", "tx_sheds", now.as_nanos(), 1.0);
                    }
                } else {
                    self.tx_backlog.push_back(frame);
                }
            }
        }
    }

    fn on_tx_wire(&mut self, now: SimTime, mut frame: Packet, fx: &mut Effects) {
        self.nic.tx_done(now, frame.wire_len());
        if frame.meta().is_final {
            if let Some(id) = frame.meta().request_id {
                if let Some(mut tr) = self.req_traces.remove(&id) {
                    tr.last_tx = now;
                    self.finished_traces.push(tr);
                }
                if !frame.meta().rejected {
                    // Attribution: TX stack + NIC serialization, app-done
                    // to wire departure of the completing frame.
                    let st = &mut frame.meta_mut().stages;
                    st.tx_ns = ns32(now.as_nanos().saturating_sub(st.app_done.as_nanos()));
                    st.last_tx = now;
                }
            }
        }
        fx.transmit.push(frame);
        while let Some(front) = self.tx_backlog.front() {
            match self.nic.enqueue_tx(now, front) {
                Some(out) => {
                    let frame = self.tx_backlog.pop_front().expect("front exists");
                    fx.at(out.ready_at, NodeEvent::TxWire { frame });
                }
                None => break,
            }
        }
    }

    // ----- power management ----------------------------------------------

    fn on_governor_tick(&mut self, now: SimTime, fx: &mut Effects) {
        let Some(period) = self.cpufreq.period() else {
            return;
        };
        fx.at(now + period, NodeEvent::GovernorTick);
        if now < self.ondemand_suspended_until {
            return; // NCAP suspended the governor for one period
        }
        let elapsed = now.saturating_since(self.last_gov_sample);
        if elapsed.is_zero() {
            return;
        }
        self.last_gov_sample = now;
        let mut util: f64 = 0.0;
        for ci in 0..self.cores.len() {
            self.cores[ci].sync(now);
            let busy = self.cores[ci].busy_time();
            let delta = busy.saturating_sub(self.last_busy[ci]);
            self.last_busy[ci] = busy;
            if ci < self.poll_core_count() {
                // Busy-poll cores are outside governance: their spin must
                // not drag the application cores' frequency up.
                continue;
            }
            util = util.max(delta.as_secs_f64() / elapsed.as_secs_f64());
        }
        self.stats.governor_ticks += 1;
        let target = self
            .cpufreq
            .target(now, util.min(1.0), self.desired_pstate, &self.table);
        if target != self.desired_pstate {
            self.desired_pstate = target;
            self.apply_pstates(now, fx);
        }
        // Synthetic overhead respects the admission cap too — the queue
        // bound must hold for every producer; the governor's decision was
        // already applied above, only its cycle cost is skipped.
        if !self.run_queue_full() {
            self.run_queue.push_back(
                Work::cycles(self.cfg.governor_tick_cycles, WorkKind::Overhead)
                    .on_core(self.overhead_core())
                    .queued_at(now),
            );
            self.note_queue_depth(now);
        }
        self.try_dispatch(now, fx);
    }

    /// The core housekeeping timer work (governor ticks, `ncap.sw`) runs
    /// on: core 0, or the first non-poll core on the bypass datapath —
    /// busy-poll cores do nothing but poll.
    fn overhead_core(&self) -> u8 {
        self.poll_core_count() as u8
    }

    fn on_sw_timer(&mut self, now: SimTime, fx: &mut Effects) {
        let Some(sw) = self.ncap_sw.as_mut() else {
            return;
        };
        fx.at(now + sw.timer_period(), NodeEvent::NcapSwTimer);
        let (cycles, action) = sw.on_timer(now, self.desired_pstate, &self.table);
        if action.set_pstate == Some(self.table.fastest()) {
            self.wake_marker_times.push(now);
        }
        if !self.run_queue_full() {
            self.run_queue.push_back(
                Work::cycles(cycles, WorkKind::Overhead)
                    .on_core(self.overhead_core())
                    .queued_at(now),
            );
            self.note_queue_depth(now);
        }
        if !action.is_noop() {
            self.apply_driver_action(now, action, fx);
        }
        self.try_dispatch(now, fx);
    }

    fn apply_driver_action(&mut self, now: SimTime, action: DriverAction, fx: &mut Effects) {
        // The burst guard must be in place before the boost is applied so
        // the per-core filter in apply_pstates sees it.
        if action.disable_menu {
            self.menu_disabled = true;
        }
        if let Some(p) = action.set_pstate {
            self.desired_pstate = p;
            self.apply_pstates(now, fx);
        }
        if action.disable_menu {
            // Proactively wake the packet-processing core — the paper's
            // "necessary processor cores" (§4): core 0 is on the critical
            // RX path; the scheduler wakes further cores on demand as the
            // burst's work fans out.
            if matches!(self.cores[0].state_kind(), CoreStateKind::Asleep(_)) {
                self.wake_core(now, 0, fx);
            }
        }
        if action.enable_menu {
            self.menu_disabled = false;
            for ci in 0..self.cores.len() {
                if self.cores[ci].is_idle() {
                    self.idle_enter(now, ci);
                }
            }
        }
        if let Some(d) = action.suspend_ondemand {
            let until = now + d;
            if until > self.ondemand_suspended_until {
                self.ondemand_suspended_until = until;
            }
        }
    }

    fn apply_pstates(&mut self, now: SimTime, fx: &mut Effects) {
        for ci in 0..self.cores.len() {
            if ci < self.poll_core_count() {
                continue; // busy-poll cores stay pinned at max P-state
            }
            if !matches!(self.cores[ci].state_kind(), CoreStateKind::Active) {
                continue; // sleeping cores pick up the goal on wake
            }
            if self.cores[ci].goal_pstate() == self.desired_pstate {
                continue;
            }
            // §7 per-core boost: during a burst, raising applies only to
            // the packet-processing core here; other cores are raised on
            // their first dispatch. Descents still apply chip-wide.
            if self.cfg.per_core_boost
                && self.menu_disabled
                && ci != 0
                && self.cores[ci].goal_pstate() > self.desired_pstate
                && !self.cores[ci].has_job()
            {
                continue;
            }
            if self.cores[ci].set_pstate(now, self.desired_pstate).is_ok()
                && self.cores[ci].has_job()
            {
                let eta = self.cores[ci]
                    .job_eta(now)
                    .expect("core has a job in flight");
                let gen = self.job_slots[ci].arm(eta);
                fx.at(
                    eta,
                    NodeEvent::JobDone {
                        core: ci as u8,
                        gen,
                    },
                );
            }
        }
        self.writeback_freq_status();
    }

    fn writeback_freq_status(&mut self) {
        let (at_max, at_min) = EnhancedDriver::freq_status(self.desired_pstate, &self.table);
        self.nic.note_freq_status(at_max, at_min);
        if let Some(sw) = self.ncap_sw.as_mut() {
            sw.note_freq_status(at_max, at_min);
        }
    }

    // ----- introspection ---------------------------------------------------

    /// Flushes energy accounting up to `now` on all cores and the uncore.
    pub fn finalize(&mut self, now: SimTime) {
        self.sync_uncore(now);
        for c in &mut self.cores {
            c.sync(now);
        }
    }

    /// The package/uncore energy meter (mode [`PowerMode::Uncore`]).
    #[must_use]
    pub fn uncore_energy(&self) -> &EnergyMeter {
        &self.uncore
    }

    /// This node's id.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The cores (energy meters, busy time, states).
    #[must_use]
    pub fn cores(&self) -> &[Core] {
        &self.cores
    }

    /// The NIC (counters, NCAP block).
    #[must_use]
    pub fn nic(&self) -> &Nic {
        &self.nic
    }

    /// The P-state table.
    #[must_use]
    pub fn table(&self) -> &PStateTable {
        &self.table
    }

    /// The chip-wide P-state goal.
    #[must_use]
    pub fn desired_pstate(&self) -> cpusim::PStateId {
        self.desired_pstate
    }

    /// Responses fully generated so far.
    #[must_use]
    pub fn completed_responses(&self) -> u64 {
        self.completed_responses
    }

    /// Requests currently in flight inside the application.
    #[must_use]
    pub fn inflight_requests(&self) -> usize {
        self.requests.len()
    }

    /// Pending run-queue depth (diagnostics).
    #[must_use]
    pub fn run_queue_depth(&self) -> usize {
        self.run_queue.len()
    }

    /// High-water mark of the run-queue depth over the whole run — the
    /// memory proxy overload tests bound against the configured capacity.
    #[must_use]
    pub fn max_run_queue_depth(&self) -> usize {
        self.max_run_queue
    }

    /// RX-softirq items currently queued, per NIC queue.
    #[must_use]
    pub fn rx_backlogs(&self) -> &[usize] {
        &self.rx_backlog
    }

    /// TX stack work items currently in the run queue.
    #[must_use]
    pub fn tx_queue_depth(&self) -> usize {
        self.tx_in_queue
    }

    /// Frames parked in the NIC-level TX backlog.
    #[must_use]
    pub fn tx_backlog_depth(&self) -> usize {
        self.tx_backlog.len()
    }

    /// The overload-protection configuration this kernel runs under.
    #[must_use]
    pub fn overload_config(&self) -> &crate::config::OverloadConfig {
        &self.cfg.overload
    }

    /// Instants at which NCAP posted proactive wake/boost interrupts —
    /// the `INT (wake)` markers of Figures 8/9.
    #[must_use]
    pub fn wake_marker_times(&self) -> &[SimTime] {
        &self.wake_marker_times
    }

    /// Whether the menu governor is currently disabled by NCAP.
    #[must_use]
    pub fn menu_disabled(&self) -> bool {
        self.menu_disabled
    }

    /// Completed stage-level request traces (sampled per
    /// [`KernelConfig::trace_requests_every`]).
    #[must_use]
    pub fn request_traces(&self) -> &[RequestTrace] {
        &self.finished_traces
    }

    /// Operational counters (ISRs, SoftIRQs, wakes, governor ticks).
    #[must_use]
    pub fn stats(&self) -> KernelStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{AppPhase, AppPlan};
    use crate::config::KernelConfig;
    use desim::SimDuration;
    use governors::{Menu, Ondemand, Performance, PollIdle};
    use netsim::http::HttpRequest;
    use netsim::Bytes;
    use nicsim::NicConfig;

    /// A scripted application: fixed CPU cost, fixed response size.
    struct StubApp {
        cycles: u64,
        response: usize,
        io: Option<SimDuration>,
    }

    impl ServerApp for StubApp {
        fn plan(&mut self, _now: SimTime, req: &RequestInfo) -> Option<AppPlan> {
            if !req.payload.starts_with(b"GET ") {
                return None;
            }
            let mut phases = vec![AppPhase::Cpu {
                cycles: self.cycles,
            }];
            if let Some(wait) = self.io {
                phases.push(AppPhase::Io { wait });
                phases.push(AppPhase::Cpu {
                    cycles: self.cycles,
                });
            }
            Some(AppPlan {
                phases,
                response_bytes: self.response,
            })
        }

        fn name(&self) -> &'static str {
            "stub"
        }
    }

    fn stub_kernel(io: Option<SimDuration>) -> Kernel {
        Kernel::new(
            KernelConfig::server_defaults().with_initial_pstate(cpusim::PStateId(0)),
            NodeId(0),
            Nic::new(NicConfig::i82574_like()),
            Box::new(Performance),
            Box::new(PollIdle),
            Box::new(StubApp {
                cycles: 50_000,
                response: 4_000,
                io,
            }),
        )
    }

    /// Drives a kernel to quiescence, collecting transmitted frames.
    pub(super) fn drain(kernel: &mut Kernel, mut fx: Effects, horizon: SimTime) -> Vec<Packet> {
        let mut queue: desim::EventQueue<NodeEvent> = desim::EventQueue::new();
        let mut out = Vec::new();
        for (t, e) in fx.schedule.drain(..) {
            queue.push(t, e);
        }
        out.extend(fx.transmit);
        while let Some(t) = queue.peek_time() {
            if t > horizon {
                break;
            }
            let (t, e) = queue.pop().expect("peeked");
            let mut fx = kernel.handle(t, e);
            for (te, e) in fx.schedule.drain(..) {
                queue.push(te, e);
            }
            out.extend(fx.transmit);
        }
        out
    }

    pub(super) fn get_frame(id: u64) -> Packet {
        Packet::request(
            NodeId(1),
            NodeId(0),
            id,
            HttpRequest::get("/x").to_payload(),
        )
        .sent_at(SimTime::from_us(1))
    }

    #[test]
    fn request_produces_segmented_response() {
        let mut k = stub_kernel(None);
        let fx = k.init(SimTime::ZERO);
        let mut queue_fx = fx;
        queue_fx
            .schedule
            .push((SimTime::from_us(10), NodeEvent::FrameFromWire(get_frame(7))));
        let frames = drain(&mut k, queue_fx, SimTime::from_ms(5));
        // 4000 B response = 3 MSS frames, same request id, final marked.
        assert_eq!(frames.len(), 3, "got {} frames", frames.len());
        assert!(frames.iter().all(|f| f.meta().request_id == Some(7)));
        assert_eq!(frames.iter().filter(|f| f.meta().is_final).count(), 1);
        assert_eq!(k.completed_responses(), 1);
        assert_eq!(k.inflight_requests(), 0);
    }

    #[test]
    fn io_phase_releases_the_core() {
        let mut k = stub_kernel(Some(SimDuration::from_us(500)));
        let mut fx = k.init(SimTime::ZERO);
        fx.schedule
            .push((SimTime::from_us(10), NodeEvent::FrameFromWire(get_frame(1))));
        let frames = drain(&mut k, fx, SimTime::from_ms(5));
        assert_eq!(frames.len(), 3);
        // Busy time must be far below elapsed: the disk wait ran with the
        // core released (2 × 50 K cycles at 3.1 GHz ≈ 32 us of CPU).
        k.finalize(SimTime::from_ms(5));
        let busy: SimDuration = k.cores().iter().map(cpusim::Core::busy_time).sum();
        assert!(
            busy < SimDuration::from_us(200),
            "busy {busy} should exclude the IO wait"
        );
    }

    #[test]
    fn non_request_payloads_are_dropped_by_the_app() {
        let mut k = stub_kernel(None);
        let mut fx = k.init(SimTime::ZERO);
        let bulk = Packet::new(
            NodeId(1),
            NodeId(0),
            0,
            Bytes::from(vec![0xEE; 800]),
            netsim::PacketMeta {
                request_id: Some(9),
                sent_at: SimTime::ZERO,
                seq: 0,
                is_final: true,
                ..netsim::PacketMeta::default()
            },
        );
        fx.schedule
            .push((SimTime::from_us(10), NodeEvent::FrameFromWire(bulk)));
        let frames = drain(&mut k, fx, SimTime::from_ms(2));
        assert!(frames.is_empty());
        assert_eq!(k.completed_responses(), 0);
    }

    #[test]
    fn menu_kernel_sleeps_idle_cores_and_wakes_for_work() {
        let mut k = Kernel::new(
            KernelConfig::server_defaults().with_initial_pstate(cpusim::PStateId(0)),
            NodeId(0),
            Nic::new(NicConfig::i82574_like()),
            Box::new(Performance),
            Box::new(Menu::new(4)),
            Box::new(StubApp {
                cycles: 50_000,
                response: 1_000,
                io: None,
            }),
        );
        let mut fx = k.init(SimTime::ZERO);
        fx.schedule
            .push((SimTime::from_ms(2), NodeEvent::FrameFromWire(get_frame(1))));
        let frames = drain(&mut k, fx, SimTime::from_ms(4));
        assert_eq!(frames.len(), 1);
        // Cores slept at boot (fresh menu predicts a long idle).
        let entries: u32 = k
            .cores()
            .iter()
            .map(|c| {
                c.sleep_entries(cpusim::CState::C1)
                    + c.sleep_entries(cpusim::CState::C3)
                    + c.sleep_entries(cpusim::CState::C6)
            })
            .sum();
        assert!(entries > 0, "idle cores must have entered sleep states");
    }

    #[test]
    fn ondemand_kernel_raises_frequency_under_load() {
        let table = PStateTable::i7_like();
        let mut k = Kernel::new(
            KernelConfig::server_defaults(), // boots at the deepest state
            NodeId(0),
            Nic::new(NicConfig::i82574_like()),
            Box::new(Ondemand::new()),
            Box::new(PollIdle),
            Box::new(StubApp {
                cycles: 3_000_000, // heavy requests keep cores busy
                response: 1_000,
                io: None,
            }),
        );
        assert_eq!(k.desired_pstate(), table.deepest());
        let mut fx = k.init(SimTime::ZERO);
        // A stream of heavy requests across the first 50 ms.
        for i in 0..200u64 {
            fx.schedule.push((
                SimTime::from_us(100 + i * 200),
                NodeEvent::FrameFromWire(get_frame(i)),
            ));
        }
        let _ = drain(&mut k, fx, SimTime::from_ms(50));
        assert!(
            k.desired_pstate() < table.deepest(),
            "ondemand must have raised the frequency, still at {}",
            k.desired_pstate()
        );
    }

    #[test]
    fn stats_count_kernel_activity() {
        let mut k = stub_kernel(None);
        let mut fx = k.init(SimTime::ZERO);
        fx.schedule
            .push((SimTime::from_us(10), NodeEvent::FrameFromWire(get_frame(1))));
        let _ = drain(&mut k, fx, SimTime::from_ms(5));
        let s = k.stats();
        assert!(s.isrs >= 1, "{s:?}");
        assert_eq!(s.softirq_rx, 1, "{s:?}");
        assert_eq!(s.softirq_tx, 3, "one per response frame: {s:?}");
        assert_eq!(s.app_jobs, 1, "{s:?}");
    }

    #[test]
    fn reliable_kernel_suppresses_inflight_duplicates() {
        let mut k = Kernel::new(
            KernelConfig::server_defaults()
                .with_initial_pstate(cpusim::PStateId(0))
                .with_reliability(),
            NodeId(0),
            Nic::new(NicConfig::i82574_like()),
            Box::new(Performance),
            Box::new(PollIdle),
            Box::new(StubApp {
                cycles: 50_000,
                response: 4_000,
                io: Some(SimDuration::from_ms(1)),
            }),
        );
        let mut fx = k.init(SimTime::ZERO);
        // The duplicate lands while the original is still in its IO
        // phase: it must be dropped without a second app job.
        fx.schedule
            .push((SimTime::from_us(10), NodeEvent::FrameFromWire(get_frame(7))));
        fx.schedule.push((
            SimTime::from_us(600),
            NodeEvent::FrameFromWire(get_frame(7)),
        ));
        let frames = drain(&mut k, fx, SimTime::from_ms(10));
        assert_eq!(frames.len(), 3, "one 3-frame response, not two");
        assert_eq!(k.completed_responses(), 1);
        let s = k.stats();
        assert_eq!(s.dup_suppressed, 1, "{s:?}");
        assert_eq!(s.resp_replays, 0, "{s:?}");
        assert_eq!(s.app_jobs, 2, "two CPU phases of ONE request: {s:?}");
    }

    #[test]
    fn reliable_kernel_replays_completed_responses() {
        let mut k = Kernel::new(
            KernelConfig::server_defaults()
                .with_initial_pstate(cpusim::PStateId(0))
                .with_reliability(),
            NodeId(0),
            Nic::new(NicConfig::i82574_like()),
            Box::new(Performance),
            Box::new(PollIdle),
            Box::new(StubApp {
                cycles: 50_000,
                response: 4_000,
                io: None,
            }),
        );
        let mut fx = k.init(SimTime::ZERO);
        fx.schedule
            .push((SimTime::from_us(10), NodeEvent::FrameFromWire(get_frame(7))));
        // Retransmit long after the response went out (it was "lost").
        fx.schedule
            .push((SimTime::from_ms(5), NodeEvent::FrameFromWire(get_frame(7))));
        let frames = drain(&mut k, fx, SimTime::from_ms(10));
        assert_eq!(frames.len(), 6, "original + replayed response");
        assert_eq!(
            k.completed_responses(),
            1,
            "a replay is not a new completion"
        );
        let s = k.stats();
        assert_eq!(s.resp_replays, 1, "{s:?}");
        assert_eq!(s.app_jobs, 1, "replay must not re-run the app: {s:?}");
        // Replayed frames carry the same sequence numbers for dedup.
        let seqs: Vec<u32> = frames.iter().map(|f| f.meta().seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn unreliable_kernel_serves_duplicates_twice() {
        let mut k = stub_kernel(None);
        let mut fx = k.init(SimTime::ZERO);
        fx.schedule
            .push((SimTime::from_us(10), NodeEvent::FrameFromWire(get_frame(7))));
        fx.schedule
            .push((SimTime::from_ms(5), NodeEvent::FrameFromWire(get_frame(7))));
        let frames = drain(&mut k, fx, SimTime::from_ms(10));
        // Without the reliability layer the old behavior is preserved.
        assert_eq!(frames.len(), 6);
        assert_eq!(k.completed_responses(), 2);
        assert_eq!(k.stats().dup_suppressed, 0);
    }

    #[test]
    fn debug_output_is_informative() {
        let k = stub_kernel(None);
        let dbg = format!("{k:?}");
        assert!(dbg.contains("performance"));
        assert!(dbg.contains("stub"));
    }
}

#[cfg(test)]
mod overload_tests {
    use super::tests::{drain, get_frame};
    use super::*;
    use crate::app::AppPlan;
    use crate::config::{KernelConfig, OverloadConfig, ShedPolicy};
    use desim::SimDuration;
    use governors::{Menu, Performance, PollIdle};
    use nicsim::{Nic, NicConfig};

    /// An application whose requests park in IO before any CPU phase, so
    /// admitted requests occupy neither a core nor the run queue — the
    /// only queue pressure is the RX softirq backlog itself, which makes
    /// admission outcomes exactly predictable.
    struct IoFirstApp;
    impl ServerApp for IoFirstApp {
        fn plan(&mut self, _now: SimTime, _req: &RequestInfo) -> Option<AppPlan> {
            Some(AppPlan {
                phases: vec![
                    AppPhase::Io {
                        wait: SimDuration::from_ms(1),
                    },
                    AppPhase::Cpu { cycles: 1_000 },
                ],
                response_bytes: 500,
            })
        }
        fn name(&self) -> &'static str {
            "io-first"
        }
    }

    fn shed_kernel(ov: OverloadConfig, reliable: bool, menu: bool) -> Kernel {
        let mut cfg = KernelConfig::server_defaults()
            .with_initial_pstate(cpusim::PStateId(0))
            .with_overload(ov);
        if reliable {
            cfg = cfg.with_reliability();
        }
        let cpuidle: Box<dyn governors::CpuidleGovernor + Send> = if menu {
            Box::new(Menu::new(4))
        } else {
            Box::new(PollIdle)
        };
        Kernel::new(
            cfg,
            NodeId(0),
            Nic::new(NicConfig::i82574_like()),
            Box::new(Performance),
            cpuidle,
            Box::new(IoFirstApp),
        )
    }

    fn burst(fx: &mut Effects, at: SimTime, ids: &[u64]) {
        for &id in ids {
            fx.schedule
                .push((at, NodeEvent::FrameFromWire(get_frame(id))));
        }
    }

    #[test]
    fn batch_exactly_at_capacity_is_fully_admitted() {
        let ov = OverloadConfig::off()
            .with_run_queue_cap(8)
            .with_policy(ShedPolicy::DropTail);
        let mut k = shed_kernel(ov, false, false);
        let mut fx = k.init(SimTime::ZERO);
        let ids: Vec<u64> = (1..=8).collect();
        burst(&mut fx, SimTime::from_us(10), &ids);
        let frames = drain(&mut k, fx, SimTime::from_ms(5));
        let s = k.stats();
        assert_eq!(s.rejected, 0, "exactly-at-capacity must admit: {s:?}");
        assert_eq!(k.completed_responses(), 8);
        assert!(frames.iter().all(|f| !f.meta().rejected));
    }

    #[test]
    fn one_past_capacity_sheds_exactly_one_with_a_503() {
        // All three caps set so the total memory bound is defined.
        let ov = OverloadConfig {
            rx_backlog_cap: Some(256),
            tx_backlog_cap: Some(4096),
            ..OverloadConfig::off()
                .with_run_queue_cap(8)
                .with_policy(ShedPolicy::DropTail)
        };
        let mut k = shed_kernel(ov, false, false);
        let mut fx = k.init(SimTime::ZERO);
        let ids: Vec<u64> = (1..=9).collect();
        burst(&mut fx, SimTime::from_us(10), &ids);
        let frames = drain(&mut k, fx, SimTime::from_ms(5));
        let s = k.stats();
        assert_eq!(s.rejected, 1, "{s:?}");
        assert_eq!(k.completed_responses(), 8);
        let rejects: Vec<_> = frames.iter().filter(|f| f.meta().rejected).collect();
        assert_eq!(rejects.len(), 1);
        assert!(rejects[0].meta().is_final);
        assert_eq!(rejects[0].leading_bytes(), Some(*b"50"));
        // The memory proxy respects the configured bound.
        assert!(
            Some(k.max_run_queue_depth()) <= ov.queue_bound(k.nic().queue_count()),
            "depth {} over bound {:?}",
            k.max_run_queue_depth(),
            ov.queue_bound(k.nic().queue_count())
        );
    }

    #[test]
    fn rejection_works_through_a_c_state_wake() {
        // Cores are asleep under the menu governor when the burst lands:
        // the IRQ starts a C-state wake, a second frame arrives mid-wake,
        // and both requests are shed once the woken core drains the ring —
        // the 503 path must work identically from a cold core.
        let ov = OverloadConfig::off()
            .with_run_queue_cap(0)
            .with_policy(ShedPolicy::DropTail);
        let mut k = shed_kernel(ov, false, true);
        let mut fx = k.init(SimTime::ZERO);
        fx.schedule
            .push((SimTime::from_ms(2), NodeEvent::FrameFromWire(get_frame(1))));
        // mwait_wake_overhead is 25 us: this frame arrives mid-wake.
        fx.schedule.push((
            SimTime::from_ms(2) + SimDuration::from_us(5),
            NodeEvent::FrameFromWire(get_frame(2)),
        ));
        let frames = drain(&mut k, fx, SimTime::from_ms(6));
        let s = k.stats();
        assert!(s.core_wakes >= 1, "the burst must wake a core: {s:?}");
        assert_eq!(s.rejected, 2, "{s:?}");
        assert_eq!(s.app_jobs, 0, "{s:?}");
        assert_eq!(k.completed_responses(), 0);
        assert_eq!(frames.iter().filter(|f| f.meta().rejected).count(), 2);
        assert_eq!(k.run_queue_depth(), 0, "the queue must drain");
    }

    #[test]
    fn duplicate_of_rejected_request_replays_the_503() {
        // The victim leads a burst one past capacity, so admission sheds
        // it while the two fillers behind it are admitted. When the
        // client retransmits the victim later — into a now-empty queue —
        // the kernel must replay the 503, not re-admit the request.
        let ov = OverloadConfig::off()
            .with_run_queue_cap(2)
            .with_policy(ShedPolicy::DropTail);
        let mut k = shed_kernel(ov, true, false);
        let mut fx = k.init(SimTime::ZERO);
        burst(&mut fx, SimTime::from_us(10), &[99, 1, 2]);
        fx.schedule
            .push((SimTime::from_ms(3), NodeEvent::FrameFromWire(get_frame(99))));
        let frames = drain(&mut k, fx, SimTime::from_ms(6));
        let s = k.stats();
        assert_eq!(s.rejected, 1, "{s:?}");
        assert_eq!(s.reject_replays, 1, "retransmit must replay: {s:?}");
        assert_eq!(s.dup_suppressed, 0, "{s:?}");
        assert_eq!(k.completed_responses(), 2, "both fillers complete");
        assert_eq!(s.app_jobs, 2, "the victim never ran: {s:?}");
        assert_eq!(frames.iter().filter(|f| f.meta().rejected).count(), 2);
    }

    #[test]
    fn zero_deadline_requests_are_always_shed() {
        let ov = OverloadConfig::off().with_policy(ShedPolicy::Deadline);
        let mut k = shed_kernel(ov, false, false);
        let mut fx = k.init(SimTime::ZERO);
        // Any queueing delay exceeds a zero budget.
        fx.schedule.push((
            SimTime::from_us(10),
            NodeEvent::FrameFromWire(get_frame(1).with_deadline(SimDuration::ZERO)),
        ));
        // An unstamped request (no default deadline either) is exempt.
        fx.schedule.push((
            SimTime::from_us(200),
            NodeEvent::FrameFromWire(get_frame(2)),
        ));
        let frames = drain(&mut k, fx, SimTime::from_ms(5));
        let s = k.stats();
        assert_eq!(s.rejected, 1, "{s:?}");
        assert_eq!(k.completed_responses(), 1);
        let rejected: Vec<_> = frames.iter().filter(|f| f.meta().rejected).collect();
        assert_eq!(rejected.len(), 1);
        assert_eq!(rejected[0].meta().request_id, Some(1));
    }

    #[test]
    fn expired_deadlines_shed_under_the_deadline_policy() {
        let ov = OverloadConfig::off()
            .with_policy(ShedPolicy::Deadline)
            .with_default_deadline(SimDuration::from_us(5));
        let mut k = shed_kernel(ov, false, false);
        let mut fx = k.init(SimTime::ZERO);
        // get_frame stamps sent_at = 1 us; arriving at 10 us exceeds the
        // 5 us default budget.
        fx.schedule
            .push((SimTime::from_us(10), NodeEvent::FrameFromWire(get_frame(1))));
        // A generous per-request stamp overrides the default and admits.
        fx.schedule.push((
            SimTime::from_us(30),
            NodeEvent::FrameFromWire(get_frame(2).with_deadline(SimDuration::from_ms(10))),
        ));
        let _ = drain(&mut k, fx, SimTime::from_ms(5));
        let s = k.stats();
        assert_eq!(s.rejected, 1, "{s:?}");
        assert_eq!(k.completed_responses(), 1);
    }

    #[test]
    fn codel_controller_sheds_only_after_sustained_sojourn() {
        let target = SimDuration::from_us(500);
        let interval = SimDuration::from_ms(10);
        let mut c = CoDelState::default();
        let t0 = SimTime::from_ms(100);
        // Below target: never sheds, state stays reset.
        assert!(!c.should_shed(t0, SimDuration::from_us(100), target, interval));
        // First excursion above target starts the observation interval.
        assert!(!c.should_shed(t0, SimDuration::from_ms(1), target, interval));
        // Still inside the interval: no shedding yet.
        assert!(!c.should_shed(
            t0 + SimDuration::from_ms(5),
            SimDuration::from_ms(1),
            target,
            interval
        ));
        // A full interval above target: enter the dropping state.
        assert!(c.should_shed(
            t0 + SimDuration::from_ms(10),
            SimDuration::from_ms(1),
            target,
            interval
        ));
        // Next shed only after interval/sqrt(count): a full interval for
        // the first episode (count = 1).
        assert!(!c.should_shed(
            t0 + SimDuration::from_ms(11),
            SimDuration::from_ms(1),
            target,
            interval
        ));
        assert!(!c.should_shed(
            t0 + SimDuration::from_ms(18),
            SimDuration::from_ms(1),
            target,
            interval
        ));
        assert!(c.should_shed(
            t0 + SimDuration::from_ms(20),
            SimDuration::from_ms(1),
            target,
            interval
        ));
        // Sojourn recovering below target resets the controller.
        assert!(!c.should_shed(
            t0 + SimDuration::from_ms(21),
            SimDuration::from_us(100),
            target,
            interval
        ));
        assert!(!c.dropping);
        assert_eq!(c.count, 0);
    }

    #[test]
    fn caps_without_a_policy_enforce_nothing() {
        // The deliberately broken config: capacities set, shedding off.
        // The kernel must not cap anything (the watchdog reports it); in
        // particular nothing is rejected and the queue grows past "cap".
        let ov = OverloadConfig {
            run_queue_cap: Some(0),
            rx_backlog_cap: Some(0),
            tx_backlog_cap: Some(0),
            policy: ShedPolicy::None,
            ..OverloadConfig::off()
        };
        let mut k = shed_kernel(ov, false, false);
        let mut fx = k.init(SimTime::ZERO);
        let ids: Vec<u64> = (1..=16).collect();
        burst(&mut fx, SimTime::from_us(10), &ids);
        let _ = drain(&mut k, fx, SimTime::from_ms(5));
        let s = k.stats();
        assert_eq!(s.rejected, 0, "{s:?}");
        assert_eq!(s.backlog_sheds, 0, "{s:?}");
        assert_eq!(k.completed_responses(), 16);
        assert!(
            Some(k.max_run_queue_depth()) > ov.queue_bound(k.nic().queue_count()),
            "the unenforced queue must have exceeded the broken bound"
        );
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::app::{AppPhase, AppPlan};
    use crate::config::KernelConfig;
    use desim::SimDuration;
    use governors::{Performance, PollIdle};
    use netsim::http::HttpRequest;
    use nicsim::NicConfig;

    struct OneShotApp;
    impl ServerApp for OneShotApp {
        fn plan(&mut self, _now: SimTime, _req: &RequestInfo) -> Option<AppPlan> {
            Some(AppPlan {
                phases: vec![
                    AppPhase::Cpu { cycles: 30_000 },
                    AppPhase::Io {
                        wait: SimDuration::from_us(150),
                    },
                    AppPhase::Cpu { cycles: 30_000 },
                ],
                response_bytes: 3_000,
            })
        }
        fn name(&self) -> &'static str {
            "oneshot"
        }
    }

    #[test]
    fn request_trace_stages_are_monotone_and_complete() {
        let mut k = Kernel::new(
            KernelConfig::server_defaults()
                .with_initial_pstate(cpusim::PStateId(0))
                .with_request_tracing(1),
            NodeId(0),
            Nic::new(NicConfig::i82574_like()),
            Box::new(Performance),
            Box::new(PollIdle),
            Box::new(OneShotApp),
        );
        let mut queue: desim::EventQueue<NodeEvent> = desim::EventQueue::new();
        let fx = k.init(SimTime::ZERO);
        for (t, e) in fx.schedule {
            queue.push(t, e);
        }
        let frame = Packet::request(NodeId(1), NodeId(0), 42, HttpRequest::get("/").to_payload());
        queue.push(SimTime::from_us(10), NodeEvent::FrameFromWire(frame));
        while let Some((t, e)) = queue.pop() {
            if t > SimTime::from_ms(10) {
                break;
            }
            let fx = k.handle(t, e);
            for (te, ev) in fx.schedule {
                queue.push(te, ev);
            }
        }
        let traces = k.request_traces();
        assert_eq!(traces.len(), 1, "the request must finish tracing");
        let tr = traces[0];
        assert_eq!(tr.id, 42);
        assert_eq!(tr.nic_arrival, SimTime::from_us(10));
        assert!(tr.stack_done > tr.nic_arrival);
        assert!(tr.app_done > tr.stack_done);
        assert!(tr.last_tx > tr.app_done);
        assert_eq!(tr.io_wait, SimDuration::from_us(150));
        assert!(tr.residence() > SimDuration::from_us(150));
    }
}
