//! Kernel configuration: per-path CPU costs and platform constants.
//!
//! The cycle costs below size the software layers the way the paper's
//! measurements imply: at the maximum sustained Apache load (~68 K rps on
//! four 3.1 GHz cores) the network stack on core 0 plus application work
//! on the remaining cores saturates the chip, and at the ~2.1×-higher
//! Memcached ceiling the (much lighter) per-request work does the same.

use cpusim::PStateId;
use desim::{ConfigError, SimDuration};

/// Tunable kernel parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelConfig {
    /// Number of cores (Table 1: 4).
    pub cores: u8,
    /// P-state cores boot in.
    pub initial_pstate: PStateId,
    /// ISR cost in cycles, excluding the ICR PCIe read (which is charged
    /// as a frequency-independent stall from the NIC config).
    pub isr_cycles: u64,
    /// Receive SoftIRQ cost per frame (protocol processing, skb
    /// management, socket delivery).
    pub rx_stack_cycles: u64,
    /// Transmit path cost per frame (segmentation bookkeeping, qdisc,
    /// descriptor setup).
    pub tx_stack_cycles: u64,
    /// Cost of one dynamic-governor invocation (timer dispatch, load
    /// sampling, cpufreq plumbing).
    pub governor_tick_cycles: u64,
    /// Extra wake-up penalty for the MWAIT/MONITOR kernel path
    /// (§2.1: privileged instructions costing 6–60 µs end to end; the
    /// low end applies to the hot path modelled here).
    pub mwait_wake_overhead: SimDuration,
    /// Paper §7 extension (multi-queue NICs): when `true`, an NCAP boost
    /// raises only cores that actually process packets/requests — core 0
    /// immediately, other cores on their first work dispatch — instead of
    /// the whole chip. Idle cores keep polling at their lower voltage.
    pub per_core_boost: bool,
    /// Stage-level request tracing: record a waterfall for every Nth
    /// request id (`None` disables; tracing is measurement-only and does
    /// not perturb the simulated system).
    pub trace_requests_every: Option<u64>,
    /// TCP-lite reliability at the receiver: suppress retransmitted
    /// duplicates of in-flight requests and replay responses for
    /// already-answered ones. Enabled by the cluster harness whenever
    /// fault injection is active; the default (`false`) keeps the
    /// lossless-fabric behavior bit-identical.
    pub reliable: bool,
}

impl KernelConfig {
    /// The four-core server of Table 1, booting at the deepest P-state
    /// (a dynamic governor raises it on demand).
    #[must_use]
    pub fn server_defaults() -> Self {
        KernelConfig {
            cores: 4,
            initial_pstate: PStateId(14),
            isr_cycles: 3_000,
            rx_stack_cycles: 6_000,
            tx_stack_cycles: 3_000,
            governor_tick_cycles: 20_000,
            mwait_wake_overhead: SimDuration::from_us(25),
            per_core_boost: false,
            trace_requests_every: None,
            reliable: false,
        }
    }

    /// Builder-style core count override.
    #[must_use]
    pub fn with_cores(mut self, cores: u8) -> Self {
        self.cores = cores;
        self
    }

    /// Builder-style initial P-state override.
    #[must_use]
    pub fn with_initial_pstate(mut self, p: PStateId) -> Self {
        self.initial_pstate = p;
        self
    }

    /// Builder-style enable of the §7 per-core boost extension.
    #[must_use]
    pub fn with_per_core_boost(mut self) -> Self {
        self.per_core_boost = true;
        self
    }

    /// Builder-style enable of request-stage tracing for every `n`th id.
    #[must_use]
    pub fn with_request_tracing(mut self, n: u64) -> Self {
        self.trace_requests_every = Some(n);
        self
    }

    /// Builder-style enable of receiver-side duplicate suppression and
    /// response replay (the TCP-lite reliability layer).
    #[must_use]
    pub fn with_reliability(mut self) -> Self {
        self.reliable = true;
        self
    }

    /// Validates field constraints.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 {
            return Err(ConfigError::new("cores", "a node needs at least one core"));
        }
        if self.trace_requests_every == Some(0) {
            return Err(ConfigError::new(
                "trace_requests_every",
                "sampling interval must be positive",
            ));
        }
        Ok(())
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self::server_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1_shape() {
        let c = KernelConfig::server_defaults();
        assert_eq!(c.cores, 4);
        assert_eq!(c.initial_pstate, PStateId(14));
        assert!(c.mwait_wake_overhead >= SimDuration::from_us(1));
        assert!(!c.reliable);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders() {
        let c = KernelConfig::server_defaults()
            .with_cores(2)
            .with_initial_pstate(PStateId(0))
            .with_reliability();
        assert_eq!(c.cores, 2);
        assert_eq!(c.initial_pstate, PStateId(0));
        assert!(c.reliable);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn zero_cores_rejected() {
        let err = KernelConfig::server_defaults()
            .with_cores(0)
            .validate()
            .unwrap_err();
        assert_eq!(err.field, "cores");
        assert!(err.to_string().contains("at least one core"));
    }

    #[test]
    fn zero_trace_interval_rejected() {
        let err = KernelConfig::server_defaults()
            .with_request_tracing(0)
            .validate()
            .unwrap_err();
        assert_eq!(err.field, "trace_requests_every");
    }
}
