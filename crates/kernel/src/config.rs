//! Kernel configuration: per-path CPU costs and platform constants.
//!
//! The cycle costs below size the software layers the way the paper's
//! measurements imply: at the maximum sustained Apache load (~68 K rps on
//! four 3.1 GHz cores) the network stack on core 0 plus application work
//! on the remaining cores saturates the chip, and at the ~2.1×-higher
//! Memcached ceiling the (much lighter) per-request work does the same.

use bypass::{BypassConfig, Datapath};
use cpusim::PStateId;
use desim::{ConfigError, SimDuration};

/// Admission policy applied when overload protection is armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// No shedding: queue capacities are *not enforced* and the queues
    /// grow without bound (the pre-overload-protection behaviour). A
    /// config that sets capacities but leaves the policy at `None` is
    /// broken — the runtime watchdog reports it as a boundedness
    /// violation rather than this module silently capping anything.
    #[default]
    None,
    /// Reject new requests whenever the run queue is at capacity.
    DropTail,
    /// Drop-tail, plus reject any request whose elapsed time since the
    /// client stamped it already meets or exceeds its deadline — work
    /// that can no longer be answered in time is not worth admitting.
    Deadline,
    /// Drop-tail, plus a CoDel-style controller: once queue sojourn time
    /// stays above `codel_target` for a full `codel_interval`, shed one
    /// request, then the next after `interval/sqrt(2)`, `interval/sqrt(3)`,
    /// … until sojourn drops back under the target.
    CoDel,
}

impl ShedPolicy {
    /// The CLI spelling of the policy.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ShedPolicy::None => "none",
            ShedPolicy::DropTail => "drop-tail",
            ShedPolicy::Deadline => "deadline",
            ShedPolicy::CoDel => "codel",
        }
    }

    /// Parses the CLI spelling.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(ShedPolicy::None),
            "drop-tail" | "droptail" => Some(ShedPolicy::DropTail),
            "deadline" => Some(ShedPolicy::Deadline),
            "codel" => Some(ShedPolicy::CoDel),
            _ => Option::None,
        }
    }
}

/// Overload protection: queue capacities and the admission policy that
/// enforces them.
///
/// With the default (`off()`) configuration every queue is unbounded and
/// behaviour is bit-identical to a kernel built before this subsystem
/// existed. Capacities only take effect when `policy` is not
/// [`ShedPolicy::None`]; the watchdog checks them either way, which is
/// how a cap-but-no-policy misconfiguration surfaces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadConfig {
    /// Run-queue admission capacity: application/overhead work is only
    /// enqueued while the *non-TX* queue depth is below this. TX work is
    /// a departure, not an arrival — it is bounded separately by
    /// `tx_backlog_cap` so responses keep flowing when admission is
    /// saturated. ISR and RX-softirq entries ride on top (bounded by the
    /// NIC queue count and `rx_backlog_cap`), so the hard bound on total
    /// depth is
    /// `run_queue_cap + queues × (rx_backlog_cap + 1) + tx_backlog_cap`.
    pub run_queue_cap: Option<usize>,
    /// Per-RSS-queue backlog cap: at most this many RX-softirq items per
    /// NIC queue may sit in the run queue; excess frames are tail-dropped
    /// at ISR drain (clients recover via RTO, as for a ring overflow).
    pub rx_backlog_cap: Option<usize>,
    /// TX cap, applied both to queued TX stack work and to the NIC-level
    /// TX backlog: frames past it are dropped and recovered by client
    /// retransmission and response replay.
    pub tx_backlog_cap: Option<usize>,
    /// Which admission policy sheds work when queues fill.
    pub policy: ShedPolicy,
    /// Deadline assumed for requests that did not stamp one
    /// ([`ShedPolicy::Deadline`] only; `None` exempts unstamped requests).
    pub default_deadline: Option<SimDuration>,
    /// CoDel target sojourn time.
    pub codel_target: SimDuration,
    /// CoDel observation interval.
    pub codel_interval: SimDuration,
}

impl OverloadConfig {
    /// Overload protection disabled: unbounded queues, legacy behaviour.
    #[must_use]
    pub fn off() -> Self {
        OverloadConfig {
            run_queue_cap: None,
            rx_backlog_cap: None,
            tx_backlog_cap: None,
            policy: ShedPolicy::None,
            default_deadline: None,
            codel_target: SimDuration::from_us(500),
            codel_interval: SimDuration::from_ms(10),
        }
    }

    /// Production-shaped caps with drop-tail admission: deep enough to
    /// absorb a full client burst, shallow enough that overload rejects
    /// instead of queueing into the millisecond range. The RX backlog cap
    /// deliberately sits *above* the admission cap so sustained overload
    /// surfaces as explicit 503s (the run queue fills and admission
    /// rejects) rather than as silent tail-drops the client can only
    /// discover by retransmission timeout.
    #[must_use]
    pub fn server_defaults() -> Self {
        OverloadConfig {
            run_queue_cap: Some(512),
            rx_backlog_cap: Some(1_024),
            tx_backlog_cap: Some(4_096),
            policy: ShedPolicy::DropTail,
            ..OverloadConfig::off()
        }
    }

    /// Builder-style run-queue capacity override.
    #[must_use]
    pub fn with_run_queue_cap(mut self, cap: usize) -> Self {
        self.run_queue_cap = Some(cap);
        self
    }

    /// Builder-style admission policy override.
    #[must_use]
    pub fn with_policy(mut self, policy: ShedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builder-style default deadline for unstamped requests.
    #[must_use]
    pub fn with_default_deadline(mut self, d: SimDuration) -> Self {
        self.default_deadline = Some(d);
        self
    }

    /// `true` when an admission policy is active and capacities are
    /// enforced.
    #[must_use]
    pub fn shedding(&self) -> bool {
        self.policy != ShedPolicy::None
    }

    /// The hard bound on total run-queue depth implied by the configured
    /// capacities (admission cap, plus the per-queue RX backlog and one
    /// ISR slot per NIC queue, plus the TX allowance), or `None` if any
    /// capacity is unbounded. The watchdog checks the live depth against
    /// this.
    #[must_use]
    pub fn queue_bound(&self, nic_queues: usize) -> Option<usize> {
        match (self.run_queue_cap, self.rx_backlog_cap, self.tx_backlog_cap) {
            (Some(rq), Some(rx), Some(tx)) => Some(rq + nic_queues * (rx + 1) + tx),
            _ => None,
        }
    }

    /// Validates field constraints.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    ///
    /// Note that `cap = 0` with [`ShedPolicy::None`] is *accepted* here:
    /// it is a semantic misconfiguration (capacities that nothing
    /// enforces), which the runtime watchdog reports as a structured
    /// boundedness violation.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.policy == ShedPolicy::CoDel {
            if self.codel_target == SimDuration::ZERO {
                return Err(ConfigError::new(
                    "overload.codel_target",
                    "CoDel target sojourn must be positive",
                ));
            }
            if self.codel_interval == SimDuration::ZERO {
                return Err(ConfigError::new(
                    "overload.codel_interval",
                    "CoDel interval must be positive",
                ));
            }
        }
        Ok(())
    }
}

impl Default for OverloadConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// Tunable kernel parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelConfig {
    /// Number of cores (Table 1: 4).
    pub cores: u8,
    /// P-state cores boot in.
    pub initial_pstate: PStateId,
    /// ISR cost in cycles, excluding the ICR PCIe read (which is charged
    /// as a frequency-independent stall from the NIC config).
    pub isr_cycles: u64,
    /// Receive SoftIRQ cost per frame (protocol processing, skb
    /// management, socket delivery).
    pub rx_stack_cycles: u64,
    /// Transmit path cost per frame (segmentation bookkeeping, qdisc,
    /// descriptor setup).
    pub tx_stack_cycles: u64,
    /// Cost of one dynamic-governor invocation (timer dispatch, load
    /// sampling, cpufreq plumbing).
    pub governor_tick_cycles: u64,
    /// Extra wake-up penalty for the MWAIT/MONITOR kernel path
    /// (§2.1: privileged instructions costing 6–60 µs end to end; the
    /// low end applies to the hot path modelled here).
    pub mwait_wake_overhead: SimDuration,
    /// Paper §7 extension (multi-queue NICs): when `true`, an NCAP boost
    /// raises only cores that actually process packets/requests — core 0
    /// immediately, other cores on their first work dispatch — instead of
    /// the whole chip. Idle cores keep polling at their lower voltage.
    pub per_core_boost: bool,
    /// Stage-level request tracing: record a waterfall for every Nth
    /// request id (`None` disables; tracing is measurement-only and does
    /// not perturb the simulated system).
    pub trace_requests_every: Option<u64>,
    /// TCP-lite reliability at the receiver: suppress retransmitted
    /// duplicates of in-flight requests and replay responses for
    /// already-answered ones. Enabled by the cluster harness whenever
    /// fault injection is active; the default (`false`) keeps the
    /// lossless-fabric behavior bit-identical.
    pub reliable: bool,
    /// Overload protection: queue capacities and admission policy.
    pub overload: OverloadConfig,
    /// Which network datapath this node runs (interrupt-driven kernel
    /// stack, busy-poll bypass, or kernel stack with on-NIC NCAP).
    pub datapath: Datapath,
    /// Busy-poll budget, consulted only when `datapath` is
    /// [`Datapath::Bypass`]: how many cores spin, and the userspace
    /// per-frame RX/TX costs that replace the kernel stack cycles.
    pub bypass: BypassConfig,
}

impl KernelConfig {
    /// The four-core server of Table 1, booting at the deepest P-state
    /// (a dynamic governor raises it on demand).
    #[must_use]
    pub fn server_defaults() -> Self {
        KernelConfig {
            cores: 4,
            initial_pstate: PStateId(14),
            isr_cycles: 3_000,
            rx_stack_cycles: 6_000,
            tx_stack_cycles: 3_000,
            governor_tick_cycles: 20_000,
            mwait_wake_overhead: SimDuration::from_us(25),
            per_core_boost: false,
            trace_requests_every: None,
            reliable: false,
            overload: OverloadConfig::off(),
            datapath: Datapath::Kernel,
            bypass: BypassConfig::dpdk_like(),
        }
    }

    /// Builder-style core count override.
    #[must_use]
    pub fn with_cores(mut self, cores: u8) -> Self {
        self.cores = cores;
        self
    }

    /// Builder-style initial P-state override.
    #[must_use]
    pub fn with_initial_pstate(mut self, p: PStateId) -> Self {
        self.initial_pstate = p;
        self
    }

    /// Builder-style enable of the §7 per-core boost extension.
    #[must_use]
    pub fn with_per_core_boost(mut self) -> Self {
        self.per_core_boost = true;
        self
    }

    /// Builder-style enable of request-stage tracing for every `n`th id.
    #[must_use]
    pub fn with_request_tracing(mut self, n: u64) -> Self {
        self.trace_requests_every = Some(n);
        self
    }

    /// Builder-style enable of receiver-side duplicate suppression and
    /// response replay (the TCP-lite reliability layer).
    #[must_use]
    pub fn with_reliability(mut self) -> Self {
        self.reliable = true;
        self
    }

    /// Builder-style overload-protection override.
    #[must_use]
    pub fn with_overload(mut self, overload: OverloadConfig) -> Self {
        self.overload = overload;
        self
    }

    /// Builder-style datapath selection.
    #[must_use]
    pub fn with_datapath(mut self, datapath: Datapath) -> Self {
        self.datapath = datapath;
        self
    }

    /// Builder-style busy-poll budget override (bypass datapath only).
    #[must_use]
    pub fn with_bypass(mut self, bypass: BypassConfig) -> Self {
        self.bypass = bypass;
        self
    }

    /// Validates field constraints.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 {
            return Err(ConfigError::new("cores", "a node needs at least one core"));
        }
        if self.trace_requests_every == Some(0) {
            return Err(ConfigError::new(
                "trace_requests_every",
                "sampling interval must be positive",
            ));
        }
        if self.datapath.bypasses_kernel() {
            self.bypass.validate(self.cores)?;
        }
        self.overload.validate()
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self::server_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1_shape() {
        let c = KernelConfig::server_defaults();
        assert_eq!(c.cores, 4);
        assert_eq!(c.initial_pstate, PStateId(14));
        assert!(c.mwait_wake_overhead >= SimDuration::from_us(1));
        assert!(!c.reliable);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders() {
        let c = KernelConfig::server_defaults()
            .with_cores(2)
            .with_initial_pstate(PStateId(0))
            .with_reliability();
        assert_eq!(c.cores, 2);
        assert_eq!(c.initial_pstate, PStateId(0));
        assert!(c.reliable);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn zero_cores_rejected() {
        let err = KernelConfig::server_defaults()
            .with_cores(0)
            .validate()
            .unwrap_err();
        assert_eq!(err.field, "cores");
        assert!(err.to_string().contains("at least one core"));
    }

    #[test]
    fn zero_trace_interval_rejected() {
        let err = KernelConfig::server_defaults()
            .with_request_tracing(0)
            .validate()
            .unwrap_err();
        assert_eq!(err.field, "trace_requests_every");
    }

    #[test]
    fn overload_defaults_are_off_and_unbounded() {
        let ov = OverloadConfig::off();
        assert!(!ov.shedding());
        assert_eq!(ov.queue_bound(1), None);
        assert!(ov.validate().is_ok());
        let armed = OverloadConfig::server_defaults();
        assert!(armed.shedding());
        assert_eq!(armed.queue_bound(1), Some(512 + 1_025 + 4_096));
        assert_eq!(armed.queue_bound(4), Some(512 + 4 * 1_025 + 4_096));
    }

    #[test]
    fn shed_policy_names_roundtrip() {
        for p in [
            ShedPolicy::None,
            ShedPolicy::DropTail,
            ShedPolicy::Deadline,
            ShedPolicy::CoDel,
        ] {
            assert_eq!(ShedPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(ShedPolicy::parse("bogus"), None);
    }

    #[test]
    fn codel_policy_requires_positive_parameters() {
        let mut ov = OverloadConfig::server_defaults().with_policy(ShedPolicy::CoDel);
        ov.codel_target = SimDuration::ZERO;
        assert_eq!(ov.validate().unwrap_err().field, "overload.codel_target");
        let mut ov = OverloadConfig::server_defaults().with_policy(ShedPolicy::CoDel);
        ov.codel_interval = SimDuration::ZERO;
        assert_eq!(ov.validate().unwrap_err().field, "overload.codel_interval");
    }

    #[test]
    fn broken_cap_without_policy_passes_static_validation() {
        // Enforcement is the watchdog's job: caps with no shedding policy
        // validate here but trip the runtime boundedness check.
        let ov = OverloadConfig {
            run_queue_cap: Some(0),
            rx_backlog_cap: Some(0),
            tx_backlog_cap: Some(0),
            policy: ShedPolicy::None,
            ..OverloadConfig::off()
        };
        assert!(ov.validate().is_ok());
        assert!(!ov.shedding());
        assert_eq!(ov.queue_bound(1), Some(1));
    }
}
