//! The server-application interface.
//!
//! The kernel hands incoming requests to a [`ServerApp`], which returns
//! an execution plan: alternating CPU phases (cycles on a core) and IO
//! phases (a wait with the core released — disk access for the
//! Apache-like workload), then a response of a given size. The concrete
//! Apache-like and Memcached-like models live in the `oldi-apps` crate.

use desim::{SimDuration, SimTime};
use netsim::Bytes;
use netsim::NodeId;

/// One step of a request's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppPhase {
    /// Execute on a core for this many cycles.
    Cpu {
        /// Work amount in core cycles.
        cycles: u64,
    },
    /// Wait (e.g. disk access) with the core released.
    Io {
        /// Wait duration, independent of core frequency.
        wait: SimDuration,
    },
}

/// What the application wants done for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppPlan {
    /// Execution phases, in order.
    pub phases: Vec<AppPhase>,
    /// Size of the response body to send back, in bytes.
    pub response_bytes: usize,
}

impl AppPlan {
    /// Total CPU cycles across all phases.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| match p {
                AppPhase::Cpu { cycles } => *cycles,
                AppPhase::Io { .. } => 0,
            })
            .sum()
    }

    /// Total IO wait across all phases.
    #[must_use]
    pub fn total_io(&self) -> SimDuration {
        self.phases
            .iter()
            .map(|p| match p {
                AppPhase::Cpu { .. } => SimDuration::ZERO,
                AppPhase::Io { wait } => *wait,
            })
            .sum()
    }
}

/// A request as the application sees it.
#[derive(Debug, Clone)]
pub struct RequestInfo {
    /// Client-assigned request identifier (globally unique).
    pub id: u64,
    /// The client node to respond to.
    pub src: NodeId,
    /// When the client issued the request (for end-to-end latency).
    pub sent_at: SimTime,
    /// The request payload (e.g. the HTTP request line).
    pub payload: Bytes,
}

/// A server application model.
pub trait ServerApp {
    /// Plans the execution of `request`, or `None` if this payload is not
    /// a request the application answers (background traffic, updates
    /// handled out of band, …).
    fn plan(&mut self, now: SimTime, request: &RequestInfo) -> Option<AppPlan>;

    /// The application's name (for reports).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_totals() {
        let plan = AppPlan {
            phases: vec![
                AppPhase::Cpu { cycles: 1_000 },
                AppPhase::Io {
                    wait: SimDuration::from_us(200),
                },
                AppPhase::Cpu { cycles: 2_000 },
            ],
            response_bytes: 4_096,
        };
        assert_eq!(plan.total_cycles(), 3_000);
        assert_eq!(plan.total_io(), SimDuration::from_us(200));
    }
}
