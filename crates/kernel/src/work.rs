//! Schedulable units of kernel/application work.

use desim::{SimDuration, SimTime};
use netsim::Packet;

/// What a [`Work`] item does when it completes.
#[derive(Debug, Clone)]
pub enum WorkKind {
    /// The NIC interrupt service routine for one MSI-X vector: reads the
    /// cause register, applies NCAP driver actions, schedules the receive
    /// SoftIRQ.
    Isr {
        /// The RX queue / vector being serviced.
        queue: u8,
    },
    /// Receive-side network stack processing for one frame.
    SoftIrqRx {
        /// The frame being processed.
        frame: Packet,
        /// The RX queue the frame was drained from, so per-queue backlog
        /// accounting can be released when the work completes.
        queue: u8,
    },
    /// One CPU phase of an in-flight application request.
    App {
        /// The kernel-internal request token.
        token: u64,
    },
    /// Transmit-side network stack processing for one frame.
    SoftIrqTx {
        /// The frame to hand to the NIC.
        frame: Packet,
    },
    /// Poll-mode (bypass datapath) receive processing for one frame: a
    /// busy-poll core picked it out of the userspace ring and runs the
    /// thin userspace stack inline — no ISR, no SoftIRQ.
    PollRx {
        /// The frame being processed.
        frame: Packet,
        /// The RX queue the frame was polled from, for per-queue backlog
        /// accounting.
        queue: u8,
    },
    /// Pure overhead (governor tick, `ncap.sw` timer) with no completion
    /// action.
    Overhead,
}

impl WorkKind {
    /// Short label for traces.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            WorkKind::Isr { .. } => "isr",
            WorkKind::SoftIrqRx { .. } => "softirq-rx",
            WorkKind::App { .. } => "app",
            WorkKind::SoftIrqTx { .. } => "softirq-tx",
            WorkKind::PollRx { .. } => "poll-rx",
            WorkKind::Overhead => "overhead",
        }
    }
}

/// A run-queue entry.
#[derive(Debug, Clone)]
pub struct Work {
    /// Frequency-dependent cost in core cycles.
    pub cycles: u64,
    /// Frequency-independent cost (bus stalls like the PCIe ICR read);
    /// converted to cycles at dispatch frequency.
    pub fixed: SimDuration,
    /// Completion action.
    pub kind: WorkKind,
    /// Core affinity (`Some(0)` for interrupt/stack work on a
    /// single-queue NIC), or any core.
    pub affinity: Option<u8>,
    /// When the item entered the run queue. The CoDel-style shedder uses
    /// this to measure queue sojourn time.
    pub enqueued_at: SimTime,
    /// When a core began executing the item (set at dispatch). Latency
    /// attribution splits run-queue wait from execution with it.
    pub started_at: SimTime,
}

impl Work {
    /// A work item with cycle cost only.
    #[must_use]
    pub fn cycles(cycles: u64, kind: WorkKind) -> Self {
        Work {
            cycles,
            fixed: SimDuration::ZERO,
            kind,
            affinity: None,
            enqueued_at: SimTime::ZERO,
            started_at: SimTime::ZERO,
        }
    }

    /// Pins the work to a core (builder style).
    #[must_use]
    pub fn on_core(mut self, core: u8) -> Self {
        self.affinity = Some(core);
        self
    }

    /// Adds a frequency-independent stall (builder style).
    #[must_use]
    pub fn with_fixed(mut self, fixed: SimDuration) -> Self {
        self.fixed = fixed;
        self
    }

    /// Records when the item entered the run queue (builder style).
    #[must_use]
    pub fn queued_at(mut self, t: SimTime) -> Self {
        self.enqueued_at = t;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let w = Work::cycles(100, WorkKind::Overhead)
            .on_core(2)
            .with_fixed(SimDuration::from_us(2));
        assert_eq!(w.cycles, 100);
        assert_eq!(w.affinity, Some(2));
        assert_eq!(w.fixed, SimDuration::from_us(2));
        assert_eq!(w.kind.label(), "overhead");
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            WorkKind::Isr { queue: 0 }.label(),
            WorkKind::Overhead.label(),
            WorkKind::App { token: 0 }.label(),
        ];
        let set: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }
}
