//! # oskernel — a simplified Linux-like kernel for one simulated node
//!
//! Models the software layers the paper's evaluation exercises (§2, §5):
//!
//! * **interrupt path** — NIC IRQ delivery to core 0, waking it from a
//!   C-state if needed; the ISR reads the ICR over PCIe, applies NCAP
//!   driver actions, and schedules the receive SoftIRQ;
//! * **network stack** — per-packet RX/TX SoftIRQ processing costs,
//!   pinned to core 0 as on a single-queue NIC ("one core processes
//!   received network packets while another core can process requests");
//! * **scheduler** — a run queue of [`Work`] items dispatched to idle
//!   cores, waking sleeping cores on demand;
//! * **cpufreq** — chip-wide P-state application through the governors,
//!   with per-transition PLL-halt penalties and job rescheduling;
//! * **cpuidle** — the `cpu_idle_loop`: on an empty run queue the menu
//!   (or ladder) governor picks a C-state, with the MWAIT/MONITOR cost
//!   charged on wake-up;
//! * **applications** — the [`ServerApp`] trait: requests arrive from the
//!   stack, execute CPU/IO phase plans, and emit multi-frame responses.
//!
//! The [`Kernel`] is driven by [`NodeEvent`]s and returns [`Effects`]
//! (events to schedule on this node plus frames leaving on the wire);
//! the `cluster` crate owns the event loop and the switch.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod app;
pub mod config;
pub mod kernel;
pub mod work;

pub use app::{AppPhase, AppPlan, RequestInfo, ServerApp};
pub use bypass::{BypassConfig, Datapath};
pub use config::{KernelConfig, OverloadConfig, ShedPolicy};
pub use kernel::{Effects, Kernel, KernelStats, NodeEvent, RequestTrace};
pub use work::{Work, WorkKind};
