//! # oldi-apps — on-line data-intensive application models and clients
//!
//! The paper evaluates two OLDI applications "with notably different
//! characteristics" (§5): **Apache**, an IO-intensive web server that
//! "frequently retrieves a large amount of data from a storage device",
//! and **Memcached**, a memory-bound key-value store that "retrieves
//! mostly small values from main memory". This crate provides calibrated
//! models of both behind the kernel's [`oskernel::ServerApp`] trait, plus
//! the open-loop bursty clients the methodology prescribes (to avoid
//! client-side queueing bias and inter-burst dependencies, citing
//! Treadmill).
//!
//! Calibration (see DESIGN.md §6): on the four-core 3.1 GHz server the
//! Apache model saturates around ~68 K requests/s and the Memcached model
//! around ~2.1× that, matching the ratio the paper reports.
//!
//! ## Example
//!
//! ```
//! use oldi_apps::{ApacheApp, ClientConfig, OpenLoopClient};
//! use oskernel::ServerApp;
//! use netsim::packet::NodeId;
//! use desim::{SimTime, SimDuration};
//!
//! let mut client = OpenLoopClient::new(ClientConfig::apache(
//!     NodeId(1), NodeId(0), 100, SimDuration::from_ms(5), 42));
//! let (frames, next) = client.next_burst(SimTime::ZERO);
//! assert_eq!(frames.len(), 100);
//! assert!(next > SimTime::ZERO);
//! ```

pub mod apache;
pub mod client;
pub mod memcached;

pub use apache::ApacheApp;
pub use client::{ClientConfig, OpenLoopClient, ResponseTracker, Workload};
pub use memcached::MemcachedApp;
