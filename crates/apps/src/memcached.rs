//! The Memcached-like key-value store model.
//!
//! Paper §6: "Memcached is a key-value store application that retrieves
//! mostly small values from the main memory of the server" — no IO
//! phases, light per-request CPU, small (but usually multi-MTU) values,
//! much higher maximum sustained load (~2.1× Apache), and response time
//! more sensitive to frequency than to C-states.

use desim::{SimTime, SplitMix64};
use oskernel::{AppPhase, AppPlan, RequestInfo, ServerApp};

/// CPU cycles for one `get`: hash, lookup, serialize from DRAM.
const GET_CYCLES: u64 = 75_000;
/// CPU cycles for one `set`.
const SET_CYCLES: u64 = 40_000;

/// The Memcached-like application.
#[derive(Debug)]
pub struct MemcachedApp {
    rng: SplitMix64,
    hits: u64,
    sets: u64,
}

impl MemcachedApp {
    /// Creates the model with a deterministic seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        MemcachedApp {
            rng: SplitMix64::new(seed),
            hits: 0,
            sets: 0,
        }
    }

    /// `get` requests served.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// `set` requests handled.
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.sets
    }

    fn jitter(&mut self, cycles: u64) -> u64 {
        let f = self.rng.next_f64_in(0.8, 1.2);
        (cycles as f64 * f) as u64
    }

    fn value_size(&mut self) -> usize {
        // Mix averaging ≈ 2.1 KB; most values span more than one MTU
        // (the TxBytesCounter rationale), a minority fit one frame.
        match self.rng.choose_weighted(&[0.3, 0.5, 0.2]) {
            0 => 1024,
            1 => 2048,
            _ => 4096,
        }
    }
}

impl ServerApp for MemcachedApp {
    fn plan(&mut self, _now: SimTime, request: &RequestInfo) -> Option<AppPlan> {
        if request.payload.starts_with(b"get ") {
            self.hits += 1;
            Some(AppPlan {
                phases: vec![AppPhase::Cpu {
                    cycles: self.jitter(GET_CYCLES),
                }],
                response_bytes: self.value_size(),
            })
        } else if request.payload.starts_with(b"set ") {
            self.sets += 1;
            Some(AppPlan {
                phases: vec![AppPhase::Cpu {
                    cycles: self.jitter(SET_CYCLES),
                }],
                response_bytes: 8, // "STORED\r\n"
            })
        } else {
            None
        }
    }

    fn name(&self) -> &'static str {
        "memcached"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;
    use netsim::Bytes;
    use netsim::NodeId;

    fn request(payload: &'static [u8]) -> RequestInfo {
        RequestInfo {
            id: 1,
            src: NodeId(1),
            sent_at: SimTime::ZERO,
            payload: Bytes::from_static(payload),
        }
    }

    #[test]
    fn get_is_pure_cpu() {
        let mut app = MemcachedApp::new(1);
        let plan = app
            .plan(SimTime::ZERO, &request(b"get user:42\r\n"))
            .unwrap();
        assert_eq!(plan.total_io(), SimDuration::ZERO);
        assert_eq!(plan.phases.len(), 1);
        assert!(plan.response_bytes >= 1024);
        assert_eq!(app.hits(), 1);
    }

    #[test]
    fn set_is_cheap_tiny_reply() {
        let mut app = MemcachedApp::new(1);
        let plan = app
            .plan(SimTime::ZERO, &request(b"set k 0 0 4\r\nvvvv\r\n"))
            .unwrap();
        assert_eq!(plan.response_bytes, 8);
        assert_eq!(app.sets(), 1);
    }

    #[test]
    fn unknown_commands_ignored() {
        let mut app = MemcachedApp::new(1);
        assert!(app.plan(SimTime::ZERO, &request(b"stats\r\n")).is_none());
    }

    #[test]
    fn lighter_than_apache_per_request() {
        // The max-load ratio (~2.1×) comes from the per-request demand gap.
        let mut mc = MemcachedApp::new(2);
        let mut total = 0u64;
        let n = 2_000;
        for _ in 0..n {
            total += mc
                .plan(SimTime::ZERO, &request(b"get k\r\n"))
                .unwrap()
                .total_cycles();
        }
        let mean = total / n;
        assert!((60_000..90_000).contains(&mean), "mean {mean}");
    }

    #[test]
    fn most_values_span_multiple_frames() {
        let mut app = MemcachedApp::new(4);
        let mut multi = 0;
        let n = 200;
        for _ in 0..n {
            let plan = app.plan(SimTime::ZERO, &request(b"get k\r\n")).unwrap();
            if plan.response_bytes > netsim::packet::MSS {
                multi += 1;
            }
        }
        assert!(multi * 2 > n, "most responses should exceed one MTU");
    }
}
