//! The Apache-like web server model.
//!
//! Characteristics the paper attributes to its Apache workload (§6):
//! IO-intensive ("frequently retrieves a large amount of data from a
//! storage device"), multi-MTU responses, a much longer mean response
//! time than Memcached (1.7 ms vs 0.6 ms), and a lower maximum sustained
//! load (~68 K vs ~143 K rps). The model realises that as:
//!
//! * a parse/dispatch CPU phase (~40 K cycles),
//! * a disk access (exponential around 300 µs) with the core released,
//! * a content-assembly CPU phase (~110 K cycles),
//! * a response drawn from a small mix averaging ≈ 11.6 KB (6–14 MTU
//!   frames).
//!
//! `GET` requests are served; `PUT` updates get a short, cheap handling
//! path (they are real work but not latency-critical — paper §4.1's
//! example); anything else is ignored.

use desim::{SimDuration, SimTime, SplitMix64};
use oskernel::{AppPhase, AppPlan, RequestInfo, ServerApp};

/// Mean disk access time for the content fetch.
const DISK_MEAN: SimDuration = SimDuration::from_us(300);
/// CPU cycles to parse the request and locate content.
const PARSE_CYCLES: u64 = 40_000;
/// CPU cycles to assemble and encode the response.
const ASSEMBLE_CYCLES: u64 = 110_000;

/// The Apache-like application.
#[derive(Debug)]
pub struct ApacheApp {
    rng: SplitMix64,
    served: u64,
    updates: u64,
}

impl ApacheApp {
    /// Creates the model with a deterministic seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ApacheApp {
            rng: SplitMix64::new(seed),
            served: 0,
            updates: 0,
        }
    }

    /// `GET` requests fully served.
    #[must_use]
    pub fn served(&self) -> u64 {
        self.served
    }

    /// `PUT` updates handled.
    #[must_use]
    pub fn updates(&self) -> u64 {
        self.updates
    }

    fn jitter(&mut self, cycles: u64) -> u64 {
        // ±20 % uniform service-demand jitter.
        let f = self.rng.next_f64_in(0.8, 1.2);
        (cycles as f64 * f) as u64
    }

    fn disk_wait(&mut self) -> SimDuration {
        // Exponential with mean DISK_MEAN, clamped to a realistic band.
        let wait = DISK_MEAN.mul_f64(self.rng.next_exp(1.0));
        wait.max(SimDuration::from_us(50))
            .min(SimDuration::from_ms(3))
    }

    fn response_size(&mut self) -> usize {
        // Mix averaging ≈ 11.6 KB: mostly page-sized documents.
        match self.rng.choose_weighted(&[0.5, 0.3, 0.2]) {
            0 => 8 * 1024,
            1 => 12 * 1024,
            _ => 20 * 1024,
        }
    }
}

impl ServerApp for ApacheApp {
    fn plan(&mut self, _now: SimTime, request: &RequestInfo) -> Option<AppPlan> {
        if request.payload.starts_with(b"GET ") || request.payload.starts_with(b"HEAD") {
            self.served += 1;
            Some(AppPlan {
                phases: vec![
                    AppPhase::Cpu {
                        cycles: self.jitter(PARSE_CYCLES),
                    },
                    AppPhase::Io {
                        wait: self.disk_wait(),
                    },
                    AppPhase::Cpu {
                        cycles: self.jitter(ASSEMBLE_CYCLES),
                    },
                ],
                response_bytes: self.response_size(),
            })
        } else if request.payload.starts_with(b"PUT ") || request.payload.starts_with(b"POST") {
            self.updates += 1;
            Some(AppPlan {
                phases: vec![AppPhase::Cpu {
                    cycles: self.jitter(20_000),
                }],
                response_bytes: 128,
            })
        } else {
            None
        }
    }

    fn name(&self) -> &'static str {
        "apache"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Bytes;
    use netsim::NodeId;

    fn request(payload: &'static [u8]) -> RequestInfo {
        RequestInfo {
            id: 1,
            src: NodeId(1),
            sent_at: SimTime::ZERO,
            payload: Bytes::from_static(payload),
        }
    }

    #[test]
    fn get_has_disk_phase_and_large_response() {
        let mut app = ApacheApp::new(1);
        let plan = app
            .plan(SimTime::ZERO, &request(b"GET /index.html HTTP/1.1"))
            .unwrap();
        assert_eq!(plan.phases.len(), 3);
        assert!(plan.total_io() >= SimDuration::from_us(50));
        assert!(plan.response_bytes >= 8 * 1024);
        assert_eq!(app.served(), 1);
    }

    #[test]
    fn put_is_cheap_and_small() {
        let mut app = ApacheApp::new(1);
        let plan = app
            .plan(SimTime::ZERO, &request(b"PUT /doc HTTP/1.1"))
            .unwrap();
        assert!(plan.total_io().is_zero());
        assert!(plan.response_bytes < 1024);
        assert_eq!(app.updates(), 1);
    }

    #[test]
    fn garbage_ignored() {
        let mut app = ApacheApp::new(1);
        assert!(app.plan(SimTime::ZERO, &request(b"\x00\x01\x02")).is_none());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ApacheApp::new(7);
        let mut b = ApacheApp::new(7);
        for _ in 0..20 {
            let pa = a.plan(SimTime::ZERO, &request(b"GET / HTTP/1.1")).unwrap();
            let pb = b.plan(SimTime::ZERO, &request(b"GET / HTTP/1.1")).unwrap();
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn mean_demand_supports_target_load() {
        // At the paper's max Apache load (~68 K rps) the application work
        // must fit in roughly three 3.1 GHz cores (core 0 runs the
        // network stack).
        let mut app = ApacheApp::new(3);
        let mut cycles = 0u64;
        let n = 2_000;
        for _ in 0..n {
            cycles += app
                .plan(SimTime::ZERO, &request(b"GET / HTTP/1.1"))
                .unwrap()
                .total_cycles();
        }
        let mean = cycles / n;
        assert!((120_000..190_000).contains(&mean), "mean {mean}");
    }

    #[test]
    fn response_sizes_span_multiple_frames() {
        let mut app = ApacheApp::new(5);
        for _ in 0..50 {
            let plan = app
                .plan(SimTime::ZERO, &request(b"GET / HTTP/1.1"))
                .unwrap();
            assert!(plan.response_bytes > netsim::packet::MSS);
        }
    }
}
