//! Open-loop bursty clients and the response tracker.
//!
//! Paper §5: clients are **open-loop** — they emit requests on their own
//! schedule regardless of outstanding responses — to avoid client-side
//! queueing bias and inter-burst dependencies (the Treadmill pitfalls).
//! To model bursty datacenter traffic, each client "periodically sends a
//! burst of requests" with the period set by the target load level.

use desim::{SimDuration, SimTime, SplitMix64};
use netsim::http::{HttpRequest, MemcachedRequest};
use netsim::{Bytes, NodeId, Packet};
use simstats::LogHistogram;
use std::collections::HashMap;

/// The arrival process a client uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// Periodic bursts (the paper's §5 model of datacenter traffic).
    Bursty,
    /// Smooth Poisson arrivals at the same offered rate — the contrast
    /// case for the burstiness ablation: NCAP's anticipation has nothing
    /// to anticipate when traffic has no bursts.
    Poisson,
}

/// Which request payloads a client emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// HTTP `GET`s for an Apache-like server.
    ApacheGet,
    /// Memcached `get`s.
    MemcachedGet,
    /// HTTP `PUT`s — update traffic that is *not* latency-critical
    /// (used by the context-awareness ablation).
    ApachePut,
    /// Raw bulk frames with no recognizable request token (off-line
    /// analytics style background traffic).
    Bulk,
}

/// Per-client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// This client's node id.
    pub me: NodeId,
    /// The server to address.
    pub server: NodeId,
    /// Requests per burst.
    pub burst_size: u32,
    /// Time between burst starts.
    pub period: SimDuration,
    /// Payload family.
    pub workload: Workload,
    /// RNG seed (burst jitter, key/path choice).
    pub seed: u64,
    /// Request-id base; clients must use disjoint ranges.
    pub id_base: u64,
    /// Optional load step: from this instant on, bursts use the new
    /// period — the paper's §1 "sudden increase in the rate of requests".
    pub step: Option<(SimTime, SimDuration)>,
    /// The arrival process.
    pub arrival: Arrival,
    /// Optional end-to-end deadline stamped on every request (measured
    /// from the send instant). Servers running the deadline shed policy
    /// reject work that can no longer meet it.
    pub deadline: Option<SimDuration>,
}

impl ClientConfig {
    /// An Apache GET client.
    #[must_use]
    pub fn apache(
        me: NodeId,
        server: NodeId,
        burst_size: u32,
        period: SimDuration,
        seed: u64,
    ) -> Self {
        ClientConfig {
            me,
            server,
            burst_size,
            period,
            workload: Workload::ApacheGet,
            seed,
            id_base: u64::from(me.0) << 40,
            step: None,
            arrival: Arrival::Bursty,
            deadline: None,
        }
    }

    /// A Memcached GET client.
    #[must_use]
    pub fn memcached(
        me: NodeId,
        server: NodeId,
        burst_size: u32,
        period: SimDuration,
        seed: u64,
    ) -> Self {
        ClientConfig {
            workload: Workload::MemcachedGet,
            ..ClientConfig::apache(me, server, burst_size, period, seed)
        }
    }

    /// Overrides the workload (builder style).
    #[must_use]
    pub fn with_workload(mut self, w: Workload) -> Self {
        self.workload = w;
        self
    }

    /// Schedules a load step: after `at`, bursts repeat every
    /// `new_period` (builder style).
    #[must_use]
    pub fn with_step(mut self, at: SimTime, new_period: SimDuration) -> Self {
        self.step = Some((at, new_period));
        self
    }

    /// Switches to smooth Poisson arrivals at the same offered rate
    /// (builder style).
    #[must_use]
    pub fn with_poisson(mut self) -> Self {
        self.arrival = Arrival::Poisson;
        self
    }

    /// Stamps every emitted request with an end-to-end deadline (builder
    /// style).
    #[must_use]
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Offered load in requests per second.
    #[must_use]
    pub fn offered_rps(&self) -> f64 {
        f64::from(self.burst_size) / self.period.as_secs_f64()
    }
}

/// An open-loop burst generator.
#[derive(Debug)]
pub struct OpenLoopClient {
    config: ClientConfig,
    rng: SplitMix64,
    next_id: u64,
    bursts_sent: u64,
}

impl OpenLoopClient {
    /// Creates the client.
    #[must_use]
    pub fn new(config: ClientConfig) -> Self {
        let rng = SplitMix64::new(config.seed);
        let next_id = config.id_base;
        OpenLoopClient {
            config,
            rng,
            next_id,
            bursts_sent: 0,
        }
    }

    /// The client's configuration.
    #[must_use]
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    fn payload(&mut self, seq: u64) -> Bytes {
        match self.config.workload {
            Workload::ApacheGet => {
                let doc = self.rng.next_below(10_000);
                HttpRequest::get(format!("/doc/{doc}.html")).to_payload()
            }
            Workload::MemcachedGet => {
                let key = self.rng.next_below(1_000_000);
                MemcachedRequest::get(format!("user:{key}")).to_payload()
            }
            Workload::ApachePut => {
                HttpRequest::put(format!("/doc/{}.html", seq % 10_000)).to_payload()
            }
            Workload::Bulk => Bytes::from(vec![0xA5u8; netsim::packet::MSS]),
        }
    }

    /// Emits the traffic due at `now` (a burst, or a single Poisson
    /// arrival). Returns the request frames (to be injected into the
    /// network at `now`) and the next emission instant.
    pub fn next_burst(&mut self, now: SimTime) -> (Vec<Packet>, SimTime) {
        let count = match self.config.arrival {
            Arrival::Bursty => self.config.burst_size,
            Arrival::Poisson => 1,
        };
        let mut frames = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let id = self.next_id;
            self.next_id += 1;
            let payload = self.payload(id);
            let frame = match self.config.workload {
                Workload::Bulk => Packet::new(
                    self.config.me,
                    self.config.server,
                    id as u32,
                    payload,
                    netsim::PacketMeta::default(),
                ),
                _ => {
                    let mut f = Packet::request(self.config.me, self.config.server, id, payload)
                        .sent_at(now);
                    if let Some(d) = self.config.deadline {
                        f = f.with_deadline(d);
                    }
                    f
                }
            };
            frames.push(frame);
        }
        self.bursts_sent += 1;
        let period = match self.config.step {
            Some((at, stepped)) if now >= at => stepped,
            _ => self.config.period,
        };
        let gap = match self.config.arrival {
            Arrival::Bursty => {
                // ±5 % period jitter decorrelates the three clients'
                // bursts a little, as independent load generators would be.
                let jitter = self.rng.next_f64_in(0.95, 1.05);
                period.mul_f64(jitter)
            }
            Arrival::Poisson => {
                // Exponential inter-arrival with the same mean rate.
                let mean = period.as_secs_f64() / f64::from(self.config.burst_size);
                desim::SimDuration::from_secs_f64(self.rng.next_exp(mean))
            }
        };
        (frames, now + gap)
    }

    /// Bursts emitted so far.
    #[must_use]
    pub fn bursts_sent(&self) -> u64 {
        self.bursts_sent
    }
}

/// Collects end-to-end response times at the client side.
///
/// A request is complete when the `is_final` frame of its response
/// arrives; latency is measured from the client's send instant, exactly
/// like the paper's annotated round-trip measurement.
#[derive(Debug, Default)]
pub struct ResponseTracker {
    latencies: LogHistogram,
    outstanding: HashMap<u64, ()>,
    completed: u64,
    rejected: u64,
}

impl ResponseTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        ResponseTracker::default()
    }

    /// Notes a request emitted (for loss accounting).
    pub fn note_sent(&mut self, request_id: u64) {
        self.outstanding.insert(request_id, ());
    }

    /// Processes one response frame arriving at the client at `now`.
    /// Returns the completed request's latency when the frame is final.
    pub fn on_response_frame(&mut self, now: SimTime, frame: &Packet) -> Option<SimDuration> {
        let meta = frame.meta();
        let rid = meta.request_id?;
        if meta.rejected {
            self.reject(rid);
            return None;
        }
        if !meta.is_final {
            return None;
        }
        self.outstanding.remove(&rid);
        let latency = now.saturating_since(meta.sent_at);
        self.latencies.record(latency.as_nanos().max(1));
        self.completed += 1;
        Some(latency)
    }

    /// Records an explicitly-detected completion (used by the reliability
    /// layer, which declares a request done only once its reassembler has
    /// every response segment — possibly after retransmissions). Latency
    /// runs from the *original* send instant, so it includes every
    /// retransmission round-trip.
    pub fn complete(&mut self, now: SimTime, request_id: u64, sent_at: SimTime) -> SimDuration {
        self.outstanding.remove(&request_id);
        let latency = now.saturating_since(sent_at);
        self.latencies.record(latency.as_nanos().max(1));
        self.completed += 1;
        latency
    }

    /// Records a server rejection (a 503-style response): the request is
    /// resolved — the client will not retransmit it — but its latency is
    /// *not* recorded, so the histogram reflects served requests only.
    pub fn reject(&mut self, request_id: u64) {
        self.outstanding.remove(&request_id);
        self.rejected += 1;
    }

    /// The latency histogram (nanoseconds).
    #[must_use]
    pub fn latencies(&self) -> &LogHistogram {
        &self.latencies
    }

    /// Requests the server rejected under overload.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Requests completed.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Requests sent but not yet answered.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::tcp::segment_response;

    fn apache_client() -> OpenLoopClient {
        OpenLoopClient::new(ClientConfig::apache(
            NodeId(1),
            NodeId(0),
            10,
            SimDuration::from_ms(5),
            42,
        ))
    }

    #[test]
    fn burst_has_configured_size_and_valid_payloads() {
        let mut c = apache_client();
        let (frames, next) = c.next_burst(SimTime::from_ms(1));
        assert_eq!(frames.len(), 10);
        for f in &frames {
            assert!(f.payload().starts_with(b"GET "));
            assert_eq!(f.meta().sent_at, SimTime::from_ms(1));
            assert!(f.meta().request_id.is_some());
        }
        let gap = next.saturating_since(SimTime::from_ms(1));
        assert!(gap >= SimDuration::from_ms(4));
        assert!(gap <= SimDuration::from_nanos(5_300_000));
    }

    #[test]
    fn request_ids_are_unique_and_namespaced() {
        let mut a = OpenLoopClient::new(ClientConfig::apache(
            NodeId(1),
            NodeId(0),
            5,
            SimDuration::from_ms(1),
            1,
        ));
        let mut b = OpenLoopClient::new(ClientConfig::apache(
            NodeId(2),
            NodeId(0),
            5,
            SimDuration::from_ms(1),
            1,
        ));
        let (fa, _) = a.next_burst(SimTime::ZERO);
        let (fb, _) = b.next_burst(SimTime::ZERO);
        let mut ids: Vec<u64> = fa
            .iter()
            .chain(fb.iter())
            .map(|f| f.meta().request_id.unwrap())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn offered_rps_math() {
        let cfg = ClientConfig::apache(NodeId(1), NodeId(0), 100, SimDuration::from_ms(5), 1);
        assert!((cfg.offered_rps() - 20_000.0).abs() < 1e-6);
    }

    #[test]
    fn memcached_payloads() {
        let mut c = OpenLoopClient::new(ClientConfig::memcached(
            NodeId(1),
            NodeId(0),
            3,
            SimDuration::from_ms(1),
            9,
        ));
        let (frames, _) = c.next_burst(SimTime::ZERO);
        for f in &frames {
            assert!(f.payload().starts_with(b"get "));
        }
    }

    #[test]
    fn bulk_frames_carry_no_request_id() {
        let mut c = OpenLoopClient::new(
            ClientConfig::apache(NodeId(1), NodeId(0), 2, SimDuration::from_ms(1), 9)
                .with_workload(Workload::Bulk),
        );
        let (frames, _) = c.next_burst(SimTime::ZERO);
        for f in &frames {
            assert_eq!(f.meta().request_id, None);
            assert_eq!(f.leading_bytes(), Some([0xA5, 0xA5]));
        }
    }

    #[test]
    fn tracker_measures_final_frame_only() {
        let mut t = ResponseTracker::new();
        t.note_sent(7);
        let frames = segment_response(
            NodeId(0),
            NodeId(1),
            7,
            Bytes::from(vec![0u8; 3000]),
            SimTime::from_us(100),
        );
        assert!(t
            .on_response_frame(SimTime::from_us(500), &frames[0])
            .is_none());
        let lat = t
            .on_response_frame(SimTime::from_us(600), &frames.last().unwrap().clone())
            .unwrap();
        assert_eq!(lat, SimDuration::from_us(500));
        assert_eq!(t.completed(), 1);
        assert_eq!(t.outstanding(), 0);
        assert_eq!(t.latencies().count(), 1);
    }

    #[test]
    fn explicit_completion_matches_frame_completion() {
        let mut t = ResponseTracker::new();
        t.note_sent(9);
        let lat = t.complete(SimTime::from_us(700), 9, SimTime::from_us(100));
        assert_eq!(lat, SimDuration::from_us(600));
        assert_eq!(t.completed(), 1);
        assert_eq!(t.outstanding(), 0);
    }

    #[test]
    fn poisson_emits_singles_at_matching_rate() {
        let mut c = OpenLoopClient::new(
            ClientConfig::memcached(NodeId(1), NodeId(0), 100, SimDuration::from_ms(10), 5)
                .with_poisson(),
        );
        // Offered rate = 100 / 10 ms = 10 K rps → mean gap 100 us.
        let mut now = SimTime::ZERO;
        let mut total_gap = SimDuration::ZERO;
        let n = 2_000;
        for _ in 0..n {
            let (frames, next) = c.next_burst(now);
            assert_eq!(frames.len(), 1, "Poisson emits one request at a time");
            total_gap += next.saturating_since(now);
            now = next;
        }
        let mean_us = total_gap.as_us_f64() / f64::from(n);
        assert!((80.0..120.0).contains(&mean_us), "mean gap {mean_us} us");
    }

    #[test]
    fn load_step_changes_the_period() {
        let mut c = OpenLoopClient::new(
            ClientConfig::apache(NodeId(1), NodeId(0), 10, SimDuration::from_ms(20), 3)
                .with_step(SimTime::from_ms(50), SimDuration::from_ms(2)),
        );
        let (_, next1) = c.next_burst(SimTime::from_ms(10));
        assert!(next1.saturating_since(SimTime::from_ms(10)) >= SimDuration::from_ms(19));
        let (_, next2) = c.next_burst(SimTime::from_ms(60));
        let gap = next2.saturating_since(SimTime::from_ms(60));
        assert!(
            gap <= SimDuration::from_nanos(2_200_000),
            "stepped gap {gap}"
        );
    }

    #[test]
    fn deadline_is_stamped_on_every_request() {
        let mut c = OpenLoopClient::new(
            ClientConfig::apache(NodeId(1), NodeId(0), 4, SimDuration::from_ms(1), 7)
                .with_deadline(SimDuration::from_us(500)),
        );
        let (frames, _) = c.next_burst(SimTime::from_ms(2));
        for f in &frames {
            assert_eq!(f.meta().deadline, Some(SimDuration::from_us(500)));
        }
    }

    #[test]
    fn tracker_resolves_rejections_without_recording_latency() {
        let mut t = ResponseTracker::new();
        t.note_sent(7);
        let frame = Packet::reject_response(NodeId(0), NodeId(1), 7, SimTime::from_us(100));
        assert!(t.on_response_frame(SimTime::from_us(300), &frame).is_none());
        assert_eq!(t.rejected(), 1);
        assert_eq!(t.completed(), 0);
        assert_eq!(t.outstanding(), 0);
        assert_eq!(t.latencies().count(), 0);
    }

    #[test]
    fn deterministic_bursts_per_seed() {
        let mut a = apache_client();
        let mut b = apache_client();
        let (fa, na) = a.next_burst(SimTime::ZERO);
        let (fb, nb) = b.next_burst(SimTime::ZERO);
        assert_eq!(na, nb);
        for (x, y) in fa.iter().zip(fb.iter()) {
            assert_eq!(x.payload(), y.payload());
        }
    }
}
