//! Per-stage latency attribution across the request path.
//!
//! Every completed request carries a per-stage duration vector (stamped
//! along the simulated path; see the `netsim::StageRecord` sideband). The
//! [`BreakdownCollector`] keeps the full population — not a sample — and
//! [`LatencyBreakdown`] condenses it into per-stage histograms, means and
//! shares, plus a *tail-conditioned* view: for requests at or above a
//! percentile threshold of total latency, which stage dominates.
//!
//! The stage vector is a plain `[u32; STAGE_COUNT]` so this crate stays
//! independent of the network/kernel crates that produce it; the indices
//! are named by the [`stage`] constants and [`STAGE_NAMES`].

use crate::histogram::LogHistogram;

/// Number of attributed stages.
pub const STAGE_COUNT: usize = 13;

/// Stage names, indexed by the [`stage`] constants.
pub const STAGE_NAMES: [&str; STAGE_COUNT] = [
    "net_in",     // client → server wire + switch transit (request)
    "lb",         // load-balancer hop hold, both directions
    "dma",        // NIC ring: wire end → DMA completion
    "moderation", // NIC hold: DMA completion → NAPI drain, minus wake overlap
    "wake",       // C-state wake latency overlapping the ring wait
    "stack",      // RX SoftIRQ run-queue sojourn + stack execution
    "poll_wait",  // bypass datapath: DMA completion → userspace pickup + poll RX
    "rq_wait",    // application phases: run-queue wait
    "cpu",        // application phases: on-core execution
    "io",         // application phases: disk/IO wait
    "tx",         // app completion → final frame on the wire
    "net_out",    // server → client wire + switch transit (response)
    "retx",       // client retransmission wait + server response replay
];

/// Named indices into a stage vector.
pub mod stage {
    /// Request-direction network transit.
    pub const NET_IN: usize = 0;
    /// Load-balancer hop (both directions).
    pub const LB: usize = 1;
    /// NIC DMA.
    pub const DMA: usize = 2;
    /// Interrupt-moderation / ring hold.
    pub const MODERATION: usize = 3;
    /// C-state wake latency.
    pub const WAKE: usize = 4;
    /// RX stack processing.
    pub const STACK: usize = 5;
    /// Poll-mode ring residency + userspace RX (replaces
    /// `moderation + wake + stack` on the bypass datapath).
    pub const POLL_WAIT: usize = 6;
    /// Application run-queue wait.
    pub const RQ_WAIT: usize = 7;
    /// Application CPU execution.
    pub const CPU: usize = 8;
    /// Application IO wait.
    pub const IO: usize = 9;
    /// Transmit path.
    pub const TX: usize = 10;
    /// Response-direction network transit.
    pub const NET_OUT: usize = 11;
    /// Retransmission / replay overhead.
    pub const RETX: usize = 12;
}

/// Full-population accumulator: one `(stage vector, total)` row per
/// completed request. Reset at measurement start alongside the latency
/// tracker so warmup requests are excluded.
#[derive(Debug, Clone, Default)]
pub struct BreakdownCollector {
    samples: Vec<([u32; STAGE_COUNT], u64)>,
}

impl BreakdownCollector {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed request.
    pub fn record(&mut self, stages: [u32; STAGE_COUNT], total_ns: u64) {
        self.samples.push((stages, total_ns));
    }

    /// Discards everything collected so far (measurement-window start).
    pub fn reset(&mut self) {
        self.samples.clear();
    }

    /// Number of recorded requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw per-request rows: `(stage vector, total ns)`.
    #[must_use]
    pub fn samples(&self) -> &[([u32; STAGE_COUNT], u64)] {
        &self.samples
    }

    /// Condenses the population into per-stage statistics, conditioning
    /// the tail view on totals at or above `tail_percentile` (e.g. 99.0).
    #[must_use]
    pub fn finalize(&self, tail_percentile: f64) -> LatencyBreakdown {
        let n = self.samples.len();
        let tail_threshold_ns = if n == 0 {
            0
        } else {
            // Exact order statistic over the full population — no
            // histogram bucketing error in the threshold.
            let mut totals: Vec<u64> = self.samples.iter().map(|&(_, t)| t).collect();
            totals.sort_unstable();
            // First order statistic at or beyond the quantile, so the
            // tail set (`total >= threshold`) is the top `100 - q`% and
            // always contains the maximum.
            let q = tail_percentile.clamp(0.0, 100.0) / 100.0;
            let rank = ((n as f64 * q).ceil() as usize).min(n - 1);
            totals[rank]
        };

        let mut hists: Vec<LogHistogram> = (0..STAGE_COUNT).map(|_| LogHistogram::new()).collect();
        let mut sums = [0u64; STAGE_COUNT];
        let mut tail_sums = [0u64; STAGE_COUNT];
        let mut total_sum = 0u64;
        let mut tail_total_sum = 0u64;
        let mut tail_count = 0u64;
        for &(stages, total) in &self.samples {
            total_sum += total;
            let in_tail = total >= tail_threshold_ns && tail_threshold_ns > 0;
            if in_tail {
                tail_count += 1;
                tail_total_sum += total;
            }
            for (i, &v) in stages.iter().enumerate() {
                hists[i].record(u64::from(v));
                sums[i] += u64::from(v);
                if in_tail {
                    tail_sums[i] += u64::from(v);
                }
            }
        }

        let mean_of = |sum: u64, cnt: u64| {
            if cnt == 0 {
                0.0
            } else {
                sum as f64 / cnt as f64
            }
        };
        let share_of = |sum: u64, total: u64| {
            if total == 0 {
                0.0
            } else {
                sum as f64 / total as f64
            }
        };
        let stages = STAGE_NAMES
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let hist = std::mem::take(&mut hists[i]);
                StageBreakdown {
                    name,
                    mean: mean_of(sums[i], n as u64),
                    share: share_of(sums[i], total_sum),
                    tail_mean: mean_of(tail_sums[i], tail_count),
                    tail_share: share_of(tail_sums[i], tail_total_sum),
                    hist,
                }
            })
            .collect();
        LatencyBreakdown {
            count: n as u64,
            total_mean: mean_of(total_sum, n as u64),
            tail_percentile,
            tail_threshold_ns,
            tail_count,
            stages,
        }
    }
}

/// One stage's slice of the end-to-end latency.
#[derive(Debug, Clone)]
pub struct StageBreakdown {
    /// Stage name (one of [`STAGE_NAMES`]).
    pub name: &'static str,
    /// Mean over *all* completed requests, zeros included (ns).
    pub mean: f64,
    /// This stage's fraction of total latency summed over the population.
    pub share: f64,
    /// Mean over tail requests only (ns).
    pub tail_mean: f64,
    /// This stage's fraction of total latency within the tail.
    pub tail_share: f64,
    /// Full-population distribution of this stage's duration.
    pub hist: LogHistogram,
}

/// Population-level per-stage attribution for one experiment, with a
/// tail-conditioned view ("which stage owns the p99").
#[derive(Debug, Clone)]
pub struct LatencyBreakdown {
    /// Completed requests in the population.
    pub count: u64,
    /// Mean end-to-end latency (ns).
    pub total_mean: f64,
    /// Percentile the tail view is conditioned on (e.g. 99.0).
    pub tail_percentile: f64,
    /// Total-latency threshold (ns) defining the tail set.
    pub tail_threshold_ns: u64,
    /// Requests at or above the threshold.
    pub tail_count: u64,
    /// Per-stage statistics, indexed like [`STAGE_NAMES`].
    pub stages: Vec<StageBreakdown>,
}

impl LatencyBreakdown {
    /// The stage with the largest tail share, if any time was attributed.
    #[must_use]
    pub fn tail_dominant(&self) -> Option<&StageBreakdown> {
        self.stages
            .iter()
            .max_by(|a, b| a.tail_share.total_cmp(&b.tail_share))
            .filter(|s| s.tail_share > 0.0)
    }

    /// Looks a stage up by name.
    #[must_use]
    pub fn stage(&self, name: &str) -> Option<&StageBreakdown> {
        self.stages.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::{ensure, ensure_eq, gen, Check};

    fn row(vals: [u32; STAGE_COUNT]) -> ([u32; STAGE_COUNT], u64) {
        let total = vals.iter().map(|&v| u64::from(v)).sum();
        (vals, total)
    }

    #[test]
    fn empty_finalize_is_zeroed() {
        let b = BreakdownCollector::new().finalize(99.0);
        assert_eq!(b.count, 0);
        assert_eq!(b.tail_count, 0);
        assert_eq!(b.stages.len(), STAGE_COUNT);
        assert!(b.tail_dominant().is_none());
    }

    #[test]
    fn shares_sum_to_one() {
        let mut c = BreakdownCollector::new();
        for i in 1..=100u32 {
            let mut v = [0u32; STAGE_COUNT];
            v[stage::NET_IN] = i;
            v[stage::CPU] = 2 * i;
            v[stage::WAKE] = i / 2;
            let (v, t) = row(v);
            c.record(v, t);
        }
        let b = c.finalize(99.0);
        let share_sum: f64 = b.stages.iter().map(|s| s.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "share sum {share_sum}");
        let tail_sum: f64 = b.stages.iter().map(|s| s.tail_share).sum();
        assert!((tail_sum - 1.0).abs() < 1e-9, "tail share sum {tail_sum}");
    }

    #[test]
    fn tail_conditioning_picks_the_slow_stage() {
        // Most requests are CPU-dominated; the slowest 1% add a large
        // wake stall. The tail view must flip the dominant stage.
        let mut c = BreakdownCollector::new();
        for i in 0..1000u32 {
            let mut v = [0u32; STAGE_COUNT];
            v[stage::CPU] = 1_000;
            if i >= 990 {
                v[stage::WAKE] = 50_000;
            }
            let (v, t) = row(v);
            c.record(v, t);
        }
        let b = c.finalize(99.0);
        assert!(b.stage("cpu").unwrap().share.max(0.0) > 0.0);
        let dom = b.tail_dominant().expect("tail has mass");
        assert_eq!(dom.name, "wake");
        assert!(b.tail_threshold_ns >= 51_000);
        assert!(b.tail_count >= 10);
    }

    #[test]
    fn reset_clears_population() {
        let mut c = BreakdownCollector::new();
        let (v, t) = row([1; STAGE_COUNT]);
        c.record(v, t);
        assert_eq!(c.len(), 1);
        c.reset();
        assert!(c.is_empty());
        assert_eq!(c.finalize(99.0).count, 0);
    }

    #[test]
    fn stage_means_match_population() {
        let stage_vec = |rng: &mut check::Rng, size: usize| {
            gen::vec_with(rng, size, 1, 64, |r| gen::u64_in(r, 0, 12_000))
        };
        Check::new("breakdown_mean_consistency").run(stage_vec, |vals: &Vec<u64>| {
            let mut c = BreakdownCollector::new();
            for &v in vals {
                let mut s = [0u32; STAGE_COUNT];
                s[stage::NET_IN] = v as u32;
                let (s, t) = row(s);
                c.record(s, t);
            }
            let b = c.finalize(99.0);
            ensure_eq!(b.count, vals.len() as u64);
            let expect = vals.iter().sum::<u64>() as f64 / vals.len() as f64;
            ensure!(
                (b.stage("net_in").unwrap().mean - expect).abs() < 1e-6,
                "mean mismatch"
            );
            // Everything was attributed to one stage: its share is 1
            // unless the population sum is zero.
            if vals.iter().any(|&v| v > 0) {
                ensure!(
                    (b.stage("net_in").unwrap().share - 1.0).abs() < 1e-9,
                    "share"
                );
            }
            Ok(())
        });
    }
}
