//! Fleet-level aggregation of per-backend figures.
//!
//! The fleet layer reports per-backend energy and dispatch counts; the
//! questions an experiment asks are joint ones — what did the whole
//! fleet spend, how concentrated was the load, was the spread fair? This
//! module rolls per-backend slices up into those answers. It deliberately
//! takes plain slices (not fleet types) so the stats crate stays a leaf
//! dependency.

/// Joint figures for one fleet run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetAggregate {
    /// Number of backends aggregated.
    pub backends: usize,
    /// Sum of per-backend energies, joules (the fleet's joint bill;
    /// coordinator transition energy, if any, is accounted separately by
    /// the caller).
    pub joint_energy_j: f64,
    /// Sum of per-backend dispatched requests.
    pub dispatched_total: u64,
    /// Largest single backend's share of dispatched requests, in
    /// `[0, 1]` (1.0 = fully concentrated; `1/n` = perfectly spread).
    pub max_share: f64,
    /// Jain fairness of the dispatch spread, in `(0, 1]` (1.0 = equal
    /// shares; `1/n` = everything on one backend).
    pub fairness: f64,
}

impl FleetAggregate {
    /// Rolls up index-aligned per-backend energy and dispatch counts.
    /// Empty slices produce a zeroed aggregate with fairness 1.0.
    #[must_use]
    pub fn from_backends(energy_j: &[f64], dispatched: &[u64]) -> Self {
        let dispatched_total: u64 = dispatched.iter().sum();
        let max_share = if dispatched_total == 0 {
            0.0
        } else {
            dispatched.iter().copied().max().unwrap_or(0) as f64 / dispatched_total as f64
        };
        let shares: Vec<f64> = dispatched.iter().map(|&d| d as f64).collect();
        FleetAggregate {
            backends: energy_j.len().max(dispatched.len()),
            joint_energy_j: energy_j.iter().sum(),
            dispatched_total,
            max_share,
            fairness: jain_fairness(&shares),
        }
    }
}

/// Jain's fairness index `(Σx)² / (n · Σx²)`: 1.0 when every value is
/// equal, `1/n` when one value carries everything. Empty or all-zero
/// input reads as fair (1.0) — nothing was spread unevenly.
#[must_use]
pub fn jain_fairness(values: &[f64]) -> f64 {
    let n = values.len() as f64;
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if n == 0.0 || sum_sq == 0.0 {
        1.0
    } else {
        (sum * sum) / (n * sum_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_bounds() {
        assert!((jain_fairness(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        let concentrated = jain_fairness(&[12.0, 0.0, 0.0, 0.0]);
        assert!((concentrated - 0.25).abs() < 1e-12);
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn aggregate_rolls_up() {
        let agg = FleetAggregate::from_backends(&[1.5, 0.5, 0.25], &[800, 150, 50]);
        assert_eq!(agg.backends, 3);
        assert!((agg.joint_energy_j - 2.25).abs() < 1e-12);
        assert_eq!(agg.dispatched_total, 1000);
        assert!((agg.max_share - 0.8).abs() < 1e-12);
        // Jain for [800, 150, 50] is (1000)^2 / (3 * 665 000) ≈ 0.501.
        assert!((agg.fairness - 0.501).abs() < 0.001, "got {}", agg.fairness);
    }

    #[test]
    fn empty_fleet_is_zeroed_and_fair() {
        let agg = FleetAggregate::from_backends(&[], &[]);
        assert_eq!(agg.backends, 0);
        assert_eq!(agg.dispatched_total, 0);
        assert_eq!(agg.max_share, 0.0);
        assert_eq!(agg.fairness, 1.0);
    }
}
