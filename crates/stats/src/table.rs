//! Fixed-width plain-text tables for bench output.
//!
//! The benchmark harness prints the same rows the paper's tables/figures
//! report; this module keeps that output aligned and diff-friendly.

use core::fmt;

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use simstats::Table;
/// let mut t = Table::new(vec!["policy", "energy"]);
/// t.row(vec!["perf".into(), "1.00".into()]);
/// t.row(vec!["ncap.aggr".into(), "0.42".into()]);
/// let text = t.to_string();
/// assert!(text.contains("ncap.aggr"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row. Short rows are padded with empty cells; long
    /// rows extend the table width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Convenience: appends a row of `Display`-able cells.
    pub fn row_display<D: fmt::Display>(&mut self, cells: Vec<D>) -> &mut Self {
        self.row(cells.into_iter().map(|c| c.to_string()).collect())
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut w = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            w[i] = w[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a fixed-precision percentage string, e.g. `0.372`
/// → `"37.2%"`. Handy for the energy-saving headline tables.
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats nanoseconds as a human-friendly latency string (µs or ms).
#[must_use]
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.1}us", ns as f64 / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxxx".into(), "y".into()]);
        let out = t.to_string();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a    "));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec!["only".into()]);
        let out = t.to_string();
        assert!(out.contains('3'));
        assert!(out.contains("only"));
    }

    #[test]
    fn row_display_stringifies() {
        let mut t = Table::new(vec!["n"]);
        t.row_display(vec![42]);
        assert!(t.to_string().contains("42"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn pct_and_fmt_ns() {
        assert_eq!(pct(0.372), "37.2%");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(41_000_000), "41.00ms");
    }
}
