//! Compact latency summaries extracted from histograms.

use crate::histogram::LogHistogram;
use core::fmt;

/// The percentile set the paper reports (Figures 8 and 9 left panels),
/// plus mean/max/count, all in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Median response time (ns).
    pub p50: u64,
    /// 90th-percentile response time (ns).
    pub p90: u64,
    /// 95th-percentile response time (ns) — the paper's SLA metric.
    pub p95: u64,
    /// 99th-percentile response time (ns).
    pub p99: u64,
    /// Mean response time (ns).
    pub mean: f64,
    /// Worst observed response time (ns).
    pub max: u64,
    /// Number of completed requests.
    pub count: u64,
}

impl LatencySummary {
    /// Extracts the summary from a histogram of nanosecond latencies.
    ///
    /// # Example
    ///
    /// ```
    /// use simstats::{LatencySummary, LogHistogram};
    /// let mut h = LogHistogram::new();
    /// for v in 1..=100u64 {
    ///     h.record(v * 1_000);
    /// }
    /// let s = LatencySummary::from_histogram(&h);
    /// assert_eq!(s.count, 100);
    /// assert!(s.p95 >= s.p50);
    /// ```
    #[must_use]
    pub fn from_histogram(h: &LogHistogram) -> Self {
        LatencySummary {
            p50: h.percentile(50.0),
            p90: h.percentile(90.0),
            p95: h.percentile(95.0),
            p99: h.percentile(99.0),
            mean: h.mean(),
            max: h.max(),
            count: h.count(),
        }
    }

    /// All four reported percentiles, normalized by `sla_ns`
    /// (the paper normalizes response times to the SLA; values > 1.0
    /// violate it).
    #[must_use]
    pub fn normalized(&self, sla_ns: u64) -> [f64; 4] {
        let n = |v: u64| v as f64 / sla_ns as f64;
        [n(self.p50), n(self.p90), n(self.p95), n(self.p99)]
    }

    /// `true` when the p95 response time meets the SLA.
    #[must_use]
    pub fn meets_sla(&self, sla_ns: u64) -> bool {
        self.p95 <= sla_ns
    }
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1}us p50={:.1}us p90={:.1}us p95={:.1}us p99={:.1}us max={:.1}us",
            self.count,
            self.mean / 1e3,
            self.p50 as f64 / 1e3,
            self.p90 as f64 / 1e3,
            self.p95 as f64 / 1e3,
            self.p99 as f64 / 1e3,
            self.max as f64 / 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_hist() -> LogHistogram {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1_000);
        }
        h
    }

    #[test]
    fn percentiles_are_ordered() {
        let s = LatencySummary::from_histogram(&uniform_hist());
        assert!(s.p50 <= s.p90);
        assert!(s.p90 <= s.p95);
        assert!(s.p95 <= s.p99);
        assert!(s.p99 <= s.max);
    }

    #[test]
    fn normalization_against_sla() {
        let s = LatencySummary::from_histogram(&uniform_hist());
        let [_, _, p95n, _] = s.normalized(s.p95);
        assert!((p95n - 1.0).abs() < 1e-9);
        assert!(s.meets_sla(s.p95));
        assert!(!s.meets_sla(s.p95 - 1_000));
    }

    #[test]
    fn empty_histogram_summary() {
        let s = LatencySummary::from_histogram(&LogHistogram::new());
        assert_eq!(s.count, 0);
        assert_eq!(s.p95, 0);
    }

    #[test]
    fn display_mentions_count() {
        let s = LatencySummary::from_histogram(&uniform_hist());
        assert!(s.to_string().contains("n=1000"));
    }
}
