//! Log-bucketed histogram with bounded relative error.
//!
//! Values (typically latencies in nanoseconds) are assigned to buckets of
//! geometrically growing width: each power-of-two range is split into
//! `SUBBUCKETS` linear sub-buckets, giving a worst-case relative error of
//! `1 / SUBBUCKETS` (≈1.6 % here) while using O(64 × SUBBUCKETS) memory
//! regardless of value range. This is the same scheme HdrHistogram uses.

const SUBBUCKET_BITS: u32 = 6;
const SUBBUCKETS: u64 = 1 << SUBBUCKET_BITS; // 64 sub-buckets per octave

/// A histogram of `u64` values with ~1.6 % relative bucket error.
///
/// # Example
///
/// ```
/// use simstats::LogHistogram;
/// let mut h = LogHistogram::new();
/// h.record(100);
/// h.record(200);
/// h.record(300);
/// assert_eq!(h.count(), 3);
/// assert!(h.percentile(100.0) >= 300);
/// ```
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LogHistogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Index of the bucket holding `value`.
    ///
    /// Values below `SUBBUCKETS` get exact unit buckets. Each octave
    /// `[2^k, 2^(k+1))` for `k >= SUBBUCKET_BITS` is split into
    /// `SUBBUCKETS / 2` linear sub-buckets of width `2^(k - SUBBUCKET_BITS + 1)`.
    fn index(value: u64) -> usize {
        if value < SUBBUCKETS {
            return value as usize;
        }
        let k = 63 - u64::from(value.leading_zeros()); // octave, >= SUBBUCKET_BITS
        let shift = k - u64::from(SUBBUCKET_BITS) + 1;
        let sub = value >> shift; // in [SUBBUCKETS/2, SUBBUCKETS)
        let half = SUBBUCKETS / 2;
        (SUBBUCKETS + (k - u64::from(SUBBUCKET_BITS)) * half + (sub - half)) as usize
    }

    /// Representative (upper-bound) value of bucket `idx`.
    fn bucket_high(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < SUBBUCKETS {
            return idx;
        }
        let half = SUBBUCKETS / 2;
        let m = idx - SUBBUCKETS;
        let k = m / half + u64::from(SUBBUCKET_BITS);
        let sub = m % half + half;
        let shift = k - u64::from(SUBBUCKET_BITS) + 1;
        ((sub + 1) << shift) - 1
    }

    /// Records one occurrence of `value`.
    pub fn record(&mut self, value: u64) {
        let idx = Self::index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = Self::index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        self.count += n;
        self.sum += u128::from(value) * u128::from(n);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value, or 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values (exact), or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at or below which `q` percent of recordings fall.
    ///
    /// Exact for the min (q→0) and max (q=100); elsewhere accurate to the
    /// bucket's relative error. `q` is clamped to `[0, 100]`. Returns 0 for
    /// an empty histogram.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 100.0);
        let rank = ((q / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp the bucket's upper bound into the observed range so
                // extreme percentiles stay exact.
                return Self::bucket_high(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::{ensure, ensure_eq, gen, Check};

    #[test]
    fn empty_histogram_is_calm() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..SUBBUCKETS {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(100.0), SUBBUCKETS - 1);
    }

    #[test]
    fn uniform_median_is_close() {
        let mut h = LogHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0);
        let err = (p50 as f64 - 50_000.0).abs() / 50_000.0;
        assert!(err < 0.04, "median {p50} off by {err}");
    }

    #[test]
    fn record_n_equivalent_to_loop() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record_n(12_345, 10);
        for _ in 0..10 {
            b.record(12_345);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.percentile(50.0), b.percentile(50.0));
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn max_percentile_is_exact() {
        let mut h = LogHistogram::new();
        h.record(123_456_789);
        h.record(42);
        assert_eq!(h.percentile(100.0), 123_456_789);
        assert_eq!(h.max(), 123_456_789);
        assert_eq!(h.min(), 42);
    }

    /// Checks one value against the bucket relative-error contract.
    fn bucket_error_within_bound(v: u64) -> check::PropResult {
        let idx = LogHistogram::index(v);
        let high = LogHistogram::bucket_high(idx);
        ensure!(high >= v, "bucket high {high} below value {v}");
        let err = (high - v) as f64 / v as f64;
        ensure!(err <= 1.0 / 32.0, "value {v} high {high} err {err}");
        Ok(())
    }

    /// Any recorded value lands in a bucket whose representative is
    /// within the scheme's relative error.
    #[test]
    fn prop_bucket_error_bound() {
        Check::new("histogram_bucket_error_bound").run(
            |rng, size| gen::u64_scaled(rng, size, 1, u64::MAX / 2),
            |&v| bucket_error_within_bound(v),
        );
    }

    /// Regression pinned from the pre-port proptest corpus
    /// (`proptest-regressions/histogram.txt` shrank to `v = 64`, the
    /// first value of a fresh power-of-two bucket).
    #[test]
    fn regression_bucket_error_bound_at_64() {
        bucket_error_within_bound(64).unwrap();
    }

    /// Invariant `histogram percentile bounds`: percentiles are monotone
    /// in q and never leave the observed [min, max] range.
    #[test]
    fn prop_percentile_monotone() {
        Check::new("histogram_percentile_monotone").run(
            |rng, size| gen::vec_with(rng, size, 1, 200, |r| gen::u64_in(r, 1, 10_000_000)),
            |values| {
                let mut h = LogHistogram::new();
                for &v in values {
                    h.record(v);
                }
                let mut last = 0;
                for q in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0] {
                    let p = h.percentile(q);
                    ensure!(p >= last, "p{q} = {p} below previous {last}");
                    last = p;
                }
                Ok(())
            },
        );
    }

    /// Percentiles never leave the observed [min, max] range.
    #[test]
    fn prop_percentile_bounded() {
        Check::new("histogram_percentile_bounded").run(
            |rng, size| {
                let values = gen::vec_with(rng, size, 1, 200, |r| gen::u64_in(r, 1, 10_000_000));
                let q = rng.next_f64_in(0.0, 100.0);
                (values, q)
            },
            |(values, q)| {
                let mut h = LogHistogram::new();
                for &v in values {
                    h.record(v);
                }
                let p = h.percentile(*q);
                ensure!(
                    p >= h.min() && p <= h.max(),
                    "p{q} = {p} outside [{}, {}]",
                    h.min(),
                    h.max()
                );
                Ok(())
            },
        );
    }

    /// merge(a, b) has the same percentiles as recording everything
    /// into one histogram.
    #[test]
    fn prop_merge_equivalence() {
        Check::new("histogram_merge_equivalence").run(
            |rng, size| {
                let xs = gen::vec_with(rng, size, 1, 100, |r| gen::u64_in(r, 1, 1_000_000));
                let ys = gen::vec_with(rng, size, 1, 100, |r| gen::u64_in(r, 1, 1_000_000));
                (xs, ys)
            },
            |(xs, ys)| {
                let mut merged = LogHistogram::new();
                let mut single = LogHistogram::new();
                let mut other = LogHistogram::new();
                for &x in xs {
                    merged.record(x);
                    single.record(x);
                }
                for &y in ys {
                    other.record(y);
                    single.record(y);
                }
                merged.merge(&other);
                ensure_eq!(merged.count(), single.count());
                for q in [50.0, 95.0, 99.0] {
                    ensure_eq!(merged.percentile(q), single.percentile(q));
                }
                Ok(())
            },
        );
    }
}
